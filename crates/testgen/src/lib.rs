//! Proptest strategies for the CME program model.
//!
//! Shared by the property-test suites: random affine loop nests (within
//! the paper's restrictions), random cache geometries, and random layout
//! perturbations. Keeping the generators in one crate means every suite
//! fuzzes the same (documented) distribution, and shrinking behaves
//! consistently.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use cme_cache::CacheConfig;
use cme_ir::{AccessKind, LoopNest, NestBuilder};
use proptest::prelude::*;

/// Parameters of the random-nest distribution.
#[derive(Debug, Clone)]
pub struct NestDistribution {
    /// Range of loop extents per level.
    pub extent: std::ops::Range<i64>,
    /// Maximum nest depth (2..=max).
    pub max_depth: usize,
    /// Maximum number of arrays.
    pub max_arrays: usize,
    /// Range of reference counts.
    pub refs: std::ops::Range<usize>,
    /// Force all same-array reference pairs to be uniformly generated
    /// (the regime where CME counts are exact).
    pub uniform_only: bool,
}

impl Default for NestDistribution {
    fn default() -> Self {
        NestDistribution {
            extent: 4..10,
            max_depth: 3,
            max_arrays: 3,
            refs: 2..6,
            uniform_only: false,
        }
    }
}

/// A random 2-D-array loop nest within the CME program model.
///
/// Depth 2 or 3; subscripts are `index + offset` pairs over two of the
/// loop indices (possibly the same one twice — diagonal access); arrays
/// are laid out back-to-back with a random, line-aligned gap.
pub fn arb_nest(dist: NestDistribution) -> impl Strategy<Value = LoopNest> {
    let depth_range = 2..=dist.max_depth.max(2);
    (
        depth_range,
        1..=dist.max_arrays.max(1),
        proptest::collection::vec(
            (
                0..64usize,          // array selector
                0..4usize,           // subscript pattern
                -1i64..=1,           // row offset
                -1i64..=1,           // col offset
                proptest::bool::ANY, // write?
            ),
            dist.refs,
        ),
        dist.extent.clone(),
        0..8i64, // inter-array gap, in 16-element units
    )
        .prop_map(move |(depth, narrays, refs, extent, gap16)| {
            build_nest(depth, narrays, &refs, extent, gap16 * 16, dist.uniform_only)
        })
}

fn build_nest(
    depth: usize,
    narrays: usize,
    refs: &[(usize, usize, i64, i64, bool)],
    extent: i64,
    gap: i64,
    uniform_only: bool,
) -> LoopNest {
    let names = ["i", "j", "k"];
    let mut b = NestBuilder::new();
    b.name("random");
    for name in names.iter().take(depth) {
        b.ct_loop(*name, 2, 2 + extent - 1);
    }
    let side = extent + 4;
    let mut ids = Vec::new();
    let mut cursor = 0i64;
    for a in 0..narrays {
        ids.push(b.array(format!("A{a}"), &[side, side], cursor));
        cursor += side * side + gap;
        cursor = (cursor + 15) & !15; // line-align (see cme-kernels::extra)
    }
    // Per-array fixed subscript pattern when uniform_only: the first
    // reference to each array decides the pattern for all.
    let mut pattern_of: Vec<Option<usize>> = vec![None; narrays];
    for &(sel, pat, ro, co, write) in refs {
        let ai = sel % narrays;
        let pat = if uniform_only {
            *pattern_of[ai].get_or_insert(pat)
        } else {
            pat
        };
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        // Choose two index names (row, col) from the available depth.
        let row = names[pat % depth];
        let col = names[(pat / 2 + 1) % depth];
        b.reference(ids[ai], kind, &[(row, ro), (col, co)]);
    }
    b.build().expect("generated nest is within the model")
}

/// Whether every pair of same-array references is uniformly generated —
/// the precondition for CME exactness (gauss/trans are the counterexamples).
pub fn is_uniform(nest: &LoopNest) -> bool {
    let refs = nest.references();
    refs.iter().enumerate().all(|(a, ra)| {
        refs.iter()
            .skip(a + 1)
            .all(|rb| ra.array() != rb.array() || nest.uniformly_generated(ra.id(), rb.id()))
    })
}

/// A random small cache: 256–1024 bytes, 1/2/4 ways, 16/32-byte lines,
/// 4-byte elements — small enough that random nests actually conflict.
pub fn arb_cache() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![Just(256i64), Just(512), Just(1024)],
        prop_oneof![Just(1i64), Just(2), Just(4)],
        prop_oneof![Just(16i64), Just(32)],
    )
        .prop_filter_map("geometry must be organizable", |(size, assoc, line)| {
            CacheConfig::new(size, assoc, line, 4).ok()
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn generated_nests_are_valid_and_nonempty(
            nest in arb_nest(NestDistribution::default())
        ) {
            prop_assert!(nest.access_count() > 0);
            prop_assert!(nest.depth() >= 2);
        }

        #[test]
        fn uniform_mode_yields_uniform_nests(
            nest in arb_nest(NestDistribution { uniform_only: true, ..NestDistribution::default() })
        ) {
            prop_assert!(is_uniform(&nest), "\n{}", nest);
        }

        #[test]
        fn caches_are_well_formed(cache in arb_cache()) {
            prop_assert!(cache.num_sets() >= 1);
            prop_assert!(cache.line_elems() >= 4);
        }
    }
}
