//! Random-case generation for the CME program model.
//!
//! Shared by the property-test suites and the `cme-diffcheck` fuzz
//! driver: random affine loop nests (within the paper's restrictions),
//! random cache geometries, and layout perturbations. All generation
//! bottoms out in the seeded [`CaseRng`] generators ([`random_nest`],
//! [`random_cache`]), so a proptest failure and a diffcheck
//! counterexample are both reproducible from a single `u64` seed and
//! every suite fuzzes the same (documented) distribution.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod rng;

pub use rng::CaseRng;

use cme_cache::CacheConfig;
use cme_ir::{AccessKind, LoopNest, NestBuilder};
use proptest::prelude::*;

/// Parameters of the random-nest distribution.
#[derive(Debug, Clone)]
pub struct NestDistribution {
    /// Range of loop extents per level (sampled independently per loop,
    /// so rectangular nests with non-power-of-two trip counts occur).
    pub extent: std::ops::Range<i64>,
    /// Maximum nest depth (2..=max, capped at 4).
    pub max_depth: usize,
    /// Maximum number of arrays.
    pub max_arrays: usize,
    /// Range of reference counts.
    pub refs: std::ops::Range<usize>,
    /// Force all same-array reference pairs to be uniformly generated
    /// (the regime where CME counts are exact). Offsets stay free —
    /// uniformity only constrains the linear part.
    pub uniform_only: bool,
    /// Maximum array rank (1..=max, capped at 3).
    pub max_rank: usize,
    /// Subscript offsets are drawn from `-max_offset..=max_offset`.
    pub max_offset: i64,
}

impl Default for NestDistribution {
    fn default() -> Self {
        NestDistribution {
            extent: 4..10,
            max_depth: 4,
            max_arrays: 3,
            refs: 2..6,
            uniform_only: false,
            max_rank: 3,
            max_offset: 2,
        }
    }
}

const INDEX_NAMES: [&str; 4] = ["i", "j", "k", "l"];

/// Generates one random loop nest from an explicit seed stream.
///
/// Depth 2..=4 with per-loop extents; arrays of rank 1..=3 laid out
/// back-to-back with a random, 16-element-aligned gap (so distinct
/// arrays never share a memory line at the geometries of
/// [`random_cache`]); subscripts are `index + offset` pairs over the
/// loop indices, with repeats allowed (diagonal access) and offsets up
/// to `max_offset`, so non-uniform same-array pairs occur unless
/// `uniform_only` pins the linear pattern per array.
pub fn random_nest(rng: &mut CaseRng, dist: &NestDistribution) -> LoopNest {
    let max_depth = dist.max_depth.clamp(2, INDEX_NAMES.len());
    let max_rank = dist.max_rank.clamp(1, 3);
    let max_offset = dist.max_offset.max(0);
    let depth = rng.range_usize(2, max_depth);
    let lo = 1 + max_offset; // keeps every subscript >= 1 (origin 1)

    let mut b = NestBuilder::new();
    b.name("random");
    let mut max_ext = dist.extent.start;
    for name in INDEX_NAMES.iter().take(depth) {
        let ext = rng.range(dist.extent.start, dist.extent.end - 1);
        max_ext = max_ext.max(ext);
        b.ct_loop(*name, lo, lo + ext - 1);
    }

    let narrays = rng.range_usize(1, dist.max_arrays.max(1));
    let side = max_ext + 2 * max_offset; // covers idx+off in 1..=side
    let mut ids = Vec::new();
    let mut ranks = Vec::new();
    let mut cursor = 0i64;
    for a in 0..narrays {
        let rank = rng.range_usize(1, max_rank);
        let dims = vec![side; rank];
        ids.push(b.array(format!("A{a}"), &dims, cursor));
        ranks.push(rank);
        cursor += side.pow(rank as u32) + rng.range(0, 7) * 16;
        cursor = (cursor + 15) & !15; // line-align (see cme-kernels::extra)
    }

    let nrefs = rng.range_usize(dist.refs.start.max(1), (dist.refs.end - 1).max(1));
    // Per-array fixed linear pattern when uniform_only: the first
    // reference to each array decides the index selectors for all.
    let mut pattern_of: Vec<Option<Vec<usize>>> = vec![None; narrays];
    for _ in 0..nrefs {
        let ai = rng.below(narrays as u64) as usize;
        let kind = if rng.next_bool() {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let sels: Vec<usize> = (0..ranks[ai])
            .map(|_| rng.below(depth as u64) as usize)
            .collect();
        let sels = if dist.uniform_only {
            pattern_of[ai].get_or_insert(sels).clone()
        } else {
            sels
        };
        let subs: Vec<(&str, i64)> = sels
            .iter()
            .map(|&l| (INDEX_NAMES[l], rng.range(-max_offset, max_offset)))
            .collect();
        b.reference(ids[ai], kind, &subs);
    }
    b.build().expect("generated nest is within the model")
}

/// Whether every pair of same-array references is uniformly generated —
/// the precondition for CME exactness (gauss/trans are the counterexamples).
pub fn is_uniform(nest: &LoopNest) -> bool {
    let refs = nest.references();
    refs.iter().enumerate().all(|(a, ra)| {
        refs.iter()
            .skip(a + 1)
            .all(|rb| ra.array() != rb.array() || nest.uniformly_generated(ra.id(), rb.id()))
    })
}

/// Generates one random cache geometry from an explicit seed stream:
/// 256–2048 bytes, k ∈ {1, 2, 4, 8, full}, 16/32-byte lines, 4-byte
/// elements — small enough that random nests actually conflict.
pub fn random_cache(rng: &mut CaseRng) -> CacheConfig {
    let size = *rng.choose(&[256i64, 512, 1024, 2048]);
    let line = *rng.choose(&[16i64, 32]);
    match rng.below(5) {
        0 => CacheConfig::fully_associative(size, line, 4),
        k => CacheConfig::new(size, 1 << (k - 1), line, 4),
    }
    .expect("every sampled geometry is organizable")
}

/// The kind of layout/transform parameter a parametric sweep ranges
/// over. This is `cme-testgen`'s own mirror of the engine's
/// `SweepParameter` (this crate sits below `cme-core` in the dependency
/// order); `cme-diffcheck` converts a [`SweepSpec`] into the engine's
/// request type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Shift one array's base address (elements).
    BaseSpacing,
    /// Insert padding (bytes) after one array, shifting everything above.
    PadBytes,
    /// Grow one rank-2 array's leading dimension (elements).
    LeadingDimension,
    /// Tile one loop level with the parameter as the tile size.
    TileSize,
}

impl ParamKind {
    /// The directive token used by the `.cme` corpus format.
    pub fn token(&self) -> &'static str {
        match self {
            ParamKind::BaseSpacing => "base-spacing",
            ParamKind::PadBytes => "pad-bytes",
            ParamKind::LeadingDimension => "leading-dimension",
            ParamKind::TileSize => "tile-size",
        }
    }

    /// Parses a directive token back into a kind.
    pub fn from_token(token: &str) -> Option<ParamKind> {
        match token {
            "base-spacing" => Some(ParamKind::BaseSpacing),
            "pad-bytes" => Some(ParamKind::PadBytes),
            "leading-dimension" => Some(ParamKind::LeadingDimension),
            "tile-size" => Some(ParamKind::TileSize),
            _ => None,
        }
    }
}

/// One generated parametric sweep: candidate `k ∈ 0..count` sets the
/// parameter to `start + k·step` (elements for spacings and leading
/// dimensions, bytes for pads, a tile size for tiling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSpec {
    /// The parameter kind.
    pub kind: ParamKind,
    /// Array index (layout kinds) or loop level (tile size) it targets.
    pub target: usize,
    /// Parameter value of candidate 0.
    pub start: i64,
    /// Number of candidates.
    pub count: usize,
    /// Increment between consecutive candidates.
    pub step: i64,
}

/// Generates one random sweep over `nest` on `cache`, from the same
/// seeded stream as [`random_nest`]. The step is drawn from divisors of
/// the cache's way span so the induced period over the step lattice
/// stays small (8–64 samples) — generated cases are meant to *fit*, so
/// the differential tier has closed forms to cross-validate.
pub fn random_sweep(rng: &mut CaseRng, nest: &LoopNest, cache: CacheConfig) -> SweepSpec {
    let way_span = (cache.size_bytes() / cache.assoc() / cache.elem_bytes()).max(8);
    let narrays = nest.arrays().len();
    let rank2: Vec<usize> = (0..narrays)
        .filter(|&a| nest.arrays()[a].rank() == 2)
        .collect();
    // Layout kinds dominate (they carry the geometric period guarantee);
    // leading-dimension only when a rank-2 array exists.
    let kind = match rng.below(4) {
        0 | 1 => ParamKind::BaseSpacing,
        2 => ParamKind::PadBytes,
        _ if !rank2.is_empty() => ParamKind::LeadingDimension,
        _ => ParamKind::BaseSpacing,
    };
    let target = match kind {
        ParamKind::LeadingDimension => rank2[rng.below(rank2.len() as u64) as usize],
        _ => rng.below(narrays as u64) as usize,
    };
    let period = *rng.choose(&[8i64, 16, 32]);
    let step = match kind {
        // Pad steps are in bytes; the way span in bytes is
        // `way_span * elem_bytes`, so scale the step accordingly.
        ParamKind::PadBytes => (way_span / period).max(1) * cache.elem_bytes(),
        _ => (way_span / period).max(1),
    };
    let start = match kind {
        ParamKind::LeadingDimension => nest.arrays()[target].column_size(),
        _ => 0,
    };
    SweepSpec {
        kind,
        target,
        start,
        count: 4 * period as usize,
        step,
    }
}

/// A random loop nest within the CME program model (see [`random_nest`]).
pub fn arb_nest(dist: NestDistribution) -> impl Strategy<Value = LoopNest> {
    (0u64..u64::MAX).prop_map(move |seed| random_nest(&mut CaseRng::new(seed), &dist))
}

/// A random small cache (see [`random_cache`]).
pub fn arb_cache() -> impl Strategy<Value = CacheConfig> {
    (0u64..u64::MAX).prop_map(|seed| random_cache(&mut CaseRng::new(seed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn generated_nests_are_valid_and_nonempty(
            nest in arb_nest(NestDistribution::default())
        ) {
            prop_assert!(nest.access_count() > 0);
            prop_assert!(nest.depth() >= 2);
        }

        #[test]
        fn uniform_mode_yields_uniform_nests(
            nest in arb_nest(NestDistribution { uniform_only: true, ..NestDistribution::default() })
        ) {
            prop_assert!(is_uniform(&nest), "\n{}", nest);
        }

        #[test]
        fn caches_are_well_formed(cache in arb_cache()) {
            prop_assert!(cache.num_sets() >= 1);
            prop_assert!(cache.line_elems() >= 4);
        }
    }

    #[test]
    fn sweeps_are_deterministic_and_well_formed() {
        let dist = NestDistribution::default();
        let mut kinds = std::collections::BTreeSet::new();
        for seed in 0..64 {
            let mut rng = CaseRng::new(seed);
            let nest = random_nest(&mut rng, &dist);
            let cache = random_cache(&mut rng);
            let a = random_sweep(&mut CaseRng::new(seed ^ 1), &nest, cache);
            let b = random_sweep(&mut CaseRng::new(seed ^ 1), &nest, cache);
            assert_eq!(a, b, "sweep generation must be seed-deterministic");
            assert!(a.count >= 32 && a.step >= 1);
            if a.kind == ParamKind::LeadingDimension {
                assert_eq!(nest.arrays()[a.target].rank(), 2);
                assert_eq!(a.start, nest.arrays()[a.target].column_size());
            } else {
                assert!(a.target < nest.arrays().len());
                assert_eq!(a.start, 0);
            }
            kinds.insert(a.kind.token());
            assert_eq!(ParamKind::from_token(a.kind.token()), Some(a.kind));
        }
        assert!(
            kinds.contains("base-spacing") && kinds.contains("pad-bytes"),
            "both dominant kinds must be reachable: {kinds:?}"
        );
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let dist = NestDistribution::default();
        for seed in 0..32 {
            let a = random_nest(&mut CaseRng::new(seed), &dist);
            let b = random_nest(&mut CaseRng::new(seed), &dist);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            let ca = random_cache(&mut CaseRng::new(seed));
            let cb = random_cache(&mut CaseRng::new(seed));
            assert_eq!(format!("{ca:?}"), format!("{cb:?}"));
        }
    }

    #[test]
    fn distribution_reaches_the_widened_regimes() {
        let dist = NestDistribution::default();
        let mut depth4 = false;
        let mut rank1 = false;
        let mut rank3 = false;
        let mut nonuniform = false;
        let mut full_assoc = false;
        let mut k8 = false;
        for seed in 0..400 {
            let mut rng = CaseRng::new(seed);
            let nest = random_nest(&mut rng, &dist);
            depth4 |= nest.depth() == 4;
            for r in nest.references() {
                rank1 |= r.subscripts().len() == 1;
                rank3 |= r.subscripts().len() == 3;
            }
            nonuniform |= !is_uniform(&nest);
            let cache = random_cache(&mut CaseRng::new(seed));
            full_assoc |= cache.assoc() == cache.size_bytes() / cache.line_bytes();
            k8 |= cache.assoc() == 8;
        }
        assert!(depth4, "depth-4 nests must be reachable");
        assert!(rank1 && rank3, "rank 1 and rank 3 arrays must be reachable");
        assert!(nonuniform, "non-uniform reference pairs must be reachable");
        assert!(
            full_assoc && k8,
            "k=8 and fully associative caches must be reachable"
        );
    }
}
