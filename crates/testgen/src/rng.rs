//! Seed-addressable randomness for case generation.
//!
//! The differential fuzz driver (`cme-diffcheck`) needs generation that is
//! (a) reproducible from a single `u64` printed in every report and
//! (b) independent of the property-test harness, so a corpus seed can be
//! replayed years later without proptest in the loop. [`CaseRng`] is a
//! tiny xorshift64* generator with an explicit seed; the proptest
//! strategies in this crate sample a seed and delegate to the same
//! seeded generators, so both entry points draw from one distribution.

/// Deterministic xorshift64* RNG with an explicit seed.
///
/// ```
/// use cme_testgen::CaseRng;
/// let mut a = CaseRng::new(42);
/// let mut b = CaseRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    /// Creates a generator from a seed. Any seed is legal (including 0);
    /// the seed is mixed through a splitmix64 step so nearby seeds give
    /// unrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        CaseRng { state: z.max(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `i64` in the inclusive range `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// Uniform `usize` in the inclusive range `lo..=hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform choice from a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut r = CaseRng::new(seed);
            (0..16).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
        assert_ne!(seq(0), seq(1), "seed 0 must still be a distinct stream");
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = CaseRng::new(99);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must be reachable");
    }
}
