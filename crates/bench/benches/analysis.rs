//! Criterion benches of the analysis pipeline (the Section 5.3 cost story:
//! "CME generation always executes in less than 10s per program").
// These benches time the uncached reference path (a one-shot session with
// memoization disabled); the memoized-engine comparison lives in
// `benches/engine.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cme_cache::{simulate_nest, CacheConfig};
use cme_core::{AnalysisOptions, Analyzer, CmeSystem, NestAnalysis};
use cme_ir::LoopNest;
use cme_kernels::{adi, gauss, mmult, sor, tom, trans};
use cme_reuse::{reuse_vectors, ReuseOptions};

fn table1_cache() -> CacheConfig {
    CacheConfig::new(8192, 1, 32, 4).unwrap()
}

/// One uncached analysis — the monolithic miss-finding pass, no memo tables.
fn baseline(nest: &LoopNest, cache: CacheConfig, options: &AnalysisOptions) -> NestAnalysis {
    Analyzer::new(cache)
        .options(options.clone())
        .caching(false)
        .analyze(nest)
}

/// Reuse-vector computation + symbolic equation generation per kernel
/// (compile-time cost in the paper's scenario — no solving involved).
fn bench_generation(c: &mut Criterion) {
    let cache = table1_cache();
    let mut g = c.benchmark_group("generate");
    for nest in [mmult(64), gauss(64), sor(64), adi(64), trans(64), tom(64)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(nest.name().to_string()),
            &nest,
            |b, nest| {
                b.iter(|| {
                    let sys = CmeSystem::generate(black_box(nest), cache, &ReuseOptions::default());
                    black_box(sys.equation_count())
                })
            },
        );
    }
    g.finish();
}

/// Reuse-vector analysis alone.
fn bench_reuse(c: &mut Criterion) {
    let cache = table1_cache();
    let mut g = c.benchmark_group("reuse-vectors");
    for nest in [mmult(64), sor(64)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(nest.name().to_string()),
            &nest,
            |b, nest| {
                b.iter(|| {
                    for r in nest.references() {
                        black_box(reuse_vectors(
                            nest,
                            &cache,
                            r.id(),
                            &ReuseOptions::default(),
                        ));
                    }
                })
            },
        );
    }
    g.finish();
}

/// The miss-finding algorithm (Figure 6) at a bench-friendly size.
fn bench_solve(c: &mut Criterion) {
    let cache = table1_cache();
    let mut g = c.benchmark_group("miss-finding");
    g.sample_size(10);
    for nest in [mmult(32), sor(64), adi(64), tom(64)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(nest.name().to_string()),
            &nest,
            |b, nest| b.iter(|| black_box(baseline(nest, cache, &AnalysisOptions::default()))),
        );
    }
    g.finish();
}

/// The trace-driven simulator baseline the CMEs replace.
fn bench_simulator(c: &mut Criterion) {
    let cache = table1_cache();
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    for nest in [mmult(32), sor(64), adi(64), tom(64)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(nest.name().to_string()),
            &nest,
            |b, nest| b.iter(|| black_box(simulate_nest(nest, cache))),
        );
    }
    g.finish();
}

/// Ablation: row-summarized window scanning vs the naive pointwise walk
/// (the DESIGN.md-called-out design choice behind the ~15x Table 1 speedup).
fn bench_window_scan_ablation(c: &mut Criterion) {
    let cache = table1_cache();
    let mut g = c.benchmark_group("window-scan-ablation");
    g.sample_size(10);
    let nest = mmult(32);
    g.bench_function("row-summarized", |b| {
        b.iter(|| black_box(baseline(&nest, cache, &AnalysisOptions::default())))
    });
    g.bench_function("pointwise", |b| {
        let opts = AnalysisOptions {
            pointwise_windows: true,
            ..AnalysisOptions::default()
        };
        b.iter(|| black_box(baseline(&nest, cache, &opts)))
    });
    g.finish();
}

/// Ablation: reuse-vector generation scope (basic vs extended vs group).
fn bench_reuse_scope_ablation(c: &mut Criterion) {
    let cache = table1_cache();
    let mut g = c.benchmark_group("reuse-scope-ablation");
    g.sample_size(10);
    let nest = mmult(32);
    for (label, group, extended) in [
        ("full", true, true),
        ("no-group", false, true),
        ("no-extended", true, false),
    ] {
        g.bench_function(label, |b| {
            let opts = AnalysisOptions {
                reuse: ReuseOptions {
                    group,
                    extended,
                    ..ReuseOptions::default()
                },
                ..AnalysisOptions::default()
            };
            b.iter(|| black_box(baseline(&nest, cache, &opts)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_reuse,
    bench_solve,
    bench_simulator,
    bench_window_scan_ablation,
    bench_reuse_scope_ablation
);
criterion_main!(benches);
