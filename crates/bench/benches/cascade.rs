//! Single-analysis benches for the run-compressed sliding-window cascade.
//!
//! Unlike `benches/engine.rs`, which measures memoized *re*-analysis
//! across an optimizer search, this bench times one full cold analysis of
//! the Table-1 matmul: the reference per-point solver (an uncached
//! session) against the engine's cascade (all-cold certificates +
//! run-compressed survivor sets + delta window scans), sequential and
//! sharded. Equivalence is asserted before timing, and a final check
//! enforces the ≥3× single-analysis speedup the cascade is built for.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cme_cache::CacheConfig;
use cme_core::{AnalysisOptions, Analyzer, Budget};

fn table1_cache() -> CacheConfig {
    CacheConfig::new(8192, 1, 32, 4).unwrap()
}

/// Table-1 matmul at a size where one analysis takes long enough to time
/// meaningfully but the whole bench stays in seconds.
fn matmul() -> cme_ir::LoopNest {
    let n = 64;
    cme_kernels::mmult_with_bases(n, 0, n * n, 2 * n * n)
}

fn bench_full_analysis(c: &mut Criterion) {
    let cache = table1_cache();
    let nest = matmul();
    let opts = AnalysisOptions::default();

    // Equivalence first: the cascade must reproduce the reference
    // implementation bit for bit before its speed means anything.
    let reference = Analyzer::new(cache)
        .options(opts.clone())
        .caching(false)
        .analyze(&nest);
    let mut cascade = Analyzer::new(cache).options(opts.clone());
    assert_eq!(
        reference,
        cascade.analyze(&nest),
        "cascade diverged from the reference implementation"
    );
    let mut sharded = Analyzer::new(cache)
        .options(opts.clone())
        .parallel(true)
        .threads(4);
    assert_eq!(
        reference,
        sharded.analyze(&nest),
        "sharded cascade diverged from the reference implementation"
    );
    // A never-tripping budget keeps the resource governor's accounting
    // live on every checkpoint; the result must still be bit-identical.
    let ample = Budget::unlimited().with_max_solves(u64::MAX / 2);
    let governed = Analyzer::new(cache)
        .options(opts.clone())
        .budget(ample)
        .try_analyze(&nest)
        .expect("an ample budget cannot fail");
    assert!(governed.outcome.is_complete());
    assert_eq!(
        reference, governed.analysis,
        "governed cascade diverged from the reference implementation"
    );

    let mut g = c.benchmark_group("full-analysis");
    g.sample_size(5);
    g.bench_function("cascade", |b| {
        b.iter(|| {
            // A fresh analyzer each iteration: this measures the cold
            // cascade, not the memo tables.
            let mut a = Analyzer::new(cache).options(opts.clone());
            black_box(a.analyze(&nest))
        })
    });
    g.bench_function("cascade-governed", |b| {
        // Same cold analysis, but with the governor's accounting active
        // (an ample solve budget that never trips). The overhead gate
        // below holds this within 2% of the ungoverned run.
        b.iter(|| {
            let mut a = Analyzer::new(cache).options(opts.clone()).budget(ample);
            black_box(a.try_analyze(&nest).expect("ample budget"))
        })
    });
    g.bench_function("cascade-sharded", |b| {
        b.iter(|| {
            let mut a = Analyzer::new(cache)
                .options(opts.clone())
                .parallel(true)
                .threads(4);
            black_box(a.analyze(&nest))
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            // Memoization off: a passthrough to the monolithic per-point
            // solver, the paper-faithful reference implementation.
            let mut a = Analyzer::new(cache).options(opts.clone()).caching(false);
            black_box(a.analyze(&nest))
        })
    });
    g.finish();
}

/// Reads the recorded means and enforces the acceptance bar: one cascade
/// analysis must be at least 3× faster than the reference per-point solver.
fn check_speedup(c: &mut Criterion) {
    let mean = |label: &str| {
        c.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| d.as_secs_f64())
    };
    let (Some(fast), Some(slow)) = (
        mean("full-analysis/cascade"),
        mean("full-analysis/reference"),
    ) else {
        return;
    };
    let ratio = slow / fast.max(1e-12);
    println!("full-analysis/cascade vs reference: {ratio:.1}x speedup");
    assert!(
        ratio >= 3.0,
        "the cascade must be >= 3x faster than the reference solver, got {ratio:.2}x"
    );
}

/// The resource governor's perf bar: with an ample (never-tripping)
/// budget keeping its accounting live, a cold analysis may cost at most
/// 2% over the ungoverned run.
fn check_governor_overhead(c: &mut Criterion) {
    let mean = |label: &str| {
        c.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| d.as_secs_f64())
    };
    let (Some(plain), Some(governed)) = (
        mean("full-analysis/cascade"),
        mean("full-analysis/cascade-governed"),
    ) else {
        return;
    };
    let overhead = governed / plain.max(1e-12) - 1.0;
    println!(
        "governor overhead (ample budget vs ungoverned): {:+.2}%",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.02,
        "governor checkpoints must cost <= 2%, measured {:+.2}%",
        overhead * 100.0
    );
}

criterion_group!(
    benches,
    bench_full_analysis,
    check_speedup,
    check_governor_overhead
);
criterion_main!(benches);
