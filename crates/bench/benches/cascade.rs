//! Single-analysis benches for the data-oriented sliding-window cascade.
//!
//! Unlike `benches/engine.rs`, which measures memoized *re*-analysis
//! across an optimizer search, this bench times one full cold analysis of
//! the Table-1 matmul: the reference per-point solver (an uncached
//! session) against the engine's cascade (all-cold certificates +
//! adaptive survivor sets + word-parallel delta window scans), sequential
//! and sharded. Equivalence is asserted before timing; the final checks
//! enforce the ≥3× bar at N=64, the ≥10× bar at N=96, the parallel win
//! (par strictly under seq, when the host has ≥4 cores), and the ≤2%
//! governor-overhead bar.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cme_cache::CacheConfig;
use cme_core::{AnalysisOptions, Analyzer, Budget};

fn table1_cache() -> CacheConfig {
    CacheConfig::new(8192, 1, 32, 4).unwrap()
}

/// Table-1 matmul at a size where one analysis takes long enough to time
/// meaningfully but the whole bench stays in seconds.
fn matmul_n(n: i64) -> cme_ir::LoopNest {
    cme_kernels::mmult_with_bases(n, 0, n * n, 2 * n * n)
}

fn matmul() -> cme_ir::LoopNest {
    matmul_n(64)
}

fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn bench_full_analysis(c: &mut Criterion) {
    let cache = table1_cache();
    let nest = matmul();
    let opts = AnalysisOptions::default();

    // Equivalence first: the cascade must reproduce the reference
    // implementation bit for bit before its speed means anything.
    let reference = Analyzer::new(cache)
        .options(opts.clone())
        .caching(false)
        .analyze(&nest);
    let mut cascade = Analyzer::new(cache).options(opts.clone());
    assert_eq!(
        reference,
        cascade.analyze(&nest),
        "cascade diverged from the reference implementation"
    );
    let mut sharded = Analyzer::new(cache)
        .options(opts.clone())
        .parallel(true)
        .threads(4);
    assert_eq!(
        reference,
        sharded.analyze(&nest),
        "sharded cascade diverged from the reference implementation"
    );
    // A never-tripping budget keeps the resource governor's accounting
    // live on every checkpoint; the result must still be bit-identical.
    let ample = Budget::unlimited().with_max_solves(u64::MAX / 2);
    let governed = Analyzer::new(cache)
        .options(opts.clone())
        .budget(ample)
        .try_analyze(&nest)
        .expect("an ample budget cannot fail");
    assert!(governed.outcome.is_complete());
    assert_eq!(
        reference, governed.analysis,
        "governed cascade diverged from the reference implementation"
    );

    let mut g = c.benchmark_group("full-analysis");
    g.sample_size(5);
    g.bench_function("cascade", |b| {
        b.iter(|| {
            // A fresh analyzer each iteration: this measures the cold
            // cascade, not the memo tables.
            let mut a = Analyzer::new(cache).options(opts.clone());
            black_box(a.analyze(&nest))
        })
    });
    g.bench_function("cascade-governed", |b| {
        // Same cold analysis, but with the governor's accounting active
        // (an ample solve budget that never trips). The overhead gate
        // below holds this within 2% of the ungoverned run.
        b.iter(|| {
            let mut a = Analyzer::new(cache).options(opts.clone()).budget(ample);
            black_box(a.try_analyze(&nest).expect("ample budget"))
        })
    });
    g.bench_function("cascade-sharded", |b| {
        b.iter(|| {
            let mut a = Analyzer::new(cache)
                .options(opts.clone())
                .parallel(true)
                .threads(4);
            black_box(a.analyze(&nest))
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            // Memoization off: a passthrough to the monolithic per-point
            // solver, the paper-faithful reference implementation.
            let mut a = Analyzer::new(cache).options(opts.clone()).caching(false);
            black_box(a.analyze(&nest))
        })
    });
    g.finish();
}

/// N=96 tier: the size where the ≥10× bar and the seq-vs-par comparison
/// are measured (N=64 analyses finish too fast for a stable par margin).
fn bench_table1_n96(c: &mut Criterion) {
    let cache = table1_cache();
    let nest = matmul_n(96);
    let opts = AnalysisOptions::default();
    let threads = host_threads().max(4);

    // Bit-identity of sequential and sharded cascades against the
    // reference, at full budget, before any timing.
    let reference = Analyzer::new(cache)
        .options(opts.clone())
        .caching(false)
        .analyze(&nest);
    assert_eq!(
        reference,
        Analyzer::new(cache).options(opts.clone()).analyze(&nest),
        "sequential cascade diverged at N=96"
    );
    assert_eq!(
        reference,
        Analyzer::new(cache)
            .options(opts.clone())
            .parallel(true)
            .threads(threads)
            .analyze(&nest),
        "sharded cascade diverged at N=96"
    );

    let mut g = c.benchmark_group("table1-n96");
    g.sample_size(3);
    g.bench_function("cascade-seq", |b| {
        b.iter(|| {
            let mut a = Analyzer::new(cache).options(opts.clone());
            black_box(a.analyze(&nest))
        })
    });
    g.bench_function("cascade-par", |b| {
        b.iter(|| {
            let mut a = Analyzer::new(cache)
                .options(opts.clone())
                .parallel(true)
                .threads(threads);
            black_box(a.analyze(&nest))
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            let mut a = Analyzer::new(cache).options(opts.clone()).caching(false);
            black_box(a.analyze(&nest))
        })
    });
    g.finish();
}

/// Reads the recorded means and enforces the acceptance bar: one cascade
/// analysis must be at least 3× faster than the reference per-point solver.
fn check_speedup(c: &mut Criterion) {
    let mean = |label: &str| {
        c.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| d.as_secs_f64())
    };
    let (Some(fast), Some(slow)) = (
        mean("full-analysis/cascade"),
        mean("full-analysis/reference"),
    ) else {
        return;
    };
    let ratio = slow / fast.max(1e-12);
    println!("full-analysis/cascade vs reference: {ratio:.1}x speedup");
    assert!(
        ratio >= 3.0,
        "the cascade must be >= 3x faster than the reference solver, got {ratio:.2}x"
    );
}

/// The data-oriented scan core's bar: ≥10× over the reference per-point
/// solver on the Table-1 matmul at N=96 (measured 11–12× on the dev
/// machine; the margin absorbs scheduler noise).
fn check_speedup_n96(c: &mut Criterion) {
    let mean = |label: &str| {
        c.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| d.as_secs_f64())
    };
    let (Some(fast), Some(slow)) = (mean("table1-n96/cascade-seq"), mean("table1-n96/reference"))
    else {
        return;
    };
    let ratio = slow / fast.max(1e-12);
    println!("table1-n96/cascade-seq vs reference: {ratio:.1}x speedup");
    assert!(
        ratio >= 10.0,
        "the cascade must be >= 10x faster than the reference solver at N=96, got {ratio:.2}x"
    );
}

/// The parallel win: with ≥4 hardware threads, the sharded cascade must
/// strictly beat the sequential one at N=96. On smaller hosts the
/// comparison is meaningless (the \"parallel\" run just pays pool
/// overhead), so the gate reports and skips.
fn check_par_beats_seq(c: &mut Criterion) {
    let mean = |label: &str| {
        c.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| d.as_secs_f64())
    };
    let (Some(seq), Some(par)) = (
        mean("table1-n96/cascade-seq"),
        mean("table1-n96/cascade-par"),
    ) else {
        return;
    };
    println!(
        "table1-n96 seq {seq:.3}s vs par {par:.3}s ({} hardware threads)",
        host_threads()
    );
    if host_threads() < 4 {
        println!("  par-beats-seq gate skipped: needs >= 4 hardware threads");
        return;
    }
    assert!(
        par < seq,
        "the sharded cascade must beat the sequential one on a >=4-core host: \
         par {par:.3}s vs seq {seq:.3}s"
    );
}

/// The resource governor's perf bar: with an ample (never-tripping)
/// budget keeping its accounting live, a cold analysis may cost at most
/// 2% over the ungoverned run.
fn check_governor_overhead(c: &mut Criterion) {
    let mean = |label: &str| {
        c.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| d.as_secs_f64())
    };
    let (Some(plain), Some(governed)) = (
        mean("full-analysis/cascade"),
        mean("full-analysis/cascade-governed"),
    ) else {
        return;
    };
    let overhead = governed / plain.max(1e-12) - 1.0;
    println!(
        "governor overhead (ample budget vs ungoverned): {:+.2}%",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.02,
        "governor checkpoints must cost <= 2%, measured {:+.2}%",
        overhead * 100.0
    );
}

criterion_group!(
    benches,
    bench_full_analysis,
    bench_table1_n96,
    check_speedup,
    check_speedup_n96,
    check_par_beats_seq,
    check_governor_overhead
);
criterion_main!(benches);
