//! Engine-vs-legacy benches for the optimizer searches.
//!
//! Both sides run the *same* search code (`optimize_padding_with`,
//! `select_tile_and_layout_with`); the only difference is the `Analyzer`'s
//! caching switch. With caching off every candidate layout is re-analyzed
//! from scratch through the legacy per-reference solver — the pre-engine
//! cost model. With caching on, candidates that only move base addresses
//! or restride one array re-solve from the engine's memo tables. Each
//! bench first proves the two paths produce bit-identical transformations
//! and miss counts, then times them; a final check asserts the ≥2× engine
//! speedup on the Table-1 matmul configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cme_cache::CacheConfig;
use cme_core::Analyzer;
use cme_opt::{optimize_padding_with, select_tile_and_layout_with};

fn table1_cache() -> CacheConfig {
    CacheConfig::new(8192, 1, 32, 4).unwrap()
}

/// A conflict-ridden Table-1 matmul: N = 32 packed arrays overflow the 8KB
/// cache (3·32²·4B = 12KB), so replacement misses exist and the padding
/// search actually has to search.
fn matmul() -> cme_ir::LoopNest {
    let n = 32;
    cme_kernels::mmult_with_bases(n, 0, n * n, 2 * n * n)
}

fn bench_padding_search(c: &mut Criterion) {
    let cache = table1_cache();
    let nest = matmul();

    // Equivalence first: the memoized search must land on the same layout
    // with the same counts as the per-candidate legacy path.
    let mut engine = Analyzer::new(cache);
    let mut legacy = Analyzer::new(cache).caching(false);
    let (nest_e, out_e) = optimize_padding_with(&mut engine, &nest);
    let (nest_l, out_l) = optimize_padding_with(&mut legacy, &nest);
    assert_eq!(nest_e, nest_l, "padding: engine and legacy layouts differ");
    assert_eq!(out_e.method, out_l.method);
    assert_eq!(out_e.total_before, out_l.total_before);
    assert_eq!(out_e.total_after, out_l.total_after);
    assert_eq!(out_e.replacement_before, out_l.replacement_before);
    assert_eq!(out_e.replacement_after, out_l.replacement_after);
    assert!(
        engine.stats().memo_hit_rate() > 0.0,
        "the padding search must hit the memo tables"
    );
    println!("padding search: {out_e}\n{}\n", engine.stats());

    let mut g = c.benchmark_group("optimize-padding");
    g.sample_size(3);
    g.bench_function("engine", |b| {
        b.iter(|| black_box(optimize_padding_with(&mut engine, &nest)))
    });
    g.bench_function("legacy", |b| {
        b.iter(|| black_box(optimize_padding_with(&mut legacy, &nest)))
    });
    g.finish();
}

fn bench_tile_search(c: &mut Criterion) {
    let cache = table1_cache();
    let nest = matmul();
    let n = 32;

    let mut engine = Analyzer::new(cache);
    let mut legacy = Analyzer::new(cache).caching(false);
    let pick_e = select_tile_and_layout_with(&mut engine, &nest, 1, 2, n, n)
        .expect("tiling applies to matmul");
    let pick_l = select_tile_and_layout_with(&mut legacy, &nest, 1, 2, n, n)
        .expect("tiling applies to matmul");
    assert_eq!(pick_e, pick_l, "tiling: engine and legacy choices differ");

    let mut g = c.benchmark_group("select-tile-and-layout");
    g.sample_size(3);
    g.bench_function("engine", |b| {
        b.iter(|| black_box(select_tile_and_layout_with(&mut engine, &nest, 1, 2, n, n)))
    });
    g.bench_function("legacy", |b| {
        b.iter(|| black_box(select_tile_and_layout_with(&mut legacy, &nest, 1, 2, n, n)))
    });
    g.finish();
}

/// Reads the recorded means and enforces the acceptance bar: the engine
/// path must be at least 2× faster than per-candidate legacy analysis.
fn check_speedup(c: &mut Criterion) {
    for pair in [
        ("optimize-padding/engine", "optimize-padding/legacy"),
        (
            "select-tile-and-layout/engine",
            "select-tile-and-layout/legacy",
        ),
    ] {
        let mean = |label: &str| {
            c.results
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, d)| d.as_secs_f64())
        };
        let (Some(e), Some(l)) = (mean(pair.0), mean(pair.1)) else {
            continue;
        };
        let ratio = l / e.max(1e-12);
        println!("{} vs {}: {ratio:.1}x speedup", pair.0, pair.1);
        assert!(
            ratio >= 2.0,
            "{} must be >= 2x faster than {}, got {ratio:.2}x",
            pair.0,
            pair.1
        );
    }
}

criterion_group!(
    benches,
    bench_padding_search,
    bench_tile_search,
    check_speedup
);
criterion_main!(benches);
