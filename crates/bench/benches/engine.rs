//! Engine-vs-reference benches for the optimizer searches, plus the
//! batch-vs-loop bench for `analyze_batch`.
//!
//! Both search benches run the *same* search code (`optimize_padding_with`,
//! `select_tile_and_layout_with`); the only difference is the `Analyzer`'s
//! caching switch. With caching off every candidate layout is re-analyzed
//! from scratch through the reference per-reference solver — the
//! pre-engine cost model. With caching on, candidates that only move base
//! addresses or restride one array re-solve from the engine's memo tables.
//! Each bench first proves the two paths produce bit-identical
//! transformations and miss counts, then times them; a final check asserts
//! the ≥2× engine speedup on the Table-1 matmul configuration and the
//! ≥1.5× batch speedup over a sequential per-nest loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use cme_cache::CacheConfig;
use cme_core::{Analyzer, ArtifactStore};
use cme_opt::{optimize_padding_with, select_tile_and_layout_with};

fn table1_cache() -> CacheConfig {
    CacheConfig::new(8192, 1, 32, 4).unwrap()
}

/// A conflict-ridden Table-1 matmul: N = 32 packed arrays overflow the 8KB
/// cache (3·32²·4B = 12KB), so replacement misses exist and the padding
/// search actually has to search.
fn matmul() -> cme_ir::LoopNest {
    let n = 32;
    cme_kernels::mmult_with_bases(n, 0, n * n, 2 * n * n)
}

fn bench_padding_search(c: &mut Criterion) {
    let cache = table1_cache();
    let nest = matmul();

    // Equivalence first: the memoized search must land on the same layout
    // with the same counts as the per-candidate reference path.
    let mut engine = Analyzer::new(cache);
    let mut reference = Analyzer::new(cache).caching(false);
    let (nest_e, out_e) = optimize_padding_with(&mut engine, &nest);
    let (nest_r, out_r) = optimize_padding_with(&mut reference, &nest);
    assert_eq!(
        nest_e, nest_r,
        "padding: engine and reference layouts differ"
    );
    assert_eq!(out_e.method, out_r.method);
    assert_eq!(out_e.total_before, out_r.total_before);
    assert_eq!(out_e.total_after, out_r.total_after);
    assert_eq!(out_e.replacement_before, out_r.replacement_before);
    assert_eq!(out_e.replacement_after, out_r.replacement_after);
    assert!(
        engine.stats().memo_hit_rate() > 0.0,
        "the padding search must hit the memo tables"
    );
    println!("padding search: {out_e}\n{}\n", engine.stats());

    let mut g = c.benchmark_group("optimize-padding");
    g.sample_size(3);
    g.bench_function("engine", |b| {
        b.iter(|| black_box(optimize_padding_with(&mut engine, &nest)))
    });
    g.bench_function("reference", |b| {
        b.iter(|| black_box(optimize_padding_with(&mut reference, &nest)))
    });
    g.finish();
}

fn bench_tile_search(c: &mut Criterion) {
    let cache = table1_cache();
    let nest = matmul();
    let n = 32;

    let mut engine = Analyzer::new(cache);
    let mut reference = Analyzer::new(cache).caching(false);
    let pick_e = select_tile_and_layout_with(&mut engine, &nest, 1, 2, n, n)
        .expect("tiling applies to matmul");
    let pick_r = select_tile_and_layout_with(&mut reference, &nest, 1, 2, n, n)
        .expect("tiling applies to matmul");
    assert_eq!(
        pick_e, pick_r,
        "tiling: engine and reference choices differ"
    );

    let mut g = c.benchmark_group("select-tile-and-layout");
    g.sample_size(3);
    g.bench_function("engine", |b| {
        b.iter(|| black_box(select_tile_and_layout_with(&mut engine, &nest, 1, 2, n, n)))
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            black_box(select_tile_and_layout_with(
                &mut reference,
                &nest,
                1,
                2,
                n,
                n,
            ))
        })
    });
    g.finish();
}

/// Translates every array of a nest by `lines` whole cache lines — the
/// candidate class a converged base-address sweep enumerates.
fn translate_layout(nest: &cme_ir::LoopNest, cache: &CacheConfig, lines: i64) -> cme_ir::LoopNest {
    let mut out = nest.clone();
    let mut seen = Vec::new();
    for r in nest.references() {
        let id = r.array();
        if seen.contains(&id) {
            continue;
        }
        seen.push(id);
        let base = out.array(id).base();
        out.array_mut(id)
            .set_base(base + lines * cache.line_elems());
    }
    out
}

/// Batch multi-nest analysis vs a sequential per-nest loop, on the
/// workload `analyze_batch` exists for: every Table-1 kernel at several
/// candidate layouts (line-aligned translations, the base-sweep candidate
/// class). The loop re-enters the engine one nest at a time with a
/// one-shot session per candidate — the pre-batch pattern of the diffcheck
/// corpus replay and externally-driven searches — so every candidate pays
/// cold stages. The batched session analyzes the same candidates in one
/// call, sharing memo tables (layout siblings reuse their reuse vectors,
/// solve sets, and scans) and one worker pool across the whole batch.
fn bench_batch_vs_loop(c: &mut Criterion) {
    let cache = table1_cache();
    let n = 32;
    let candidates: Vec<_> = cme_kernels::table1_suite(n)
        .iter()
        .flat_map(|nest| (0..4).map(|v| translate_layout(nest, &cache, v)))
        .collect();
    let threads = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .min(8);

    // Equivalence first: the batch must be bit-identical to per-nest runs.
    let solo: Vec<_> = candidates
        .iter()
        .map(|nest| Analyzer::new(cache).analyze(nest))
        .collect();
    let mut batched = Analyzer::new(cache).threads(threads);
    let ids: Vec<_> = candidates.iter().map(|nest| batched.intern(nest)).collect();
    assert_eq!(
        batched.analyze_batch(&ids),
        solo,
        "batched analyses diverged from per-nest sessions"
    );

    let mut g = c.benchmark_group("table1-layout-sweep");
    g.sample_size(5);
    g.bench_function("per-nest-loop", |b| {
        b.iter(|| {
            // One-shot session per candidate: cold per-nest analysis, one
            // nest at a time.
            for nest in &candidates {
                black_box(Analyzer::new(cache).analyze(nest));
            }
        })
    });
    g.bench_function("batch", |b| {
        b.iter(|| {
            // A fresh batched session each iteration: the same candidates,
            // but all stages share one pool and one set of memo tables.
            let mut a = Analyzer::new(cache).threads(threads);
            let ids: Vec<_> = candidates.iter().map(|nest| a.intern(nest)).collect();
            black_box(a.analyze_batch(&ids))
        })
    });
    g.finish();
}

/// Cold-vs-warm persistent-store replay of the Table-1 suite: the cold
/// pass starts from an empty store directory (every nest recomputes and
/// writes through), the warm pass replays the same suite through fresh
/// sessions against the populated store (every nest answers from disk
/// before any pipeline stage runs) — the `cme-serve` restart scenario.
fn bench_store_replay(c: &mut Criterion) {
    let cache = table1_cache();
    let suite = cme_kernels::table1_suite(32);
    let dir = std::env::temp_dir().join(format!("cme-bench-store-{}", std::process::id()));

    // Equivalence first: a warm store-served replay must be bit-identical
    // to storeless analysis.
    std::fs::remove_dir_all(&dir).ok();
    let plain: Vec<_> = suite
        .iter()
        .map(|nest| Analyzer::new(cache).analyze(nest))
        .collect();
    {
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let mut writer = Analyzer::new(cache).store(Arc::clone(&store));
        for nest in &suite {
            writer.analyze(nest);
        }
        let mut warm = Analyzer::new(cache).store(store);
        let served: Vec<_> = suite.iter().map(|nest| warm.analyze(nest)).collect();
        assert_eq!(served, plain, "store-served counts diverged");
        assert_eq!(
            warm.stats().store_hits,
            suite.len() as u64,
            "the warm replay must answer every nest from the store"
        );
    }

    let mut g = c.benchmark_group("table1-store-replay");
    g.sample_size(5);
    g.bench_function("cold-start", |b| {
        b.iter(|| {
            // Empty store: recompute everything, write everything through.
            std::fs::remove_dir_all(&dir).ok();
            let store = Arc::new(ArtifactStore::open(&dir).unwrap());
            let mut a = Analyzer::new(cache).store(store);
            for nest in &suite {
                black_box(a.analyze(nest));
            }
        })
    });
    // Repopulate once so the warm rows always start from a full store.
    {
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let mut a = Analyzer::new(cache).store(store);
        for nest in &suite {
            a.analyze(nest);
        }
    }
    g.bench_function("warm-start", |b| {
        b.iter(|| {
            // A fresh session (cold memo tables) against the populated
            // store: every artifact is served from disk.
            let store = Arc::new(ArtifactStore::open(&dir).unwrap());
            let mut a = Analyzer::new(cache).store(store);
            for nest in &suite {
                black_box(a.analyze(nest));
            }
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Closed-form parametric sweep vs exhaustive enumeration (Section
/// 5.1.3): a 4096-candidate Table-1 padding sweep answered by sampling a
/// bounded window (≤ 3 set-mapping periods), fitting a certified
/// quasi-polynomial, and minimizing it analytically — against brute force
/// over every candidate in one batched session. Equivalence first: the
/// analytic optimum must be bit-identical to the exhaustive argmin.
fn bench_closed_form_sweep(c: &mut Criterion) {
    let cache = table1_cache();
    // N = 16 keeps the exhaustive side affordable in CI; the candidate
    // range stays at the full 4096 padding values (four lines per step,
    // so the set-mapping period on the step lattice is 64 candidates and
    // the sample window stays well inside 3 periods).
    let n = 16;
    let nest = cme_kernels::mmult_with_bases(n, 0, n * n, 2 * n * n);
    let request = cme_core::SweepRequest::new(
        cme_core::SweepParameter::PadBytes {
            after: cme_ir::ArrayId::from_index(0),
        },
        0,
        4096,
        4 * cache.line_bytes(),
    );

    let exhaustive = |nest: &cme_ir::LoopNest| {
        let mut a = Analyzer::new(cache);
        let ids: Vec<_> = (0..request.count)
            .map(|k| {
                let candidate = request
                    .parameter
                    .apply(nest, &cache, request.value_at(k))
                    .expect("padding is always feasible");
                a.intern(&candidate)
            })
            .collect();
        a.analyze_batch(&ids)
            .iter()
            .map(|r| r.total_misses())
            .enumerate()
            .min_by_key(|&(k, m)| (m, k))
            .expect("non-empty range")
    };

    let result = Analyzer::new(cache)
        .sweep(&nest, &request)
        .expect("sweeps never error");
    assert!(
        result.function.is_some() && result.certificate.is_some(),
        "the table-1 padding sweep must fit a certified closed form"
    );
    assert!(
        result.evaluations * 3 <= result.candidates * 2,
        "the closed form must be answered from a bounded sample window \
         ({} of {} analyses)",
        result.evaluations,
        result.candidates
    );
    let (ex_k, ex_misses) = exhaustive(&nest);
    assert_eq!(
        (result.best_k, result.best_misses),
        (ex_k, ex_misses),
        "closed-form optimum diverged from exhaustive enumeration"
    );
    println!("closed-form sweep: {result}");

    let mut g = c.benchmark_group("table1-padding-sweep");
    g.sample_size(2);
    g.bench_function("closed-form", |b| {
        b.iter(|| {
            // A fresh session each iteration: cold memo, full sample +
            // fit + analytic minimization.
            black_box(Analyzer::new(cache).sweep(&nest, &request).unwrap())
        })
    });
    g.bench_function("exhaustive", |b| b.iter(|| black_box(exhaustive(&nest))));
    g.finish();
}

/// The sweep engine's acceptance bar: the closed-form answer over the
/// 4096-candidate padding range must be at least 5× faster than
/// exhaustive enumeration.
fn check_sweep_speedup(c: &mut Criterion) {
    let mean = |label: &str| {
        c.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| d.as_secs_f64())
    };
    let (Some(closed), Some(exhaustive)) = (
        mean("table1-padding-sweep/closed-form"),
        mean("table1-padding-sweep/exhaustive"),
    ) else {
        return;
    };
    let ratio = exhaustive / closed.max(1e-12);
    println!("table1-padding-sweep/closed-form vs exhaustive: {ratio:.1}x speedup");
    assert!(
        ratio >= 5.0,
        "closed-form sweeps must be >= 5x faster than exhaustive \
         enumeration, got {ratio:.2}x"
    );
}

/// The store's acceptance bar: warm-start replay of the Table-1 suite
/// must be at least 3× faster than the cold start.
fn check_store_speedup(c: &mut Criterion) {
    let mean = |label: &str| {
        c.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| d.as_secs_f64())
    };
    let (Some(warm), Some(cold)) = (
        mean("table1-store-replay/warm-start"),
        mean("table1-store-replay/cold-start"),
    ) else {
        return;
    };
    let ratio = cold / warm.max(1e-12);
    println!("table1-store-replay/warm-start vs cold-start: {ratio:.1}x speedup");
    assert!(
        ratio >= 3.0,
        "warm-start store replay must be >= 3x faster than cold start, got {ratio:.2}x"
    );
}

/// The batch API's acceptance bar: analyzing the Table-1 layout sweep in
/// one batched session must be at least 1.5× faster than the sequential
/// per-nest loop.
fn check_batch_speedup(c: &mut Criterion) {
    let mean = |label: &str| {
        c.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| d.as_secs_f64())
    };
    let (Some(batch), Some(looped)) = (
        mean("table1-layout-sweep/batch"),
        mean("table1-layout-sweep/per-nest-loop"),
    ) else {
        return;
    };
    let ratio = looped / batch.max(1e-12);
    println!("table1-layout-sweep/batch vs per-nest-loop: {ratio:.1}x speedup");
    assert!(
        ratio >= 1.5,
        "analyze_batch must be >= 1.5x faster than a per-nest loop, got {ratio:.2}x"
    );
}

/// Reads the recorded means and enforces the acceptance bar: the engine
/// path must be at least 2× faster than per-candidate reference analysis.
fn check_speedup(c: &mut Criterion) {
    for pair in [
        ("optimize-padding/engine", "optimize-padding/reference"),
        (
            "select-tile-and-layout/engine",
            "select-tile-and-layout/reference",
        ),
    ] {
        let mean = |label: &str| {
            c.results
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, d)| d.as_secs_f64())
        };
        let (Some(e), Some(l)) = (mean(pair.0), mean(pair.1)) else {
            continue;
        };
        let ratio = l / e.max(1e-12);
        println!("{} vs {}: {ratio:.1}x speedup", pair.0, pair.1);
        assert!(
            ratio >= 2.0,
            "{} must be >= 2x faster than {}, got {ratio:.2}x",
            pair.0,
            pair.1
        );
    }
}

criterion_group!(
    benches,
    bench_padding_search,
    bench_tile_search,
    bench_batch_vs_loop,
    bench_closed_form_sweep,
    bench_store_replay,
    check_speedup,
    check_batch_speedup,
    check_sweep_speedup,
    check_store_speedup
);
criterion_main!(benches);
