//! Common experiment scaffolding.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper, and they all share the same knobs: a cache geometry
//! (`--size/--assoc/--line`, defaulting to the paper's Table-1 cache), a
//! problem size (`--n`), and a kernel picked from the registry by name.
//! [`BenchArgs`] parses those once so the binaries hold only their
//! experiment logic.

use cme_cache::{CacheConfig, CacheConfigError};
use cme_ir::LoopNest;

/// The paper's Table 1 cache: 8KB direct-mapped, 32B lines, 4B elements.
pub fn table1_cache() -> CacheConfig {
    CacheConfig::new(8192, 1, 32, 4).expect("valid table-1 geometry")
}

/// The same geometry at a different associativity (sets shrink accordingly).
pub fn cache_with_assoc(assoc: i64) -> Result<CacheConfig, CacheConfigError> {
    CacheConfig::new(8192, assoc, 32, 4)
}

/// Parses `--assoc <k>` and `--n <size>` style overrides from argv.
pub fn arg_value(args: &[String], key: &str) -> Option<i64> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Command-line arguments of an experiment binary, with the conventions
/// shared by all of them baked in.
pub struct BenchArgs {
    args: Vec<String>,
}

impl BenchArgs {
    /// Captures the process arguments.
    pub fn from_env() -> Self {
        Self {
            args: std::env::args().collect(),
        }
    }

    /// The raw argument vector (element 0 is the binary name).
    pub fn raw(&self) -> &[String] {
        &self.args
    }

    /// The `i`-th positional argument (0 = the first after the binary
    /// name), skipping nothing — binaries with subcommands index past them.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.args.get(i + 1).map(String::as_str)
    }

    /// True when the bare flag `key` is present (e.g. `--stats`).
    pub fn flag(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    /// The integer value following `key`, if present and parsable.
    pub fn value(&self, key: &str) -> Option<i64> {
        arg_value(&self.args, key)
    }

    /// The integer value following `key`, or `default`.
    pub fn value_or(&self, key: &str, default: i64) -> i64 {
        self.value(key).unwrap_or(default)
    }

    /// The string value following `key`, if present.
    pub fn value_str(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// The problem size `--n`, or `default`.
    pub fn n(&self, default: i64) -> i64 {
        self.value_or("--n", default)
    }

    /// The cache geometry from `--size/--assoc/--line` (bytes, ways,
    /// bytes), defaulting to the paper's Table-1 cache. Exits with a
    /// diagnostic on an invalid combination.
    pub fn cache(&self) -> CacheConfig {
        self.cache_with(8192, 1, 32)
    }

    /// Like [`BenchArgs::cache`] but with experiment-specific defaults.
    pub fn cache_with(&self, size: i64, assoc: i64, line: i64) -> CacheConfig {
        let size = self.value_or("--size", size);
        let assoc = self.value_or("--assoc", assoc);
        let line = self.value_or("--line", line);
        CacheConfig::new(size, assoc, line, 4).unwrap_or_else(|e| {
            eprintln!("bad cache geometry: {e}");
            std::process::exit(2);
        })
    }
}

/// Resolves a kernel from the registry by name at problem size `n`,
/// exiting with the list of known kernels when the name is unknown.
pub fn resolve_kernel(name: &str, n: i64) -> LoopNest {
    cme_kernels::kernel_by_name(name, n).unwrap_or_else(|| {
        eprintln!(
            "unknown kernel `{name}`; known: {}",
            cme_kernels::kernel_names().join(", ")
        );
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> BenchArgs {
        BenchArgs {
            args: std::iter::once("bin")
                .chain(v.iter().copied())
                .map(String::from)
                .collect(),
        }
    }

    #[test]
    fn values_and_flags_parse() {
        let a = args(&["analyze", "mmult", "--n", "48", "--stats"]);
        assert_eq!(a.positional(0), Some("analyze"));
        assert_eq!(a.positional(1), Some("mmult"));
        assert_eq!(a.n(64), 48);
        assert!(a.flag("--stats"));
        assert!(!a.flag("--quiet"));
        assert_eq!(a.value("--missing"), None);
    }

    #[test]
    fn cache_defaults_to_table1() {
        assert_eq!(args(&[]).cache(), table1_cache());
        let c = args(&["--assoc", "4", "--size", "16384"]).cache();
        assert_eq!(c.assoc(), 4);
        assert_eq!(c.size_bytes(), 16384);
    }
}
