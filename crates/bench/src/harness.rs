//! Common experiment scaffolding.

use cme_cache::{CacheConfig, CacheConfigError};

/// The paper's Table 1 cache: 8KB direct-mapped, 32B lines, 4B elements.
pub fn table1_cache() -> CacheConfig {
    CacheConfig::new(8192, 1, 32, 4).expect("valid table-1 geometry")
}

/// The same geometry at a different associativity (sets shrink accordingly).
pub fn cache_with_assoc(assoc: i64) -> Result<CacheConfig, CacheConfigError> {
    CacheConfig::new(8192, assoc, 32, 4)
}

/// Parses `--assoc <k>` and `--n <size>` style overrides from argv.
pub fn arg_value(args: &[String], key: &str) -> Option<i64> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
