//! The geometry-grid sweep engine behind `cmetool sweep`.
//!
//! A sweep is the cross product size × ways × line × policy evaluated
//! over a set of kernels. Each grid cell pins one [`CacheModel`]; all
//! kernels of the cell run through `analyze_batch` on one shared
//! [`Analyzer`] session (an engine is pinned to one geometry), and the
//! model simulator replays each nest for the exact count and access
//! total the miss rate needs. Rows carry both numbers: the analytic CME
//! count — exact for LRU-uniform nests, a documented sound bound
//! otherwise — and the simulator-exact count.

use cme_cache::{simulate_nest_model, CacheConfig, CacheModel, PolicyKind};
use cme_core::api::json::{obj, Json};
use cme_core::{AnalysisOptions, Analyzer};
use cme_ir::LoopNest;

/// One axis point of the associativity dimension: `k` ways or fully
/// associative at the cell's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaysPoint {
    /// A set-associative cache with this many ways.
    K(i64),
    /// One set spanning the whole capacity.
    Full,
}

impl WaysPoint {
    /// Parses an axis token: a positive integer or `full`.
    pub fn parse(token: &str) -> Option<Self> {
        if token == "full" {
            return Some(WaysPoint::Full);
        }
        token.parse().ok().filter(|&k| k > 0).map(WaysPoint::K)
    }

    /// The column label (`1`, `8`, `full`).
    pub fn label(&self) -> String {
        match self {
            WaysPoint::K(k) => k.to_string(),
            WaysPoint::Full => "full".to_string(),
        }
    }

    fn config(&self, size: i64, line: i64, elem: i64) -> Result<CacheConfig, String> {
        match self {
            WaysPoint::K(k) => CacheConfig::new(size, *k, line, elem),
            WaysPoint::Full => CacheConfig::fully_associative(size, line, elem),
        }
        .map_err(|e| format!("size={size} ways={} line={line}: {e}", self.label()))
    }
}

/// The grid to sweep: every combination of the four axes is one cell.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Capacities in bytes.
    pub sizes: Vec<i64>,
    /// Associativity points.
    pub ways: Vec<WaysPoint>,
    /// Line sizes in bytes.
    pub lines: Vec<i64>,
    /// Replacement policies.
    pub policies: Vec<PolicyKind>,
    /// Element size in bytes (one per grid; arrays are homogeneous).
    pub elem: i64,
}

impl SweepGrid {
    /// The `assoc_sweep` default: 8 KiB, k ∈ {1, 2, 4, 8, full}, 32 B
    /// lines, LRU.
    pub fn default_grid() -> Self {
        SweepGrid {
            sizes: vec![8192],
            ways: vec![
                WaysPoint::K(1),
                WaysPoint::K(2),
                WaysPoint::K(4),
                WaysPoint::K(8),
                WaysPoint::Full,
            ],
            lines: vec![32],
            policies: vec![PolicyKind::Lru],
            elem: 4,
        }
    }

    /// Number of cells (kernels not included).
    pub fn cells(&self) -> usize {
        self.sizes.len() * self.ways.len() * self.lines.len() * self.policies.len()
    }
}

/// One (kernel, cell) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Kernel name.
    pub kernel: String,
    /// Capacity in bytes.
    pub size: i64,
    /// Associativity label (`1`..`8` or `full`).
    pub ways: String,
    /// Line size in bytes.
    pub line: i64,
    /// Replacement policy of the cell.
    pub policy: PolicyKind,
    /// Total references issued by the nest.
    pub accesses: u64,
    /// Analytic CME miss count — exact for uniform nests under LRU, a
    /// sound upper bound otherwise.
    pub cme_misses: u64,
    /// Simulator-exact miss count under the cell's model.
    pub sim_misses: u64,
    /// `sim_misses / accesses`.
    pub miss_rate: f64,
}

impl SweepRow {
    /// Signed relative error of the analytic count against the
    /// simulator, in percent (0 when the simulator saw no misses).
    pub fn pct_error(&self) -> f64 {
        if self.sim_misses == 0 {
            0.0
        } else {
            100.0 * (self.cme_misses as f64 - self.sim_misses as f64) / self.sim_misses as f64
        }
    }
}

/// Runs the sweep: one shared `analyze_batch` session per cell, the
/// model simulator for exact counts. Rows come out in (size, ways,
/// line, policy, kernel) order.
///
/// # Errors
///
/// Returns a description of the first invalid cell geometry, or of a
/// soundness violation (an LRU cell where the analytic count undercuts
/// the simulator — that is a bug, not a measurement).
pub fn run_sweep(nests: &[LoopNest], grid: &SweepGrid) -> Result<Vec<SweepRow>, String> {
    let opts = AnalysisOptions::default();
    let mut rows = Vec::with_capacity(grid.cells() * nests.len());
    for &size in &grid.sizes {
        for ways in &grid.ways {
            for &line in &grid.lines {
                let cache = ways.config(size, line, grid.elem)?;
                for &policy in &grid.policies {
                    let model = CacheModel::new(cache).policy(policy);
                    // One session per cell: every kernel shares this
                    // engine's memo tables and work pool.
                    let mut analyzer = Analyzer::with_model(model)
                        .options(opts.clone())
                        .parallel(true);
                    let ids: Vec<_> = nests.iter().map(|n| analyzer.intern(n)).collect();
                    let analytic = analyzer.analyze_batch(&ids);
                    for (nest, analysis) in nests.iter().zip(&analytic) {
                        let sim = simulate_nest_model(nest, &model).total();
                        let row = SweepRow {
                            kernel: nest.name().to_string(),
                            size,
                            ways: ways.label(),
                            line,
                            policy,
                            accesses: sim.accesses,
                            cme_misses: analysis.total_misses(),
                            sim_misses: sim.misses(),
                            miss_rate: sim.miss_ratio(),
                        };
                        if policy == PolicyKind::Lru && row.cme_misses < row.sim_misses {
                            return Err(format!(
                                "soundness violated: `{}` at {cache}: cme {} < sim {}",
                                row.kernel, row.cme_misses, row.sim_misses
                            ));
                        }
                        rows.push(row);
                    }
                }
            }
        }
    }
    Ok(rows)
}

/// Renders rows as the aligned text table `assoc_sweep` used to print.
pub fn render_table(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# {:<7} {:>8} {:>6} {:>6} {:>6} {:>10} {:>12} {:>12} {:>8} {:>8}\n",
        "nest",
        "size",
        "ways",
        "line",
        "policy",
        "accesses",
        "cme-misses",
        "sim-misses",
        "miss%",
        "%error"
    ));
    for r in rows {
        out.push_str(&format!(
            "  {:<7} {:>8} {:>6} {:>6} {:>6} {:>10} {:>12} {:>12} {:>8.2} {:>8.2}\n",
            r.kernel,
            r.size,
            r.ways,
            r.line,
            r.policy.as_str(),
            r.accesses,
            r.cme_misses,
            r.sim_misses,
            100.0 * r.miss_rate,
            r.pct_error()
        ));
    }
    out
}

/// Renders rows as newline-delimited JSON objects (one row per line,
/// keys sorted — the same framing the wire API uses).
pub fn render_json(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let value = obj([
            ("kernel", Json::Str(r.kernel.clone())),
            ("size", Json::Int(r.size)),
            ("ways", Json::Str(r.ways.clone())),
            ("line", Json::Int(r.line)),
            ("policy", Json::Str(r.policy.as_str().to_string())),
            ("accesses", Json::UInt(r.accesses)),
            ("cme_misses", Json::UInt(r.cme_misses)),
            ("sim_misses", Json::UInt(r.sim_misses)),
            ("miss_rate", Json::Float(r.miss_rate)),
        ]);
        out.push_str(&value.encode());
        out.push('\n');
    }
    out
}

/// Renders rows as CSV with a header line.
pub fn render_csv(rows: &[SweepRow]) -> String {
    let mut out =
        String::from("kernel,size,ways,line,policy,accesses,cme_misses,sim_misses,miss_rate\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.kernel,
            r.size,
            r.ways,
            r.line,
            r.policy.as_str(),
            r.accesses,
            r.cme_misses,
            r.sim_misses,
            r.miss_rate
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_cache::simulate_nest;

    fn small_grid() -> SweepGrid {
        SweepGrid {
            sizes: vec![1024],
            ways: vec![WaysPoint::K(1), WaysPoint::K(2), WaysPoint::Full],
            lines: vec![32],
            policies: vec![PolicyKind::Lru, PolicyKind::Fifo],
            elem: 4,
        }
    }

    #[test]
    fn ways_tokens_parse() {
        assert_eq!(WaysPoint::parse("4"), Some(WaysPoint::K(4)));
        assert_eq!(WaysPoint::parse("full"), Some(WaysPoint::Full));
        assert_eq!(WaysPoint::parse("0"), None);
        assert_eq!(WaysPoint::parse("-2"), None);
        assert_eq!(WaysPoint::parse("lots"), None);
    }

    #[test]
    fn sweep_matches_the_standalone_paths_cell_by_cell() {
        // The batched shared-session sweep must reproduce what one-off
        // sessions and the plain LRU simulator report — this is the old
        // `assoc_sweep` bin as an invariant.
        let nests = vec![
            cme_kernels::mmult_with_bases(12, 0, 144, 288),
            cme_kernels::sor(12),
        ];
        let grid = small_grid();
        let rows = run_sweep(&nests, &grid).unwrap();
        assert_eq!(rows.len(), grid.cells() * nests.len());
        for row in &rows {
            let nest = nests.iter().find(|n| n.name() == row.kernel).unwrap();
            let cache = if row.ways == "full" {
                CacheConfig::fully_associative(row.size, row.line, 4).unwrap()
            } else {
                CacheConfig::new(row.size, row.ways.parse().unwrap(), row.line, 4).unwrap()
            };
            let standalone = Analyzer::new(cache).analyze(nest).total_misses();
            assert_eq!(row.cme_misses, standalone, "{row:?}");
            if row.policy == PolicyKind::Lru {
                let sim = simulate_nest(nest, cache).total();
                assert_eq!(row.sim_misses, sim.misses(), "{row:?}");
                assert_eq!(row.accesses, sim.accesses, "{row:?}");
            }
            assert!(row.miss_rate >= 0.0 && row.miss_rate <= 1.0);
        }
        // Direct-mapped FIFO coincides with LRU; the paired rows agree.
        let lru_k1: Vec<_> = rows
            .iter()
            .filter(|r| r.ways == "1" && r.policy == PolicyKind::Lru)
            .collect();
        let fifo_k1: Vec<_> = rows
            .iter()
            .filter(|r| r.ways == "1" && r.policy == PolicyKind::Fifo)
            .collect();
        for (l, f) in lru_k1.iter().zip(&fifo_k1) {
            assert_eq!(l.sim_misses, f.sim_misses, "k=1 FIFO must equal LRU");
        }
    }

    #[test]
    fn renderers_cover_every_row() {
        let rows = run_sweep(
            &[cme_kernels::mmult_with_bases(8, 0, 64, 128)],
            &SweepGrid {
                sizes: vec![512],
                ways: vec![WaysPoint::K(1)],
                lines: vec![16],
                policies: vec![PolicyKind::Plru],
                elem: 4,
            },
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        let table = render_table(&rows);
        assert!(table.contains("mmult"), "{table}");
        let json = render_json(&rows);
        assert_eq!(json.lines().count(), 1);
        let parsed = cme_core::api::json::parse(json.trim()).unwrap();
        assert_eq!(parsed.get("policy").and_then(Json::as_str), Some("plru"));
        let csv = render_csv(&rows);
        assert_eq!(csv.lines().count(), 2, "{csv}");
        assert!(csv.starts_with("kernel,size,ways,line,policy"), "{csv}");
    }

    #[test]
    fn invalid_cells_and_undercounts_are_errors() {
        let nests = vec![cme_kernels::sor(8)];
        let bad = SweepGrid {
            sizes: vec![100], // not a power-of-two multiple of the line
            ways: vec![WaysPoint::K(1)],
            lines: vec![32],
            policies: vec![PolicyKind::Lru],
            elem: 4,
        };
        assert!(run_sweep(&nests, &bad).is_err());
    }
}
