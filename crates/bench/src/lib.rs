//! Shared helpers for the experiment binaries (see `src/bin/`).
//!
//! Each binary regenerates one table or figure of the CME paper; this
//! library holds the common cache configurations and formatting helpers.

#![deny(missing_docs)]

pub mod harness;
pub use harness::*;
