//! Shared helpers for the experiment binaries (see `src/bin/`).
//!
//! Each binary regenerates one table or figure of the CME paper; this
//! library holds the common cache configurations and formatting helpers.

#![deny(missing_docs)]

pub mod harness;
pub mod sweep;
pub use harness::*;
pub use sweep::{render_csv, render_json, render_table, run_sweep, SweepGrid, SweepRow, WaysPoint};
