//! Regenerates **Table 2** of the paper: the impact of the CME padding
//! algorithm on the kernel suite — replacement and total data-cache misses
//! before and after, with percentage reductions.
//!
//! ```text
//! cargo run --release -p cme-bench --bin table2 [-- --n 256 --assoc 1]
//! ```
//!
//! The optimizer is the Figure 10 special-case algorithm with the
//! solution-counting fallback of Section 5.1.2; the before/after numbers
//! are *simulated* (the paper's Table 2 is DineroIII-measured). `trans` is
//! expected to show 0% — the paper: "There exists no padding solution for
//! our algorithm to reduce the replacement misses in the trans loop nest."

use cme_bench::BenchArgs;
use cme_cache::simulate_nest;
use cme_core::AnalysisOptions;
use cme_kernels::table1_suite;
use cme_opt::optimize_padding;

fn main() {
    let args = BenchArgs::from_env();
    let n = args.n(64);
    let cache = args.cache();
    println!("# Table 2: impact of the padding algorithm (simulated misses)");
    println!("# cache: {cache}; problem size N = {n}");
    println!(
        "# {:<7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}  method",
        "nest",
        "accesses",
        "repl-orig",
        "total-orig",
        "repl-opt",
        "total-opt",
        "%repl-red",
        "%tot-red"
    );
    for nest in table1_suite(n) {
        let before = simulate_nest(&nest, cache).total();
        let (optimized, outcome) = optimize_padding(&nest, &cache, &AnalysisOptions::default());
        let after = simulate_nest(&optimized, cache).total();
        let pct = |a: u64, b: u64| {
            if a == 0 {
                0.0
            } else {
                100.0 * (a.saturating_sub(b)) as f64 / a as f64
            }
        };
        println!(
            "  {:<7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9.1} {:>9.1}  {}",
            nest.name(),
            before.accesses,
            before.replacement,
            before.misses(),
            after.replacement,
            after.misses(),
            pct(before.replacement, after.replacement),
            pct(before.misses(), after.misses()),
            outcome.method
        );
    }
    println!("# paper reference (N = 256): mmult 50.8/50.6, gauss 55.3/54.9,");
    println!("#   sor -/0, adi 100/93.7, trans 0/0, alv 100/34.4, tom 100/87.4");
}
