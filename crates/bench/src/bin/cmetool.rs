//! `cmetool` — a small command-line front end over the whole stack, the
//! workflow a downstream user would drive:
//!
//! ```text
//! cmetool analyze   <kernel> [--n N] [--size BYTES] [--assoc K] [--line BYTES] [--stats]
//! cmetool simulate  <kernel> [...]        trace-driven LRU ground truth
//! cmetool compare   <kernel> [...]        CME vs simulation, Table-1 row
//! cmetool diagnose  <kernel> [...]        miss attribution + recommendations
//! cmetool pad       <kernel> [...]        derive + verify a padding plan
//! cmetool equations <kernel> [...]        print the symbolic CME system
//! cmetool export    <kernel> [...]        dineroIII-format trace to stdout
//! cmetool client    <kernel> [...]        send the query to a cme-serve instance
//! cmetool sweep     [kernels] [...]       miss-rate tables over a geometry grid
//! cmetool kernels                         list known kernels
//! ```
//!
//! Instead of a registry kernel name, `--file <path>` analyzes a nest
//! written in the textual format of `cme_ir::parse` (see
//! `examples/matmul.cme`).
//!
//! `analyze` accepts resource-governor flags: `--budget-ms MS` (wall-clock
//! deadline) and `--max-solves N` (equation-evaluation cap). A budgeted run
//! that exhausts prints its degraded-but-sound result plus the outcome
//! line (`exhausted (...)`) instead of hanging or dying. With `--stats`,
//! `analyze` also prints the engine's per-stage accounting (stage wall
//! times, memo hit/miss counters) after the result. `--store DIR` attaches
//! the persistent artifact store, so repeated invocations answer from disk.
//!
//! `sweep` replaces the old `assoc_sweep` bin: it evaluates the grid
//! size × ways × line × policy (comma-separated `--sizes/--ways/--lines/
//! --policies` lists; ways accepts `full`, policies are `lru|fifo|plru`)
//! over the named kernels (default: the Table-1 suite at `--n`, default
//! 48), running every kernel of a cell through `analyze_batch` on one
//! shared session and the model simulator for exact counts. `--format
//! table|json|csv` picks the rendering (default `table`, matching the
//! old bin's columns); JSON is one key-sorted object per line, the same
//! framing the wire API uses.
//!
//! `client` speaks the `cme-serve` line protocol (`docs/SERVE.md`) over
//! `--connect HOST:PORT` or `--unix PATH`. It sends one request built from
//! the same kernel/cache/budget flags as `analyze` (or a control op via
//! `--op ping|stats|shutdown`), prints the decoded response (`--json` for
//! the raw line), and exits 0 on success or with the stable
//! [`ErrorCode::exit_code`] of the coded failure. Transport is the shared
//! resilient client (`cme_serve::client`): connect/read deadlines and
//! bounded jittered retry of idempotent requests across connect failures,
//! broken exchanges, and `overloaded` shedding — tunable with `--retries
//! N`, `--connect-timeout-ms MS`, `--read-timeout-ms MS`. `--op shutdown`
//! is never resent once delivered.

use cme_bench::{
    render_csv, render_json, render_table, resolve_kernel, run_sweep, BenchArgs, SweepGrid,
    WaysPoint,
};
use cme_cache::{export_din, simulate_nest, PolicyKind};
use cme_core::api::{AnalyzeRequest, AnalyzeResponse, CacheSpec, ErrorCode};
use cme_core::{
    compare_with_simulation, AnalysisOptions, Analyzer, ArtifactStore, Budget, CmeSystem,
};
use cme_kernels::kernel_names;
use cme_opt::{diagnose, optimize_padding};
use cme_reuse::ReuseOptions;
use cme_serve::client::{Client, ClientConfig, Endpoint, Idempotency};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = BenchArgs::from_env();
    let Some(command) = args.positional(0) else {
        eprintln!("usage: cmetool <analyze|simulate|compare|diagnose|pad|equations|export|sweep|kernels> [kernel] [--n N] [--size B] [--assoc K] [--line B] [--stats]");
        std::process::exit(2);
    };
    if command == "kernels" {
        for name in kernel_names() {
            println!("{name}");
        }
        return;
    }
    if command == "client" {
        run_client(&args);
        return;
    }
    if command == "sweep" {
        run_sweep_cmd(&args);
        return;
    }
    let kernel = args.positional(1).unwrap_or("mmult");
    let n = args.n(64);
    let cache = args.cache();
    if args.flag("--file") && args.value_str("--file").is_none() {
        eprintln!("--file needs a path");
        std::process::exit(2);
    }
    let nest = if let Some(path) = args.value_str("--file") {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(2);
        });
        cme_ir::parse::parse_nest(&src).unwrap_or_else(|e| {
            eprintln!("parse error in `{path}`: {e}");
            std::process::exit(2);
        })
    } else {
        resolve_kernel(kernel, n)
    };
    let opts = AnalysisOptions::default();
    let mut budget = Budget::unlimited();
    if let Some(ms) = args.value("--budget-ms") {
        budget = budget.with_deadline(Duration::from_millis(ms.max(0) as u64));
    }
    if let Some(n) = args.value("--max-solves") {
        budget = budget.with_max_solves(n.max(0) as u64);
    }
    match command {
        "analyze" => {
            println!("{nest}");
            let mut analyzer = Analyzer::new(cache)
                .options(opts.clone())
                .parallel(true)
                .budget(budget);
            if let Some(dir) = args.value_str("--store") {
                match ArtifactStore::open(dir) {
                    Ok(store) => analyzer = analyzer.store(Arc::new(store)),
                    Err(e) => {
                        eprintln!("cannot open store `{dir}`: {e}");
                        std::process::exit(ErrorCode::Store.exit_code());
                    }
                }
            }
            match analyzer.try_analyze(&nest) {
                Ok(governed) => {
                    println!("{}", governed.analysis);
                    println!("outcome: {}", governed.outcome);
                }
                Err(e) => {
                    eprintln!("analysis failed: {e}");
                    std::process::exit(1);
                }
            }
            if args.flag("--stats") {
                println!("{}", analyzer.stats());
            }
        }
        "simulate" => {
            println!("{}", simulate_nest(&nest, cache));
        }
        "compare" => {
            let row = compare_with_simulation(&nest, cache, &opts);
            println!("{row}");
            if !row.is_sound() {
                eprintln!("SOUNDNESS VIOLATION");
                std::process::exit(1);
            }
        }
        "diagnose" => match diagnose(&nest, &cache, &opts) {
            Ok(d) => println!("{d}"),
            Err(e) => {
                eprintln!("diagnosis failed: {e}");
                std::process::exit(1);
            }
        },
        "pad" => {
            let before = simulate_nest(&nest, cache).total();
            let (optimized, outcome) = optimize_padding(&nest, &cache, &opts);
            let after = simulate_nest(&optimized, cache).total();
            println!("{outcome}");
            println!(
                "simulated: replacement {} -> {}, total {} -> {}",
                before.replacement,
                after.replacement,
                before.misses(),
                after.misses()
            );
        }
        "equations" => {
            let sys = CmeSystem::generate(&nest, cache, &ReuseOptions::default());
            println!(
                "# {} equations over {} references",
                sys.equation_count(),
                sys.per_ref.len()
            );
            for re in &sys.per_ref {
                println!("reference {}:", nest.reference(re.dest).label());
                for g in &re.groups {
                    println!("  {}", g.cold);
                    for eq in &g.replacements {
                        println!("    {eq}");
                    }
                }
            }
        }
        "export" => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            if let Err(e) = export_din(&nest, cache.elem_bytes(), &mut lock) {
                eprintln!("export failed: {e}");
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            std::process::exit(2);
        }
    }
}

/// The `sweep` subcommand: parse the grid axes, run every kernel of
/// each cell through one shared batch session, and render the miss-rate
/// table in the requested format.
fn run_sweep_cmd(args: &BenchArgs) {
    fn axis<T>(
        args: &BenchArgs,
        key: &str,
        parse: impl Fn(&str) -> Option<T>,
        default: Vec<T>,
    ) -> Vec<T> {
        let Some(raw) = args.value_str(key) else {
            return default;
        };
        let points: Vec<T> = raw.split(',').filter_map(|t| parse(t.trim())).collect();
        if points.is_empty() || points.len() != raw.split(',').count() {
            eprintln!("bad {key} list `{raw}`");
            std::process::exit(2);
        }
        points
    }

    let n = args.n(48);
    let nests: Vec<_> = match args.positional(1) {
        Some(list) if !list.starts_with("--") => list
            .split(',')
            .map(|name| resolve_kernel(name.trim(), n))
            .collect(),
        _ => cme_kernels::table1_suite(n),
    };
    let defaults = SweepGrid::default_grid();
    let grid = SweepGrid {
        sizes: axis(args, "--sizes", |t| t.parse().ok(), defaults.sizes),
        ways: axis(args, "--ways", WaysPoint::parse, defaults.ways),
        lines: axis(args, "--lines", |t| t.parse().ok(), defaults.lines),
        policies: axis(args, "--policies", PolicyKind::parse, defaults.policies),
        elem: args.value_or("--elem", defaults.elem),
    };
    let rows = run_sweep(&nests, &grid).unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    });
    let format = args.value_str("--format").unwrap_or("table");
    let rendered = match format {
        "table" => {
            let header = format!(
                "# Geometry sweep: {} kernels × {} cells, N = {n}\n",
                nests.len(),
                grid.cells()
            );
            format!("{header}{}", render_table(&rows))
        }
        "json" => render_json(&rows),
        "csv" => render_csv(&rows),
        other => {
            eprintln!("unknown --format `{other}` (table|json|csv)");
            std::process::exit(2);
        }
    };
    print!("{rendered}");
}

/// The `client` subcommand: build the request line, ship it to a
/// `cme-serve` instance through the shared resilient client
/// ([`cme_serve::client`] — connect/read deadlines, bounded backoff,
/// idempotency-gated retry), decode and print the answer.
fn run_client(args: &BenchArgs) {
    let op = args.value_str("--op").unwrap_or("analyze");
    let line = match op {
        "analyze" => {
            let program = if let Some(path) = args.value_str("--file") {
                std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read `{path}`: {e}");
                    std::process::exit(ErrorCode::Io.exit_code());
                })
            } else {
                let kernel = args.positional(1).unwrap_or("mmult");
                let nest = resolve_kernel(kernel, args.n(64));
                cme_ir::parse::to_source(&nest).unwrap_or_else(|| {
                    eprintln!("kernel `{kernel}` has no textual form");
                    std::process::exit(2);
                })
            };
            let mut request = AnalyzeRequest::new("cmetool", program, CacheSpec::of(&args.cache()));
            if let Some(e) = args.value("--epsilon") {
                request.epsilon = e.max(0) as u64;
            }
            if let Some(ms) = args.value("--budget-ms") {
                request.budget_ms = Some(ms.max(0) as u64);
            }
            if let Some(n) = args.value("--max-solves") {
                request.max_solves = Some(n.max(0) as u64);
            }
            request.encode()
        }
        op @ ("ping" | "stats" | "shutdown") => {
            format!(r#"{{"id":"cmetool","op":"{op}"}}"#)
        }
        other => {
            eprintln!("unknown --op `{other}` (analyze|ping|stats|shutdown)");
            std::process::exit(2);
        }
    };

    let endpoint = if let Some(addr) = args.value_str("--connect") {
        Endpoint::Tcp(addr.to_string())
    } else if let Some(path) = args.value_str("--unix") {
        Endpoint::Unix(path.into())
    } else {
        eprintln!("client needs --connect HOST:PORT or --unix PATH");
        std::process::exit(2);
    };
    let mut config = ClientConfig::new(endpoint);
    if let Some(n) = args.value("--retries") {
        config.max_retries = n.max(0) as u32;
    }
    if let Some(ms) = args.value("--connect-timeout-ms") {
        config.connect_timeout_ms = ms.max(0) as u64;
    }
    if let Some(ms) = args.value("--read-timeout-ms") {
        config.read_timeout_ms = ms.max(0) as u64;
    }
    // Everything but `shutdown` converges on replay; shutdown must reach
    // the server at most once.
    let idempotency = if op == "shutdown" {
        Idempotency::NonIdempotent
    } else {
        Idempotency::Idempotent
    };
    let mut client = Client::new(config);
    let response = client.exchange(&line, idempotency).unwrap_or_else(|e| {
        eprintln!("exchange failed: {e}");
        std::process::exit(ErrorCode::Io.exit_code());
    });

    if args.flag("--json") {
        println!("{response}");
    }
    if op != "analyze" {
        if !args.flag("--json") {
            println!("{response}");
        }
        return;
    }
    match AnalyzeResponse::decode(&response) {
        Ok(resp) => match resp.result {
            Ok(result) => {
                if !args.flag("--json") {
                    println!(
                        "{}: {} misses ({} cold + {} replacement){}{}",
                        result.nest_name,
                        result.total_misses,
                        result.total_cold,
                        result.total_replacement,
                        if result.store_hit { " [store hit]" } else { "" },
                        if result.outcome.complete {
                            String::new()
                        } else {
                            format!(
                                " [degraded: {}, {:.0}% done]",
                                result.outcome.reason,
                                result.outcome.completed_fraction * 100.0
                            )
                        }
                    );
                    for r in &result.per_ref {
                        println!(
                            "  {}: {} cold, {} replacement",
                            r.label, r.cold_misses, r.replacement_misses
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("server error: {e}");
                std::process::exit(e.code.exit_code());
            }
        },
        Err(e) => {
            eprintln!("malformed response: {e}");
            std::process::exit(ErrorCode::BadRequest.exit_code());
        }
    }
}
