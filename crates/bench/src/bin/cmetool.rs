//! `cmetool` — a small command-line front end over the whole stack, the
//! workflow a downstream user would drive:
//!
//! ```text
//! cmetool analyze   <kernel> [--n N] [--size BYTES] [--assoc K] [--line BYTES] [--stats]
//! cmetool simulate  <kernel> [...]        trace-driven LRU ground truth
//! cmetool compare   <kernel> [...]        CME vs simulation, Table-1 row
//! cmetool diagnose  <kernel> [...]        miss attribution + recommendations
//! cmetool pad       <kernel> [...]        derive + verify a padding plan
//! cmetool equations <kernel> [...]        print the symbolic CME system
//! cmetool export    <kernel> [...]        dineroIII-format trace to stdout
//! cmetool kernels                         list known kernels
//! ```
//!
//! Instead of a registry kernel name, `--file <path>` analyzes a nest
//! written in the textual format of `cme_ir::parse` (see
//! `examples/matmul.cme`).
//!
//! `analyze` accepts resource-governor flags: `--budget-ms MS` (wall-clock
//! deadline) and `--max-solves N` (equation-evaluation cap). A budgeted run
//! that exhausts prints its degraded-but-sound result plus the outcome
//! line (`exhausted (...)`) instead of hanging or dying. With `--stats`,
//! `analyze` also prints the engine's per-stage accounting (stage wall
//! times, memo hit/miss counters) after the result.

use cme_bench::{resolve_kernel, BenchArgs};
use cme_cache::{export_din, simulate_nest};
use cme_core::{compare_with_simulation, AnalysisOptions, Analyzer, Budget, CmeSystem};
use cme_kernels::kernel_names;
use cme_opt::{diagnose, optimize_padding};
use cme_reuse::ReuseOptions;
use std::time::Duration;

fn main() {
    let args = BenchArgs::from_env();
    let Some(command) = args.positional(0) else {
        eprintln!("usage: cmetool <analyze|simulate|compare|diagnose|pad|equations|export|kernels> [kernel] [--n N] [--size B] [--assoc K] [--line B] [--stats]");
        std::process::exit(2);
    };
    if command == "kernels" {
        for name in kernel_names() {
            println!("{name}");
        }
        return;
    }
    let kernel = args.positional(1).unwrap_or("mmult");
    let n = args.n(64);
    let cache = args.cache();
    if args.flag("--file") && args.value_str("--file").is_none() {
        eprintln!("--file needs a path");
        std::process::exit(2);
    }
    let nest = if let Some(path) = args.value_str("--file") {
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(2);
        });
        cme_ir::parse::parse_nest(&src).unwrap_or_else(|e| {
            eprintln!("parse error in `{path}`: {e}");
            std::process::exit(2);
        })
    } else {
        resolve_kernel(kernel, n)
    };
    let opts = AnalysisOptions::default();
    let mut budget = Budget::unlimited();
    if let Some(ms) = args.value("--budget-ms") {
        budget = budget.with_deadline(Duration::from_millis(ms.max(0) as u64));
    }
    if let Some(n) = args.value("--max-solves") {
        budget = budget.with_max_solves(n.max(0) as u64);
    }
    match command {
        "analyze" => {
            println!("{nest}");
            let mut analyzer = Analyzer::new(cache)
                .options(opts.clone())
                .parallel(true)
                .budget(budget);
            match analyzer.try_analyze(&nest) {
                Ok(governed) => {
                    println!("{}", governed.analysis);
                    println!("outcome: {}", governed.outcome);
                }
                Err(e) => {
                    eprintln!("analysis failed: {e}");
                    std::process::exit(1);
                }
            }
            if args.flag("--stats") {
                println!("{}", analyzer.stats());
            }
        }
        "simulate" => {
            println!("{}", simulate_nest(&nest, cache));
        }
        "compare" => {
            let row = compare_with_simulation(&nest, cache, &opts);
            println!("{row}");
            if !row.is_sound() {
                eprintln!("SOUNDNESS VIOLATION");
                std::process::exit(1);
            }
        }
        "diagnose" => match diagnose(&nest, &cache, &opts) {
            Ok(d) => println!("{d}"),
            Err(e) => {
                eprintln!("diagnosis failed: {e}");
                std::process::exit(1);
            }
        },
        "pad" => {
            let before = simulate_nest(&nest, cache).total();
            let (optimized, outcome) = optimize_padding(&nest, &cache, &opts);
            let after = simulate_nest(&optimized, cache).total();
            println!("{outcome}");
            println!(
                "simulated: replacement {} -> {}, total {} -> {}",
                before.replacement,
                after.replacement,
                before.misses(),
                after.misses()
            );
        }
        "equations" => {
            let sys = CmeSystem::generate(&nest, cache, &ReuseOptions::default());
            println!(
                "# {} equations over {} references",
                sys.equation_count(),
                sys.per_ref.len()
            );
            for re in &sys.per_ref {
                println!("reference {}:", nest.reference(re.dest).label());
                for g in &re.groups {
                    println!("  {}", g.cold);
                    for eq in &g.replacements {
                        println!("    {eq}");
                    }
                }
            }
        }
        "export" => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            if let Err(e) = export_din(&nest, cache.elem_bytes(), &mut lock) {
                eprintln!("export failed: {e}");
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            std::process::exit(2);
        }
    }
}
