//! `cmetool` — a small command-line front end over the whole stack, the
//! workflow a downstream user would drive:
//!
//! ```text
//! cmetool analyze   <kernel> [--n N] [--size BYTES] [--assoc K] [--line BYTES]
//! cmetool simulate  <kernel> [...]        trace-driven LRU ground truth
//! cmetool compare   <kernel> [...]        CME vs simulation, Table-1 row
//! cmetool diagnose  <kernel> [...]        miss attribution + recommendations
//! cmetool pad       <kernel> [...]        derive + verify a padding plan
//! cmetool equations <kernel> [...]        print the symbolic CME system
//! cmetool export    <kernel> [...]        dineroIII-format trace to stdout
//! cmetool kernels                         list known kernels
//! ```
//!
//! Instead of a registry kernel name, `--file <path>` analyzes a nest
//! written in the textual format of `cme_ir::parse` (see
//! `examples/matmul.cme`).
//!
//! `analyze` accepts resource-governor flags: `--budget-ms MS` (wall-clock
//! deadline) and `--max-solves N` (equation-evaluation cap). A budgeted run
//! that exhausts prints its degraded-but-sound result plus the outcome
//! line (`exhausted (...)`) instead of hanging or dying.

use cme_bench::arg_value;
use cme_cache::{export_din, simulate_nest, CacheConfig};
use cme_core::{compare_with_simulation, AnalysisOptions, Analyzer, Budget, CmeSystem};
use cme_kernels::{kernel_by_name, kernel_names};
use cme_opt::{diagnose, optimize_padding};
use cme_reuse::ReuseOptions;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(command) = args.get(1).map(String::as_str) else {
        eprintln!("usage: cmetool <analyze|simulate|compare|diagnose|pad|equations|export|kernels> [kernel] [--n N] [--size B] [--assoc K] [--line B]");
        std::process::exit(2);
    };
    if command == "kernels" {
        for name in kernel_names() {
            println!("{name}");
        }
        return;
    }
    let kernel = args.get(2).map(String::as_str).unwrap_or("mmult");
    let n = arg_value(&args, "--n").unwrap_or(64);
    let size = arg_value(&args, "--size").unwrap_or(8192);
    let assoc = arg_value(&args, "--assoc").unwrap_or(1);
    let line = arg_value(&args, "--line").unwrap_or(32);
    let cache = CacheConfig::new(size, assoc, line, 4).unwrap_or_else(|e| {
        eprintln!("bad cache geometry: {e}");
        std::process::exit(2);
    });
    let nest = if let Some(pos) = args.iter().position(|a| a == "--file") {
        let path = args.get(pos + 1).unwrap_or_else(|| {
            eprintln!("--file needs a path");
            std::process::exit(2);
        });
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(2);
        });
        cme_ir::parse::parse_nest(&src).unwrap_or_else(|e| {
            eprintln!("parse error in `{path}`: {e}");
            std::process::exit(2);
        })
    } else {
        kernel_by_name(kernel, n).unwrap_or_else(|| {
            eprintln!("unknown kernel `{kernel}`; run `cmetool kernels`");
            std::process::exit(2);
        })
    };
    let opts = AnalysisOptions::default();
    let mut budget = Budget::unlimited();
    if let Some(ms) = arg_value(&args, "--budget-ms") {
        budget = budget.with_deadline(Duration::from_millis(ms.max(0) as u64));
    }
    if let Some(n) = arg_value(&args, "--max-solves") {
        budget = budget.with_max_solves(n.max(0) as u64);
    }
    match command {
        "analyze" => {
            println!("{nest}");
            let mut analyzer = Analyzer::new(cache)
                .options(opts.clone())
                .parallel(true)
                .budget(budget);
            match analyzer.try_analyze(&nest) {
                Ok(governed) => {
                    println!("{}", governed.analysis);
                    println!("outcome: {}", governed.outcome);
                }
                Err(e) => {
                    eprintln!("analysis failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "simulate" => {
            println!("{}", simulate_nest(&nest, cache));
        }
        "compare" => {
            let row = compare_with_simulation(&nest, cache, &opts);
            println!("{row}");
            if !row.is_sound() {
                eprintln!("SOUNDNESS VIOLATION");
                std::process::exit(1);
            }
        }
        "diagnose" => match diagnose(&nest, &cache, &opts) {
            Ok(d) => println!("{d}"),
            Err(e) => {
                eprintln!("diagnosis failed: {e}");
                std::process::exit(1);
            }
        },
        "pad" => {
            let before = simulate_nest(&nest, cache).total();
            let (optimized, outcome) = optimize_padding(&nest, &cache, &opts);
            let after = simulate_nest(&optimized, cache).total();
            println!("{outcome}");
            println!(
                "simulated: replacement {} -> {}, total {} -> {}",
                before.replacement,
                after.replacement,
                before.misses(),
                after.misses()
            );
        }
        "equations" => {
            let sys = CmeSystem::generate(&nest, cache, &ReuseOptions::default());
            println!(
                "# {} equations over {} references",
                sys.equation_count(),
                sys.per_ref.len()
            );
            for re in &sys.per_ref {
                println!("reference {}:", nest.reference(re.dest).label());
                for g in &re.groups {
                    println!("  {}", g.cold);
                    for eq in &g.replacements {
                        println!("    {eq}");
                    }
                }
            }
        }
        "export" => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            if let Err(e) = export_din(&nest, cache.elem_bytes(), &mut lock) {
                eprintln!("export failed: {e}");
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            std::process::exit(2);
        }
    }
}
