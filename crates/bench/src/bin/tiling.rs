//! Regenerates the **Section 5.1.1 tile-size selection** example
//! (Equations 8–9): pick `(T_k, T_j)` admitting at most `k − 1` solutions
//! of the self-interference equation, then verify by simulating tiled
//! matmul with the chosen vs. rejected tiles.
//!
//! ```text
//! cargo run --release -p cme-bench --bin tiling [-- --n 32 --assoc 1]
//! ```

use cme_bench::BenchArgs;
use cme_cache::simulate_nest;
use cme_kernels::tiled_mmult;
use cme_opt::tiling::{count_self_interference, select_tile_size};

fn main() {
    let args = BenchArgs::from_env();
    let n = args.n(32);
    // A deliberately small cache: columns must alias for Eq. 8 to bite.
    let cache = args.cache_with(1024, 1, 32);
    let col = cache.size_elems(); // pathological: columns alias the cache
    println!("# Tile-size selection from Equation 8");
    println!("# cache: {cache}; matmul N = {n}; array column size C = {col}");

    println!("\nEq. 8 solution counts per candidate tile (rows T_k, cols T_j):");
    let divisors: Vec<i64> = (1..=n).filter(|d| n % d == 0).collect();
    print!("{:>6}", "");
    for &tj in &divisors {
        print!("{tj:>7}");
    }
    println!();
    for &tk in &divisors {
        print!("{tk:>6}");
        for &tj in &divisors {
            print!("{:>7}", count_self_interference(&cache, col, tk, tj));
        }
        println!();
    }

    let choice = select_tile_size(&cache, col, n).expect("a tile exists");
    println!("\nselected: {choice} (area {})", choice.area());

    let build = |tk: i64, tj: i64| {
        let mut nest = tiled_mmult(n, tk, tj, 0, 8 * col + 9, 16 * col + 18);
        let ids: Vec<_> = nest.references().iter().map(|r| r.array()).collect();
        for id in ids {
            let arr = nest.array_mut(id);
            if arr.column_size() < col {
                arr.pad_column_to(col);
            }
        }
        nest
    };
    println!("\nsimulated Y-load misses (the reference Eq. 8 protects):");
    for (label, tk, tj) in [
        ("selected", choice.tk, choice.tj),
        ("rejected 8x4", 8.min(n), 4.min(n)),
        ("whole-matrix", n, n),
    ] {
        let sim = simulate_nest(&build(tk, tj), cache);
        println!(
            "  {label:<14} T=({tk},{tj}): Y misses {} / total {}",
            sim.per_ref[2].misses(),
            sim.total().misses()
        );
    }
}
