//! Regenerates the **Section 5.1.2 / Figure 13** experiment: deciding loop
//! fusion for the ADI pair by counting CME solutions.
//!
//! ```text
//! cargo run --release -p cme-bench --bin fusion
//! ```
//!
//! Paper: "Before the transformation, there were roughly 21K cache misses.
//! After loop fusion, the CMEs indicate a drop to roughly 15K cache
//! misses." (4-byte elements, 8KB direct-mapped, 32B lines, bases
//! 0x10000110 / 0x10004130 / 0x10008150.)

use cme_bench::BenchArgs;
use cme_cache::simulate_nest;
use cme_core::AnalysisOptions;
use cme_kernels::{adi_fusion_fused, adi_fusion_unfused};
use cme_opt::evaluate_fusion;

fn main() {
    let cache = BenchArgs::from_env().cache();
    let (n1, n2) = adi_fusion_unfused();
    let fused = adi_fusion_fused();
    println!("# Loop fusion by CME solution counting (Figure 13)");
    println!("# cache: {cache}");
    let decision = evaluate_fusion(&[&n1, &n2], &fused, cache, &AnalysisOptions::default());
    println!("CME counts:   {decision}");
    // Cross-check with simulation (not needed for the decision).
    let sim_unfused =
        simulate_nest(&n1, cache).total().misses() + simulate_nest(&n2, cache).total().misses();
    let sim_fused = simulate_nest(&fused, cache).total().misses();
    println!("simulated:    unfused {sim_unfused}, fused {sim_fused}");
    println!("# paper: ~21K misses before fusion, ~15K after");
    assert_eq!(decision.misses_unfused, sim_unfused);
    assert_eq!(decision.misses_fused, sim_fused);
}
