//! Ablation for the **ε precision/time knob** of the miss-finding algorithm
//! (line 6 of Figure 6): vary the tolerated indeterminate-set size and
//! report miss-count inflation versus analysis work.
//!
//! ```text
//! cargo run --release -p cme-bench --bin epsilon [-- --n 64]
//! ```

use cme_bench::BenchArgs;
use cme_core::{AnalysisOptions, Analyzer};
use cme_kernels::mmult;
use std::time::Instant;

fn main() {
    let args = BenchArgs::from_env();
    let n = args.n(64);
    let cache = args.cache();
    let nest = mmult(n);
    println!("# ε ablation on mmult N = {n}, cache {cache}");
    println!(
        "# {:>12} {:>12} {:>12} {:>14} {:>9}",
        "epsilon", "misses", "inflation", "vectors-used", "secs"
    );
    // One session across the sweep: ε only truncates each reference's
    // reuse-vector cascade, so the per-vector scan results are shared
    // between ε settings through the engine's scan memo.
    let mut analyzer = Analyzer::new(cache);
    let exact = analyzer.analyze(&nest);
    for eps in [0u64, 1 << 6, 1 << 10, 1 << 14, 1 << 18, 1 << 22] {
        let opts = AnalysisOptions::builder().epsilon(eps).build();
        let t0 = Instant::now();
        let a = analyzer.analyze_with_options(&nest, &opts);
        let dt = t0.elapsed().as_secs_f64();
        let vectors: usize = a.per_ref.iter().map(|r| r.vectors_used()).sum();
        println!(
            "  {:>12} {:>12} {:>12} {:>14} {:>9.2}",
            eps,
            a.total_misses(),
            a.total_misses() - exact.total_misses(),
            vectors,
            dt
        );
        assert!(a.total_misses() >= exact.total_misses());
    }
}
