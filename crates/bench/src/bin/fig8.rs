//! Regenerates **Figure 8** of the paper: the progress of the miss-finding
//! algorithm for the load of Z(j,i) in matrix multiply, restricted to the
//! paper's three reuse vectors r1 = (0,0,1), r2 = (0,1,−7), r3 = (0,1,0)
//! on an 8KB direct-mapped cache with 32B lines (8 elements per line).
//!
//! ```text
//! cargo run --release -p cme-bench --bin fig8 [-- --n 256]
//! ```
//!
//! At N = 256 the paper's table reads (per reuse vector):
//!   Cold CMEs        2097152   8192    8192
//!   ReplEqn_ZZ             0      0       0
//!   ReplEqn_ZY       1835008 261120       0
//!   ReplEqn_ZX        401408  64064       0
//!   Repl. Misses     2236416 325184       0
//!   Definite Misses  2236416 2561600 2569792

// Figure 8 prescribes the paper's hand-picked reuse vectors, so this bin
// stays on the low-level per-reference entry point by design.

use cme_bench::BenchArgs;
use cme_core::{AnalysisOptions, Analyzer};
use cme_kernels::mmult_with_bases;
use cme_reuse::{ReuseKind, ReuseVector};

fn main() {
    let args = BenchArgs::from_env();
    let n = args.n(256);
    let cache = args.cache();
    // The paper's layout: Z at 4192 with the other arrays packed behind it.
    let nest = mmult_with_bases(n, 4192, 4192 + n * n, 4192 + 2 * n * n);
    let z_load = nest.references()[0].id();
    let rvs = vec![
        ReuseVector::new(vec![0, 0, 1], z_load, ReuseKind::SelfSpatial, 1),
        ReuseVector::new(vec![0, 1, -7], z_load, ReuseKind::SelfSpatial, -7),
        ReuseVector::new(vec![0, 1, 0], z_load, ReuseKind::SelfTemporal, 0),
    ];
    let opts = AnalysisOptions {
        exact_equation_counts: true,
        ..AnalysisOptions::default()
    };
    let analysis = Analyzer::new(cache)
        .options(opts)
        .analyze_reference_with_vectors(&nest, z_load, &rvs);

    println!("# Figure 8: miss-finding progress for the Z(j,i) load, N = {n}");
    println!("# cache: {cache}");
    let headers: Vec<String> = analysis
        .vectors
        .iter()
        .map(|v| {
            format!(
                "r=({})",
                v.reuse
                    .vector()
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect();
    print!("{:<18}", "");
    for h in &headers {
        print!("{h:>14}");
    }
    println!();
    let row = |label: &str, values: Vec<u64>| {
        print!("{label:<18}");
        for v in values {
            print!("{v:>14}");
        }
        println!();
    };
    row(
        "Cold CMEs",
        analysis.vectors.iter().map(|v| v.cold_solutions).collect(),
    );
    // Z-load is ref 0, X ref 1, Y ref 2, Z-store ref 3.
    let eqn = |perp: usize| -> Vec<u64> {
        analysis
            .vectors
            .iter()
            .map(|v| v.contentions_per_perpetrator[perp])
            .collect()
    };
    let zz: Vec<u64> = eqn(0).iter().zip(eqn(3)).map(|(a, b)| a + b).collect();
    row("ReplEqn_ZZ", zz);
    row("ReplEqn_ZY", eqn(2));
    row("ReplEqn_ZX", eqn(1));
    row(
        "Repl. Misses",
        analysis
            .vectors
            .iter()
            .map(|v| v.replacement_misses)
            .collect(),
    );
    // Cumulative definite misses; the final column also includes the cold
    // misses resolved after the last vector (as in the paper's 2569792).
    let nvec = analysis.vectors.len();
    row(
        "Definite Misses",
        analysis
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v.cumulative_replacement_misses
                    + if i + 1 == nvec {
                        analysis.cold_misses
                    } else {
                        0
                    }
            })
            .collect(),
    );
    println!(
        "\n# totals: {} replacement + {} cold = {} misses for this reference",
        analysis.replacement_misses,
        analysis.cold_misses,
        analysis.total_misses()
    );
}
