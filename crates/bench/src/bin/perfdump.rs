//! Sliding-window cascade performance dump (`BENCH_cascade.json`).
//!
//! Runs one full Table-1 matmul analysis through the reference per-point
//! solver (an uncached session) and through the engine's run-compressed
//! sliding-window cascade (sequential and sharded), checks the miss counts
//! are bit-identical, and writes a machine-readable JSON report: wall
//! times, speedups, per-stage times, points scanned, rows covered
//! incrementally (window steps) vs fully (rebuild rows), and the peak
//! survivor-set size.
//!
//! ```text
//! cargo run --release -p cme-bench --bin perfdump -- \
//!     [--n 64] [--threads 0] [--expect-misses M] [--out BENCH_cascade.json]
//! ```
//!
//! `--threads 0` (the default) sizes the shard pool from the host's
//! available parallelism. With `--expect-misses`, the run exits nonzero
//! when the analysis total differs — the CI bench-smoke gate.

use std::time::Instant;

use cme_bench::BenchArgs;
use cme_core::{
    AnalysisOptions, Analyzer, EngineStats, NestAnalysis, SweepParameter, SweepRequest,
};
use cme_ir::ArrayId;

fn main() {
    let args = BenchArgs::from_env();
    let n = args.n(64);
    let threads = args.value_or("--threads", 0).max(0) as usize;
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    let out_path = args
        .value_str("--out")
        .unwrap_or("BENCH_cascade.json")
        .to_string();

    let cache = args.cache();
    let nest = cme_kernels::mmult_with_bases(n, 0, n * n, 2 * n * n);
    let opts = AnalysisOptions::default();

    eprintln!("perfdump: table-1 matmul, N = {n}, {threads} threads");

    let t = Instant::now();
    let reference = Analyzer::new(cache)
        .options(opts.clone())
        .caching(false)
        .analyze(&nest);
    let reference_s = t.elapsed().as_secs_f64();
    eprintln!(
        "  reference:       {reference_s:>8.3}s  ({} misses)",
        reference.total_misses()
    );

    let mut seq = Analyzer::new(cache).options(opts.clone());
    let t = Instant::now();
    let seq_res = seq.analyze(&nest);
    let seq_s = t.elapsed().as_secs_f64();
    let seq_stats = seq.stats();
    eprintln!(
        "  cascade (1 thr): {seq_s:>8.3}s  ({:.2}x)",
        reference_s / seq_s.max(1e-12)
    );

    // Sweep the shard-pool width in powers of two up to the requested
    // count, so the par-vs-seq gap (ROADMAP item 3) is visible per thread
    // count, each run on a fresh session (no memo carry-over).
    let mut sweep_counts: Vec<usize> = std::iter::successors(Some(1usize), |t| Some(t * 2))
        .take_while(|t| *t < threads)
        .collect();
    sweep_counts.push(threads);
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    let mut par_s = seq_s;
    let mut par_stats = seq_stats.clone();
    let mut par_threads = seq.thread_count();
    for &t_count in &sweep_counts {
        let mut par = Analyzer::new(cache)
            .options(opts.clone())
            .parallel(true)
            .threads(t_count);
        let t = Instant::now();
        let par_res = par.analyze(&nest);
        let secs = t.elapsed().as_secs_f64();
        eprintln!(
            "  cascade ({t_count} thr): {secs:>8.3}s  ({:.2}x)",
            reference_s / secs.max(1e-12)
        );
        assert_eq!(
            reference, par_res,
            "sharded cascade ({t_count} threads) diverged from the reference solver"
        );
        sweep.push((t_count, secs));
        // The widest run is the headline "par" row, at the pool width the
        // session actually ran (not the requested count).
        par_s = secs;
        par_stats = par.stats();
        par_threads = par.thread_count();
    }
    eprintln!("{seq_stats}");

    assert_eq!(
        reference, seq_res,
        "sequential cascade diverged from the reference solver"
    );

    // Closed-form parametric sweep vs exhaustive enumeration (Section
    // 5.1.3): a 4096-candidate padding sweep answered by fitting a
    // certified quasi-polynomial from a bounded sample window, checked
    // bit-identical against brute force over every candidate.
    let request = SweepRequest::new(
        SweepParameter::PadBytes {
            after: ArrayId::from_index(0),
        },
        0,
        4096,
        cache.line_bytes(),
    );
    let mut closed = Analyzer::new(cache).options(opts.clone());
    let t = Instant::now();
    let sweep_res = closed.sweep(&nest, &request).expect("sweep never errors");
    let sweep_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let (ex_k, ex_misses) = exhaustive_argmin(&nest, cache, &opts, &request);
    let exhaustive_s = t.elapsed().as_secs_f64();
    assert!(
        sweep_res.function.is_some() && sweep_res.certificate.is_some(),
        "the table-1 padding sweep must fit a certified closed form"
    );
    assert_eq!(
        (sweep_res.best_k, sweep_res.best_misses),
        (ex_k, ex_misses),
        "closed-form optimum diverged from exhaustive enumeration"
    );
    eprintln!(
        "  sweep:           {sweep_s:>8.3}s  ({} of {} analyses; exhaustive {exhaustive_s:.3}s, {:.2}x)",
        sweep_res.evaluations,
        sweep_res.candidates,
        exhaustive_s / sweep_s.max(1e-12)
    );

    let json = render_json(
        n,
        (seq.thread_count(), par_threads),
        &reference,
        reference_s,
        seq_s,
        par_s,
        &seq_stats,
        &par_stats,
        &sweep,
        (&sweep_res, sweep_s, exhaustive_s),
    );
    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("  wrote {out_path}");

    if let Some(expect) = args.value("--expect-misses") {
        let got = reference.total_misses();
        if got != expect as u64 {
            eprintln!("FAIL: expected {expect} total misses, analysis found {got}");
            std::process::exit(1);
        }
        eprintln!("  miss gate OK ({got} total misses)");
    }
}

/// Brute force over every sweep candidate in one batched session:
/// `(best_k, best_misses)` with the smallest-parameter tie-break — the
/// baseline the closed form must reproduce bit-identically.
fn exhaustive_argmin(
    nest: &cme_ir::LoopNest,
    cache: cme_cache::CacheConfig,
    opts: &AnalysisOptions,
    request: &SweepRequest,
) -> (usize, u64) {
    let mut analyzer = Analyzer::new(cache).options(opts.clone());
    let ids: Vec<_> = (0..request.count)
        .map(|k| {
            let candidate = request
                .parameter
                .apply(nest, &cache, request.value_at(k))
                .expect("padding candidates are always feasible");
            analyzer.intern(&candidate)
        })
        .collect();
    analyzer
        .analyze_batch(&ids)
        .iter()
        .map(|a| a.total_misses())
        .enumerate()
        .min_by_key(|&(k, m)| (m, k))
        .expect("non-empty candidate range")
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    n: i64,
    (threads_seq, threads_par): (usize, usize),
    reference: &NestAnalysis,
    reference_s: f64,
    seq_s: f64,
    par_s: f64,
    seq: &EngineStats,
    par: &EngineStats,
    sweep: &[(usize, f64)],
    (sweep_res, sweep_s, exhaustive_s): (&cme_core::SweepResult, f64, f64),
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"kernel\": \"mmult\",\n  \"n\": {n},\n"));
    s.push_str("  \"cache\": {\"size_bytes\": 8192, \"assoc\": 1, \"line_bytes\": 32, \"elem_bytes\": 4},\n");
    // The cascade rows ran at different pool widths, recorded from the
    // sessions' actual `Analyzer::thread_count()` (a hard-coded 1 /
    // requested count used to go stale when the pool clamped).
    s.push_str(&format!("  \"threads_seq\": {threads_seq},\n"));
    s.push_str(&format!("  \"threads_par\": {threads_par},\n"));
    s.push_str("  \"threads_sweep\": [");
    for (i, (t, secs)) in sweep.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"threads\": {t}, \"seconds\": {secs:.6}, \"speedup\": {:.3}}}",
            reference_s / secs.max(1e-12)
        ));
    }
    s.push_str("],\n");
    s.push_str(&format!(
        "  \"total_misses\": {},\n",
        reference.total_misses()
    ));
    s.push_str(&format!("  \"reference_seconds\": {reference_s:.6},\n"));
    s.push_str(&format!("  \"cascade_seq_seconds\": {seq_s:.6},\n"));
    s.push_str(&format!("  \"cascade_par_seconds\": {par_s:.6},\n"));
    s.push_str(&format!(
        "  \"speedup_seq\": {:.3},\n  \"speedup_par\": {:.3},\n",
        reference_s / seq_s.max(1e-12),
        reference_s / par_s.max(1e-12)
    ));
    for (label, st) in [("cascade_seq", seq), ("cascade_par", par)] {
        s.push_str(&format!(
            "  \"{label}\": {{\"scan_points\": {}, \"scan_blocks\": {}, \
             \"window_steps\": {}, \"window_rebuilds\": {}, \
             \"window_rebuild_rows\": {}, \"peak_survivors\": {}, \
             \"scan_sets_dense\": {}, \"scan_sets_runs\": {}, \
             \"shard_busy_seconds\": {:.6}, \"shard_longest_seconds\": {:.6}, \
             \"shard_steals\": {}, \"merge_seconds\": {:.6}, \
             \"stage_seconds\": {{\"lower\": {:.6}, \"reuse\": {:.6}, \
             \"solve\": {:.6}, \"cascade\": {:.6}, \"classify\": {:.6}}}}},\n",
            st.scan_points,
            st.scan_blocks,
            st.window_steps,
            st.window_rebuilds,
            st.window_rebuild_rows,
            st.peak_survivors,
            st.scan_sets_dense,
            st.scan_sets_runs,
            st.time_scan_shards.as_secs_f64(),
            st.time_scan_longest_shard.as_secs_f64(),
            st.scan_steals,
            st.time_scan_merge.as_secs_f64(),
            st.time_lower.as_secs_f64(),
            st.time_reuse.as_secs_f64(),
            st.time_solve.as_secs_f64(),
            st.time_cascade.as_secs_f64(),
            st.time_classify.as_secs_f64()
        ));
    }
    s.push_str(&format!(
        "  \"sweep\": {{\"candidates\": {}, \"evaluations\": {}, \"fitted\": {}, \
         \"best_k\": {}, \"best_misses\": {}, \"sweep_seconds\": {sweep_s:.6}, \
         \"exhaustive_seconds\": {exhaustive_s:.6}, \"speedup\": {:.3}}},\n",
        sweep_res.candidates,
        sweep_res.evaluations,
        sweep_res.function.is_some(),
        sweep_res.best_k,
        sweep_res.best_misses,
        exhaustive_s / sweep_s.max(1e-12)
    ));
    s.push_str(&format!(
        "  \"incremental_fraction\": {:.4}\n}}\n",
        seq.window_steps as f64 / (seq.window_steps + seq.window_rebuild_rows).max(1) as f64
    ));
    s
}
