//! Sliding-window cascade performance dump (`BENCH_cascade.json`).
//!
//! Runs one full Table-1 matmul analysis through the legacy per-point
//! solver and through the engine's run-compressed sliding-window cascade
//! (sequential and sharded), checks the miss counts are bit-identical, and
//! writes a machine-readable JSON report: wall times, speedups, points
//! scanned, rows covered incrementally (window steps) vs fully (rebuild
//! rows), and the peak survivor-set size.
//!
//! ```text
//! cargo run --release -p cme-bench --bin perfdump -- \
//!     [--n 64] [--threads 0] [--expect-misses M] [--out BENCH_cascade.json]
//! ```
//!
//! `--threads 0` (the default) sizes the shard pool from the host's
//! available parallelism. With `--expect-misses`, the run exits nonzero
//! when the analysis total differs — the CI bench-smoke gate.

use std::time::Instant;

use cme_bench::{arg_value, table1_cache};
use cme_core::{AnalysisOptions, Analyzer, EngineStats, NestAnalysis};

#[allow(deprecated)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_value(&args, "--n").unwrap_or(64);
    let threads = arg_value(&args, "--threads").unwrap_or(0).max(0) as usize;
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_cascade.json".to_string());

    let cache = table1_cache();
    let nest = cme_kernels::mmult_with_bases(n, 0, n * n, 2 * n * n);
    let opts = AnalysisOptions::default();

    eprintln!("perfdump: table-1 matmul, N = {n}, {threads} threads");

    let t = Instant::now();
    #[allow(deprecated)]
    let legacy = cme_core::analyze_nest(&nest, cache, &opts);
    let legacy_s = t.elapsed().as_secs_f64();
    eprintln!(
        "  legacy:          {legacy_s:>8.3}s  ({} misses)",
        legacy.total_misses()
    );

    let mut seq = Analyzer::new(cache).options(opts.clone());
    let t = Instant::now();
    let seq_res = seq.analyze(&nest);
    let seq_s = t.elapsed().as_secs_f64();
    let seq_stats = seq.stats();
    eprintln!(
        "  cascade (1 thr): {seq_s:>8.3}s  ({:.2}x)",
        legacy_s / seq_s.max(1e-12)
    );

    let mut par = Analyzer::new(cache)
        .options(opts.clone())
        .parallel(true)
        .threads(threads);
    let t = Instant::now();
    let par_res = par.analyze(&nest);
    let par_s = t.elapsed().as_secs_f64();
    let par_stats = par.stats();
    eprintln!(
        "  cascade ({threads} thr): {par_s:>8.3}s  ({:.2}x)",
        legacy_s / par_s.max(1e-12)
    );
    eprintln!("{seq_stats}");

    assert_eq!(legacy, seq_res, "sequential cascade diverged from legacy");
    assert_eq!(legacy, par_res, "sharded cascade diverged from legacy");

    let json = render_json(
        n, threads, &legacy, legacy_s, seq_s, par_s, &seq_stats, &par_stats,
    );
    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("  wrote {out_path}");

    if let Some(expect) = arg_value(&args, "--expect-misses") {
        let got = legacy.total_misses();
        if got != expect as u64 {
            eprintln!("FAIL: expected {expect} total misses, analysis found {got}");
            std::process::exit(1);
        }
        eprintln!("  miss gate OK ({got} total misses)");
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    n: i64,
    threads: usize,
    legacy: &NestAnalysis,
    legacy_s: f64,
    seq_s: f64,
    par_s: f64,
    seq: &EngineStats,
    par: &EngineStats,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"kernel\": \"mmult\",\n  \"n\": {n},\n"));
    s.push_str("  \"cache\": {\"size_bytes\": 8192, \"assoc\": 1, \"line_bytes\": 32, \"elem_bytes\": 4},\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"total_misses\": {},\n", legacy.total_misses()));
    s.push_str(&format!("  \"legacy_seconds\": {legacy_s:.6},\n"));
    s.push_str(&format!("  \"cascade_seq_seconds\": {seq_s:.6},\n"));
    s.push_str(&format!("  \"cascade_par_seconds\": {par_s:.6},\n"));
    s.push_str(&format!(
        "  \"speedup_seq\": {:.3},\n  \"speedup_par\": {:.3},\n",
        legacy_s / seq_s.max(1e-12),
        legacy_s / par_s.max(1e-12)
    ));
    for (label, st) in [("cascade_seq", seq), ("cascade_par", par)] {
        s.push_str(&format!(
            "  \"{label}\": {{\"scan_points\": {}, \"scan_blocks\": {}, \
             \"window_steps\": {}, \"window_rebuilds\": {}, \
             \"window_rebuild_rows\": {}, \"peak_survivors\": {}}},\n",
            st.scan_points,
            st.scan_blocks,
            st.window_steps,
            st.window_rebuilds,
            st.window_rebuild_rows,
            st.peak_survivors
        ));
    }
    s.push_str(&format!(
        "  \"incremental_fraction\": {:.4}\n}}\n",
        seq.window_steps as f64 / (seq.window_steps + seq.window_rebuild_rows).max(1) as f64
    ));
    s
}
