//! Regenerates the **Section 5.1.3 parametric analysis** example: the miss
//! count of the `alv` loop as a quasi-polynomial (Ehrhart-style) function
//! of the inter-array spacing, minimized in closed form instead of by
//! exhaustive counting.
//!
//! ```text
//! cargo run --release -p cme-bench --bin parametric
//! ```

use cme_bench::BenchArgs;
use cme_core::Analyzer;
use cme_kernels::alv_with_layout;
use cme_opt::optimize_parameter;

fn main() {
    let cache = BenchArgs::from_env().cache();
    let (nu, nh) = (61i64, 30i64);
    let base_spacing = nu * nh; // packed
    println!("# Parametric padding of alv: misses as a function of ΔB offset");
    println!("# cache: {cache}");
    // The parameter sweep only moves a base address, exactly the engine's
    // fast path: one Analyzer session amortizes equation generation and
    // cascade solving across every probed spacing.
    let mut analyzer = Analyzer::new(cache);
    let mut evals = 0usize;
    let mut count = |p: i64| -> i64 {
        let nest = alv_with_layout(nu, nh, nu, base_spacing + p);
        analyzer.analyze(&nest).total_misses() as i64
    };
    // The set mapping is periodic in the address with period Cs (elements),
    // so candidate periods are powers of two up to 2048.
    let periods: Vec<usize> = (3..=11).map(|k| 1usize << k).collect();
    let range = 0..=((cache.size_elems() * 4) - 1);
    let res = optimize_parameter(
        |p| {
            evals += 1;
            count(p)
        },
        range.clone(),
        &periods,
    );
    println!("result: {res}");
    println!(
        "range width {} evaluated with only {} counts",
        range.end() - range.start() + 1,
        res.evaluations
    );
    // Verify against brute force on a subrange.
    let brute = (0..=511).map(count).min().unwrap();
    println!("brute-force minimum over the first 512 offsets: {brute}");
    assert!(res.best_misses <= brute, "parametric optimum must match");
}
