//! Regenerates **Table 1** of the paper: CME accuracy versus trace-driven
//! LRU simulation on the seven-kernel suite.
//!
//! ```text
//! cargo run --release -p cme-bench --bin table1 [-- --n 256 --assoc 1]
//! ```
//!
//! Columns mirror the paper: #arrays, max #refs to an array, #accesses,
//! simulated misses (the DineroIII column), CME misses, %error, #refs, and
//! the max number of reuse vectors used per reference. The paper's cache is
//! 8KB direct-mapped with 32B lines and 4B elements; `--assoc` exercises
//! the arbitrary-associativity generalization.
//!
//! At the paper's full size (N = 256) the run takes several minutes — the
//! matmul nest alone walks 16.7M iteration points per reference several
//! times. `--n 64` reproduces the same qualitative table in seconds.

use cme_bench::BenchArgs;
use cme_core::{compare_with_simulation, AnalysisOptions};
use cme_kernels::table1_suite;
use std::time::Instant;

fn main() {
    let args = BenchArgs::from_env();
    let n = args.n(64);
    let cache = args.cache();
    println!("# Table 1: CME miss counts vs LRU simulation");
    println!("# cache: {cache}; problem size N = {n} (alv fixed at 1221x30)");
    println!(
        "# {:<7} {:>7} {:>9} {:>12} {:>12} {:>12} {:>8} {:>6} {:>7} {:>9}",
        "nest",
        "arrays",
        "max-refs",
        "accesses",
        "sim-misses",
        "cme-misses",
        "%error",
        "refs",
        "max-RV",
        "secs"
    );
    let options = AnalysisOptions::default();
    for nest in table1_suite(n) {
        let t0 = Instant::now();
        let row = compare_with_simulation(&nest, cache, &options);
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "  {:<7} {:>7} {:>9} {:>12} {:>12} {:>12} {:>8.2} {:>6} {:>7} {:>9.2}",
            row.nest,
            row.arrays,
            row.max_refs_per_array,
            row.accesses,
            row.sim_misses,
            row.cme_misses,
            row.error_pct(),
            row.refs,
            row.max_rvs_used,
            dt
        );
        assert!(row.is_sound(), "soundness violated on {}", row.nest);
    }
    println!("# paper reference (N = 256, direct-mapped):");
    println!("#   mmult 7042336/7042336 0.0%   gauss 1998466/2019682 1.0%");
    println!("#   sor   8192/8192      0.0%   adi   391680/391680   0.0%");
    println!("#   trans 73456/73732    0.4%   alv   14090/14090     0.0%");
    println!("#   tom   258064/258064  0.0%");
}
