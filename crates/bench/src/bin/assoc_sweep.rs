//! Associativity sweep — the paper's headline generalization rendered as a
//! data series: CME and simulated miss counts for each kernel across
//! k ∈ {1, 2, 4, 8} ways at fixed capacity, plus fully associative.
//!
//! ```text
//! cargo run --release -p cme-bench --bin assoc_sweep [-- --n 48]
//! ```
//!
//! The series shows where extra associativity stops helping (conflict
//! misses absorbed, capacity floor reached) — and that the CME count
//! tracks the simulator at every point.

use cme_bench::BenchArgs;
use cme_cache::{simulate_nest, CacheConfig};
use cme_core::{AnalysisOptions, Analyzer};
use cme_kernels::table1_suite;

fn main() {
    let args = BenchArgs::from_env();
    let n = args.n(48);
    let size = args.value_or("--size", 8192);
    println!("# Associativity sweep at fixed capacity {size}B, 32B lines, N = {n}");
    println!(
        "# {:<7} {:>6} {:>12} {:>12} {:>8}",
        "nest", "ways", "cme-misses", "sim-misses", "%error"
    );
    let opts = AnalysisOptions::default();
    for nest in table1_suite(n) {
        let mut configs: Vec<(String, CacheConfig)> = [1i64, 2, 4, 8]
            .iter()
            .map(|&k| (k.to_string(), CacheConfig::new(size, k, 32, 4).unwrap()))
            .collect();
        configs.push((
            "full".to_string(),
            CacheConfig::fully_associative(size, 32, 4).unwrap(),
        ));
        for (label, cache) in configs {
            // One session per cache geometry (an Engine is pinned to one).
            let mut analyzer = Analyzer::new(cache).options(opts.clone()).parallel(true);
            let cme = analyzer.analyze(&nest).total_misses();
            let sim = simulate_nest(&nest, cache).total().misses();
            let err = if sim == 0 {
                0.0
            } else {
                100.0 * (cme as f64 - sim as f64) / sim as f64
            };
            println!(
                "  {:<7} {:>6} {:>12} {:>12} {:>8.2}",
                nest.name(),
                label,
                cme,
                sim,
                err
            );
            assert!(cme >= sim, "soundness violated");
        }
    }
}
