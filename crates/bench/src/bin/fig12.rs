//! Regenerates **Figure 12** of the paper: the surface of cache-miss counts
//! for the `alv` loop (Figure 11) as a function of the arrays' row size and
//! the difference of their base addresses.
//!
//! ```text
//! cargo run --release -p cme-bench --bin fig12 [-- --full 1] > fig12.csv
//! ```
//!
//! Output is a CSV grid `row_size, delta_b, misses` (CME-counted — the
//! point of the figure is that the surface is too irregular for heuristics,
//! which our analysis reproduces). By default a CI-scale instance of the
//! loop is swept; `--full 1` uses the paper's 1221×30 arrays (slower).

use cme_bench::BenchArgs;
use cme_core::{AnalysisOptions, Analyzer};
use cme_kernels::alv_with_layout;

fn main() {
    let args = BenchArgs::from_env();
    let full = args.value_or("--full", 0) == 1;
    let cache = args.cache();
    let (nu, nh) = if full { (1221, 30) } else { (61, 30) };
    println!("# Figure 12: alv miss surface; cache {cache}");
    println!("row_size,delta_b,misses");
    // One Analyzer session over the whole sweep: the base-address axis
    // (delta_b) changes only array layout, so the engine re-solves each
    // point from memoized cascades instead of from scratch.
    let mut analyzer = Analyzer::new(cache).options(AnalysisOptions::default());
    // Sweep the row (column) size around nu and the base distance around
    // a few cache-span multiples, mirroring the paper's axes.
    let row_sizes: Vec<i64> = (0..16).map(|k| nu + k).collect();
    let span = cache.size_elems();
    let deltas: Vec<i64> = (0..32)
        .map(|k| 2 * span + k * (cache.line_elems() / 2))
        .collect();
    let mut min = (u64::MAX, 0i64, 0i64);
    let mut max = (0u64, 0i64, 0i64);
    for &rs in &row_sizes {
        for &db in &deltas {
            let nest = alv_with_layout(nu, nh, rs, db.max(rs * nh + 1));
            let misses = analyzer.analyze(&nest).total_misses();
            println!("{rs},{db},{misses}");
            if misses < min.0 {
                min = (misses, rs, db);
            }
            if misses > max.0 {
                max = (misses, rs, db);
            }
        }
    }
    eprintln!(
        "# surface: min {} at (row {}, dB {}); max {} at (row {}, dB {}); ratio {:.1}x",
        min.0,
        min.1,
        min.2,
        max.0,
        max.1,
        max.2,
        max.0 as f64 / min.0.max(1) as f64
    );
    eprintln!("# the paper's point: the surface is highly irregular, so only");
    eprintln!("# a precise method can pick the conflict-free (row, dB) pairs.");
    eprintln!("#\n# engine accounting over the sweep:");
    for line in analyzer.stats().to_string().lines() {
        eprintln!("#   {line}");
    }
}
