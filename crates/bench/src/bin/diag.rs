//! Developer diagnostic: pointwise CME-vs-simulator diff for one kernel,
//! plus the incremental engine's work accounting (memo hit rates, phase
//! timings, Diophantine-memo traffic) over a cold-then-warm re-analysis.
//! Usage: `diag <kernel> [--n N] [--size B] [--assoc K] [--line B]`

use cme_bench::{resolve_kernel, BenchArgs};
use cme_cache::Simulator;
use cme_core::{AnalysisOptions, Analyzer};
use cme_ir::LoopNest;
use cme_reuse::{reuse_vectors, ReuseOptions};
use std::collections::HashSet;

fn main() {
    let args = BenchArgs::from_env();
    let kernel = args.positional(0).unwrap_or("mmult");
    let n = args.n(12);
    // A small default cache: the pointwise diff walks every iteration
    // point, so diagnosis sizes stay tiny.
    let cache = args.cache_with(1024, 1, 32);
    let nest: LoopNest = match kernel {
        "mmult" => cme_kernels::mmult_with_bases(n, 0, n * n, 2 * n * n),
        "alv-small" => cme_kernels::alv_with_layout(30, 12, 30, 512),
        "tiled" => cme_kernels::tiled_mmult(8, 4, 2, 0, 64, 128),
        other => resolve_kernel(other, n),
    };
    println!("{nest}\ncache {cache}");

    // Simulator per-point outcomes.
    let mut sim = Simulator::new(cache);
    let addrs: Vec<_> = nest
        .references()
        .iter()
        .map(|r| nest.address_affine(r.id()))
        .collect();
    let mut sim_points: Vec<HashSet<Vec<i64>>> = vec![HashSet::new(); addrs.len()];
    let mut sp = nest.space();
    while let Some(p) = sp.next_point() {
        for (s, af) in addrs.iter().enumerate() {
            if sim.access(af.eval(&p)).is_miss() {
                sim_points[s].insert(p.clone());
            }
        }
    }

    let opts = AnalysisOptions::builder().collect_miss_points(true).build();
    let mut analyzer = Analyzer::new(cache).options(opts.clone());
    let analysis = analyzer.analyze(&nest);
    for (r, ra) in analysis.per_ref.iter().enumerate() {
        let mut cme_points: HashSet<Vec<i64>> = ra.cold_miss_points.iter().cloned().collect();
        for (p, _) in &ra.replacement_miss_points {
            cme_points.insert(p.clone());
        }
        let extra: Vec<_> = cme_points.difference(&sim_points[r]).collect();
        let missing: Vec<_> = sim_points[r].difference(&cme_points).collect();
        println!(
            "ref {r} {}: cme {} sim {} (+{} extra, -{} missing)",
            ra.label,
            cme_points.len(),
            sim_points[r].len(),
            extra.len(),
            missing.len()
        );
        let mut extra_sorted: Vec<_> = extra.iter().map(|p| (*p).clone()).collect();
        extra_sorted.sort();
        for p in extra_sorted.iter().take(6) {
            let along = ra
                .replacement_miss_points
                .iter()
                .find(|(q, _)| q == p)
                .map(|(_, v)| *v as i64)
                .unwrap_or(-1);
            println!("   extra {p:?} along vector #{along}");
        }
        if !extra.is_empty() {
            let rvs = reuse_vectors(&nest, &cache, ra.dest, &ReuseOptions::default());
            for (vi, rv) in rvs.iter().enumerate().take(25) {
                println!("   rv#{vi}: {rv}");
            }
        }
    }
    println!(
        "totals: cme {} sim {}",
        analysis.total_misses(),
        sim.misses()
    );

    // Engine accounting: warm re-analysis (all memo hits) plus the
    // symbolic system generated twice (reuse) and its replacement
    // equations counted twice through the Diophantine memo.
    let warm = analyzer.analyze(&nest);
    assert_eq!(warm.total_misses(), analysis.total_misses());
    for _ in 0..2 {
        let sys = analyzer.system(&nest);
        if let Some(re) = sys.per_ref.first() {
            for g in re.groups.iter().take(1) {
                for eq in g.replacements.iter().take(4) {
                    analyzer.engine().count_replacement(eq, &nest);
                }
            }
        }
    }
    println!("\n{}", analyzer.stats());
    let memo = analyzer.engine().solve_memo();
    println!(
        "diophantine memo: {} entries, {:.1}% hit rate",
        memo.len(),
        memo.hit_rate() * 100.0
    );
}
