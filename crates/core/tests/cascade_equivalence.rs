//! Representation-equivalence suite for the cascade scan core: the
//! survivor/scan sets may be run-compressed or flat dense (picked per
//! scan by the density heuristic, or forced), and every analysis result
//! must be bit-identical whichever side each set lands on — across
//! associativities from direct-mapped to fully associative.

use cme_cache::CacheConfig;
use cme_core::solve::AnalysisOptions;
use cme_core::{Analyzer, SurvivorRepr};
use cme_ir::LoopNest;
use cme_kernels::{mmult, table1_suite, trans};
use cme_testgen::{arb_nest, NestDistribution};
use proptest::prelude::*;

/// Cache geometries from direct-mapped through fully associative
/// (size 2048 B, 32 B lines, 4 B elements → k = 64 is full).
fn assoc_sweep() -> Vec<CacheConfig> {
    [1, 2, 4, 8, 64]
        .into_iter()
        .map(|k| CacheConfig::new(2048, k, 32, 4).unwrap())
        .collect()
}

fn reprs() -> [SurvivorRepr; 3] {
    [
        SurvivorRepr::Auto,
        SurvivorRepr::ForceRuns,
        SurvivorRepr::ForceDense,
    ]
}

/// Runs `nest` under every representation policy on one cache and
/// asserts all three agree bit-for-bit (including per-reference,
/// per-vector reports).
fn assert_repr_identical(cache: CacheConfig, nest: &LoopNest, label: &str) {
    let mut baseline = None;
    for repr in reprs() {
        let opts = AnalysisOptions::builder().survivor_repr(repr).build();
        let mut analyzer = Analyzer::new(cache).options(opts);
        let analysis = analyzer.analyze(nest);
        match &baseline {
            None => baseline = Some(analysis),
            Some(b) => assert_eq!(
                b,
                &analysis,
                "{label}: {repr:?} diverged from {:?}",
                reprs()[0]
            ),
        }
    }
}

#[test]
fn mmult_is_bit_identical_across_reprs_and_associativity() {
    for cache in assoc_sweep() {
        // N=24 straddles the density threshold: mmult's gap-one vectors
        // leave dense survivor fronts while the stepping vectors leave
        // sparse ones, so an Auto run mixes both representations.
        assert_repr_identical(cache, &mmult(24), "mmult N=24");
    }
}

#[test]
fn table1_kernels_are_bit_identical_across_reprs() {
    // Full sweep on one representative k-way geometry; mmult above
    // covers the associativity axis.
    let cache = CacheConfig::new(2048, 4, 32, 4).unwrap();
    for nest in table1_suite(16) {
        let label = nest.name().to_string();
        assert_repr_identical(cache, &nest, &label);
    }
}

#[test]
fn forced_reprs_do_not_share_solve_memo_entries() {
    // One session, repr flipped between queries: the solve memo must not
    // hand a ForceDense query a run-compressed artifact (or vice versa).
    // Results still agree — only the internal representation is keyed.
    let cache = CacheConfig::new(2048, 2, 32, 4).unwrap();
    let nest = trans(24);
    let mut analyzer = Analyzer::new(cache);
    let runs_opts = AnalysisOptions::builder()
        .survivor_repr(SurvivorRepr::ForceRuns)
        .build();
    let dense_opts = AnalysisOptions::builder()
        .survivor_repr(SurvivorRepr::ForceDense)
        .build();
    let a = analyzer.analyze_with_options(&nest, &runs_opts);
    let built_after_runs = analyzer.stats().cascades_built;
    let b = analyzer.analyze_with_options(&nest, &dense_opts);
    assert_eq!(a, b, "repr flip changed the analysis");
    assert!(
        analyzer.stats().cascades_built > built_after_runs,
        "ForceDense reused a ForceRuns solve set: {}",
        analyzer.stats()
    );
    // Same repr again: now it must reuse.
    let built_after_dense = analyzer.stats().cascades_built;
    let c = analyzer.analyze_with_options(&nest, &dense_opts);
    assert_eq!(a, c);
    assert_eq!(
        analyzer.stats().cascades_built,
        built_after_dense,
        "warm same-repr query rebuilt its solve set"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random nests, both forced representations and the heuristic, on a
    /// k-way geometry: all bit-identical.
    #[test]
    fn random_nests_are_repr_invariant(
        nest in arb_nest(NestDistribution::default()),
    ) {
        let cache = CacheConfig::new(1024, 4, 32, 4).unwrap();
        let mut baseline = None;
        for repr in reprs() {
            let opts = AnalysisOptions::builder().survivor_repr(repr).build();
            let mut analyzer = Analyzer::new(cache).options(opts);
            let analysis = analyzer.analyze(&nest);
            match &baseline {
                None => baseline = Some(analysis),
                Some(b) => prop_assert_eq!(b, &analysis, "{:?} diverged", repr),
            }
        }
    }
}
