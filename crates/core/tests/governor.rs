//! Governor behaviour on the dense cascade path: a tiny budget must
//! degrade a forced-dense analysis to a sound bound (never panic, never
//! undercount), and truncated outcomes must never leak into the memo
//! tables or the persistent artifact store.

use std::sync::Arc;

use cme_cache::CacheConfig;
use cme_core::solve::AnalysisOptions;
use cme_core::{Analyzer, ArtifactStore, Budget, SurvivorRepr};
use cme_kernels::mmult;

fn dense_opts() -> AnalysisOptions {
    AnalysisOptions::builder()
        .survivor_repr(SurvivorRepr::ForceDense)
        .build()
}

#[test]
fn tiny_budget_truncates_the_dense_path_to_a_sound_bound() {
    let cache = CacheConfig::new(2048, 4, 32, 4).unwrap();
    let nest = mmult(16);
    let exact = Analyzer::new(cache).options(dense_opts()).analyze(&nest);

    let governed = Analyzer::new(cache)
        .options(dense_opts())
        .budget(Budget::unlimited().with_max_solves(50))
        .try_analyze(&nest)
        .unwrap();
    assert!(
        governed.outcome.is_exhausted(),
        "50 solves cannot finish mmult N=16: {:?}",
        governed.outcome
    );
    // Sound: truncation only ever adds misses, bounded by all-miss.
    let space: u64 = nest.space().count();
    let per_ref = nest.references().len() as u64;
    assert!(governed.analysis.total_misses() >= exact.total_misses());
    assert!(governed.analysis.total_misses() <= space * per_ref);
}

#[test]
fn truncated_dense_scans_are_never_memoized() {
    let cache = CacheConfig::new(2048, 4, 32, 4).unwrap();
    let nest = mmult(16);
    // A solve budget (not a point ceiling) trips *mid-pipeline*: the
    // first reference's scans still run, truncated by the dead governor.
    let mut analyzer = Analyzer::new(cache)
        .options(dense_opts())
        .budget(Budget::unlimited().with_max_solves(50));
    let first = analyzer.try_analyze(&nest).unwrap();
    assert!(first.outcome.is_exhausted(), "{:?}", first.outcome);
    let after_first = analyzer.stats();

    // A second identical query must redo the truncated work — nothing of
    // a truncated scan may be served from the memo tables.
    let second = analyzer.try_analyze(&nest).unwrap();
    assert!(second.outcome.is_exhausted());
    assert_eq!(
        first.analysis, second.analysis,
        "degradation must be deterministic"
    );
    let after_second = analyzer.stats();
    assert_eq!(
        after_second.scans_reused, after_first.scans_reused,
        "a truncated scan outcome was memoized: {after_second}"
    );
    assert!(
        after_second.scans_executed > after_first.scans_executed,
        "second truncated query executed no scans: {after_second}"
    );
}

#[test]
fn truncated_dense_analyses_are_never_persisted() {
    let dir = std::env::temp_dir().join(format!(
        "cme-governor-test-{}-{:x}",
        std::process::id(),
        std::ptr::from_ref(&dense_opts) as usize
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(ArtifactStore::open(&dir).unwrap());
    let cache = CacheConfig::new(2048, 4, 32, 4).unwrap();
    let nest = mmult(16);

    let mut truncated = Analyzer::new(cache)
        .options(dense_opts())
        .budget(Budget::unlimited().with_max_solves(50))
        .store(store.clone());
    let g = truncated.try_analyze(&nest).unwrap();
    assert!(g.outcome.is_exhausted());
    assert_eq!(
        truncated.stats().store_writes,
        0,
        "a truncated analysis reached the artifact store"
    );
    assert_eq!(store.entry_count(), 0);

    // The same session shape with no budget persists normally.
    let mut complete = Analyzer::new(cache)
        .options(dense_opts())
        .store(store.clone());
    let full = complete.analyze(&nest);
    assert!(complete.stats().store_writes > 0);
    assert!(store.entry_count() > 0);
    // And the degraded run's overcount brackets the persisted truth.
    assert!(g.analysis.total_misses() >= full.total_misses());

    let _ = std::fs::remove_dir_all(&dir);
}
