//! The miss-finding algorithm (Figure 6), generalized to arbitrary
//! associativity (Section 4.2).
//!
//! For each reference, reuse vectors are processed in lexicographically
//! increasing order (most recent reuse first). Along each vector `r⃗`, every
//! still-indeterminate iteration point `i⃗` is classified:
//!
//! - **cold-CME solution** — the source access at `p⃗ = i⃗ − r⃗` is outside
//!   the iteration space or touches a different memory line: the point stays
//!   *indeterminate* and is passed to the next vector;
//! - **replacement miss along `r⃗`** — at least `k` distinct memory lines
//!   mapping to the victim's cache set are accessed in the reuse window
//!   `(p⃗ … i⃗)` (distinct lines ↔ distinct wraparound values `n` of
//!   Equation 4): a *definite miss*;
//! - otherwise a *definite hit* (fewer than `k` distinct conflicts since the
//!   most recent same-line access — the LRU stack-distance criterion).
//!
//! Points still indeterminate after the last vector are cold misses. The
//! `ε` option stops early once the indeterminate set is small enough,
//! trading precision for time exactly as in the paper (remaining points are
//! conservatively counted as misses, per line 20 of Figure 6).

use crate::pointset::PointSet;
use cme_cache::CacheConfig;
use cme_ir::{LoopNest, RefId};
use cme_math::Affine;
#[cfg(test)]
use cme_reuse::reuse_vectors;
use cme_reuse::{ReuseOptions, ReuseVector};
use std::fmt;

/// Options controlling the miss-finding algorithm (used by every
/// [`crate::Analyzer`] entry point).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// How reuse vectors are generated.
    pub reuse: ReuseOptions,
    /// Stop refining a reference once its indeterminate set has at most this
    /// many points (the `ε` of Figure 6); remaining points are counted as
    /// misses. `0` gives the exact answer.
    pub epsilon: u64,
    /// Disable early-exit in window scans and record per-equation contention
    /// counts (the per-`ReplEqn` solution counts of Figure 8). Slower.
    pub exact_equation_counts: bool,
    /// Record the concrete miss points (replacement and cold) in the
    /// [`RefAnalysis`] — the raw material for interactive analysis
    /// (Section 5.2). Memory-heavy for big nests.
    pub collect_miss_points: bool,
    /// Scan reuse windows point by point instead of row-summarized
    /// (an ablation knob: the row-summarized scanner finds conflicting
    /// lines in O(conflicts) per innermost row via modular arithmetic;
    /// this flag restores the naive O(points·refs) walk for comparison).
    pub pointwise_windows: bool,
    /// How the engine stores survivor and scan sets: run-compressed,
    /// dense bitmap rows, or (default) an automatic per-scan choice from
    /// a density estimate. Either representation produces bit-identical
    /// results; this knob only moves the time/memory trade.
    pub survivor_repr: crate::pointset::SurvivorRepr,
}

impl AnalysisOptions {
    /// Starts a validating builder over the default options.
    ///
    /// ```
    /// use cme_core::AnalysisOptions;
    /// let opts = AnalysisOptions::builder()
    ///     .epsilon(1000)
    ///     .collect_miss_points(true)
    ///     .build();
    /// assert_eq!(opts.epsilon, 1000);
    /// ```
    pub fn builder() -> AnalysisOptionsBuilder {
        AnalysisOptionsBuilder {
            options: AnalysisOptions::default(),
        }
    }
}

/// Invalid [`AnalysisOptions`] combination, reported by
/// [`AnalysisOptionsBuilder::try_build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidOptions {
    reason: String,
}

impl fmt::Display for InvalidOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid analysis options: {}", self.reason)
    }
}

impl std::error::Error for InvalidOptions {}

/// Typed builder for [`AnalysisOptions`] that rejects inconsistent
/// combinations at construction time instead of letting them skew results
/// silently.
///
/// Current validation rule: a nonzero `ε` cannot be combined with
/// `exact_equation_counts` — the early stop skips the very window scans
/// whose per-equation contention counts the exact mode promises, so the
/// reported counts would be quietly incomplete.
#[derive(Debug, Clone)]
pub struct AnalysisOptionsBuilder {
    options: AnalysisOptions,
}

impl AnalysisOptionsBuilder {
    /// Sets the reuse-vector generation knobs.
    pub fn reuse(mut self, reuse: ReuseOptions) -> Self {
        self.options.reuse = reuse;
        self
    }

    /// Sets the `ε` early-stop threshold of Figure 6 (`0` = exact).
    pub fn epsilon(mut self, epsilon: u64) -> Self {
        self.options.epsilon = epsilon;
        self
    }

    /// Enables per-equation contention counting (disables scan early-exit).
    pub fn exact_equation_counts(mut self, on: bool) -> Self {
        self.options.exact_equation_counts = on;
        self
    }

    /// Records concrete miss points in the result.
    pub fn collect_miss_points(mut self, on: bool) -> Self {
        self.options.collect_miss_points = on;
        self
    }

    /// Scans reuse windows point by point (ablation knob).
    pub fn pointwise_windows(mut self, on: bool) -> Self {
        self.options.pointwise_windows = on;
        self
    }

    /// Sets the survivor/scan set representation policy.
    pub fn survivor_repr(mut self, repr: crate::pointset::SurvivorRepr) -> Self {
        self.options.survivor_repr = repr;
        self
    }

    /// Validates and returns the options.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidOptions`] when `epsilon > 0` is combined with
    /// `exact_equation_counts`.
    pub fn try_build(self) -> Result<AnalysisOptions, InvalidOptions> {
        if self.options.epsilon > 0 && self.options.exact_equation_counts {
            return Err(InvalidOptions {
                reason: format!(
                    "epsilon = {} with exact_equation_counts: the early stop \
                     skips window scans, so per-equation contention counts \
                     would be incomplete",
                    self.options.epsilon
                ),
            });
        }
        Ok(self.options)
    }

    /// Validates and returns the options.
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`AnalysisOptionsBuilder::try_build`]
    /// rejects.
    pub fn build(self) -> AnalysisOptions {
        match self.try_build() {
            Ok(o) => o,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Per-reuse-vector accounting — one column of Figure 8's table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorReport {
    /// The reuse vector investigated.
    pub reuse: ReuseVector,
    /// Indeterminate points entering this vector (`|C|`).
    pub examined: u64,
    /// Cold-CME solution points (stay indeterminate).
    pub cold_solutions: u64,
    /// Replacement misses found along this vector.
    pub replacement_misses: u64,
    /// Per-perpetrator contention counts — the number of distinct `(i⃗, n)`
    /// solutions of each replacement equation. Only populated when
    /// [`AnalysisOptions::exact_equation_counts`] is set.
    pub contentions_per_perpetrator: Vec<u64>,
    /// Definite (replacement) misses found so far, inclusive.
    pub cumulative_replacement_misses: u64,
}

/// Full analysis result for one reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefAnalysis {
    /// The analyzed reference.
    pub dest: RefId,
    /// Its display label.
    pub label: String,
    /// Per-vector progress, in processing order.
    pub vectors: Vec<VectorReport>,
    /// Cold misses (points indeterminate after the last vector, including
    /// any left by an `ε` early stop).
    pub cold_misses: u64,
    /// Replacement misses (definite misses found along some vector).
    pub replacement_misses: u64,
    /// Whether the `ε` threshold stopped the refinement early.
    pub early_stopped: bool,
    /// Replacement miss points, when requested via
    /// [`AnalysisOptions::collect_miss_points`] (paired with the reuse
    /// vector index they were found along).
    pub replacement_miss_points: Vec<(Vec<i64>, usize)>,
    /// Cold miss points, when requested.
    pub cold_miss_points: Vec<Vec<i64>>,
}

impl RefAnalysis {
    /// Total misses attributed to this reference.
    pub fn total_misses(&self) -> u64 {
        self.cold_misses + self.replacement_misses
    }

    /// Number of reuse vectors actually investigated.
    pub fn vectors_used(&self) -> usize {
        self.vectors.len()
    }
}

/// Full analysis result for a nest.
#[derive(Debug, Clone, PartialEq)]
pub struct NestAnalysis {
    /// Name of the analyzed nest.
    pub nest_name: String,
    /// Cache geometry analyzed against.
    pub cache: CacheConfig,
    /// Per-reference results, in statement order.
    pub per_ref: Vec<RefAnalysis>,
}

impl NestAnalysis {
    /// Total misses over all references.
    pub fn total_misses(&self) -> u64 {
        self.per_ref.iter().map(RefAnalysis::total_misses).sum()
    }

    /// Total cold misses.
    pub fn total_cold(&self) -> u64 {
        self.per_ref.iter().map(|r| r.cold_misses).sum()
    }

    /// Total replacement misses.
    pub fn total_replacement(&self) -> u64 {
        self.per_ref.iter().map(|r| r.replacement_misses).sum()
    }

    /// Largest number of reuse vectors used by any reference.
    pub fn max_vectors_used(&self) -> usize {
        self.per_ref
            .iter()
            .map(RefAnalysis::vectors_used)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for NestAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CME analysis of `{}` on {}:", self.nest_name, self.cache)?;
        for r in &self.per_ref {
            writeln!(
                f,
                "  {:>12}: {} cold + {} replacement = {} misses ({} reuse vectors)",
                r.label,
                r.cold_misses,
                r.replacement_misses,
                r.total_misses(),
                r.vectors_used()
            )?;
        }
        write!(
            f,
            "  total: {} cold + {} replacement = {} misses",
            self.total_cold(),
            self.total_replacement(),
            self.total_misses()
        )
    }
}

/// Window scanner: accumulates the distinct conflicting memory lines seen in
/// one reuse window (the semantic evaluation of the replacement equations).
/// Shared between the scan helpers below and the engine's cascade stage
/// ([`crate::engine`]).
pub(crate) struct Scanner<'a> {
    cache: &'a CacheConfig,
    pub(crate) addrs: &'a [Affine],
    k: usize,
    exact: bool,
    dest_set: i64,
    dest_line: i64,
    /// Distinct conflicting lines across all perpetrators.
    pub(crate) distinct: Vec<i64>,
    /// Distinct conflicting lines per perpetrator (exact mode only).
    pub(crate) per_perp: Vec<Vec<i64>>,
}

impl<'a> Scanner<'a> {
    pub(crate) fn new(cache: &'a CacheConfig, addrs: &'a [Affine], k: usize, exact: bool) -> Self {
        Scanner {
            cache,
            addrs,
            k,
            exact,
            dest_set: 0,
            dest_line: 0,
            distinct: Vec::with_capacity(k + 1),
            per_perp: vec![Vec::new(); addrs.len()],
        }
    }

    pub(crate) fn reset(&mut self, dest_set: i64, dest_line: i64) {
        self.dest_set = dest_set;
        self.dest_line = dest_line;
        self.distinct.clear();
        if self.exact {
            for v in &mut self.per_perp {
                v.clear();
            }
        }
    }

    /// Records a conflicting line hit by perpetrator `s`. Returns `false`
    /// when the scan may stop early (enough conflicts for a miss, fast
    /// mode).
    fn record(&mut self, s: usize, line: i64) -> bool {
        if self.exact && !self.per_perp[s].contains(&line) {
            self.per_perp[s].push(line);
        }
        if !self.distinct.contains(&line) {
            self.distinct.push(line);
            if !self.exact && self.distinct.len() >= self.k {
                return false;
            }
        }
        true
    }

    /// Processes perpetrator `s`'s access at address `addr`.
    fn check_addr(&mut self, s: usize, addr: i64) -> bool {
        if self.cache.cache_set(addr) == self.dest_set {
            let line = self.cache.memory_line(addr);
            if line != self.dest_line {
                return self.record(s, line);
            }
        }
        true
    }

    /// Processes perpetrator `s`'s access at point `q`. Returns `false` when
    /// the scan may stop early (enough conflicts for a miss, fast mode).
    pub(crate) fn check(&mut self, q: &[i64], s: usize) -> bool {
        let addr = self.addrs[s].eval(q);
        self.check_addr(s, addr)
    }

    /// Processes a whole arithmetic progression of accesses by perpetrator
    /// `s`: addresses `base, base+stride, …` (`count` of them) — one
    /// innermost-loop row. Only the accesses mapping to the victim's cache
    /// set can matter, and those are found directly:
    ///
    /// - `|stride| <= Ls`: the progression touches every memory line in its
    ///   address range, so the conflicting lines are simply the lines
    ///   `≡ dest_set (mod Ns)` within the range;
    /// - `|stride| > Ls`: an access conflicts iff its address falls in the
    ///   window `[dest_set·Ls, (dest_set+1)·Ls) (mod Cs/k)` — a linear
    ///   congruence solved with the extended GCD.
    ///
    /// Equivalent to `count` calls of [`Scanner::check_addr`], in time
    /// proportional to the number of *conflicting* accesses.
    fn check_row(&mut self, s: usize, base: i64, stride: i64, count: i64) -> bool {
        if count <= 0 {
            return true;
        }
        if stride == 0 || count == 1 {
            return self.check_addr(s, base);
        }
        // Normalize to a positive stride (distinct-line sets are
        // order-insensitive).
        let (base, stride) = if stride < 0 {
            (base + stride * (count - 1), -stride)
        } else {
            (base, stride)
        };
        let ls = self.cache.line_elems();
        let ns = self.cache.num_sets();
        if stride <= ls {
            // Contiguous line coverage.
            let lmin = cme_math::gcd::floor_div(base, ls);
            let lmax = cme_math::gcd::floor_div(base + stride * (count - 1), ls);
            let mut line = lmin + cme_math::gcd::modulo(self.dest_set - lmin, ns);
            while line <= lmax {
                if line != self.dest_line && !self.record(s, line) {
                    return false;
                }
                line += ns;
            }
            return true;
        }
        // Sparse case: solve stride·q ≡ r − base (mod M) for r in the
        // victim set's address window within one way span M = Ns·Ls.
        let m = self.cache.way_span_elems();
        let g = cme_math::gcd::gcd(stride, m);
        let m1 = m / g;
        let s1 = stride / g;
        // Inverse of s1 modulo m1 (coprime by construction).
        let inv = if m1 == 1 {
            0
        } else {
            let (_, a, _) = cme_math::gcd::extended_gcd(cme_math::gcd::modulo(s1, m1), m1);
            cme_math::gcd::modulo(a, m1)
        };
        let w0 = self.dest_set * ls;
        // Residues in [w0, w0+Ls) compatible with base (mod g).
        let mut r = w0 + cme_math::gcd::modulo(base - w0, g);
        while r < w0 + ls {
            let rhs = cme_math::gcd::modulo(r - base, m) / g;
            let q0 = cme_math::gcd::modulo(rhs * inv, m1.max(1));
            let mut q = q0;
            while q < count {
                let addr = base + stride * q;
                debug_assert_eq!(self.cache.cache_set(addr), self.dest_set);
                let line = self.cache.memory_line(addr);
                if line != self.dest_line && !self.record(s, line) {
                    return false;
                }
                q += m1.max(1);
            }
            r += g;
        }
        true
    }
}

/// Naive interior scan: visits every point and every reference — the
/// baseline the row-summarized scanner is measured against.
pub(crate) fn scan_interior_pointwise(
    scanner: &mut Scanner<'_>,
    space: &cme_ir::IterationSpace<'_>,
    p: &[i64],
    i: &[i64],
) -> bool {
    let nrefs = scanner.addrs.len();
    let mut go = true;
    space.for_each_between(p, i, |q| {
        for s in 0..nrefs {
            if !scanner.check(q, s) {
                go = false;
                return false;
            }
        }
        true
    });
    go
}

/// Scans the interior of a reuse window — every iteration point strictly
/// between `p` and `i` — row by row: full innermost rows are handed to
/// [`Scanner::check_row`] (O(conflicts) instead of O(points)), partial rows
/// at the two ends are clipped. Returns `false` on early exit.
pub(crate) fn scan_interior(
    scanner: &mut Scanner<'_>,
    space: &cme_ir::IterationSpace<'_>,
    p: &[i64],
    i: &[i64],
) -> bool {
    let n = p.len();
    let inner = n - 1;
    let nrefs = scanner.addrs.len();
    let mut point = vec![0i64; n];
    let scan_row =
        |scanner: &mut Scanner<'_>, point: &mut [i64], prefix: &[i64], lo: i64, hi: i64| -> bool {
            if lo > hi {
                return true;
            }
            point[..inner].copy_from_slice(prefix);
            point[inner] = lo;
            for s in 0..nrefs {
                let base = scanner.addrs[s].eval(point);
                let stride = scanner.addrs[s].coeff(inner);
                if !scanner.check_row(s, base, stride, hi - lo + 1) {
                    return false;
                }
            }
            true
        };
    if p[..inner] == i[..inner] {
        return scan_row(scanner, &mut point, &p[..inner], p[inner] + 1, i[inner] - 1);
    }
    // Tail of p's row.
    if let Some((_, phi)) = space.innermost_bounds(&p[..inner]) {
        if !scan_row(scanner, &mut point, &p[..inner], p[inner] + 1, phi) {
            return false;
        }
    }
    // Full rows strictly between the two prefixes.
    let mut prefix = p[..inner].to_vec();
    while let Some(next) = space.prefix_successor(&prefix) {
        if cme_math::lexi::lex_cmp(&next, &i[..inner]) != std::cmp::Ordering::Less {
            break;
        }
        if let Some((lo, hi)) = space.innermost_bounds(&next) {
            if !scan_row(scanner, &mut point, &next, lo, hi) {
                return false;
            }
        }
        prefix = next;
    }
    // Head of i's row.
    if let Some((ilo, _)) = space.innermost_bounds(&i[..inner]) {
        if !scan_row(scanner, &mut point, &i[..inner], ilo, i[inner] - 1) {
            return false;
        }
    }
    true
}

/// Analyzes one reference with an explicit reuse-vector list (already in
/// processing order) — the *reference implementation* of the miss-finding
/// algorithm: one monolithic pass per reuse vector, no caching. The
/// staged engine ([`crate::Analyzer`]) is validated against it bit for
/// bit, runs it verbatim when caching is off, and exposes it publicly as
/// [`crate::Analyzer::analyze_reference_with_vectors`] (the Figure 8
/// entry point with exactly the paper's three vectors).
pub(crate) fn solve_reference(
    nest: &LoopNest,
    cache: CacheConfig,
    dest: RefId,
    rvs: &[ReuseVector],
    options: &AnalysisOptions,
) -> RefAnalysis {
    let depth = nest.depth();
    let space = nest.space();
    let k = cache.assoc() as usize;
    let nrefs = nest.references().len();
    let addrs: Vec<Affine> = nest
        .references()
        .iter()
        .map(|r| nest.address_affine(r.id()))
        .collect();
    let dest_idx = dest.index();
    let dest_addr = addrs[dest_idx].clone();

    let mut vectors: Vec<VectorReport> = Vec::new();
    let mut replacement_misses = 0u64;
    let mut c: Option<PointSet> = None;
    let mut early_stopped = false;
    let mut repl_points: Vec<(Vec<i64>, usize)> = Vec::new();

    for (rv_index, rv) in rvs.iter().enumerate() {
        let examined = match &c {
            Some(set) => set.len(),
            None => space.count(),
        };
        if examined <= options.epsilon {
            early_stopped = c.is_some() && examined > 0;
            break;
        }
        let mut next = PointSet::new(depth);
        let mut cold_solutions = 0u64;
        let mut repl_here = 0u64;
        let mut eqn = vec![0u64; nrefs];
        let mut scanner = Scanner::new(&cache, &addrs, k, options.exact_equation_counts);
        let r = rv.vector();
        let src_idx = rv.source().index();
        let src_addr = addrs[src_idx].clone();
        let intra = rv.is_intra_iteration();
        let mut p = vec![0i64; depth];

        let mut handle = |i: &[i64]| {
            for l in 0..depth {
                p[l] = i[l] - r[l];
            }
            let a_dest = dest_addr.eval(i);
            let dest_line = cache.memory_line(a_dest);
            let cold = (!intra && !space.contains(&p))
                || cache.memory_line(src_addr.eval(&p)) != dest_line;
            if cold {
                next.push(i);
                cold_solutions += 1;
                return;
            }
            // Scan the reuse window for distinct same-set conflicts.
            scanner.reset(cache.cache_set(a_dest), dest_line);
            let mut go = true;
            if intra {
                for s in (src_idx + 1)..dest_idx {
                    if !scanner.check(i, s) {
                        break;
                    }
                }
                let _ = go;
            } else {
                // Tail of the source iteration (statements after the source).
                for s in (src_idx + 1)..nrefs {
                    if !scanner.check(&p, s) {
                        go = false;
                        break;
                    }
                }
                // Whole iterations strictly between, scanned row by row
                // (or point by point under the ablation flag).
                if go {
                    go = if options.pointwise_windows {
                        scan_interior_pointwise(&mut scanner, &space, &p, i)
                    } else {
                        scan_interior(&mut scanner, &space, &p, i)
                    };
                }
                // Head of the destination iteration (statements before dest).
                if go {
                    for s in 0..dest_idx {
                        if !scanner.check(i, s) {
                            break;
                        }
                    }
                }
            }
            if options.exact_equation_counts {
                for (s, v) in scanner.per_perp.iter().enumerate() {
                    eqn[s] += v.len() as u64;
                }
            }
            if scanner.distinct.len() >= k {
                repl_here += 1;
                if options.collect_miss_points {
                    repl_points.push((i.to_vec(), rv_index));
                }
            }
        };

        match &c {
            None => {
                let mut sp = nest.space();
                while let Some(pt) = sp.next_point() {
                    handle(&pt);
                }
            }
            Some(set) => {
                for pt in set {
                    handle(pt);
                }
            }
        }
        replacement_misses += repl_here;
        vectors.push(VectorReport {
            reuse: rv.clone(),
            examined,
            cold_solutions,
            replacement_misses: repl_here,
            contentions_per_perpetrator: eqn,
            cumulative_replacement_misses: replacement_misses,
        });
        c = Some(next);
    }

    let (cold_misses, cold_points) = match c {
        Some(set) => (
            set.len(),
            if options.collect_miss_points {
                set.iter().map(|p| p.to_vec()).collect()
            } else {
                Vec::new()
            },
        ),
        None => {
            // No reuse vectors: every access is a miss.
            let mut pts = Vec::new();
            if options.collect_miss_points {
                let mut sp = nest.space();
                while let Some(p) = sp.next_point() {
                    pts.push(p);
                }
            }
            (space.count(), pts)
        }
    };
    RefAnalysis {
        dest,
        label: nest.reference(dest).label().to_string(),
        vectors,
        cold_misses,
        replacement_misses,
        early_stopped,
        replacement_miss_points: repl_points,
        cold_miss_points: cold_points,
    }
}

/// Analyzes every reference of a nest: generates its reuse vectors
/// (Figure 3) and runs the miss-finding algorithm (Figure 6).
///
/// The uncached *reference implementation* — equivalent to a one-shot
/// [`crate::Analyzer`] session with `.caching(false)`, which is the
/// public spelling. Kept test-only as the bit-for-bit baseline of the
/// engine's unit tests.
#[cfg(test)]
pub(crate) fn solve_nest(
    nest: &LoopNest,
    cache: CacheConfig,
    options: &AnalysisOptions,
) -> NestAnalysis {
    let per_ref = nest
        .references()
        .iter()
        .map(|r| {
            let rvs = reuse_vectors(nest, &cache, r.id(), &options.reuse);
            solve_reference(nest, cache, r.id(), &rvs, options)
        })
        .collect();
    NestAnalysis {
        nest_name: nest.name().to_string(),
        cache,
        per_ref,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_cache::simulate_nest;
    use cme_ir::{AccessKind, NestBuilder};

    fn table1_cache() -> CacheConfig {
        CacheConfig::new(8192, 1, 32, 4).unwrap()
    }

    fn matmul(n: i64, bz: i64, bx: i64, by: i64) -> LoopNest {
        let mut b = NestBuilder::new();
        b.name("mmult");
        b.ct_loop("i", 1, n).ct_loop("k", 1, n).ct_loop("j", 1, n);
        let z = b.array("Z", &[n, n], bz);
        let x = b.array("X", &[n, n], bx);
        let y = b.array("Y", &[n, n], by);
        b.reference(z, AccessKind::Read, &[("j", 0), ("i", 0)]);
        b.reference(x, AccessKind::Read, &[("k", 0), ("i", 0)]);
        b.reference(y, AccessKind::Read, &[("j", 0), ("k", 0)]);
        b.reference(z, AccessKind::Write, &[("j", 0), ("i", 0)]);
        b.build().unwrap()
    }

    #[test]
    fn unit_stride_sweep_exact() {
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 256);
        let a = b.array("A", &[256], 0);
        b.reference(a, AccessKind::Read, &[("i", 0)]);
        let nest = b.build().unwrap();
        let analysis = solve_nest(&nest, table1_cache(), &AnalysisOptions::default());
        assert_eq!(analysis.total_misses(), 32);
        assert_eq!(analysis.total_cold(), 32);
        assert_eq!(analysis.total_replacement(), 0);
    }

    #[test]
    fn matches_simulator_on_small_matmul_direct_mapped() {
        let nest = matmul(16, 4192, 2136, 96);
        let cache = table1_cache();
        let analysis = solve_nest(&nest, cache, &AnalysisOptions::default());
        let sim = simulate_nest(&nest, cache);
        assert_eq!(
            analysis.total_misses(),
            sim.total().misses(),
            "CME: {analysis}\nSIM: {}",
            sim
        );
        // Per-reference totals should match too.
        for (ra, rs) in analysis.per_ref.iter().zip(&sim.per_ref) {
            assert_eq!(ra.total_misses(), rs.misses(), "ref {}", ra.label);
        }
    }

    /// Per-(reference, point) miss sets from the LRU simulator.
    fn sim_miss_points(
        nest: &LoopNest,
        cache: CacheConfig,
    ) -> Vec<std::collections::HashSet<Vec<i64>>> {
        let mut sim = cme_cache::Simulator::new(cache);
        let mut out = vec![std::collections::HashSet::new(); nest.references().len()];
        let addrs: Vec<Affine> = nest
            .references()
            .iter()
            .map(|r| nest.address_affine(r.id()))
            .collect();
        let mut sp = nest.space();
        while let Some(p) = sp.next_point() {
            for (s, af) in addrs.iter().enumerate() {
                if sim.access(af.eval(&p)).is_miss() {
                    out[s].insert(p.clone());
                }
            }
        }
        out
    }

    /// Point-level diagnosis helper: asserts the CME miss set equals the
    /// simulator's miss set for every reference, printing any disagreeing
    /// points (with the reuse vector blamed) on failure.
    fn assert_pointwise_exact(nest: &LoopNest, cache: CacheConfig) {
        let sim_points = sim_miss_points(nest, cache);
        let opts = AnalysisOptions {
            collect_miss_points: true,
            ..AnalysisOptions::default()
        };
        let analysis = solve_nest(nest, cache, &opts);
        for (r, ra) in analysis.per_ref.iter().enumerate() {
            let mut cme_points: std::collections::HashSet<Vec<i64>> =
                ra.cold_miss_points.iter().cloned().collect();
            for (p, _) in &ra.replacement_miss_points {
                cme_points.insert(p.clone());
            }
            let extra: Vec<_> = cme_points.difference(&sim_points[r]).collect();
            let missing: Vec<_> = sim_points[r].difference(&cme_points).collect();
            assert!(
                extra.is_empty() && missing.is_empty(),
                "ref {} ({}): {} extra CME points (e.g. {:?}), {} missing (e.g. {:?}); vectors: {:?}",
                r,
                ra.label,
                extra.len(),
                extra.iter().take(5).collect::<Vec<_>>(),
                missing.len(),
                missing.iter().take(5).collect::<Vec<_>>(),
                ra.replacement_miss_points
                    .iter()
                    .filter(|(p, _)| extra.contains(&p))
                    .take(5)
                    .collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn pointwise_exact_on_two_way_matmul() {
        let nest = matmul(16, 4192, 2136, 96);
        let cache = CacheConfig::new(2048, 2, 32, 4).unwrap();
        assert_pointwise_exact(&nest, cache);
    }

    #[test]
    fn matches_simulator_on_small_matmul_two_way() {
        let nest = matmul(16, 4192, 2136, 96);
        let cache = CacheConfig::new(2048, 2, 32, 4).unwrap();
        let analysis = solve_nest(&nest, cache, &AnalysisOptions::default());
        let sim = simulate_nest(&nest, cache);
        assert_eq!(analysis.total_misses(), sim.total().misses());
    }

    #[test]
    fn matches_simulator_on_conflicting_strided_pair() {
        // Two arrays exactly one cache apart: heavy ping-pong conflicts.
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 64);
        let a = b.array("A", &[64], 0);
        let c = b.array("C", &[64], 2048);
        b.reference(a, AccessKind::Read, &[("i", 0)]);
        b.reference(c, AccessKind::Write, &[("i", 0)]);
        let nest = b.build().unwrap();
        let cache = table1_cache();
        let analysis = solve_nest(&nest, cache, &AnalysisOptions::default());
        let sim = simulate_nest(&nest, cache);
        assert_eq!(analysis.total_misses(), sim.total().misses());
        assert_eq!(analysis.total_replacement(), sim.total().replacement);
    }

    #[test]
    fn associativity_two_absorbs_pairwise_conflict() {
        // Same layout as above but a 2-way cache of the same set count:
        // the pair fits, so only cold misses remain.
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 64);
        let a = b.array("A", &[64], 0);
        let c = b.array("C", &[64], 2048);
        b.reference(a, AccessKind::Read, &[("i", 0)]);
        b.reference(c, AccessKind::Write, &[("i", 0)]);
        let nest = b.build().unwrap();
        let cache = CacheConfig::new(16384, 2, 32, 4).unwrap(); // 256 sets, 2-way
        let analysis = solve_nest(&nest, cache, &AnalysisOptions::default());
        let sim = simulate_nest(&nest, cache);
        assert_eq!(analysis.total_replacement(), 0);
        assert_eq!(analysis.total_misses(), sim.total().misses());
    }

    #[test]
    fn epsilon_stops_early_and_overcounts_conservatively() {
        let nest = matmul(8, 0, 4096, 8192);
        let cache = table1_cache();
        let exact = solve_nest(&nest, cache, &AnalysisOptions::default());
        let loose = solve_nest(
            &nest,
            cache,
            &AnalysisOptions {
                epsilon: 1 << 30,
                ..AnalysisOptions::default()
            },
        );
        // With a huge epsilon nothing is refined: every point is a miss.
        assert_eq!(loose.total_misses(), nest.access_count());
        assert!(loose.total_misses() >= exact.total_misses());
    }

    #[test]
    fn per_vector_reports_are_consistent() {
        let nest = matmul(8, 0, 4096, 8192);
        let cache = table1_cache();
        let analysis = solve_nest(
            &nest,
            cache,
            &AnalysisOptions {
                exact_equation_counts: true,
                ..AnalysisOptions::default()
            },
        );
        for r in &analysis.per_ref {
            let mut prev_examined = None;
            let mut cum = 0;
            for v in &r.vectors {
                // Indeterminate sets shrink monotonically.
                if let Some(pe) = prev_examined {
                    assert!(v.examined <= pe);
                }
                assert!(v.examined - v.cold_solutions >= v.replacement_misses);
                cum += v.replacement_misses;
                assert_eq!(v.cumulative_replacement_misses, cum);
                prev_examined = Some(v.cold_solutions);
                // In exact mode the union of per-perpetrator contentions
                // bounds the miss count from above (k = 1 here).
                let total_contentions: u64 = v.contentions_per_perpetrator.iter().sum();
                assert!(total_contentions >= v.replacement_misses);
            }
            assert_eq!(r.replacement_misses, cum);
        }
        // Exact-count mode must not change the verdicts.
        let fast = solve_nest(&nest, cache, &AnalysisOptions::default());
        assert_eq!(fast.total_misses(), analysis.total_misses());
    }

    #[test]
    fn no_reuse_vectors_means_every_access_misses() {
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 8);
        let a = b.array("A", &[64, 8], 0);
        // Stride-64 accesses: no spatial or temporal reuse at 8-elem lines.
        b.reference(a, AccessKind::Read, &[("i", 0), ("i", 0)]);
        let nest = b.build().unwrap();
        let cache = table1_cache();
        let analysis = solve_nest(&nest, cache, &AnalysisOptions::default());
        let sim = simulate_nest(&nest, cache);
        assert_eq!(analysis.total_misses(), 8);
        assert_eq!(sim.total().misses(), 8);
    }

    #[test]
    fn parallel_analysis_is_bit_identical() {
        let nest = matmul(12, 0, 144, 288);
        let cache = table1_cache();
        let opts = AnalysisOptions {
            exact_equation_counts: true,
            collect_miss_points: true,
            ..AnalysisOptions::default()
        };
        let serial = solve_nest(&nest, cache, &opts);
        let parallel = crate::Analyzer::new(cache)
            .options(opts)
            .parallel(true)
            .analyze(&nest);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn options_builder_validates() {
        let ok = AnalysisOptions::builder()
            .epsilon(100)
            .collect_miss_points(true)
            .try_build()
            .unwrap();
        assert_eq!(ok.epsilon, 100);
        assert!(ok.collect_miss_points);
        let exact = AnalysisOptions::builder()
            .exact_equation_counts(true)
            .pointwise_windows(true)
            .build();
        assert!(exact.exact_equation_counts && exact.pointwise_windows);
        let err = AnalysisOptions::builder()
            .epsilon(1)
            .exact_equation_counts(true)
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("epsilon"));
    }

    #[test]
    #[should_panic(expected = "invalid analysis options")]
    fn options_builder_build_panics_on_conflict() {
        let _ = AnalysisOptions::builder()
            .epsilon(5)
            .exact_equation_counts(true)
            .build();
    }

    #[test]
    fn display_summarizes() {
        let nest = matmul(4, 0, 64, 128);
        let analysis = solve_nest(&nest, table1_cache(), &AnalysisOptions::default());
        let s = analysis.to_string();
        assert!(s.contains("mmult"));
        assert!(s.contains("total:"));
    }
}
