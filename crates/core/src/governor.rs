//! The resource governor: budgets, cooperative cancellation, and the
//! degraded-but-sound outcome of an interrupted analysis.
//!
//! Exact CME solving is worst-case intractable — the paper's own `ε` knob
//! (Figure 6) exists because refining every iteration point can cost more
//! than it is worth. A [`Budget`] generalizes that knob from "stop when few
//! survivors remain" to *operational* limits: a wall-clock deadline, a cap
//! on equation evaluations, and a ceiling on resident point-set size. A
//! [`CancelToken`] adds caller-driven interruption on top.
//!
//! The key design decision is **what exhaustion means**. The engine never
//! throws away the work it has done and never errors out of the query:
//! every iteration point whose classification was cut short is counted as
//! an *indeterminate-treated-as-miss* — exactly the semantics the paper
//! assigns to points left unresolved by `ε > 0` early stopping. A
//! budget-exhausted analysis is therefore a **sound overcount**: it can
//! only report more misses than the exact answer, never fewer. The result
//! carries an [`Outcome`] tag so callers can distinguish `Complete` from
//! `Exhausted`, and [`crate::EngineStats`] records how many points were
//! truncated.
//!
//! Errors, by contrast, are reserved for failures that produce *no* sound
//! result: a worker panic (isolated at the pool boundary and converted to
//! [`AnalysisError::WorkerPanic`], poisoning only that query) and address
//! arithmetic that would overflow `i64` on adversarial extents
//! ([`AnalysisError::Overflow`], detected up front so the hot loops can
//! stay unchecked).

use cme_ir::LoopNest;
use cme_math::{Affine, Interval};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource limits for one analysis query (or a whole session of them).
///
/// The default budget is unlimited; every limit is opt-in and they
/// compose. All three are *soft* limits checked cooperatively at run and
/// segment granularity — the engine overshoots by at most one segment.
///
/// ```
/// use cme_core::Budget;
/// use std::time::Duration;
///
/// let b = Budget::unlimited()
///     .with_deadline(Duration::from_millis(50))
///     .with_max_solves(1_000_000);
/// assert!(!b.is_unlimited());
/// assert_eq!(b.max_points(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    deadline: Option<Duration>,
    max_solves: Option<u64>,
    max_points: Option<u64>,
}

impl Budget {
    /// No limits: the governed path is bit-identical to the ungoverned one.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps wall-clock time from the start of the query.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps equation evaluations: every iteration point classified by a
    /// cold-miss Diophantine condition or scanned against the replacement
    /// equations charges one solve.
    pub fn with_max_solves(mut self, max_solves: u64) -> Self {
        self.max_solves = Some(max_solves);
        self
    }

    /// Ceiling on the resident survivor point-set of a single reference —
    /// the memory proxy: a reference whose indeterminate set exceeds this
    /// is not refined further (all its survivors count as misses).
    pub fn with_max_points(mut self, max_points: u64) -> Self {
        self.max_points = Some(max_points);
        self
    }

    /// The wall-clock limit, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The equation-evaluation limit, if any.
    pub fn max_solves(&self) -> Option<u64> {
        self.max_solves
    }

    /// The resident point-set ceiling, if any.
    pub fn max_points(&self) -> Option<u64> {
        self.max_points
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_solves.is_none() && self.max_points.is_none()
    }
}

/// A cooperative cancellation handle.
///
/// Clones share one flag: keep a clone, hand another to the analyzer, and
/// call [`CancelToken::cancel`] from any thread to stop the query at the
/// next governor checkpoint. Cancellation degrades the result exactly like
/// budget exhaustion — the analysis still returns, soundly overcounted.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Which limit stopped an exhausted analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The equation-evaluation budget ran out.
    SolveBudget,
    /// A survivor set exceeded the resident point ceiling.
    PointBudget,
    /// The [`CancelToken`] was triggered.
    Cancelled,
}

impl fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustReason::Deadline => write!(f, "deadline"),
            ExhaustReason::SolveBudget => write!(f, "solve budget"),
            ExhaustReason::PointBudget => write!(f, "point budget"),
            ExhaustReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// How a governed analysis ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every iteration point was classified exactly; the result is
    /// bit-identical to an ungoverned run.
    Complete,
    /// A limit stopped the query early. The result is still a **sound
    /// overcount**: truncated points are counted as misses (the paper's
    /// `ε > 0` semantics).
    Exhausted {
        /// The budget that was in force.
        budget: Budget,
        /// The first limit that tripped.
        reason: ExhaustReason,
        /// Fraction of charged work completed before the stop, in
        /// `[0, 1]` (approximate: work is charged per segment).
        completed_fraction: f64,
        /// Iteration points classified indeterminate-treated-as-miss
        /// because their refinement was cut short.
        truncated_points: u64,
    },
}

impl Outcome {
    /// True for [`Outcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete)
    }

    /// True for [`Outcome::Exhausted`].
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Outcome::Exhausted { .. })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Complete => write!(f, "complete"),
            Outcome::Exhausted {
                reason,
                completed_fraction,
                truncated_points,
                ..
            } => write!(
                f,
                "exhausted ({reason}): {:.1}% complete, {truncated_points} points treated as misses",
                completed_fraction * 100.0
            ),
        }
    }
}

/// A governed analysis result: the (possibly degraded, always sound)
/// counts plus the outcome tag.
#[derive(Debug, Clone)]
pub struct GovernedAnalysis {
    /// The per-reference analysis. When the outcome is exhausted, miss
    /// counts are upper bounds (truncated points count as misses).
    pub analysis: crate::solve::NestAnalysis,
    /// Whether the budget sufficed.
    pub outcome: Outcome,
}

/// A failure that produced no sound result for the query. The session
/// (its memo tables, its other queries) remains fully usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A pool worker panicked; the panic was caught at the shard boundary
    /// and only this query is lost.
    WorkerPanic {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Address or line arithmetic on this nest would overflow `i64`
    /// (adversarial extents/bases); detected before any solving ran.
    Overflow {
        /// What overflowed.
        context: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::WorkerPanic { message } => {
                write!(f, "analysis worker panicked: {message}")
            }
            AnalysisError::Overflow { context } => {
                write!(f, "address arithmetic would overflow: {context}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Magnitude ceiling for validated address values: leaves headroom for
/// every product the solve loops form (line numbers × line size, strides ×
/// extents) to stay within `i64`.
const MAX_SAFE_MAG: i128 = (i64::MAX / 8) as i128;

/// Range of an affine form over a bounding box, in `i128` (cannot
/// overflow: ≤ 64-bit products summed over the nest depth).
fn affine_range_wide(a: &Affine, bbox: &[Interval]) -> (i128, i128) {
    let mut lo = a.constant_term() as i128;
    let mut hi = lo;
    for (l, iv) in bbox.iter().enumerate() {
        let c = a.coeff(l) as i128;
        let (x, y) = (c * iv.lo as i128, c * iv.hi as i128);
        lo += x.min(y);
        hi += x.max(y);
    }
    (lo, hi)
}

/// Validates that every address this nest can form, and the iteration
/// space size itself, stays far enough from `i64::MAX` that the unchecked
/// hot loops cannot overflow. One pass per query, O(refs × depth).
pub(crate) fn validate_address_math(
    nest: &LoopNest,
    addrs: &[Affine],
) -> Result<(), AnalysisError> {
    let bbox = nest.space().bounding_box();
    let mut points: u128 = 1;
    for iv in &bbox {
        let w = (iv.hi as i128 - iv.lo as i128 + 1).max(0) as u128;
        points = points.saturating_mul(w);
        if iv.lo.unsigned_abs() > (i64::MAX / 4) as u64
            || iv.hi.unsigned_abs() > (i64::MAX / 4) as u64
        {
            return Err(AnalysisError::Overflow {
                context: format!("loop bound magnitude {:?} exceeds the safe range", iv),
            });
        }
    }
    if points > (u64::MAX / 4) as u128 {
        return Err(AnalysisError::Overflow {
            context: format!("iteration space size {points} overflows the point counters"),
        });
    }
    for (ridx, a) in addrs.iter().enumerate() {
        let (lo, hi) = affine_range_wide(a, &bbox);
        let mag = lo.abs().max(hi.abs());
        if mag > MAX_SAFE_MAG {
            return Err(AnalysisError::Overflow {
                context: format!(
                    "reference #{ridx} reaches address magnitude {mag} (safe limit {MAX_SAFE_MAG})"
                ),
            });
        }
    }
    Ok(())
}

/// Exhaust-reason encoding for the governor's atomic flag.
const LIVE: u8 = 0;

fn reason_code(r: ExhaustReason) -> u8 {
    match r {
        ExhaustReason::Deadline => 1,
        ExhaustReason::SolveBudget => 2,
        ExhaustReason::PointBudget => 3,
        ExhaustReason::Cancelled => 4,
    }
}

fn code_reason(c: u8) -> Option<ExhaustReason> {
    match c {
        1 => Some(ExhaustReason::Deadline),
        2 => Some(ExhaustReason::SolveBudget),
        3 => Some(ExhaustReason::PointBudget),
        4 => Some(ExhaustReason::Cancelled),
        _ => None,
    }
}

/// Per-query governor state shared across pool shards. All checks are
/// branch-free no-ops at full budget (`unlimited` + no token), which is
/// what keeps governed and ungoverned runs bit-identical and the overhead
/// within the perf budget.
#[derive(Debug)]
pub(crate) struct QueryGovernor {
    budget: Budget,
    cancel: Option<CancelToken>,
    unlimited: bool,
    deadline_at: Option<Instant>,
    max_solves: u64,
    max_points: u64,
    work: AtomicU64,
    truncated: AtomicU64,
    exhausted: AtomicU8,
    ticks: AtomicU64,
}

impl QueryGovernor {
    pub(crate) fn new(budget: Budget, cancel: Option<CancelToken>) -> Self {
        let unlimited = budget.is_unlimited() && cancel.is_none();
        QueryGovernor {
            deadline_at: budget.deadline().map(|d| Instant::now() + d),
            max_solves: budget.max_solves().unwrap_or(u64::MAX),
            max_points: budget.max_points().unwrap_or(u64::MAX),
            budget,
            cancel,
            unlimited,
            work: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            exhausted: AtomicU8::new(LIVE),
            ticks: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn unlimited(&self) -> bool {
        self.unlimited
    }

    fn mark(&self, reason: ExhaustReason) {
        // First writer wins; later limits keep the original reason.
        let _ = self.exhausted.compare_exchange(
            LIVE,
            reason_code(reason),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The cooperative checkpoint: true while the query may keep refining.
    /// Checked at run/segment granularity, never per point.
    #[inline]
    pub(crate) fn live(&self) -> bool {
        if self.unlimited {
            return true;
        }
        if self.exhausted.load(Ordering::Relaxed) != LIVE {
            return false;
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                self.mark(ExhaustReason::Cancelled);
                return false;
            }
        }
        if self.max_solves != u64::MAX && self.work.load(Ordering::Relaxed) > self.max_solves {
            self.mark(ExhaustReason::SolveBudget);
            return false;
        }
        if let Some(at) = self.deadline_at {
            // Sample the clock every 16th checkpoint: checkpoints fire per
            // run, and `Instant::now` is the expensive part.
            if self.ticks.fetch_add(1, Ordering::Relaxed) & 0xF == 0 && Instant::now() >= at {
                self.mark(ExhaustReason::Deadline);
                return false;
            }
        }
        true
    }

    /// Charges `n` equation evaluations (classified or scanned points).
    #[inline]
    pub(crate) fn charge(&self, n: u64) {
        if !self.unlimited {
            self.work.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Point-set ceiling check: false (and exhausts the query) when a
    /// survivor set of `n` points exceeds the budget.
    #[inline]
    pub(crate) fn admit_points(&self, n: u64) -> bool {
        if n > self.max_points {
            self.mark(ExhaustReason::PointBudget);
            return false;
        }
        true
    }

    /// Records `n` points whose refinement was cut short (each is counted
    /// as a miss by the degraded result).
    pub(crate) fn note_truncated(&self, n: u64) {
        if n > 0 {
            self.truncated.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total truncated points so far.
    pub(crate) fn truncated_points(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }

    /// The query's outcome tag.
    pub(crate) fn outcome(&self) -> Outcome {
        match code_reason(self.exhausted.load(Ordering::Relaxed)) {
            None => Outcome::Complete,
            Some(reason) => {
                let done = self.work.load(Ordering::Relaxed);
                let truncated = self.truncated.load(Ordering::Relaxed);
                let total = done + truncated;
                Outcome::Exhausted {
                    budget: self.budget,
                    reason,
                    completed_fraction: if total == 0 {
                        0.0
                    } else {
                        done as f64 / total as f64
                    },
                    truncated_points: truncated,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let gov = QueryGovernor::new(Budget::unlimited(), None);
        assert!(gov.unlimited());
        for _ in 0..100 {
            assert!(gov.live());
        }
        gov.charge(u64::MAX / 2);
        assert!(gov.live());
        assert_eq!(gov.outcome(), Outcome::Complete);
    }

    #[test]
    fn solve_budget_trips_and_keeps_first_reason() {
        let gov = QueryGovernor::new(
            Budget::unlimited().with_max_solves(10).with_max_points(100),
            None,
        );
        assert!(gov.live());
        gov.charge(11);
        assert!(!gov.live());
        gov.note_truncated(5);
        // A later point-budget violation does not rewrite the reason.
        assert!(!gov.admit_points(101));
        match gov.outcome() {
            Outcome::Exhausted {
                reason,
                truncated_points,
                completed_fraction,
                ..
            } => {
                assert_eq!(reason, ExhaustReason::SolveBudget);
                assert_eq!(truncated_points, 5);
                assert!((completed_fraction - 11.0 / 16.0).abs() < 1e-12);
            }
            o => panic!("expected exhausted, got {o:?}"),
        }
    }

    #[test]
    fn cancel_token_shared_across_clones() {
        let token = CancelToken::new();
        let gov = QueryGovernor::new(Budget::unlimited(), Some(token.clone()));
        assert!(!gov.unlimited(), "a token alone makes the query governed");
        assert!(gov.live());
        token.clone().cancel();
        assert!(!gov.live());
        assert!(matches!(
            gov.outcome(),
            Outcome::Exhausted {
                reason: ExhaustReason::Cancelled,
                ..
            }
        ));
    }

    #[test]
    fn deadline_trips_after_elapsing() {
        let gov = QueryGovernor::new(
            Budget::unlimited().with_deadline(Duration::from_millis(0)),
            None,
        );
        // Tick 0 samples the clock immediately.
        assert!(!gov.live());
        assert!(matches!(
            gov.outcome(),
            Outcome::Exhausted {
                reason: ExhaustReason::Deadline,
                ..
            }
        ));
    }

    #[test]
    fn point_ceiling_is_a_per_set_limit() {
        let gov = QueryGovernor::new(Budget::unlimited().with_max_points(100), None);
        assert!(gov.admit_points(100));
        assert!(gov.live());
        assert!(!gov.admit_points(101));
        assert!(!gov.live());
    }

    #[test]
    fn error_and_outcome_display() {
        let e = AnalysisError::WorkerPanic {
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        let e = AnalysisError::Overflow {
            context: "ref #0".into(),
        };
        assert!(e.to_string().contains("overflow"));
        assert_eq!(Outcome::Complete.to_string(), "complete");
        let ex = Outcome::Exhausted {
            budget: Budget::unlimited().with_max_solves(1),
            reason: ExhaustReason::SolveBudget,
            completed_fraction: 0.25,
            truncated_points: 30,
        };
        assert!(ex.to_string().contains("25.0%"), "{ex}");
        assert!(ex.is_exhausted() && !ex.is_complete());
    }

    #[test]
    fn validate_rejects_adversarial_extents() {
        use cme_ir::{AccessKind, NestBuilder};
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 4);
        let a = b.array("A", &[4], i64::MAX / 2);
        b.reference(a, AccessKind::Read, &[("i", 0)]);
        let nest = b.build().unwrap();
        let addrs: Vec<Affine> = nest
            .references()
            .iter()
            .map(|r| nest.address_affine(r.id()))
            .collect();
        let err = validate_address_math(&nest, &addrs).unwrap_err();
        assert!(matches!(err, AnalysisError::Overflow { .. }), "{err}");
    }

    #[test]
    fn validate_accepts_ordinary_nests() {
        use cme_ir::{AccessKind, NestBuilder};
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 64).ct_loop("j", 1, 64);
        let a = b.array("A", &[64, 64], 0);
        b.reference(a, AccessKind::Read, &[("i", 0), ("j", 0)]);
        let nest = b.build().unwrap();
        let addrs: Vec<Affine> = nest
            .references()
            .iter()
            .map(|r| nest.address_affine(r.id()))
            .collect();
        assert!(validate_address_math(&nest, &addrs).is_ok());
    }
}
