//! The unified request/response contract every frontend speaks.
//!
//! `cmetool`, the `cme-serve` wire protocol, in-process batch callers, and
//! the `cme-diffcheck` corpus replayer all round-trip analyses through one
//! schema: [`AnalyzeRequest`] in, [`AnalyzeResponse`] out, failures as a
//! stable [`ErrorCode`] inside [`Error`]. A request carries the program as
//! `.cme` source text (the canonical textual form of
//! [`cme_ir::parse::parse_nest`]), the cache geometry, the `ε` precision
//! knob, and an optional per-request [`Budget`]; a response carries either
//! the per-reference miss counts plus the governor [`Outcome`] summary, or
//! a coded error. Budget exhaustion is **not** an error: the counts are a
//! sound overcount and arrive in a normal result tagged
//! `outcome.complete = false` (see [`OutcomeSummary`]).
//!
//! Serialization is single-line JSON via [`json`] (objects key-sorted, so
//! encoding is deterministic), which is also the framing unit of the
//! `cme-serve` line protocol (`docs/SERVE.md`).

pub mod json;

use crate::engine::Analyzer;
use crate::governor::{AnalysisError, Budget, GovernedAnalysis, Outcome};
use crate::solve::{AnalysisOptions, InvalidOptions, NestAnalysis};
use cme_cache::{CacheConfig, CacheConfigError, CacheModel, PolicyKind, WritePolicy};
use cme_ir::parse::{parse_nest, to_source, ParseNestError};
use cme_ir::LoopNest;
use json::{obj, Json, JsonError};
use std::fmt;
use std::time::Duration;

/// Stable machine-readable failure codes, shared by the wire protocol and
/// the CLI exit status.
///
/// The string form ([`ErrorCode::as_str`]) and the exit code
/// ([`ErrorCode::exit_code`]) are wire/ABI surface: existing values never
/// change meaning, new variants only add (`#[non_exhaustive]`, so match
/// with a `_` arm).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The request line or field set was not valid protocol JSON.
    BadRequest,
    /// The `.cme` program text did not parse or validate.
    Parse,
    /// The cache geometry was rejected (see
    /// [`cme_cache::CacheConfigError`]).
    InvalidCache,
    /// The analysis options were inconsistent (see
    /// [`crate::InvalidOptions`]).
    InvalidOptions,
    /// A pool worker panicked; only this query was lost.
    WorkerPanic,
    /// Address arithmetic on this nest would overflow 64 bits.
    Overflow,
    /// The artifact store failed in a way recompute could not hide.
    Store,
    /// An I/O failure outside the store (socket, corpus file).
    Io,
    /// The server shed this connection or request under load; retry with
    /// backoff once load clears. Pre-`Overloaded` clients decode this as
    /// [`ErrorCode::Internal`] (the unknown-code rule), which is still a
    /// safe, non-retrying interpretation.
    Overloaded,
    /// A differential-oracle disagreement (diffcheck replay only).
    Mismatch,
    /// Anything that should not happen; the message has the detail.
    Internal,
}

impl ErrorCode {
    /// The stable wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Parse => "parse",
            ErrorCode::InvalidCache => "invalid-cache",
            ErrorCode::InvalidOptions => "invalid-options",
            ErrorCode::WorkerPanic => "worker-panic",
            ErrorCode::Overflow => "overflow",
            ErrorCode::Store => "store",
            ErrorCode::Io => "io",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Mismatch => "mismatch",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire spelling back (`None` for unknown codes — forward
    /// compatibility: treat those as [`ErrorCode::Internal`]).
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad-request" => ErrorCode::BadRequest,
            "parse" => ErrorCode::Parse,
            "invalid-cache" => ErrorCode::InvalidCache,
            "invalid-options" => ErrorCode::InvalidOptions,
            "worker-panic" => ErrorCode::WorkerPanic,
            "overflow" => ErrorCode::Overflow,
            "store" => ErrorCode::Store,
            "io" => ErrorCode::Io,
            "overloaded" => ErrorCode::Overloaded,
            "mismatch" => ErrorCode::Mismatch,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The process exit code the CLI maps this failure to (success is 0;
    /// these start at 10 so they never collide with shell conventions).
    pub fn exit_code(&self) -> i32 {
        match self {
            ErrorCode::BadRequest => 10,
            ErrorCode::Parse => 11,
            ErrorCode::InvalidCache => 12,
            ErrorCode::InvalidOptions => 13,
            ErrorCode::WorkerPanic => 20,
            ErrorCode::Overflow => 21,
            ErrorCode::Store => 30,
            ErrorCode::Io => 31,
            ErrorCode::Overloaded => 32,
            ErrorCode::Mismatch => 40,
            ErrorCode::Internal => 50,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A coded analysis failure: the one error type every frontend reports.
///
/// Internal error enums ([`AnalysisError`], [`ParseNestError`],
/// [`CacheConfigError`], [`InvalidOptions`], store errors) convert in via
/// `From`, so they stay out of the public contract. `#[non_exhaustive]`:
/// construct with [`Error::new`].
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// The stable failure class.
    pub code: ErrorCode,
    /// Human-readable detail (not a stable surface).
    pub message: String,
}

impl Error {
    /// Builds an error from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Error {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for Error {}

impl From<AnalysisError> for Error {
    fn from(e: AnalysisError) -> Self {
        let code = match &e {
            AnalysisError::WorkerPanic { .. } => ErrorCode::WorkerPanic,
            AnalysisError::Overflow { .. } => ErrorCode::Overflow,
        };
        Error::new(code, e.to_string())
    }
}

impl From<ParseNestError> for Error {
    fn from(e: ParseNestError) -> Self {
        Error::new(ErrorCode::Parse, e.to_string())
    }
}

impl From<CacheConfigError> for Error {
    fn from(e: CacheConfigError) -> Self {
        Error::new(ErrorCode::InvalidCache, e.to_string())
    }
}

impl From<InvalidOptions> for Error {
    fn from(e: InvalidOptions) -> Self {
        Error::new(ErrorCode::InvalidOptions, e.to_string())
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Error::new(ErrorCode::BadRequest, e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(ErrorCode::Io, e.to_string())
    }
}

impl From<crate::store::StoreError> for Error {
    fn from(e: crate::store::StoreError) -> Self {
        Error::new(ErrorCode::Store, e.to_string())
    }
}

/// The second level of a two-level hierarchy as it travels on the wire.
/// Line and element size are shared with (and taken from) the L1 spec;
/// only capacity and associativity vary per level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Spec {
    /// L2 capacity in bytes.
    pub size_bytes: i64,
    /// L2 associativity.
    pub assoc: i64,
}

/// Cache model as it travels on the wire: the four byte-denominated
/// hardware parameters of [`CacheConfig::new`] plus the optional
/// [`CacheModel`] extensions — replacement policy, write policy, and an
/// inclusive L2. The extensions default to the paper's Section 2.3
/// machine (single-level true-LRU write-back) and are **omitted from the
/// JSON encoding at those defaults**, so pre-model clients, stored
/// request corpora, and byte-for-byte response comparisons are all
/// untouched by their existence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// Total capacity in bytes (`Cs`).
    pub size_bytes: i64,
    /// Associativity (`k`).
    pub assoc: i64,
    /// Line size in bytes (`Ls`).
    pub line_bytes: i64,
    /// Data element size in bytes.
    pub elem_bytes: i64,
    /// Replacement policy (default [`PolicyKind::Lru`]).
    pub policy: PolicyKind,
    /// Write policy (default [`WritePolicy::WriteBack`]).
    pub write: WritePolicy,
    /// Optional inclusive second level (default `None`).
    pub l2: Option<L2Spec>,
}

impl CacheSpec {
    /// A baseline (single-level LRU write-back) spec from the four
    /// geometry parameters.
    pub fn new(size_bytes: i64, assoc: i64, line_bytes: i64, elem_bytes: i64) -> Self {
        CacheSpec {
            size_bytes,
            assoc,
            line_bytes,
            elem_bytes,
            policy: PolicyKind::Lru,
            write: WritePolicy::WriteBack,
            l2: None,
        }
    }

    /// The baseline spec of an already-validated geometry.
    pub fn of(cfg: &CacheConfig) -> Self {
        CacheSpec::new(
            cfg.size_bytes(),
            cfg.assoc(),
            cfg.line_bytes(),
            cfg.elem_bytes(),
        )
    }

    /// The spec of an already-validated model.
    pub fn of_model(model: &CacheModel) -> Self {
        let mut spec = CacheSpec::of(&model.l1());
        spec.policy = model.policy_kind();
        spec.write = model.write_policy();
        spec.l2 = model.l2().map(|l2| L2Spec {
            size_bytes: l2.size_bytes(),
            assoc: l2.assoc(),
        });
        spec
    }

    /// Validates the L1 geometry into a [`CacheConfig`] (policy and L2
    /// fields are not consulted — see [`CacheSpec::model`] for the full
    /// model).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidCache`] on infeasible geometry.
    pub fn build(&self) -> Result<CacheConfig, Error> {
        Ok(CacheConfig::new(
            self.size_bytes,
            self.assoc,
            self.line_bytes,
            self.elem_bytes,
        )?)
    }

    /// Validates the full [`CacheModel`] — L1 geometry, policies, and the
    /// optional L2 (which shares L1's line and element size).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidCache`] on infeasible geometry at either level
    /// or an inconsistent hierarchy (L2 smaller than L1).
    pub fn model(&self) -> Result<CacheModel, Error> {
        let l1 = self.build()?;
        let mut model = CacheModel::new(l1).policy(self.policy).write(self.write);
        if let Some(l2) = self.l2 {
            let l2 = CacheConfig::new(l2.size_bytes, l2.assoc, self.line_bytes, self.elem_bytes)?;
            model = model
                .with_l2(l2)
                .map_err(|e| Error::new(ErrorCode::InvalidCache, e.to_string()))?;
        }
        Ok(model)
    }

    /// `true` when the spec asks for the paper's baseline machine —
    /// single-level, true-LRU, write-back — which the analytic path
    /// answers exactly.
    pub fn is_baseline(&self) -> bool {
        self.policy == PolicyKind::Lru && self.write == WritePolicy::WriteBack && self.l2.is_none()
    }

    fn to_json(self) -> Json {
        let mut pairs = vec![
            ("size", Json::Int(self.size_bytes)),
            ("assoc", Json::Int(self.assoc)),
            ("line", Json::Int(self.line_bytes)),
            ("elem", Json::Int(self.elem_bytes)),
        ];
        // Model fields ride only when non-default: the baseline encoding
        // stays byte-identical to the pre-model wire format.
        if self.policy != PolicyKind::Lru {
            pairs.push(("policy", Json::Str(self.policy.as_str().into())));
        }
        if self.write != WritePolicy::WriteBack {
            pairs.push(("write", Json::Str(self.write.as_str().into())));
        }
        if let Some(l2) = self.l2 {
            pairs.push((
                "l2",
                obj([
                    ("size", Json::Int(l2.size_bytes)),
                    ("assoc", Json::Int(l2.assoc)),
                ]),
            ));
        }
        obj(pairs)
    }

    fn from_json(v: &Json) -> Result<Self, Error> {
        let mut spec = CacheSpec::new(
            req_i64(v, "size")?,
            req_i64(v, "assoc")?,
            req_i64(v, "line")?,
            req_i64(v, "elem")?,
        );
        match v.get("policy") {
            None | Some(Json::Null) => {}
            Some(p) => {
                let s = p
                    .as_str()
                    .ok_or_else(|| bad("field `policy` must be a string"))?;
                spec.policy = PolicyKind::parse(s).ok_or_else(|| {
                    Error::new(
                        ErrorCode::InvalidCache,
                        format!("unknown replacement policy `{s}` (expected lru, fifo, or plru)"),
                    )
                })?;
            }
        }
        match v.get("write") {
            None | Some(Json::Null) => {}
            Some(w) => {
                let s = w
                    .as_str()
                    .ok_or_else(|| bad("field `write` must be a string"))?;
                spec.write = WritePolicy::parse(s).ok_or_else(|| {
                    Error::new(
                        ErrorCode::InvalidCache,
                        format!(
                            "unknown write policy `{s}` (expected write-back or write-through)"
                        ),
                    )
                })?;
            }
        }
        match v.get("l2") {
            None | Some(Json::Null) => {}
            Some(l2) => {
                spec.l2 = Some(L2Spec {
                    size_bytes: req_i64(l2, "size")?,
                    assoc: req_i64(l2, "assoc")?,
                });
            }
        }
        Ok(spec)
    }
}

fn bad(msg: impl Into<String>) -> Error {
    Error::new(ErrorCode::BadRequest, msg)
}

fn req_i64(v: &Json, key: &str) -> Result<i64, Error> {
    v.get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| bad(format!("missing or non-integer field `{key}`")))
}

fn req_str(v: &Json, key: &str) -> Result<String, Error> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing or non-string field `{key}`")))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, Error> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("field `{key}` must be a non-negative integer"))),
    }
}

/// One analysis query: the program, the geometry, the precision knob, and
/// the resource budget — everything a frontend may vary per request.
///
/// ```
/// use cme_core::api::{AnalyzeRequest, CacheSpec};
///
/// let req = AnalyzeRequest::new(
///     "q1",
///     "REAL A(64) AT 0\nDO i = 1, 64\n  s = s + A(i)\nENDDO\n",
///     CacheSpec::new(8192, 1, 32, 4),
/// );
/// let round = AnalyzeRequest::decode(&req.encode()).unwrap();
/// assert_eq!(round, req);
/// assert_eq!(round.parse_program().unwrap().depth(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// The loop nest as `.cme` source text.
    pub program: String,
    /// The cache geometry to analyze against.
    pub cache: CacheSpec,
    /// The `ε` early-stop threshold of Figure 6 (`0` = exact).
    pub epsilon: u64,
    /// Wall-clock budget in milliseconds (`None` = unlimited).
    pub budget_ms: Option<u64>,
    /// Equation-evaluation budget (`None` = unlimited).
    pub max_solves: Option<u64>,
    /// Resident point-set ceiling (`None` = unlimited).
    pub max_points: Option<u64>,
}

impl AnalyzeRequest {
    /// A full-budget exact request.
    pub fn new(id: impl Into<String>, program: impl Into<String>, cache: CacheSpec) -> Self {
        AnalyzeRequest {
            id: id.into(),
            program: program.into(),
            cache,
            epsilon: 0,
            budget_ms: None,
            max_solves: None,
            max_points: None,
        }
    }

    /// Builds a request from an in-memory nest via
    /// [`cme_ir::parse::to_source`]; `None` for nests outside the textual
    /// format (non-1 array origins).
    pub fn from_nest(id: impl Into<String>, nest: &LoopNest, cache: CacheSpec) -> Option<Self> {
        Some(AnalyzeRequest::new(id, to_source(nest)?, cache))
    }

    /// Parses and validates the program text.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::Parse`] with the parser's positioned message.
    pub fn parse_program(&self) -> Result<LoopNest, Error> {
        Ok(parse_nest(&self.program)?)
    }

    /// Validates the cache geometry.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidCache`].
    pub fn cache_config(&self) -> Result<CacheConfig, Error> {
        self.cache.build()
    }

    /// Validates the full cache model (geometry, policies, optional L2).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidCache`].
    pub fn cache_model(&self) -> Result<CacheModel, Error> {
        self.cache.model()
    }

    /// The analysis options this request asks for.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::InvalidOptions`] on inconsistent combinations.
    pub fn options(&self) -> Result<AnalysisOptions, Error> {
        Ok(AnalysisOptions::builder()
            .epsilon(self.epsilon)
            .try_build()?)
    }

    /// The per-request governor budget (unlimited when no limit is set).
    pub fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.budget_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(n) = self.max_solves {
            b = b.with_max_solves(n);
        }
        if let Some(n) = self.max_points {
            b = b.with_max_points(n);
        }
        b
    }

    /// The JSON form.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("op", Json::Str("analyze".into())),
            ("id", Json::Str(self.id.clone())),
            ("program", Json::Str(self.program.clone())),
            ("cache", self.cache.to_json()),
            ("epsilon", Json::UInt(self.epsilon)),
        ];
        if let Some(ms) = self.budget_ms {
            pairs.push(("budget_ms", Json::UInt(ms)));
        }
        if let Some(n) = self.max_solves {
            pairs.push(("max_solves", Json::UInt(n)));
        }
        if let Some(n) = self.max_points {
            pairs.push(("max_points", Json::UInt(n)));
        }
        obj(pairs)
    }

    /// Parses the JSON form. The `op` field, when present, must be
    /// `"analyze"`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`] naming the offending field.
    pub fn from_json(v: &Json) -> Result<Self, Error> {
        if let Some(op) = v.get("op") {
            if op.as_str() != Some("analyze") {
                return Err(bad("field `op` must be \"analyze\""));
            }
        }
        Ok(AnalyzeRequest {
            id: req_str(v, "id")?,
            program: req_str(v, "program")?,
            cache: CacheSpec::from_json(
                v.get("cache").ok_or_else(|| bad("missing field `cache`"))?,
            )?,
            epsilon: opt_u64(v, "epsilon")?.unwrap_or(0),
            budget_ms: opt_u64(v, "budget_ms")?,
            max_solves: opt_u64(v, "max_solves")?,
            max_points: opt_u64(v, "max_points")?,
        })
    }

    /// One protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`].
    pub fn decode(line: &str) -> Result<Self, Error> {
        AnalyzeRequest::from_json(&json::parse(line)?)
    }
}

/// Per-reference slice of a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefSummary {
    /// The reference's display label (e.g. `Z(j,i)#0`).
    pub label: String,
    /// Cold misses.
    pub cold_misses: u64,
    /// Replacement misses.
    pub replacement_misses: u64,
    /// Reuse vectors investigated.
    pub vectors_used: u64,
}

/// How the governor left the query, flattened for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeSummary {
    /// True when every point was classified exactly (the counts equal an
    /// ungoverned run's).
    pub complete: bool,
    /// The first limit that tripped (`"deadline"`, `"solve budget"`,
    /// `"point budget"`, `"cancelled"`); empty when complete.
    pub reason: String,
    /// Fraction of charged work finished before the stop (`1.0` when
    /// complete).
    pub completed_fraction: f64,
    /// Points counted as misses because refinement was cut short.
    pub truncated_points: u64,
}

impl OutcomeSummary {
    /// Flattens a governor [`Outcome`].
    pub fn of(outcome: &Outcome) -> Self {
        match outcome {
            Outcome::Complete => OutcomeSummary {
                complete: true,
                reason: String::new(),
                completed_fraction: 1.0,
                truncated_points: 0,
            },
            Outcome::Exhausted {
                reason,
                completed_fraction,
                truncated_points,
                ..
            } => OutcomeSummary {
                complete: false,
                reason: reason.to_string(),
                completed_fraction: *completed_fraction,
                truncated_points: *truncated_points,
            },
        }
    }
}

/// Where a model-aware result's counts came from.
///
/// Absent (`None` on [`AnalyzeResult::provenance`]) for baseline
/// requests, whose counts are the analytic CME evaluation and carry the
/// usual exact/sound-overcount semantics of [`OutcomeSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Counts are an exact trace replay through the requested model's
    /// simulator; `lru_bound` carries the analytic LRU result alongside.
    Simulator,
    /// The governed replay exhausted its budget, so the counts *are* the
    /// analytic LRU evaluation — exact only for LRU, a documented bound
    /// under the requested non-LRU/multi-level model.
    Analytic,
}

impl Provenance {
    /// The stable wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Provenance::Simulator => "simulator",
            Provenance::Analytic => "analytic",
        }
    }

    /// Parses the wire spelling (`None` for unknown values — lenient, so
    /// future provenances decode as "unspecified" rather than failing).
    pub fn from_wire(s: &str) -> Option<Provenance> {
        match s {
            "simulator" => Some(Provenance::Simulator),
            "analytic" => Some(Provenance::Analytic),
            _ => None,
        }
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The successful payload of a response: the counts of a
/// [`crate::NestAnalysis`] plus the governor and store provenance.
///
/// The model-aware fields (`writebacks`, `l2_misses`, `lru_bound`,
/// `provenance`) are `None` on the baseline path and **omitted from the
/// JSON encoding when `None`**, keeping baseline responses byte-identical
/// to the pre-model format.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeResult {
    /// Name of the analyzed nest.
    pub nest_name: String,
    /// Total misses (cold + replacement), an upper bound when
    /// `outcome.complete` is false.
    pub total_misses: u64,
    /// Total cold misses.
    pub total_cold: u64,
    /// Total replacement misses.
    pub total_replacement: u64,
    /// Per-reference counts, in statement order.
    pub per_ref: Vec<RefSummary>,
    /// How the governor left the query.
    pub outcome: OutcomeSummary,
    /// True when the counts were served from the persistent artifact
    /// store instead of recomputed.
    pub store_hit: bool,
    /// Memory write traffic observed by the model simulator (simulator
    /// provenance only).
    pub writebacks: Option<u64>,
    /// Total L2 misses (two-level models with simulator provenance only).
    pub l2_misses: Option<u64>,
    /// The analytic LRU total-miss count attached to a model-aware
    /// result: for non-LRU policies the LRU stack-distance criterion is
    /// not exact, so this travels as a *documented bound* next to the
    /// simulator-exact counts.
    pub lru_bound: Option<u64>,
    /// Which engine answered a model-aware request; `None` on the
    /// baseline path.
    pub provenance: Option<Provenance>,
}

impl AnalyzeResult {
    /// Summarizes a governed analysis.
    pub fn of(governed: &GovernedAnalysis, store_hit: bool) -> Self {
        AnalyzeResult::of_parts(&governed.analysis, &governed.outcome, store_hit)
    }

    /// Summarizes raw counts plus an outcome tag.
    pub fn of_parts(analysis: &NestAnalysis, outcome: &Outcome, store_hit: bool) -> Self {
        AnalyzeResult {
            nest_name: analysis.nest_name.clone(),
            total_misses: analysis.total_misses(),
            total_cold: analysis.total_cold(),
            total_replacement: analysis.total_replacement(),
            per_ref: analysis
                .per_ref
                .iter()
                .map(|r| RefSummary {
                    label: r.label.clone(),
                    cold_misses: r.cold_misses,
                    replacement_misses: r.replacement_misses,
                    vectors_used: r.vectors_used() as u64,
                })
                .collect(),
            outcome: OutcomeSummary::of(outcome),
            store_hit,
            writebacks: None,
            l2_misses: None,
            lru_bound: None,
            provenance: None,
        }
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("nest", Json::Str(self.nest_name.clone())),
            ("total_misses", Json::UInt(self.total_misses)),
            ("total_cold", Json::UInt(self.total_cold)),
            ("total_replacement", Json::UInt(self.total_replacement)),
            (
                "per_ref",
                Json::Arr(
                    self.per_ref
                        .iter()
                        .map(|r| {
                            obj([
                                ("label", Json::Str(r.label.clone())),
                                ("cold", Json::UInt(r.cold_misses)),
                                ("replacement", Json::UInt(r.replacement_misses)),
                                ("vectors", Json::UInt(r.vectors_used)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "outcome",
                obj([
                    ("complete", Json::Bool(self.outcome.complete)),
                    ("reason", Json::Str(self.outcome.reason.clone())),
                    (
                        "completed_fraction",
                        Json::Float(self.outcome.completed_fraction),
                    ),
                    (
                        "truncated_points",
                        Json::UInt(self.outcome.truncated_points),
                    ),
                ]),
            ),
            ("store_hit", Json::Bool(self.store_hit)),
        ];
        if let Some(w) = self.writebacks {
            pairs.push(("writebacks", Json::UInt(w)));
        }
        if let Some(m) = self.l2_misses {
            pairs.push(("l2_misses", Json::UInt(m)));
        }
        if let Some(b) = self.lru_bound {
            pairs.push(("lru_bound", Json::UInt(b)));
        }
        if let Some(p) = self.provenance {
            pairs.push(("provenance", Json::Str(p.as_str().into())));
        }
        obj(pairs)
    }

    fn from_json(v: &Json) -> Result<Self, Error> {
        let per_ref = v
            .get("per_ref")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing array field `per_ref`"))?
            .iter()
            .map(|r| {
                Ok(RefSummary {
                    label: req_str(r, "label")?,
                    cold_misses: opt_u64(r, "cold")?.unwrap_or(0),
                    replacement_misses: opt_u64(r, "replacement")?.unwrap_or(0),
                    vectors_used: opt_u64(r, "vectors")?.unwrap_or(0),
                })
            })
            .collect::<Result<Vec<_>, Error>>()?;
        let o = v
            .get("outcome")
            .ok_or_else(|| bad("missing field `outcome`"))?;
        Ok(AnalyzeResult {
            nest_name: req_str(v, "nest")?,
            total_misses: opt_u64(v, "total_misses")?.unwrap_or(0),
            total_cold: opt_u64(v, "total_cold")?.unwrap_or(0),
            total_replacement: opt_u64(v, "total_replacement")?.unwrap_or(0),
            per_ref,
            outcome: OutcomeSummary {
                complete: o.get("complete").and_then(Json::as_bool).unwrap_or(true),
                reason: o
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                completed_fraction: o
                    .get("completed_fraction")
                    .and_then(Json::as_f64)
                    .unwrap_or(1.0),
                truncated_points: opt_u64(o, "truncated_points")?.unwrap_or(0),
            },
            store_hit: v.get("store_hit").and_then(Json::as_bool).unwrap_or(false),
            writebacks: opt_u64(v, "writebacks")?,
            l2_misses: opt_u64(v, "l2_misses")?,
            lru_bound: opt_u64(v, "lru_bound")?,
            provenance: v
                .get("provenance")
                .and_then(Json::as_str)
                .and_then(Provenance::from_wire),
        })
    }
}

/// One analysis answer: the echoed request id plus either a result or a
/// coded error.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeResponse {
    /// The request's correlation id, echoed verbatim.
    pub id: String,
    /// The counts, or why there are none.
    pub result: Result<AnalyzeResult, Error>,
}

impl AnalyzeResponse {
    /// A success response.
    pub fn ok(id: impl Into<String>, result: AnalyzeResult) -> Self {
        AnalyzeResponse {
            id: id.into(),
            result: Ok(result),
        }
    }

    /// An error response.
    pub fn err(id: impl Into<String>, error: Error) -> Self {
        AnalyzeResponse {
            id: id.into(),
            result: Err(error),
        }
    }

    /// The JSON form: `{"id", "ok": {...}}` or
    /// `{"id", "error": {"code", "message"}}`.
    pub fn to_json(&self) -> Json {
        match &self.result {
            Ok(r) => obj([("id", Json::Str(self.id.clone())), ("ok", r.to_json())]),
            Err(e) => obj([
                ("id", Json::Str(self.id.clone())),
                (
                    "error",
                    obj([
                        ("code", Json::Str(e.code.as_str().into())),
                        ("message", Json::Str(e.message.clone())),
                    ]),
                ),
            ]),
        }
    }

    /// Parses the JSON form. Unknown error codes degrade to
    /// [`ErrorCode::Internal`] (forward compatibility).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`] when neither `ok` nor `error` is present.
    pub fn from_json(v: &Json) -> Result<Self, Error> {
        let id = req_str(v, "id")?;
        if let Some(ok) = v.get("ok") {
            return Ok(AnalyzeResponse {
                id,
                result: Ok(AnalyzeResult::from_json(ok)?),
            });
        }
        if let Some(e) = v.get("error") {
            let code = req_str(e, "code")?;
            return Ok(AnalyzeResponse {
                id,
                result: Err(Error::new(
                    ErrorCode::from_wire(&code).unwrap_or(ErrorCode::Internal),
                    req_str(e, "message")?,
                )),
            });
        }
        Err(bad("response has neither `ok` nor `error`"))
    }

    /// One protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`].
    pub fn decode(line: &str) -> Result<Self, Error> {
        AnalyzeResponse::from_json(&json::parse(line)?)
    }
}

impl Analyzer {
    /// Serves one [`AnalyzeRequest`] on this session: parses and validates
    /// the request, analyzes under the request's own budget (overriding
    /// the session budget), and packages the counts — or the coded failure
    /// — as an [`AnalyzeResponse`]. The request's cache geometry must
    /// match the session's; `cme-serve` routes requests to per-geometry
    /// sessions, and in-process callers construct the session from the
    /// request ([`AnalyzeRequest::cache_config`]).
    ///
    /// Budget exhaustion is a *success* with `outcome.complete = false`,
    /// never an error.
    pub fn serve(&mut self, request: &AnalyzeRequest) -> AnalyzeResponse {
        match self.serve_inner(request) {
            Ok(result) => AnalyzeResponse::ok(&request.id, result),
            Err(e) => AnalyzeResponse::err(&request.id, e),
        }
    }

    fn serve_inner(&mut self, request: &AnalyzeRequest) -> Result<AnalyzeResult, Error> {
        let cache = request.cache_config()?;
        if &cache != self.cache() {
            return Err(Error::new(
                ErrorCode::InvalidCache,
                format!(
                    "request geometry ({cache}) does not match the session ({})",
                    self.cache()
                ),
            ));
        }
        let model = request.cache_model()?;
        if &model != self.model() {
            return Err(Error::new(
                ErrorCode::InvalidCache,
                format!(
                    "request cache model ({model}) does not match the session ({})",
                    self.model()
                ),
            ));
        }
        let nest = request.parse_program()?;
        let options = request.options()?;
        let budget = request.budget();
        let threads = self.thread_count();
        let id = self.intern(&nest);
        let hits_before = self.stats().store_hits;
        let governed = self
            .engine_mut()
            .try_analyze_id(id, &options, threads, budget, None)?;
        let store_hit = self.stats().store_hits > hits_before;
        if model.is_baseline() {
            return Ok(AnalyzeResult::of(&governed, store_hit));
        }
        // Non-baseline model: the analytic counts above are the LRU
        // *bound* (and performed the address-overflow validation); the
        // exact answer comes from the governed trace replay.
        let lru_bound = governed.analysis.total_misses();
        let classification = self.engine().classify_model(&nest, &model, budget, None);
        Ok(match classification.sim {
            Some(sim) => {
                let per_ref = governed
                    .analysis
                    .per_ref
                    .iter()
                    .zip(&sim.per_ref)
                    .map(|(r, s)| RefSummary {
                        label: r.label.clone(),
                        cold_misses: s.cold,
                        replacement_misses: s.replacement,
                        vectors_used: r.vectors_used() as u64,
                    })
                    .collect();
                let total = sim.total();
                AnalyzeResult {
                    nest_name: sim.nest_name.clone(),
                    total_misses: total.misses(),
                    total_cold: total.cold,
                    total_replacement: total.replacement,
                    per_ref,
                    outcome: OutcomeSummary::of(&classification.outcome),
                    store_hit,
                    writebacks: Some(sim.writebacks),
                    l2_misses: sim.l2_misses,
                    lru_bound: Some(lru_bound),
                    provenance: Some(Provenance::Simulator),
                }
            }
            None => {
                // Replay exhausted: degrade to the analytic LRU bound,
                // tagged with the replay's exhaustion outcome so the
                // client sees why the counts are not model-exact.
                let mut result =
                    AnalyzeResult::of_parts(&governed.analysis, &classification.outcome, store_hit);
                result.lru_bound = Some(lru_bound);
                result.provenance = Some(Provenance::Analytic);
                result
            }
        })
    }

    /// [`Analyzer::serve`] over a batch: requests that share options and
    /// budget are analyzed through one [`Analyzer::try_analyze_batch`]
    /// pool session (sharing workers and memo tables); the rest fall back
    /// to per-request serving. Responses are in request order, each
    /// bit-identical to serving that request alone.
    pub fn serve_batch(&mut self, requests: &[AnalyzeRequest]) -> Vec<AnalyzeResponse> {
        // Validate everything first; only uniform, valid requests batch.
        struct Item {
            nest_id: cme_ir::NestId,
            options: AnalysisOptions,
            budget: Budget,
            /// Only baseline-model requests join the uniform batch;
            /// non-baseline ones need the per-request simulator path.
            baseline: bool,
        }
        let mut items: Vec<Result<Item, Error>> = Vec::with_capacity(requests.len());
        for request in requests {
            items.push((|| {
                let cache = request.cache_config()?;
                if &cache != self.cache() {
                    return Err(Error::new(
                        ErrorCode::InvalidCache,
                        format!(
                            "request geometry ({cache}) does not match the session ({})",
                            self.cache()
                        ),
                    ));
                }
                let model = request.cache_model()?;
                if &model != self.model() {
                    return Err(Error::new(
                        ErrorCode::InvalidCache,
                        format!(
                            "request cache model ({model}) does not match the session ({})",
                            self.model()
                        ),
                    ));
                }
                let nest = request.parse_program()?;
                Ok(Item {
                    nest_id: self.intern(&nest),
                    options: request.options()?,
                    budget: request.budget(),
                    baseline: model.is_baseline(),
                })
            })());
        }
        let uniform = {
            let mut ok = items
                .iter()
                .filter_map(|i| i.as_ref().ok().filter(|i| i.baseline));
            match ok.next() {
                Some(first) => ok.all(|i| i.options == first.options && i.budget == first.budget),
                None => true,
            }
        };
        let threads = self.thread_count();
        let mut responses: Vec<Option<AnalyzeResponse>> = requests.iter().map(|_| None).collect();
        if uniform {
            let batch: Vec<(usize, &Item)> = items
                .iter()
                .enumerate()
                .filter_map(|(i, r)| {
                    r.as_ref()
                        .ok()
                        .filter(|item| item.baseline)
                        .map(|item| (i, item))
                })
                .collect();
            if let Some((_, first)) = batch.first() {
                let ids: Vec<cme_ir::NestId> = batch.iter().map(|(_, it)| it.nest_id).collect();
                let options = first.options.clone();
                let budget = first.budget;
                let hits_before = self.stats().store_hits;
                match self
                    .engine_mut()
                    .try_analyze_batch(&ids, &options, threads, budget, None)
                {
                    Ok(governed) => {
                        // Per-request hit attribution is coarse for a
                        // batch: flag all batched results when any hit
                        // landed only if the whole batch hit.
                        let hits = self.stats().store_hits - hits_before;
                        let all_hit = hits >= ids.len() as u64;
                        for ((i, _), g) in batch.iter().zip(governed) {
                            responses[*i] = Some(AnalyzeResponse::ok(
                                &requests[*i].id,
                                AnalyzeResult::of(&g, all_hit),
                            ));
                        }
                    }
                    Err(e) => {
                        let err = Error::from(e);
                        for (i, _) in &batch {
                            responses[*i] =
                                Some(AnalyzeResponse::err(&requests[*i].id, err.clone()));
                        }
                    }
                }
            }
        }
        for (i, request) in requests.iter().enumerate() {
            if responses[i].is_none() {
                responses[i] = Some(match &items[i] {
                    Err(e) => AnalyzeResponse::err(&request.id, e.clone()),
                    Ok(_) => self.serve(request),
                });
            }
        }
        responses
            .into_iter()
            .map(|r| match r {
                Some(r) => r,
                None => unreachable!("every slot is filled above"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_ir::{AccessKind, NestBuilder};

    fn spec() -> CacheSpec {
        CacheSpec::new(8192, 1, 32, 4)
    }

    fn sweep_source() -> &'static str {
        "REAL A(64) AT 0\nDO i = 1, 64\n  s = s + A(i)\nENDDO\n"
    }

    #[test]
    fn request_round_trips_through_json() {
        let mut req = AnalyzeRequest::new("q-1", sweep_source(), spec());
        req.epsilon = 10;
        req.budget_ms = Some(250);
        req.max_solves = Some(1_000_000);
        let line = req.encode();
        assert!(!line.contains('\n'), "wire framing is single-line");
        assert_eq!(AnalyzeRequest::decode(&line).unwrap(), req);
    }

    #[test]
    fn request_budget_and_options_materialize() {
        let mut req = AnalyzeRequest::new("q", sweep_source(), spec());
        req.budget_ms = Some(5);
        req.max_points = Some(77);
        let b = req.budget();
        assert_eq!(b.deadline(), Some(Duration::from_millis(5)));
        assert_eq!(b.max_points(), Some(77));
        assert_eq!(b.max_solves(), None);
        assert!(AnalyzeRequest::new("q", sweep_source(), spec())
            .budget()
            .is_unlimited());
        assert_eq!(req.options().unwrap().epsilon, 0);
    }

    #[test]
    fn from_nest_uses_the_textual_format() {
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 64);
        let a = b.array("A", &[64], 0);
        b.reference(a, AccessKind::Read, &[("i", 0)]);
        let nest = b.build().unwrap();
        let req = AnalyzeRequest::from_nest("n", &nest, spec()).unwrap();
        let parsed = req.parse_program().unwrap();
        assert_eq!(parsed.references().len(), nest.references().len());
    }

    #[test]
    fn baseline_wire_bytes_carry_no_model_fields() {
        // Old clients must see byte-identical lines for baseline requests
        // and responses: the model fields only appear when non-default.
        let req = AnalyzeRequest::new("b", sweep_source(), spec());
        let line = req.encode();
        for f in ["policy", "write", "l2"] {
            assert!(!line.contains(f), "`{f}` leaked into {line}");
        }
        let cfg = spec().build().unwrap();
        let ok = Analyzer::new(cfg).serve(&req).encode();
        for f in ["writebacks", "l2_misses", "lru_bound", "provenance"] {
            assert!(!ok.contains(f), "`{f}` leaked into {ok}");
        }
    }

    #[test]
    fn model_spec_round_trips_and_defaults() {
        let mut s = spec();
        s.policy = PolicyKind::Fifo;
        s.write = WritePolicy::WriteThrough;
        s.l2 = Some(L2Spec {
            size_bytes: 65536,
            assoc: 8,
        });
        let req = AnalyzeRequest::new("m", sweep_source(), s);
        let line = req.encode();
        assert!(line.contains("\"policy\":\"fifo\""), "{line}");
        let back = AnalyzeRequest::decode(&line).unwrap();
        assert_eq!(back, req);
        let model = back.cache.model().unwrap();
        assert_eq!(model.policy_kind(), PolicyKind::Fifo);
        assert!(!model.is_baseline());
        // Absent fields decode to the baseline model (old clients).
        let old = AnalyzeRequest::new("o", sweep_source(), spec());
        let decoded = AnalyzeRequest::decode(&old.encode()).unwrap();
        assert!(decoded.cache.model().unwrap().is_baseline());
    }

    #[test]
    fn unknown_policy_is_a_typed_invalid_cache_error() {
        let mut s = spec();
        s.policy = PolicyKind::Fifo;
        let line = AnalyzeRequest::new("q", sweep_source(), s)
            .encode()
            .replace("fifo", "random");
        let e = AnalyzeRequest::decode(&line).unwrap_err();
        assert_eq!(e.code, ErrorCode::InvalidCache);
        assert!(e.message.contains("random"), "{}", e.message);
    }

    #[test]
    fn serving_a_fifo_model_attaches_bound_and_provenance() {
        let mut s = spec();
        s.policy = PolicyKind::Fifo;
        let mut analyzer = Analyzer::with_model(s.model().unwrap());
        let resp = analyzer.serve(&AnalyzeRequest::new("f", sweep_source(), s));
        let result = resp.result.as_ref().unwrap();
        assert_eq!(result.provenance, Some(Provenance::Simulator));
        assert_eq!(result.lru_bound, Some(8));
        assert!(result.outcome.complete);
        // Direct-mapped FIFO equals LRU on this streaming kernel, so the
        // exact counts meet the bound; a read-only kernel writes nothing.
        assert_eq!(result.total_misses, 8);
        assert_eq!(result.writebacks, Some(0));
        assert_eq!(result.l2_misses, None);
        // The model-aware fields survive the wire.
        assert_eq!(AnalyzeResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn model_mismatch_against_the_session_is_invalid_cache() {
        let cfg = spec().build().unwrap();
        let mut analyzer = Analyzer::new(cfg); // baseline session
        let mut s = spec();
        s.policy = PolicyKind::Plru;
        let resp = analyzer.serve(&AnalyzeRequest::new("p", sweep_source(), s));
        assert_eq!(resp.result.unwrap_err().code, ErrorCode::InvalidCache);
    }

    #[test]
    fn serve_answers_and_echoes_id() {
        let cfg = spec().build().unwrap();
        let mut analyzer = Analyzer::new(cfg);
        let resp = analyzer.serve(&AnalyzeRequest::new("abc", sweep_source(), spec()));
        assert_eq!(resp.id, "abc");
        let result = resp.result.unwrap();
        assert_eq!(result.total_misses, 8);
        assert!(result.outcome.complete);
        assert!(!result.store_hit);
        // The response survives the wire.
        let resp2 = AnalyzeResponse::ok("abc", result);
        assert_eq!(AnalyzeResponse::decode(&resp2.encode()).unwrap(), resp2);
    }

    #[test]
    fn serve_matches_in_process_analysis() {
        let cfg = spec().build().unwrap();
        let mut analyzer = Analyzer::new(cfg);
        let req = AnalyzeRequest::new("q", sweep_source(), spec());
        let nest = req.parse_program().unwrap();
        let direct = analyzer.analyze(&nest);
        let served = analyzer.serve(&req).result.unwrap();
        assert_eq!(served.total_misses, direct.total_misses());
        assert_eq!(served.total_cold, direct.total_cold());
        assert_eq!(served.per_ref.len(), direct.per_ref.len());
    }

    #[test]
    fn serve_reports_coded_errors() {
        let cfg = spec().build().unwrap();
        let mut analyzer = Analyzer::new(cfg);
        let resp = analyzer.serve(&AnalyzeRequest::new("x", "DO i = ENDDO", spec()));
        assert_eq!(resp.result.unwrap_err().code, ErrorCode::Parse);
        let mut req = AnalyzeRequest::new("y", sweep_source(), spec());
        req.cache.assoc = 3; // infeasible geometry
        let resp = analyzer.serve(&req);
        assert_eq!(resp.result.unwrap_err().code, ErrorCode::InvalidCache);
        let mut req = AnalyzeRequest::new("z", sweep_source(), spec());
        req.cache.size_bytes = 4096; // valid but a different session
        let resp = analyzer.serve(&req);
        assert_eq!(resp.result.unwrap_err().code, ErrorCode::InvalidCache);
    }

    #[test]
    fn serve_surfaces_exhaustion_as_degraded_success() {
        let cfg = spec().build().unwrap();
        let mut analyzer = Analyzer::new(cfg);
        let mut req = AnalyzeRequest::new("tight", sweep_source(), spec());
        req.max_solves = Some(1);
        let result = analyzer.serve(&req).result.unwrap();
        assert!(!result.outcome.complete);
        assert!(!result.outcome.reason.is_empty());
        // Sound overcount: never below the exact answer.
        assert!(result.total_misses >= 8);
    }

    #[test]
    fn serve_batch_matches_individual_serves() {
        let cfg = spec().build().unwrap();
        let reqs: Vec<AnalyzeRequest> = (0..3)
            .map(|i| {
                let n = 32 << i;
                AnalyzeRequest::new(
                    format!("q{i}"),
                    format!("REAL A({n}) AT 0\nDO i = 1, {n}\n  s = s + A(i)\nENDDO\n"),
                    spec(),
                )
            })
            .collect();
        let batched = Analyzer::new(cfg).serve_batch(&reqs);
        let mut solo = Analyzer::new(cfg);
        for (req, resp) in reqs.iter().zip(&batched) {
            assert_eq!(resp.id, req.id);
            assert_eq!(
                resp.result.as_ref().unwrap().total_misses,
                solo.serve(req).result.unwrap().total_misses
            );
        }
    }

    #[test]
    fn serve_batch_mixes_errors_and_results() {
        let cfg = spec().build().unwrap();
        let good = AnalyzeRequest::new("good", sweep_source(), spec());
        let bad = AnalyzeRequest::new("bad", "not a program", spec());
        let resps = Analyzer::new(cfg).serve_batch(&[good, bad]);
        assert!(resps[0].result.is_ok());
        assert_eq!(resps[1].result.as_ref().unwrap_err().code, ErrorCode::Parse);
    }

    #[test]
    fn error_codes_are_stable() {
        let all = [
            (ErrorCode::BadRequest, "bad-request", 10),
            (ErrorCode::Parse, "parse", 11),
            (ErrorCode::InvalidCache, "invalid-cache", 12),
            (ErrorCode::InvalidOptions, "invalid-options", 13),
            (ErrorCode::WorkerPanic, "worker-panic", 20),
            (ErrorCode::Overflow, "overflow", 21),
            (ErrorCode::Store, "store", 30),
            (ErrorCode::Io, "io", 31),
            (ErrorCode::Overloaded, "overloaded", 32),
            (ErrorCode::Mismatch, "mismatch", 40),
            (ErrorCode::Internal, "internal", 50),
        ];
        for (code, s, exit) in all {
            assert_eq!(code.as_str(), s);
            assert_eq!(code.exit_code(), exit);
            assert_eq!(ErrorCode::from_wire(s), Some(code));
        }
        assert_eq!(ErrorCode::from_wire("no-such-code"), None);
    }

    #[test]
    fn internal_errors_convert_with_their_codes() {
        let e: Error = AnalysisError::Overflow {
            context: "ref #0".into(),
        }
        .into();
        assert_eq!(e.code, ErrorCode::Overflow);
        let e: Error = AnalysisError::WorkerPanic {
            message: "boom".into(),
        }
        .into();
        assert_eq!(e.code, ErrorCode::WorkerPanic);
        let e: Error = parse_nest("garbage").unwrap_err().into();
        assert_eq!(e.code, ErrorCode::Parse);
        let e: Error = CacheConfig::new(0, 1, 32, 4).unwrap_err().into();
        assert_eq!(e.code, ErrorCode::InvalidCache);
        let e: Error = AnalysisOptions::builder()
            .epsilon(5)
            .exact_equation_counts(true)
            .try_build()
            .unwrap_err()
            .into();
        assert_eq!(e.code, ErrorCode::InvalidOptions);
        let e: Error = json::parse("{{").unwrap_err().into();
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn unknown_wire_error_code_degrades_to_internal() {
        let line = r#"{"error":{"code":"from-the-future","message":"m"},"id":"x"}"#;
        let resp = AnalyzeResponse::decode(line).unwrap();
        assert_eq!(resp.result.unwrap_err().code, ErrorCode::Internal);
    }
}
