//! A small self-contained JSON layer for the wire protocol.
//!
//! The build environment is offline (no serde), and the protocol's needs
//! are modest: one [`Json`] value per request/response line. The parser
//! is a bounds- and depth-checked recursive descent over UTF-8; the
//! writer emits compact single-line JSON (never embedding a raw newline,
//! which is what makes the line-delimited framing of `cme-serve` safe).
//!
//! Numbers preserve integer precision: `u64`/`i64` survive a round trip
//! exactly (miss counts can exceed `f64`'s 2⁵³ integer range), floats are
//! used only where the schema is genuinely fractional
//! (`completed_fraction`).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Objects use a [`BTreeMap`], so encoding is deterministic (keys sorted)
/// — byte-identical requests hash and diff cleanly in tests and logs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` (covers negatives).
    Int(i64),
    /// A non-negative integer that fits `u64` but not `i64`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` when it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Compact single-line rendering (no embedded raw newlines).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::UInt(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
                } else {
                    // JSON has no NaN/Inf; degrade to null rather than
                    // emitting an unparsable token.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: builds an object from key/value pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting ceiling: protocol messages are flat; a deeply nested input is
/// hostile or corrupt, and recursion depth must stay bounded.
const MAX_DEPTH: usize = 64;

/// Parses one JSON value, requiring the whole input be consumed (modulo
/// trailing whitespace).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after the value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = match s.chars().next() {
                        Some(c) => c,
                        None => return Err(self.err("unterminated string")),
                    };
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "123456789012345678",
            "0.5",
            "\"\"",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.encode()).unwrap(), v, "{src}");
        }
        // An integral float re-parses as an integer; only the numeric
        // value is wire surface.
        let v = parse("-1.25e3").unwrap();
        assert_eq!(parse(&v.encode()).unwrap().as_f64(), v.as_f64());
    }

    #[test]
    fn u64_precision_survives() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.encode(), "18446744073709551615");
    }

    #[test]
    fn nested_structures_round_trip() {
        let src = r#"{"a":[1,{"b":"x\ny"},null],"z":{"k":true}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.encode(), src);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""quote \" slash \\ tab \t unicode \u00e9 pair \ud83d\ude00""#).unwrap();
        assert_eq!(
            v.as_str(),
            Some("quote \" slash \\ tab \t unicode é pair 😀")
        );
        // The writer escapes what the framing requires.
        let enc = Json::Str("a\nb\u{1}".into()).encode();
        assert_eq!(enc, "\"a\\nb\\u0001\"");
        assert!(!enc.contains('\n'));
    }

    #[test]
    fn rejects_malformed_input() {
        for src in [
            "",
            "{",
            "[1,",
            "nul",
            "\"unterminated",
            "01x",
            "{\"a\" 1}",
            "1 2",
            "\"\\ud800\"",
            "-",
        ] {
            assert!(parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn object_encoding_is_deterministic() {
        let a = parse(r#"{"b":1,"a":2}"#).unwrap();
        let b = parse(r#"{"a":2,"b":1}"#).unwrap();
        assert_eq!(a.encode(), b.encode());
    }
}
