//! Multi-nest (inter-nest) analysis — the paper's Section 7 future work.
//!
//! The CME framework analyzes one nest at a time from a cold cache
//! (Section 3.1). For a *sequence* of nests, per-nest cold-start counts are
//! a **sound upper bound** on the warm-sequence misses: inter-nest reuse
//! can only turn would-be cold misses into hits, never create new misses
//! (LRU state left by earlier nests is a subset of "empty plus useful
//! lines"... more precisely, any access that misses in the warm run also
//! misses in the cold-start run of its own nest, because the warm cache's
//! extra contents only add lines).
//!
//! [`analyze_sequence`] packages that bound; the simulator's
//! [`cme_cache::simulate_sequence`] provides the warm ground truth the
//! bound is validated against. Closing the gap with true inter-nest reuse
//! vectors is the paper's (and this crate's) future work; the paper notes
//! most inter-nest misses occur between *adjacent* nests \[16\].

use crate::engine::Analyzer;
use crate::solve::{AnalysisOptions, NestAnalysis};
use cme_cache::CacheConfig;
use cme_ir::LoopNest;
use std::fmt;

/// Per-nest cold-start analyses plus the aggregate bound.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceAnalysis {
    /// One cold-start analysis per nest, in program order.
    pub per_nest: Vec<NestAnalysis>,
}

impl SequenceAnalysis {
    /// The sound upper bound on total misses of the warm sequence.
    pub fn miss_upper_bound(&self) -> u64 {
        self.per_nest.iter().map(NestAnalysis::total_misses).sum()
    }
}

impl fmt::Display for SequenceAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.per_nest {
            writeln!(f, "{a}")?;
        }
        write!(
            f,
            "sequence upper bound: {} misses",
            self.miss_upper_bound()
        )
    }
}

/// Analyzes each nest of a program fragment independently (cold start) and
/// returns the per-nest results with the aggregate upper bound.
pub fn analyze_sequence(
    nests: &[&LoopNest],
    cache: CacheConfig,
    options: &AnalysisOptions,
) -> SequenceAnalysis {
    let mut analyzer = Analyzer::new(cache).options(options.clone());
    SequenceAnalysis {
        per_nest: nests.iter().map(|n| analyzer.analyze(n)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_cache::simulate_sequence;
    use cme_ir::{AccessKind, NestBuilder};

    fn sweep(name: &str, n: i64, base: i64) -> LoopNest {
        let mut b = NestBuilder::new();
        b.name(name).ct_loop("i", 1, n);
        let a = b.array("A", &[n], base);
        b.reference(a, AccessKind::Read, &[("i", 0)]);
        b.build().unwrap()
    }

    #[test]
    fn bound_holds_and_is_tight_without_overlap() {
        let cache = CacheConfig::new(8192, 1, 32, 4).unwrap();
        let a = sweep("a", 128, 0);
        let b = sweep("b", 128, 4096); // disjoint sets region
        let seq = analyze_sequence(&[&a, &b], cache, &AnalysisOptions::default());
        let sim: u64 = simulate_sequence(&[&a, &b], cache)
            .iter()
            .map(|r| r.total().misses())
            .sum();
        assert!(seq.miss_upper_bound() >= sim);
        // Disjoint nests: the bound is exact.
        assert_eq!(seq.miss_upper_bound(), sim);
    }

    #[test]
    fn bound_is_conservative_with_internest_reuse() {
        let cache = CacheConfig::new(8192, 1, 32, 4).unwrap();
        let a = sweep("a", 128, 0);
        let b = sweep("b", 128, 0); // identical: second nest all-hits warm
        let seq = analyze_sequence(&[&a, &b], cache, &AnalysisOptions::default());
        let sims = simulate_sequence(&[&a, &b], cache);
        let sim: u64 = sims.iter().map(|r| r.total().misses()).sum();
        assert_eq!(sims[1].total().misses(), 0, "warm reuse");
        assert!(seq.miss_upper_bound() > sim, "bound is strict here");
        assert!(seq.miss_upper_bound() >= sim);
        assert!(seq.to_string().contains("upper bound"));
    }

    #[test]
    fn paper_adi_pair_bound() {
        // The unfused ADI pair shares all three arrays; the warm sequence
        // beats the cold-start bound, and both straddle the fused count.
        let cache = CacheConfig::new(8192, 1, 32, 4).unwrap();
        let (n1, n2) = cme_kernels::adi_fusion_unfused();
        let seq = analyze_sequence(&[&n1, &n2], cache, &AnalysisOptions::default());
        let sim: u64 = simulate_sequence(&[&n1, &n2], cache)
            .iter()
            .map(|r| r.total().misses())
            .sum();
        assert!(seq.miss_upper_bound() >= sim);
    }
}
