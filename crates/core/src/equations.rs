//! Symbolic Cache Miss Equations — the objects of Figure 3.
//!
//! For every reference and every one of its reuse vectors, the generator
//! produces one [`ColdEquation`] and one [`ReplacementEquation`] per
//! potentially-interfering reference (self-interference when the two
//! references coincide, cross-interference otherwise — Section 3.2.2).
//!
//! Solutions are never enumerated here; the optimizers of `cme-opt`
//! manipulate these symbolic forms (GCD conditions, parametric counts), and
//! [`crate::solve`] evaluates them exactly over the iteration space.

use cme_cache::CacheConfig;
use cme_ir::{LoopNest, RefId};
use cme_math::{Affine, Interval};
use cme_reuse::{reuse_vectors, ReuseOptions, ReuseVector};
use std::fmt;

/// Cold miss equation for one reference along one reuse vector
/// (Section 3.1): iteration point `i⃗` is a solution when the access at
/// `i⃗` does not reuse the source's line from `i⃗ − r⃗` — because the
/// source point falls outside the iteration space, or because the access
/// crossed a memory-line boundary along the vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdEquation {
    /// The reference whose cold misses this equation captures.
    pub dest: RefId,
    /// The reuse vector the equation is formed along.
    pub reuse: ReuseVector,
}

impl ColdEquation {
    /// Evaluates the equation at an iteration point: `true` means `i⃗` is a
    /// cold-CME solution (a *potential* cold miss along this vector).
    pub fn is_solution(&self, nest: &LoopNest, cache: &CacheConfig, point: &[i64]) -> bool {
        let r = self.reuse.vector();
        let p: Vec<i64> = point.iter().zip(r).map(|(a, b)| a - b).collect();
        if !nest.space().contains(&p) {
            return true;
        }
        let dest_line = cache.memory_line(nest.address(self.dest, point));
        let src_line = cache.memory_line(nest.address(self.reuse.source(), &p));
        dest_line != src_line
    }
}

impl fmt::Display for ColdEquation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ColdCME[{} along {}]", self.dest, self.reuse)
    }
}

/// Replacement miss equation (Equation 4 of the paper):
///
/// ```text
/// Mem_dest(i⃗) = Mem_perp(j⃗) + n·Cs/k + b,   n ≠ 0,
/// j⃗ ∈ (i⃗ − r⃗ … i⃗]  (window set by statement order),
/// b ∈ [−L_off, Ls − 1 − L_off]
/// ```
///
/// Each solution `(i⃗, j⃗, n)` is one cache-set contention between the
/// victim (`dest`) and the perpetrator (`perp`); `k` distinct `n` values at
/// the same `i⃗` make a replacement miss.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplacementEquation {
    /// The victim reference (suffers the potential miss at `i⃗`).
    pub dest: RefId,
    /// The perpetrator reference (accesses the conflicting set at `j⃗`).
    pub perp: RefId,
    /// The reuse vector the equation is formed along.
    pub reuse: ReuseVector,
    /// `Mem_dest` as an affine function of the iteration point `i⃗`.
    pub mem_dest: Affine,
    /// `Mem_perp` as an affine function of the interfering point `j⃗`.
    pub mem_perp: Affine,
    /// The way span `Cs/k` in elements (the `n` multiplier).
    pub way_span: i64,
    /// Line size in elements (`Ls`), bounding the `b` range.
    pub line_elems: i64,
}

impl ReplacementEquation {
    /// `true` when victim and perpetrator are the same static reference
    /// (the paper's *self-interference* equations).
    pub fn is_self_interference(&self) -> bool {
        self.dest == self.perp
    }

    /// The widest possible `b` range, `[-(Ls−1), Ls−1]`, used by the
    /// symbolic (padding) analysis which cannot fix `L_off` per point.
    pub fn b_range(&self) -> Interval {
        Interval::new(-(self.line_elems - 1), self.line_elems - 1)
    }

    /// Checks whether concrete points `(i⃗, j⃗)` witness a set contention,
    /// and returns the wraparound count `n ≠ 0` if so.
    ///
    /// This is the semantic form of Equation 4: same cache set, different
    /// memory line; `n` is the (nonzero) number of way-spans separating the
    /// two lines.
    pub fn contention_at(&self, cache: &CacheConfig, i: &[i64], j: &[i64]) -> Option<i64> {
        let a = self.mem_dest.eval(i);
        let b = self.mem_perp.eval(j);
        if cache.cache_set(a) != cache.cache_set(b) {
            return None;
        }
        let (la, lb) = (cache.memory_line(a), cache.memory_line(b));
        if la == lb {
            return None; // n = 0: same line, a reuse rather than a conflict
        }
        // Lines in the same set are spaced by way_span/Ls lines exactly.
        let lines_per_way = self.way_span / self.line_elems;
        debug_assert_eq!((la - lb) % lines_per_way, 0);
        Some((la - lb) / lines_per_way)
    }
}

impl ReplacementEquation {
    /// Counts the `(i⃗, j⃗, n)` solutions of Equation 4 over the whole
    /// iteration space **symbolically**, with the lattice-point counting
    /// engine (Section 5.1.2) — no window scanning, no simulation.
    ///
    /// The equation is linearized exactly by introducing the two memory
    /// lines `q_A`, `q_B` and the wraparound `n` as integer variables:
    ///
    /// ```text
    /// Ls·q_A ≤ Mem_A(i⃗) ≤ Ls·q_A + Ls − 1
    /// Ls·q_B ≤ Mem_B(j⃗) ≤ Ls·q_B + Ls − 1
    /// q_A − q_B = n·Ns,   n ≥ 1  or  n ≤ −1
    /// ```
    ///
    /// and the lexicographic window `p⃗ ≺ j⃗ ≺ i⃗` (`p⃗ = i⃗ − r⃗`) is
    /// decomposed as `count(j⃗ ≺ i⃗) − count(j⃗ ≼ p⃗)`, each a disjoint
    /// union of `depth` polytopes by first differing level. Statement-order
    /// endpoints (`j⃗ = p⃗` when the perpetrator follows the source,
    /// `j⃗ = i⃗` when it precedes the destination) are added per the
    /// paper's access-order rule.
    pub fn count_solutions(&self, nest: &LoopNest, cache: &CacheConfig) -> u64 {
        self.count_solutions_memo(nest, cache, None)
    }

    /// [`ReplacementEquation::count_solutions`] with every polytope count
    /// routed through a [`cme_math::SolveMemo`], so repeated counts over
    /// identical `(coefficients, bounds)` inputs — as produced by candidate
    /// layouts sharing structure — are answered from the memo.
    pub fn count_solutions_memo(
        &self,
        nest: &LoopNest,
        cache: &CacheConfig,
        memo: Option<&cme_math::SolveMemo>,
    ) -> u64 {
        let n = nest.depth();
        let src = self.reuse.source().index();
        let perp = self.perp.index();
        let dest = self.dest.index();

        let mut total = 0u64;
        if self.reuse.is_intra_iteration() {
            if src < perp && perp < dest {
                total += self.count_with_window(nest, cache, &WindowClass::Equal(Anchor::I), memo);
            }
            return total;
        }
        // Interior: count(j ≺ i) − count(j ≼ p).
        for l in 0..n {
            total += self.count_with_window(nest, cache, &WindowClass::Before(Anchor::I, l), memo);
        }
        for l in 0..n {
            total = total.saturating_sub(self.count_with_window(
                nest,
                cache,
                &WindowClass::Before(Anchor::P, l),
                memo,
            ));
        }
        total = total.saturating_sub(self.count_with_window(
            nest,
            cache,
            &WindowClass::Equal(Anchor::P),
            memo,
        ));
        // Endpoints by statement order.
        if perp > src {
            total += self.count_with_window(nest, cache, &WindowClass::Equal(Anchor::P), memo);
        }
        if perp < dest {
            total += self.count_with_window(nest, cache, &WindowClass::Equal(Anchor::I), memo);
        }
        total
    }

    /// Builds and counts one window-class polytope (both `n` sign branches).
    fn count_with_window(
        &self,
        nest: &LoopNest,
        cache: &CacheConfig,
        class: &WindowClass,
        memo: Option<&cme_math::SolveMemo>,
    ) -> u64 {
        let n = nest.depth();
        let nv = 2 * n + 3; // i.., j.., qa, qb, t
        let (qa, qb, t) = (2 * n, 2 * n + 1, 2 * n + 2);
        let ls = cache.line_elems();
        let ns = cache.num_sets();
        let r = self.reuse.vector();

        let mut base = cme_math::Polytope::new(nv);
        // Iteration-space membership for i (vars 0..n) and j (vars n..2n).
        let add_space = |p: &mut cme_math::Polytope, offset: usize| {
            for (l, lp) in nest.loops().iter().enumerate() {
                // lower(x) <= x_l  and  x_l <= upper(x).
                let mut lo = vec![0i64; nv];
                for (m, &c) in lp.lower().coeffs().iter().enumerate() {
                    lo[offset + m] += c;
                }
                lo[offset + l] -= 1;
                p.le(lo, -lp.lower().constant_term());
                let mut hi = vec![0i64; nv];
                hi[offset + l] += 1;
                for (m, &c) in lp.upper().coeffs().iter().enumerate() {
                    hi[offset + m] -= c;
                }
                p.le(hi, lp.upper().constant_term());
            }
        };
        add_space(&mut base, 0);
        add_space(&mut base, n);
        // Line variables: Ls·q <= Mem <= Ls·q + Ls − 1.
        let add_line = |p: &mut cme_math::Polytope, mem: &Affine, offset: usize, qvar: usize| {
            let mut lo = vec![0i64; nv];
            lo[qvar] += ls;
            for (m, &c) in mem.coeffs().iter().enumerate() {
                lo[offset + m] -= c;
            }
            p.le(lo, mem.constant_term());
            let mut hi = vec![0i64; nv];
            for (m, &c) in mem.coeffs().iter().enumerate() {
                hi[offset + m] += c;
            }
            hi[qvar] -= ls;
            p.le(hi, ls - 1 - mem.constant_term());
        };
        add_line(&mut base, &self.mem_dest, 0, qa);
        add_line(&mut base, &self.mem_perp, n, qb);
        // q_A − q_B − Ns·t = 0.
        let mut setc = vec![0i64; nv];
        setc[qa] = 1;
        setc[qb] = -1;
        setc[t] = -ns;
        base.eq_to(setc, 0);
        // Window class constraints relating j (vars n..2n) to i (vars 0..n),
        // through p = i − r where needed.
        match class {
            WindowClass::Equal(anchor) => {
                for m in 0..n {
                    let mut c = vec![0i64; nv];
                    c[n + m] = 1;
                    c[m] = -1;
                    let rhs = match anchor {
                        Anchor::I => 0,
                        Anchor::P => -r[m],
                    };
                    base.eq_to(c, rhs);
                }
            }
            WindowClass::Before(anchor, level) => {
                for m in 0..*level {
                    let mut c = vec![0i64; nv];
                    c[n + m] = 1;
                    c[m] = -1;
                    let rhs = match anchor {
                        Anchor::I => 0,
                        Anchor::P => -r[m],
                    };
                    base.eq_to(c, rhs);
                }
                let mut c = vec![0i64; nv];
                c[n + *level] = 1;
                c[*level] = -1;
                let rhs = match anchor {
                    Anchor::I => -1,
                    Anchor::P => -r[*level] - 1,
                };
                base.le(c, rhs);
            }
        }
        // Bounds box.
        let space_box = nest.space().bounding_box();
        let mut bounds = Vec::with_capacity(nv);
        bounds.extend(space_box.iter().copied());
        bounds.extend(space_box.iter().copied());
        let mem_a_range = self.mem_dest.range(&space_box);
        let mem_b_range = self.mem_perp.range(&space_box);
        if mem_a_range.is_empty() || mem_b_range.is_empty() {
            return 0;
        }
        let qa_range = cme_math::Interval::new(
            cme_math::gcd::floor_div(mem_a_range.lo, ls),
            cme_math::gcd::floor_div(mem_a_range.hi, ls),
        );
        let qb_range = cme_math::Interval::new(
            cme_math::gcd::floor_div(mem_b_range.lo, ls),
            cme_math::gcd::floor_div(mem_b_range.hi, ls),
        );
        let t_span = (qa_range - qb_range) * 1;
        bounds.push(qa_range);
        bounds.push(qb_range);
        // Two branches: t >= 1 and t <= −1 (n = 0 is reuse, not conflict).
        let mut count = 0u64;
        for (t_lo, t_hi) in [
            (1i64, cme_math::gcd::floor_div(t_span.hi, ns).max(1)),
            (cme_math::gcd::floor_div(t_span.lo, ns).min(-1), -1i64),
        ] {
            if t_lo > t_hi {
                continue;
            }
            let mut p = base.clone();
            if t_lo >= 1 {
                p.ge(unit(nv, t), 1);
            } else {
                p.le(unit(nv, t), -1);
            }
            let mut b = bounds.clone();
            b.push(cme_math::Interval::new(t_lo, t_hi));
            count += match memo {
                Some(m) => m.count_points(&p, &b),
                None => p.count_points(&b),
            };
        }
        count
    }
}

/// Which anchor a window class compares against.
enum Anchor {
    /// The destination iteration `i⃗`.
    I,
    /// The source iteration `p⃗ = i⃗ − r⃗`.
    P,
}

/// One disjoint class of the lexicographic-window decomposition.
enum WindowClass {
    /// `j⃗` equals the anchor.
    Equal(Anchor),
    /// `j⃗` agrees with the anchor on the first `level` components and is
    /// strictly smaller at `level`.
    Before(Anchor, usize),
}

fn unit(nv: usize, var: usize) -> Vec<i64> {
    let mut v = vec![0i64; nv];
    v[var] = 1;
    v
}

impl fmt::Display for ReplacementEquation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ReplCME[{} vs {} along ({})]: {} = {} + {}·n + b, n≠0, b ∈ {}",
            self.dest,
            self.perp,
            self.reuse
                .vector()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.mem_dest,
            self.mem_perp,
            self.way_span,
            self.b_range()
        )
    }
}

/// All equations of one reference along one reuse vector.
#[derive(Debug, Clone, PartialEq)]
pub struct EquationGroup {
    /// The reuse vector.
    pub reuse: ReuseVector,
    /// The cold miss equation along it.
    pub cold: ColdEquation,
    /// One replacement equation per potentially-interfering reference
    /// (every reference of the nest, self included).
    pub replacements: Vec<ReplacementEquation>,
}

/// All equations of one reference.
#[derive(Debug, Clone, PartialEq)]
pub struct RefEquations {
    /// The reference these equations describe.
    pub dest: RefId,
    /// One group per reuse vector, in lexicographically increasing order
    /// (the processing order of the miss-finding algorithm).
    pub groups: Vec<EquationGroup>,
}

/// The complete CME system of a loop nest (Figure 3's output).
#[derive(Debug, Clone, PartialEq)]
pub struct CmeSystem {
    /// Per-reference equations, in statement order.
    pub per_ref: Vec<RefEquations>,
    /// The cache geometry the system was generated for.
    pub cache: CacheConfig,
}

impl CmeSystem {
    /// Generates the full equation system for a nest — the algorithm of
    /// Figure 3: compute reuse vectors per reference, then for each vector
    /// form the cold equation and the replacement equations against every
    /// reference.
    pub fn generate(nest: &LoopNest, cache: CacheConfig, reuse_options: &ReuseOptions) -> Self {
        let per_ref = nest
            .references()
            .iter()
            .map(|dest| {
                let rvs = reuse_vectors(nest, &cache, dest.id(), reuse_options);
                let groups = rvs
                    .into_iter()
                    .map(|rv| build_group(nest, &cache, dest.id(), rv))
                    .collect();
                RefEquations {
                    dest: dest.id(),
                    groups,
                }
            })
            .collect();
        CmeSystem { per_ref, cache }
    }

    /// Re-targets a generated system at a nest with **identical structure**
    /// but possibly different array layouts (base addresses and padded
    /// column sizes are the only things a layout transform may change that
    /// this method absorbs — loop bounds, subscripts, and reference order
    /// must match the nest the system was generated for).
    ///
    /// Only the address affines (`mem_dest`, `mem_perp`) are recomputed;
    /// reuse vectors and equation shapes are reused verbatim. Reuse vectors
    /// are base-invariant (they depend on loop widths, line size, and
    /// subscript coefficients plus same-array constant *differences*), so
    /// when the layout change also preserves each array's column strides
    /// and intra-array offsets the rebased system equals a freshly
    /// generated one. Callers that change column sizes must re-key on the
    /// structure hash, which includes subscript/stride coefficients.
    pub fn rebase_to(&self, nest: &LoopNest) -> CmeSystem {
        let mut out = self.clone();
        for re in &mut out.per_ref {
            let mem_dest = nest.address_affine(re.dest);
            for g in &mut re.groups {
                for eq in &mut g.replacements {
                    debug_assert_eq!(
                        eq.mem_dest.coeffs(),
                        mem_dest.coeffs(),
                        "rebase_to requires identical nest structure"
                    );
                    eq.mem_dest = mem_dest.clone();
                    eq.mem_perp = nest.address_affine(eq.perp);
                }
            }
        }
        out
    }

    /// Total number of equations in the system (cold + replacement).
    pub fn equation_count(&self) -> usize {
        self.per_ref
            .iter()
            .flat_map(|r| &r.groups)
            .map(|g| 1 + g.replacements.len())
            .sum()
    }
}

fn build_group(
    nest: &LoopNest,
    cache: &CacheConfig,
    dest: RefId,
    rv: ReuseVector,
) -> EquationGroup {
    let mem_dest = nest.address_affine(dest);
    let replacements = nest
        .references()
        .iter()
        .map(|perp| ReplacementEquation {
            dest,
            perp: perp.id(),
            reuse: rv.clone(),
            mem_dest: mem_dest.clone(),
            mem_perp: nest.address_affine(perp.id()),
            way_span: cache.way_span_elems(),
            line_elems: cache.line_elems(),
        })
        .collect();
    EquationGroup {
        cold: ColdEquation {
            dest,
            reuse: rv.clone(),
        },
        reuse: rv,
        replacements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_ir::{AccessKind, NestBuilder};

    /// The paper's Section 3.2.3 example: matmul N = 32, 8KB 2-way cache
    /// with 128 sets and 4 elements per line, bases Z=4192, X=2136.
    fn eq5_setting() -> (LoopNest, CacheConfig) {
        let n = 32;
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, n).ct_loop("k", 1, n).ct_loop("j", 1, n);
        let z = b.array("Z", &[n, n], 4192);
        let x = b.array("X", &[n, n], 2136);
        let y = b.array("Y", &[n, n], 96);
        b.reference(z, AccessKind::Read, &[("j", 0), ("i", 0)]);
        b.reference(x, AccessKind::Read, &[("k", 0), ("i", 0)]);
        b.reference(y, AccessKind::Read, &[("j", 0), ("k", 0)]);
        b.reference(z, AccessKind::Write, &[("j", 0), ("i", 0)]);
        let nest = b.build().unwrap();
        let cache = CacheConfig::new(8192, 2, 32, 8).unwrap(); // 128 sets, 4 elem/line
        (nest, cache)
    }

    #[test]
    fn paper_equation5_form() {
        let (nest, cache) = eq5_setting();
        let sys = CmeSystem::generate(&nest, cache, &ReuseOptions::default());
        let z_load = &sys.per_ref[0];
        // Find the group for the spatial reuse vector (0,0,1).
        let group = z_load
            .groups
            .iter()
            .find(|g| g.reuse.vector() == [0, 0, 1])
            .expect("spatial vector (0,0,1) must exist");
        let eq = group
            .replacements
            .iter()
            .find(|e| e.perp.index() == 1)
            .expect("replacement equation against X");
        // Equation 5: ... = ... + 512 n + b, b in [-3, 3].
        assert_eq!(eq.way_span, 512);
        assert_eq!(eq.b_range(), Interval::new(-3, 3));
        // Mem_Z(i,k,j) = 4192 + 32(i-1) + (j-1) = 4159 + 32 i + j.
        assert_eq!(eq.mem_dest.constant_term(), 4192 - 32 - 1);
        assert_eq!(eq.mem_dest.coeffs(), &[32, 0, 1]);
        // Mem_X(i,k,j) = 2136 + 32(i-1) + (k-1) = 2103 + 32 i + k.
        assert_eq!(eq.mem_perp.constant_term(), 2136 - 32 - 1);
        assert_eq!(eq.mem_perp.coeffs(), &[32, 1, 0]);
        assert!(!eq.is_self_interference());
        let shown = eq.to_string();
        assert!(
            shown.contains("512·n"),
            "display shows the way span: {shown}"
        );
    }

    #[test]
    fn contention_detects_same_set_distinct_line() {
        let (nest, cache) = eq5_setting();
        let sys = CmeSystem::generate(&nest, cache, &ReuseOptions::default());
        let group = &sys.per_ref[0]
            .groups
            .iter()
            .find(|g| g.reuse.vector() == [0, 0, 1])
            .unwrap();
        let eq_self = group
            .replacements
            .iter()
            .find(|e| e.is_self_interference())
            .unwrap();
        // Same point => same address => same line => no contention (n = 0).
        assert_eq!(eq_self.contention_at(&cache, &[1, 1, 1], &[1, 1, 1]), None);
        // Z(j,i) at i-index differing by 16 columns: addresses differ by
        // 16*32 = 512 elements = exactly one way span: same set, n = ±1.
        assert_eq!(
            eq_self.contention_at(&cache, &[17, 1, 1], &[1, 1, 1]),
            Some(1)
        );
        assert_eq!(
            eq_self.contention_at(&cache, &[1, 1, 1], &[17, 1, 1]),
            Some(-1)
        );
        // Different set: no contention.
        assert_eq!(eq_self.contention_at(&cache, &[1, 1, 2], &[1, 1, 1]), None);
    }

    #[test]
    fn cold_equation_boundary_semantics() {
        let (nest, cache) = eq5_setting();
        // Pruning keeps only the most recent source per same-gap family;
        // this test inspects the *full* equation set, self group included.
        let opts = ReuseOptions {
            prune_dominated: false,
            ..ReuseOptions::default()
        };
        let sys = CmeSystem::generate(&nest, cache, &opts);
        let group = sys.per_ref[0]
            .groups
            .iter()
            .find(|g| g.reuse.vector() == [0, 0, 1] && g.reuse.source().index() == 0)
            .unwrap();
        // j = 1: first access along (0,0,1) -> cold solution.
        assert!(group.cold.is_solution(&nest, &cache, &[1, 1, 1]));
        // j = 2..4 share the line of j = 1 (4-element lines, aligned base).
        assert!(!group.cold.is_solution(&nest, &cache, &[1, 1, 2]));
        assert!(!group.cold.is_solution(&nest, &cache, &[1, 1, 4]));
        // j = 5 starts a new line -> boundary crossing -> cold solution.
        assert!(group.cold.is_solution(&nest, &cache, &[1, 1, 5]));
    }

    /// Brute-force mirror of `count_solutions`: enumerate every (i, j)
    /// window pair and count cache-set contentions with distinct lines.
    fn brute_solution_count(nest: &LoopNest, cache: &CacheConfig, eq: &ReplacementEquation) -> u64 {
        use cme_math::lexi::lex_cmp;
        use std::cmp::Ordering;
        let r = eq.reuse.vector();
        let src = eq.reuse.source().index();
        let (perp, dest) = (eq.perp.index(), eq.dest.index());
        let space = nest.space();
        let mut count = 0u64;
        let mut isp = nest.space();
        while let Some(i) = isp.next_point() {
            let p: Vec<i64> = i.iter().zip(r).map(|(a, b)| a - b).collect();
            let mut consider = |j: &[i64]| {
                if space.contains(j) && eq.contention_at(cache, &i, j).is_some() {
                    count += 1;
                }
            };
            if eq.reuse.is_intra_iteration() {
                if src < perp && perp < dest {
                    consider(&i);
                }
                continue;
            }
            // Interior: p ≺ j ≺ i over the *box* (membership re-checked).
            let bb = space.bounding_box();
            let mut j = bb.iter().map(|b| b.lo).collect::<Vec<_>>();
            'walk: loop {
                if lex_cmp(&j, &p) == Ordering::Greater && lex_cmp(&j, &i) == Ordering::Less {
                    consider(&j);
                }
                // Box odometer.
                let mut l = j.len();
                loop {
                    if l == 0 {
                        break 'walk;
                    }
                    l -= 1;
                    j[l] += 1;
                    if j[l] <= bb[l].hi {
                        break;
                    }
                    j[l] = bb[l].lo;
                }
                // Reset deeper levels after a carry.
                for m in (l + 1)..j.len() {
                    j[m] = bb[m].lo;
                }
            }
            if perp > src {
                consider(&p);
            }
            if perp < dest {
                consider(&i);
            }
        }
        count
    }

    #[test]
    fn symbolic_solution_count_matches_brute_force() {
        // Small matmul with conflict-prone bases on a tiny cache.
        let n = 6;
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, n).ct_loop("k", 1, n).ct_loop("j", 1, n);
        let z = b.array("Z", &[n, n], 0);
        let x = b.array("X", &[n, n], 64);
        let y = b.array("Y", &[n, n], 128);
        b.reference(z, AccessKind::Read, &[("j", 0), ("i", 0)]);
        b.reference(x, AccessKind::Read, &[("k", 0), ("i", 0)]);
        b.reference(y, AccessKind::Read, &[("j", 0), ("k", 0)]);
        b.reference(z, AccessKind::Write, &[("j", 0), ("i", 0)]);
        let nest = b.build().unwrap();
        let cache = CacheConfig::new(256, 1, 16, 4).unwrap(); // 64 elements
        let sys = CmeSystem::generate(&nest, cache, &ReuseOptions::default());
        let mut checked = 0;
        for re in &sys.per_ref {
            for g in re.groups.iter().take(3) {
                for eq in &g.replacements {
                    let symbolic = eq.count_solutions(&nest, &cache);
                    let brute = brute_solution_count(&nest, &cache, eq);
                    assert_eq!(symbolic, brute, "equation {eq}");
                    checked += 1;
                }
            }
        }
        assert!(checked >= 12, "covered a meaningful number of equations");
    }

    #[test]
    fn symbolic_count_on_triangular_nest() {
        // Triangular gauss-like nest exercises affine bounds in the
        // polytope formulation.
        let mut b = NestBuilder::new();
        b.ct_loop("k", 1, 5);
        b.affine_loop(
            "i",
            cme_math::Affine::new(vec![1, 0], 1),
            cme_math::Affine::new(vec![0, 0], 6),
        );
        let a = b.array("A", &[8, 8], 0);
        let c = b.array("B", &[8, 8], 64); // one way span apart
        b.reference(a, AccessKind::Read, &[("i", 0), ("k", 0)]);
        b.reference(c, AccessKind::Write, &[("i", 0), ("k", 0)]);
        let nest = b.build().unwrap();
        let cache = CacheConfig::new(256, 1, 16, 4).unwrap();
        let sys = CmeSystem::generate(&nest, cache, &ReuseOptions::default());
        for re in &sys.per_ref {
            for g in re.groups.iter().take(2) {
                for eq in &g.replacements {
                    assert_eq!(
                        eq.count_solutions(&nest, &cache),
                        brute_solution_count(&nest, &cache, eq),
                        "equation {eq}"
                    );
                }
            }
        }
    }

    #[test]
    fn rebase_matches_fresh_generation_and_memo_counts_agree() {
        let n = 6;
        let build = |bases: [i64; 3]| {
            let mut b = NestBuilder::new();
            b.ct_loop("i", 1, n).ct_loop("k", 1, n).ct_loop("j", 1, n);
            let z = b.array("Z", &[n, n], bases[0]);
            let x = b.array("X", &[n, n], bases[1]);
            let y = b.array("Y", &[n, n], bases[2]);
            b.reference(z, AccessKind::Read, &[("j", 0), ("i", 0)]);
            b.reference(x, AccessKind::Read, &[("k", 0), ("i", 0)]);
            b.reference(y, AccessKind::Read, &[("j", 0), ("k", 0)]);
            b.reference(z, AccessKind::Write, &[("j", 0), ("i", 0)]);
            b.build().unwrap()
        };
        let cache = CacheConfig::new(256, 1, 16, 4).unwrap();
        let nest_a = build([0, 64, 128]);
        let nest_b = build([8, 77, 160]); // shifted bases, same structure
        let sys_a = CmeSystem::generate(&nest_a, cache, &ReuseOptions::default());
        let fresh_b = CmeSystem::generate(&nest_b, cache, &ReuseOptions::default());
        let rebased_b = sys_a.rebase_to(&nest_b);
        assert_eq!(rebased_b, fresh_b);

        // Memoized counting is exact, and re-counting the same rebased
        // system hits the memo.
        let memo = cme_math::SolveMemo::new();
        for re in &rebased_b.per_ref {
            for g in re.groups.iter().take(2) {
                for eq in &g.replacements {
                    let plain = eq.count_solutions(&nest_b, &cache);
                    assert_eq!(eq.count_solutions_memo(&nest_b, &cache, Some(&memo)), plain);
                    assert_eq!(eq.count_solutions_memo(&nest_b, &cache, Some(&memo)), plain);
                }
            }
        }
        assert!(memo.hits() >= memo.misses(), "second pass fully memoized");
    }

    #[test]
    fn system_covers_every_reference_and_counts_equations() {
        let (nest, cache) = eq5_setting();
        let sys = CmeSystem::generate(&nest, cache, &ReuseOptions::default());
        assert_eq!(sys.per_ref.len(), 4);
        for (i, re) in sys.per_ref.iter().enumerate() {
            assert_eq!(re.dest.index(), i);
            assert!(!re.groups.is_empty(), "every ref has reuse here");
            for g in &re.groups {
                assert_eq!(g.replacements.len(), 4);
            }
        }
        let expected: usize = sys.per_ref.iter().map(|r| r.groups.len() * 5).sum();
        assert_eq!(sys.equation_count(), expected);
    }
}
