//! Flat storage for large sets of iteration points.
//!
//! The miss-finding algorithm carries a set `C` of indeterminate iteration
//! points between reuse vectors. For big nests (matmul at N = 256 has 16.7M
//! iteration points, 2.1M of which survive the first vector — Figure 8)
//! per-point `Vec`s would be ruinous, so points are stored contiguously.

/// A set of equal-dimension iteration points stored as one flat buffer.
///
/// # Examples
///
/// ```
/// use cme_core::PointSet;
/// let mut s = PointSet::new(3);
/// s.push(&[1, 2, 3]);
/// s.push(&[1, 2, 4]);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().last().unwrap(), &[1, 2, 4]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointSet {
    depth: usize,
    data: Vec<i64>,
}

impl PointSet {
    /// Creates an empty set of `depth`-dimensional points.
    pub fn new(depth: usize) -> Self {
        PointSet {
            depth,
            data: Vec::new(),
        }
    }

    /// Point dimensionality.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of points stored.
    pub fn len(&self) -> u64 {
        self.data.len().checked_div(self.depth).unwrap_or(0) as u64
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != depth`.
    pub fn push(&mut self, point: &[i64]) {
        assert_eq!(point.len(), self.depth, "point dimension mismatch");
        self.data.extend_from_slice(point);
    }

    /// Iterates the points as slices, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[i64]> {
        self.data.chunks_exact(self.depth)
    }

    /// The `idx`-th point, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics when `idx >= len()`.
    pub fn point(&self, idx: usize) -> &[i64] {
        &self.data[idx * self.depth..(idx + 1) * self.depth]
    }
}

impl<'a> IntoIterator for &'a PointSet {
    type Item = &'a [i64];
    type IntoIter = std::slice::ChunksExact<'a, i64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.chunks_exact(self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iter_roundtrip() {
        let mut s = PointSet::new(2);
        assert!(s.is_empty());
        s.push(&[3, 4]);
        s.push(&[5, 6]);
        let pts: Vec<_> = s.iter().map(|p| p.to_vec()).collect();
        assert_eq!(pts, vec![vec![3, 4], vec![5, 6]]);
        assert_eq!(s.len(), 2);
        assert_eq!((&s).into_iter().count(), 2);
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_panics() {
        PointSet::new(2).push(&[1]);
    }

    #[test]
    fn zero_depth_is_empty() {
        let s = PointSet::new(0);
        assert_eq!(s.len(), 0);
    }
}
