//! Flat and run-compressed storage for large sets of iteration points.
//!
//! The miss-finding algorithm carries a set `C` of indeterminate iteration
//! points between reuse vectors. For big nests (matmul at N = 256 has 16.7M
//! iteration points, 2.1M of which survive the first vector — Figure 8)
//! per-point `Vec`s would be ruinous, so two representations exist:
//!
//! - [`PointSet`] stores every point contiguously — simple, general,
//!   O(points × depth) memory;
//! - [`RunSet`] exploits that survivor sets are unions of long innermost
//!   runs: it stores maximal `[lo, hi]` intervals of the innermost index
//!   per outer-index prefix, so a dense survivor set costs O(runs) instead
//!   of O(points). The cascade classifies and splits runs wholesale (see
//!   `docs/PERF.md`) and only enumerates points where a verdict genuinely
//!   needs one.

/// A set of equal-dimension iteration points stored as one flat buffer.
///
/// # Examples
///
/// ```
/// use cme_core::PointSet;
/// let mut s = PointSet::new(3);
/// s.push(&[1, 2, 3]);
/// s.push(&[1, 2, 4]);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().last().unwrap(), &[1, 2, 4]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointSet {
    depth: usize,
    data: Vec<i64>,
}

impl PointSet {
    /// Creates an empty set of `depth`-dimensional points.
    pub fn new(depth: usize) -> Self {
        PointSet {
            depth,
            data: Vec::new(),
        }
    }

    /// Point dimensionality.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of points stored.
    pub fn len(&self) -> u64 {
        self.data.len().checked_div(self.depth).unwrap_or(0) as u64
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != depth`.
    pub fn push(&mut self, point: &[i64]) {
        assert_eq!(point.len(), self.depth, "point dimension mismatch");
        self.data.extend_from_slice(point);
    }

    /// Iterates the points as slices, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[i64]> {
        self.data.chunks_exact(self.depth)
    }

    /// The `idx`-th point, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics when `idx >= len()`.
    pub fn point(&self, idx: usize) -> &[i64] {
        &self.data[idx * self.depth..(idx + 1) * self.depth]
    }
}

impl<'a> IntoIterator for &'a PointSet {
    type Item = &'a [i64];
    type IntoIter = std::slice::ChunksExact<'a, i64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.chunks_exact(self.depth)
    }
}

/// One maximal innermost run of a [`RunSet`]: the points
/// `(prefix, lo), (prefix, lo+1), …, (prefix, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run<'a> {
    /// The shared outer-index prefix (`depth − 1` coordinates).
    pub prefix: &'a [i64],
    /// First innermost index of the run (inclusive).
    pub lo: i64,
    /// Last innermost index of the run (inclusive).
    pub hi: i64,
    /// Index of the run's first point in the set's lexicographic order.
    pub start: u64,
}

impl Run<'_> {
    /// Number of points in the run.
    pub fn len(&self) -> u64 {
        (self.hi - self.lo + 1) as u64
    }

    /// Whether the run is empty (never true for stored runs).
    pub fn is_empty(&self) -> bool {
        self.hi < self.lo
    }
}

/// A set of equal-dimension iteration points compressed into maximal
/// innermost-axis runs, in lexicographic order.
///
/// Points must be appended in strictly increasing lexicographic order
/// (the order every cascade produces them in); adjacent points sharing an
/// outer prefix collapse into one `[lo, hi]` run.
///
/// # Examples
///
/// ```
/// use cme_core::RunSet;
/// let mut s = RunSet::new(2);
/// s.push(&[1, 2]);
/// s.push(&[1, 3]);
/// s.push(&[1, 7]);
/// s.push(&[2, 1]);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.run_count(), 3); // [1,(2..3)], [1,(7..7)], [2,(1..1)]
/// assert_eq!(s.point(2), vec![1, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSet {
    depth: usize,
    /// Deduplicated consecutive prefixes, flat, `depth − 1` elems each.
    prefixes: Vec<i64>,
    /// Per run: index of its prefix (into the deduplicated prefix list).
    run_prefix: Vec<u32>,
    /// Per run: inclusive `[lo, hi]` innermost interval.
    run_bounds: Vec<(i64, i64)>,
    /// Per run: lexicographic index of its first point.
    run_start: Vec<u64>,
    len: u64,
}

impl RunSet {
    /// Creates an empty run set of `depth`-dimensional points (`depth ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics when `depth == 0` — a zero-dimensional point has no innermost
    /// axis to compress along.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "RunSet requires depth >= 1");
        RunSet {
            depth,
            prefixes: Vec::new(),
            run_prefix: Vec::new(),
            run_bounds: Vec::new(),
            run_start: Vec::new(),
            len: 0,
        }
    }

    /// Point dimensionality.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of points stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of maximal runs.
    pub fn run_count(&self) -> usize {
        self.run_bounds.len()
    }

    /// The `ri`-th run, in lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics when `ri >= run_count()`.
    pub fn run(&self, ri: usize) -> Run<'_> {
        let pw = self.depth - 1;
        let pi = self.run_prefix[ri] as usize;
        let (lo, hi) = self.run_bounds[ri];
        Run {
            prefix: &self.prefixes[pi * pw..(pi + 1) * pw],
            lo,
            hi,
            start: self.run_start[ri],
        }
    }

    /// Appends a whole run `(prefix, lo..=hi)`; empty intervals are
    /// ignored. Must not precede the current last point lexicographically;
    /// a run contiguous with the last one is merged into it.
    ///
    /// # Panics
    ///
    /// Panics on prefix dimension mismatch, and (in debug builds) on
    /// out-of-order appends.
    pub fn push_run(&mut self, prefix: &[i64], lo: i64, hi: i64) {
        let pw = self.depth - 1;
        assert_eq!(prefix.len(), pw, "prefix dimension mismatch");
        if lo > hi {
            return;
        }
        let count = (hi - lo + 1) as u64;
        if let Some(last) = self.run_bounds.last_mut() {
            let lp = self.run_prefix.len() - 1;
            let lpi = self.run_prefix[lp] as usize;
            let last_prefix = &self.prefixes[lpi * pw..(lpi + 1) * pw];
            if last_prefix == prefix {
                debug_assert!(lo > last.1, "runs must be appended in lex order");
                if lo == last.1 + 1 {
                    last.1 = hi;
                    self.len += count;
                    return;
                }
            } else {
                debug_assert!(
                    cme_math::lexi::lex_cmp(last_prefix, prefix) == std::cmp::Ordering::Less,
                    "prefixes must be appended in lex order"
                );
            }
        }
        // Reuse the previous prefix entry when unchanged.
        let pi = if pw == 0 {
            0 // depth-1 points all share the empty prefix
        } else {
            match self.run_prefix.last() {
                Some(&p) if &self.prefixes[p as usize * pw..(p as usize + 1) * pw] == prefix => p,
                _ => {
                    self.prefixes.extend_from_slice(prefix);
                    (self.prefixes.len() / pw) as u32 - 1
                }
            }
        };
        self.run_prefix.push(pi);
        self.run_bounds.push((lo, hi));
        self.run_start.push(self.len);
        self.len += count;
    }

    /// Appends one point (in lexicographic order).
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != depth`.
    pub fn push(&mut self, point: &[i64]) {
        assert_eq!(point.len(), self.depth, "point dimension mismatch");
        let inner = point[self.depth - 1];
        self.push_run(&point[..self.depth - 1], inner, inner);
    }

    /// Visits every point in lexicographic order. The slice passed to
    /// `visit` is a scratch buffer valid only for the duration of the call.
    pub fn for_each(&self, mut visit: impl FnMut(&[i64])) {
        let mut buf = vec![0i64; self.depth];
        let pw = self.depth - 1;
        for ri in 0..self.run_bounds.len() {
            let pi = self.run_prefix[ri] as usize;
            buf[..pw].copy_from_slice(&self.prefixes[pi * pw..(pi + 1) * pw]);
            let (lo, hi) = self.run_bounds[ri];
            for v in lo..=hi {
                buf[pw] = v;
                visit(&buf);
            }
        }
    }

    /// The `idx`-th point in lexicographic order (O(log runs)).
    ///
    /// # Panics
    ///
    /// Panics when `idx >= len()`.
    pub fn point(&self, idx: u64) -> Vec<i64> {
        assert!(idx < self.len, "point index out of range");
        let ri = match self.run_start.binary_search(&idx) {
            Ok(ri) => ri,
            Err(ins) => ins - 1,
        };
        let r = self.run(ri);
        let mut p = Vec::with_capacity(self.depth);
        p.extend_from_slice(r.prefix);
        p.push(r.lo + (idx - r.start) as i64);
        p
    }

    /// Expands into an equivalent [`PointSet`] (same points, same order).
    pub fn to_point_set(&self) -> PointSet {
        let mut out = PointSet::new(self.depth);
        self.for_each(|p| out.push(p));
        out
    }

    /// Compresses a [`PointSet`] whose points are in lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics when `ps.depth() == 0`, and (in debug builds) when the points
    /// are out of order.
    pub fn from_point_set(ps: &PointSet) -> Self {
        let mut out = RunSet::new(ps.depth());
        for p in ps {
            out.push(p);
        }
        out
    }

    /// Sum of `(hi − lo + 1)` over runs — always equals `len()`; exposed so
    /// accounting code can cross-check compression invariants cheaply.
    pub fn recount(&self) -> u64 {
        self.run_bounds
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as u64)
            .sum()
    }
}

/// Sets bits `lo..=hi` of a little-endian word array, whole words at a
/// time for the interior.
#[inline]
fn set_bit_range(words: &mut [u64], lo: usize, hi: usize) {
    let (wl, wh) = (lo / 64, hi / 64);
    let ml = !0u64 << (lo % 64);
    let mh = !0u64 >> (63 - (hi % 64));
    if wl == wh {
        words[wl] |= ml & mh;
    } else {
        words[wl] |= ml;
        for w in &mut words[wl + 1..wh] {
            *w = !0;
        }
        words[wh] |= mh;
    }
}

/// A set of iteration points stored as per-row bitmaps: one directory
/// entry per outer-index prefix (row), innermost membership packed 64
/// points per word.
///
/// The write contract matches [`RunSet::push_run`] — strictly increasing
/// lexicographic appends — and decoding a row's words yields exactly the
/// maximal runs the run-compressed form would store, in the same order
/// with the same lexicographic `start` indices: the two representations
/// are interchangeable bit for bit (see [`SurvivorSet`]).
///
/// Dense packing wins when survivor sets carry many short runs per row
/// (alternating verdict patterns with period ~`Ls`, strided single-point
/// survivors): a run costs ~32 bytes of directory in [`RunSet`] but one
/// bit per point here, and range pushes touch 64 points per word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseSet {
    depth: usize,
    /// Row prefixes, flat, `depth − 1` elems each.
    prefixes: Vec<i64>,
    /// Per row: the innermost index bit 0 of its first word stands for.
    row_base: Vec<i64>,
    /// Per row: start of its words in `words` (a row's words end where
    /// the next row's begin; the last row owns the tail).
    row_words: Vec<u32>,
    /// Per row: lexicographic index of its first point.
    row_start: Vec<u64>,
    words: Vec<u64>,
    len: u64,
    /// Innermost index of the most recent push (order checking).
    last_hi: i64,
}

impl DenseSet {
    /// Creates an empty dense set of `depth`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics when `depth == 0` — a zero-dimensional point has no
    /// innermost axis to pack along.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "DenseSet requires depth >= 1");
        DenseSet {
            depth,
            prefixes: Vec::new(),
            row_base: Vec::new(),
            row_words: Vec::new(),
            row_start: Vec::new(),
            words: Vec::new(),
            len: 0,
            last_hi: 0,
        }
    }

    /// Point dimensionality.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of points stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of rows (distinct outer-index prefixes).
    pub fn rows(&self) -> usize {
        self.row_base.len()
    }

    /// The word range backing row `ri`.
    #[inline]
    fn row_word_range(&self, ri: usize) -> (usize, usize) {
        let ws = self.row_words[ri] as usize;
        let we = self
            .row_words
            .get(ri + 1)
            .map_or(self.words.len(), |&w| w as usize);
        (ws, we)
    }

    /// Appends a whole run `(prefix, lo..=hi)`; empty intervals are
    /// ignored. Same ordering contract as [`RunSet::push_run`].
    ///
    /// # Panics
    ///
    /// Panics on prefix dimension mismatch, and (in debug builds) on
    /// out-of-order appends.
    pub fn push_run(&mut self, prefix: &[i64], lo: i64, hi: i64) {
        let pw = self.depth - 1;
        assert_eq!(prefix.len(), pw, "prefix dimension mismatch");
        if lo > hi {
            return;
        }
        let last = self.rows().wrapping_sub(1);
        let same_row =
            !self.row_base.is_empty() && &self.prefixes[last * pw..(last + 1) * pw] == prefix;
        if same_row {
            debug_assert!(lo > self.last_hi, "runs must be appended in lex order");
        } else {
            debug_assert!(
                self.row_base.is_empty()
                    || cme_math::lexi::lex_cmp(&self.prefixes[last * pw..(last + 1) * pw], prefix)
                        == std::cmp::Ordering::Less,
                "prefixes must be appended in lex order"
            );
            self.prefixes.extend_from_slice(prefix);
            self.row_base.push(lo);
            self.row_words.push(self.words.len() as u32);
            self.row_start.push(self.len);
        }
        let ri = self.rows() - 1;
        let base = self.row_base[ri];
        let (b_lo, b_hi) = ((lo - base) as usize, (hi - base) as usize);
        let ws = self.row_words[ri] as usize;
        if self.words.len() < ws + b_hi / 64 + 1 {
            self.words.resize(ws + b_hi / 64 + 1, 0);
        }
        set_bit_range(&mut self.words[ws..], b_lo, b_hi);
        self.len += (hi - lo + 1) as u64;
        self.last_hi = hi;
    }

    /// Appends one point (in lexicographic order).
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != depth`.
    pub fn push(&mut self, point: &[i64]) {
        assert_eq!(point.len(), self.depth, "point dimension mismatch");
        let inner = point[self.depth - 1];
        self.push_run(&point[..self.depth - 1], inner, inner);
    }

    /// Iterates the maximal runs of rows `row_lo..row_hi`, in
    /// lexicographic order — the exact run stream [`RunSet`] would store
    /// for the same pushes.
    pub fn runs_in(&self, row_lo: usize, row_hi: usize) -> DenseRuns<'_> {
        if row_lo >= row_hi {
            return DenseRuns {
                set: self,
                ri: 0,
                row_hi: 0,
                row_ws: 0,
                wi: 0,
                word_end: 0,
                cur: 0,
                start: 0,
            };
        }
        let (ws, we) = self.row_word_range(row_lo);
        DenseRuns {
            set: self,
            ri: row_lo,
            row_hi,
            row_ws: ws,
            wi: ws,
            word_end: we,
            cur: self.words[ws],
            start: self.row_start[row_lo],
        }
    }

    /// The `idx`-th point in lexicographic order (O(log rows + row
    /// words)).
    ///
    /// # Panics
    ///
    /// Panics when `idx >= len()`.
    pub fn point(&self, idx: u64) -> Vec<i64> {
        assert!(idx < self.len, "point index out of range");
        let ri = match self.row_start.binary_search(&idx) {
            Ok(ri) => ri,
            Err(ins) => ins - 1,
        };
        let pw = self.depth - 1;
        let mut remaining = idx - self.row_start[ri];
        let (ws, we) = self.row_word_range(ri);
        for (k, &w) in self.words[ws..we].iter().enumerate() {
            let pc = u64::from(w.count_ones());
            if remaining < pc {
                let mut w = w;
                for _ in 0..remaining {
                    w &= w - 1; // drop the lowest set bit
                }
                let mut p = Vec::with_capacity(self.depth);
                p.extend_from_slice(&self.prefixes[ri * pw..(ri + 1) * pw]);
                p.push(self.row_base[ri] + (k as i64) * 64 + i64::from(w.trailing_zeros()));
                return p;
            }
            remaining -= pc;
        }
        unreachable!("row popcounts inconsistent with len");
    }
}

/// Iterator over the maximal runs of a [`DenseSet`] row range; yields
/// the same `Run` stream the equivalent [`RunSet`] stores.
pub struct DenseRuns<'a> {
    set: &'a DenseSet,
    ri: usize,
    row_hi: usize,
    /// First word of the current row (bit origin).
    row_ws: usize,
    /// Current word index; bits of `words[wi]` below the cursor are
    /// cleared in `cur`.
    wi: usize,
    word_end: usize,
    cur: u64,
    /// Global lexicographic index of the next yielded point.
    start: u64,
}

impl<'a> Iterator for DenseRuns<'a> {
    type Item = Run<'a>;

    fn next(&mut self) -> Option<Run<'a>> {
        // Find the next set bit, advancing words and rows as needed.
        while self.cur == 0 {
            self.wi += 1;
            if self.wi >= self.word_end {
                self.ri += 1;
                if self.ri >= self.row_hi || self.ri >= self.set.rows() {
                    return None;
                }
                debug_assert_eq!(self.start, self.set.row_start[self.ri]);
                let (ws, we) = self.set.row_word_range(self.ri);
                self.row_ws = ws;
                self.wi = ws;
                self.word_end = we;
            }
            self.cur = self.set.words[self.wi];
        }
        let tz = self.cur.trailing_zeros();
        let run_start_bit = (self.wi - self.row_ws) * 64 + tz as usize;
        let ones = (self.cur >> tz).trailing_ones();
        let mut run_len = ones as usize;
        self.cur = match tz + ones {
            64 => 0,
            consumed => self.cur & (!0u64 << consumed),
        };
        if tz + ones == 64 {
            // The run may continue into the following words of the row.
            while self.wi + 1 < self.word_end {
                self.wi += 1;
                let w = self.set.words[self.wi];
                let o = w.trailing_ones();
                run_len += o as usize;
                if o == 64 {
                    self.cur = 0;
                    continue;
                }
                self.cur = w & (!0u64 << o);
                break;
            }
        }
        let pw = self.set.depth - 1;
        let lo = self.set.row_base[self.ri] + run_start_bit as i64;
        let start = self.start;
        self.start += run_len as u64;
        Some(Run {
            prefix: &self.set.prefixes[self.ri * pw..(self.ri + 1) * pw],
            lo,
            hi: lo + run_len as i64 - 1,
            start,
        })
    }
}

/// How the engine stores survivor and scan sets
/// ([`AnalysisOptions::survivor_repr`](crate::AnalysisOptions)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SurvivorRepr {
    /// Pick per scan from a density estimate: dense when the incoming
    /// survivor count is at least a `1/Ls` fraction of the iteration
    /// space (run compression cannot beat ~`Ls`-points-per-run packing
    /// at that density), run-compressed otherwise.
    #[default]
    Auto,
    /// Always run-compressed ([`RunSet`]).
    ForceRuns,
    /// Always dense bitmap rows ([`DenseSet`]).
    ForceDense,
}

/// A survivor/scan point set in either representation. Both sides share
/// the push contract, the lexicographic point order, and the decoded
/// maximal-run stream, so every consumer — classification walks, window
/// scans, sharding, miss-index bookkeeping — is representation-blind:
/// analysis results are bit-identical whichever side a set lands on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SurvivorSet {
    /// Run-compressed storage.
    Runs(RunSet),
    /// Dense bitmap-row storage.
    Dense(DenseSet),
}

impl SurvivorSet {
    /// Creates an empty set of `depth`-dimensional points in the chosen
    /// representation.
    pub fn new(depth: usize, dense: bool) -> Self {
        if dense {
            SurvivorSet::Dense(DenseSet::new(depth))
        } else {
            SurvivorSet::Runs(RunSet::new(depth))
        }
    }

    /// Whether the set uses the dense bitmap representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, SurvivorSet::Dense(_))
    }

    /// Point dimensionality.
    pub fn depth(&self) -> usize {
        match self {
            SurvivorSet::Runs(s) => s.depth(),
            SurvivorSet::Dense(s) => s.depth(),
        }
    }

    /// Number of points stored.
    pub fn len(&self) -> u64 {
        match self {
            SurvivorSet::Runs(s) => s.len(),
            SurvivorSet::Dense(s) => s.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a whole run (same ordering contract as
    /// [`RunSet::push_run`]).
    pub fn push_run(&mut self, prefix: &[i64], lo: i64, hi: i64) {
        match self {
            SurvivorSet::Runs(s) => s.push_run(prefix, lo, hi),
            SurvivorSet::Dense(s) => s.push_run(prefix, lo, hi),
        }
    }

    /// Appends one point (in lexicographic order).
    pub fn push(&mut self, point: &[i64]) {
        match self {
            SurvivorSet::Runs(s) => s.push(point),
            SurvivorSet::Dense(s) => s.push(point),
        }
    }

    /// Number of sharding chunks: runs for the run-compressed side, rows
    /// for the dense side — in both, a contiguous chunk range covers a
    /// contiguous range of lexicographic point indices.
    pub fn chunk_count(&self) -> usize {
        match self {
            SurvivorSet::Runs(s) => s.run_count(),
            SurvivorSet::Dense(s) => s.rows(),
        }
    }

    /// Lexicographic index of the first point of chunk `ci`
    /// (`len()` when `ci == chunk_count()`).
    pub fn chunk_start(&self, ci: usize) -> u64 {
        if ci == self.chunk_count() {
            return self.len();
        }
        match self {
            SurvivorSet::Runs(s) => s.run(ci).start,
            SurvivorSet::Dense(s) => s.row_start[ci],
        }
    }

    /// Iterates the maximal runs of chunks `lo..hi` in lexicographic
    /// order — the identical stream from either representation.
    pub fn runs_in(&self, lo: usize, hi: usize) -> SurvivorRuns<'_> {
        match self {
            SurvivorSet::Runs(s) => SurvivorRuns::Runs { set: s, ri: lo, hi },
            SurvivorSet::Dense(s) => SurvivorRuns::Dense(s.runs_in(lo, hi)),
        }
    }

    /// Iterates every maximal run.
    pub fn runs(&self) -> SurvivorRuns<'_> {
        self.runs_in(0, self.chunk_count())
    }

    /// The `idx`-th point in lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics when `idx >= len()`.
    pub fn point(&self, idx: u64) -> Vec<i64> {
        match self {
            SurvivorSet::Runs(s) => s.point(idx),
            SurvivorSet::Dense(s) => s.point(idx),
        }
    }

    /// Visits every point in lexicographic order. The slice passed to
    /// `visit` is a scratch buffer valid only for the duration of the
    /// call.
    pub fn for_each(&self, mut visit: impl FnMut(&[i64])) {
        let mut buf = vec![0i64; self.depth()];
        let pw = self.depth() - 1;
        for run in self.runs() {
            buf[..pw].copy_from_slice(run.prefix);
            for v in run.lo..=run.hi {
                buf[pw] = v;
                visit(&buf);
            }
        }
    }
}

/// Iterator over the maximal runs of a [`SurvivorSet`] chunk range.
pub enum SurvivorRuns<'a> {
    /// Indexed walk of a [`RunSet`]'s runs.
    Runs {
        /// The underlying run-compressed set.
        set: &'a RunSet,
        /// Next run index.
        ri: usize,
        /// One past the last run index.
        hi: usize,
    },
    /// Word-decoding walk of a [`DenseSet`]'s rows.
    Dense(DenseRuns<'a>),
}

impl<'a> Iterator for SurvivorRuns<'a> {
    type Item = Run<'a>;

    fn next(&mut self) -> Option<Run<'a>> {
        match self {
            SurvivorRuns::Runs { set, ri, hi } => {
                if ri < hi {
                    let run = set.run(*ri);
                    *ri += 1;
                    Some(run)
                } else {
                    None
                }
            }
            SurvivorRuns::Dense(d) => d.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iter_roundtrip() {
        let mut s = PointSet::new(2);
        assert!(s.is_empty());
        s.push(&[3, 4]);
        s.push(&[5, 6]);
        let pts: Vec<_> = s.iter().map(|p| p.to_vec()).collect();
        assert_eq!(pts, vec![vec![3, 4], vec![5, 6]]);
        assert_eq!(s.len(), 2);
        assert_eq!((&s).into_iter().count(), 2);
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_panics() {
        PointSet::new(2).push(&[1]);
    }

    #[test]
    fn zero_depth_is_empty() {
        let s = PointSet::new(0);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn runset_merges_contiguous_points_and_runs() {
        let mut s = RunSet::new(3);
        s.push(&[1, 1, 4]);
        s.push(&[1, 1, 5]);
        s.push_run(&[1, 1], 6, 9); // contiguous: extends the run
        s.push_run(&[1, 1], 11, 11); // gap: new run, same prefix
        s.push(&[1, 2, 1]);
        assert_eq!(s.len(), 8);
        assert_eq!(s.run_count(), 3);
        assert_eq!(s.recount(), s.len());
        let r0 = s.run(0);
        assert_eq!(
            (r0.prefix, r0.lo, r0.hi, r0.start),
            (&[1i64, 1][..], 4, 9, 0)
        );
        assert_eq!(s.run(1).start, 6);
        assert_eq!(s.run(2).prefix, &[1, 2]);
    }

    #[test]
    fn runset_point_random_access_matches_iteration() {
        let mut s = RunSet::new(2);
        for p in [[0, 0], [0, 1], [0, 5], [2, 2], [2, 3], [3, 0]] {
            s.push(&p);
        }
        let mut seen = Vec::new();
        s.for_each(|p| seen.push(p.to_vec()));
        assert_eq!(seen.len() as u64, s.len());
        for (i, p) in seen.iter().enumerate() {
            assert_eq!(&s.point(i as u64), p);
        }
    }

    #[test]
    fn runset_pointset_roundtrip() {
        let mut ps = PointSet::new(2);
        for p in [[1, 1], [1, 2], [1, 4], [2, 1]] {
            ps.push(&p);
        }
        let rs = RunSet::from_point_set(&ps);
        assert_eq!(rs.len(), ps.len());
        assert_eq!(rs.to_point_set(), ps);
    }

    #[test]
    fn runset_depth_one_uses_empty_prefix() {
        let mut s = RunSet::new(1);
        s.push(&[3]);
        s.push(&[4]);
        s.push(&[9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.run_count(), 2);
        assert_eq!(s.point(2), vec![9]);
        assert!(s.run(0).prefix.is_empty());
    }

    #[test]
    fn runset_ignores_empty_interval() {
        let mut s = RunSet::new(2);
        s.push_run(&[1], 5, 4);
        assert!(s.is_empty());
        assert_eq!(s.run_count(), 0);
    }

    #[test]
    #[should_panic]
    fn runset_rejects_zero_depth() {
        let _ = RunSet::new(0);
    }

    #[test]
    fn dense_set_matches_runset_run_stream() {
        let mut d = DenseSet::new(3);
        let mut r = RunSet::new(3);
        let pushes: [(&[i64], i64, i64); 6] = [
            (&[0, 0], 0, 5),
            (&[0, 0], 7, 7),
            (&[0, 0], 8, 200), // crosses multiple words
            (&[0, 1], -3, 1),  // negative bases
            (&[2, 0], 63, 64), // word-boundary straddle
            (&[2, 0], 66, 66),
        ];
        for (p, lo, hi) in pushes {
            d.push_run(p, lo, hi);
            r.push_run(p, lo, hi);
        }
        assert_eq!(d.len(), r.len());
        assert_eq!(d.rows(), 3);
        let druns: Vec<_> = d
            .runs_in(0, d.rows())
            .map(|run| (run.prefix.to_vec(), run.lo, run.hi, run.start))
            .collect();
        let rruns: Vec<_> = (0..r.run_count())
            .map(|i| {
                let run = r.run(i);
                (run.prefix.to_vec(), run.lo, run.hi, run.start)
            })
            .collect();
        assert_eq!(druns, rruns);
        for idx in 0..d.len() {
            assert_eq!(d.point(idx), r.point(idx));
        }
    }

    #[test]
    fn dense_set_adjacent_runs_fuse_like_runset() {
        let mut d = DenseSet::new(2);
        d.push_run(&[4], 0, 9);
        d.push_run(&[4], 10, 19); // adjacent: one maximal run when read
        assert_eq!(d.len(), 20);
        let runs: Vec<_> = d.runs_in(0, d.rows()).map(|r| (r.lo, r.hi)).collect();
        assert_eq!(runs, vec![(0, 19)]);
    }

    #[test]
    fn survivor_set_chunks_cover_lex_indices_in_both_reprs() {
        for dense in [false, true] {
            let mut s = SurvivorSet::new(2, dense);
            assert_eq!(s.is_dense(), dense);
            s.push_run(&[0], 0, 99);
            s.push_run(&[1], 5, 5);
            s.push_run(&[1], 50, 69);
            assert_eq!(s.len(), 121);
            assert_eq!(s.chunk_start(0), 0);
            assert_eq!(s.chunk_start(s.chunk_count()), s.len());
            // Chunk boundaries partition the lex index range; any split
            // reproduces the whole run stream piecewise.
            let whole: Vec<_> = s
                .runs()
                .map(|r| (r.prefix.to_vec(), r.lo, r.hi, r.start))
                .collect();
            let mid = s.chunk_count() / 2;
            let split: Vec<_> = s
                .runs_in(0, mid)
                .chain(s.runs_in(mid, s.chunk_count()))
                .map(|r| (r.prefix.to_vec(), r.lo, r.hi, r.start))
                .collect();
            assert_eq!(whole, split);
            let mut visited = 0u64;
            s.for_each(|p| {
                assert_eq!(s.point(visited), p);
                visited += 1;
            });
            assert_eq!(visited, s.len());
        }
    }

    mod props {
        use super::*;
        use cme_testgen::{arb_nest, NestDistribution};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Round-trip through the run-compressed form preserves the
            /// points, their lexicographic order, the count, and random
            /// access, for every random iteration space.
            #[test]
            fn runset_roundtrips_random_iteration_spaces(
                nest in arb_nest(NestDistribution::default()),
                probe in 0u64..4096,
            ) {
                let mut ps = PointSet::new(nest.depth());
                let mut sp = nest.space();
                while let Some(q) = sp.next_point() {
                    ps.push(&q);
                }
                let rs = RunSet::from_point_set(&ps);
                prop_assert_eq!(rs.len(), ps.len());
                prop_assert_eq!(rs.recount(), rs.len());
                prop_assert_eq!(&rs.to_point_set(), &ps);
                // A full space is one run per outer prefix.
                prop_assert!(rs.run_count() as u64 <= rs.len());
                if !rs.is_empty() {
                    let idx = probe % rs.len();
                    prop_assert_eq!(rs.point(idx), ps.point(idx as usize).to_vec());
                }
            }

            /// Both survivor representations decode to the identical
            /// run stream, point order, and chunk index map for every
            /// random iteration space.
            #[test]
            fn survivor_reprs_are_interchangeable(
                nest in arb_nest(NestDistribution::default()),
                probe in 0u64..4096,
            ) {
                let depth = nest.depth();
                if depth == 0 {
                    return Ok(());
                }
                let mut runs = SurvivorSet::new(depth, false);
                let mut dense = SurvivorSet::new(depth, true);
                let mut sp = nest.space();
                while let Some(q) = sp.next_point() {
                    runs.push(&q);
                    dense.push(&q);
                }
                prop_assert_eq!(runs.len(), dense.len());
                let a: Vec<_> = runs
                    .runs()
                    .map(|r| (r.prefix.to_vec(), r.lo, r.hi, r.start))
                    .collect();
                let b: Vec<_> = dense
                    .runs()
                    .map(|r| (r.prefix.to_vec(), r.lo, r.hi, r.start))
                    .collect();
                prop_assert_eq!(a, b);
                if !runs.is_empty() {
                    let idx = probe % runs.len();
                    prop_assert_eq!(runs.point(idx), dense.point(idx));
                }
            }
        }
    }
}
