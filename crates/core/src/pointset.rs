//! Flat and run-compressed storage for large sets of iteration points.
//!
//! The miss-finding algorithm carries a set `C` of indeterminate iteration
//! points between reuse vectors. For big nests (matmul at N = 256 has 16.7M
//! iteration points, 2.1M of which survive the first vector — Figure 8)
//! per-point `Vec`s would be ruinous, so two representations exist:
//!
//! - [`PointSet`] stores every point contiguously — simple, general,
//!   O(points × depth) memory;
//! - [`RunSet`] exploits that survivor sets are unions of long innermost
//!   runs: it stores maximal `[lo, hi]` intervals of the innermost index
//!   per outer-index prefix, so a dense survivor set costs O(runs) instead
//!   of O(points). The cascade classifies and splits runs wholesale (see
//!   `docs/PERF.md`) and only enumerates points where a verdict genuinely
//!   needs one.

/// A set of equal-dimension iteration points stored as one flat buffer.
///
/// # Examples
///
/// ```
/// use cme_core::PointSet;
/// let mut s = PointSet::new(3);
/// s.push(&[1, 2, 3]);
/// s.push(&[1, 2, 4]);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().last().unwrap(), &[1, 2, 4]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointSet {
    depth: usize,
    data: Vec<i64>,
}

impl PointSet {
    /// Creates an empty set of `depth`-dimensional points.
    pub fn new(depth: usize) -> Self {
        PointSet {
            depth,
            data: Vec::new(),
        }
    }

    /// Point dimensionality.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of points stored.
    pub fn len(&self) -> u64 {
        self.data.len().checked_div(self.depth).unwrap_or(0) as u64
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != depth`.
    pub fn push(&mut self, point: &[i64]) {
        assert_eq!(point.len(), self.depth, "point dimension mismatch");
        self.data.extend_from_slice(point);
    }

    /// Iterates the points as slices, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[i64]> {
        self.data.chunks_exact(self.depth)
    }

    /// The `idx`-th point, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics when `idx >= len()`.
    pub fn point(&self, idx: usize) -> &[i64] {
        &self.data[idx * self.depth..(idx + 1) * self.depth]
    }
}

impl<'a> IntoIterator for &'a PointSet {
    type Item = &'a [i64];
    type IntoIter = std::slice::ChunksExact<'a, i64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.chunks_exact(self.depth)
    }
}

/// One maximal innermost run of a [`RunSet`]: the points
/// `(prefix, lo), (prefix, lo+1), …, (prefix, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run<'a> {
    /// The shared outer-index prefix (`depth − 1` coordinates).
    pub prefix: &'a [i64],
    /// First innermost index of the run (inclusive).
    pub lo: i64,
    /// Last innermost index of the run (inclusive).
    pub hi: i64,
    /// Index of the run's first point in the set's lexicographic order.
    pub start: u64,
}

impl Run<'_> {
    /// Number of points in the run.
    pub fn len(&self) -> u64 {
        (self.hi - self.lo + 1) as u64
    }

    /// Whether the run is empty (never true for stored runs).
    pub fn is_empty(&self) -> bool {
        self.hi < self.lo
    }
}

/// A set of equal-dimension iteration points compressed into maximal
/// innermost-axis runs, in lexicographic order.
///
/// Points must be appended in strictly increasing lexicographic order
/// (the order every cascade produces them in); adjacent points sharing an
/// outer prefix collapse into one `[lo, hi]` run.
///
/// # Examples
///
/// ```
/// use cme_core::RunSet;
/// let mut s = RunSet::new(2);
/// s.push(&[1, 2]);
/// s.push(&[1, 3]);
/// s.push(&[1, 7]);
/// s.push(&[2, 1]);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.run_count(), 3); // [1,(2..3)], [1,(7..7)], [2,(1..1)]
/// assert_eq!(s.point(2), vec![1, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSet {
    depth: usize,
    /// Deduplicated consecutive prefixes, flat, `depth − 1` elems each.
    prefixes: Vec<i64>,
    /// Per run: index of its prefix (into the deduplicated prefix list).
    run_prefix: Vec<u32>,
    /// Per run: inclusive `[lo, hi]` innermost interval.
    run_bounds: Vec<(i64, i64)>,
    /// Per run: lexicographic index of its first point.
    run_start: Vec<u64>,
    len: u64,
}

impl RunSet {
    /// Creates an empty run set of `depth`-dimensional points (`depth ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics when `depth == 0` — a zero-dimensional point has no innermost
    /// axis to compress along.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "RunSet requires depth >= 1");
        RunSet {
            depth,
            prefixes: Vec::new(),
            run_prefix: Vec::new(),
            run_bounds: Vec::new(),
            run_start: Vec::new(),
            len: 0,
        }
    }

    /// Point dimensionality.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of points stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of maximal runs.
    pub fn run_count(&self) -> usize {
        self.run_bounds.len()
    }

    /// The `ri`-th run, in lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics when `ri >= run_count()`.
    pub fn run(&self, ri: usize) -> Run<'_> {
        let pw = self.depth - 1;
        let pi = self.run_prefix[ri] as usize;
        let (lo, hi) = self.run_bounds[ri];
        Run {
            prefix: &self.prefixes[pi * pw..(pi + 1) * pw],
            lo,
            hi,
            start: self.run_start[ri],
        }
    }

    /// Appends a whole run `(prefix, lo..=hi)`; empty intervals are
    /// ignored. Must not precede the current last point lexicographically;
    /// a run contiguous with the last one is merged into it.
    ///
    /// # Panics
    ///
    /// Panics on prefix dimension mismatch, and (in debug builds) on
    /// out-of-order appends.
    pub fn push_run(&mut self, prefix: &[i64], lo: i64, hi: i64) {
        let pw = self.depth - 1;
        assert_eq!(prefix.len(), pw, "prefix dimension mismatch");
        if lo > hi {
            return;
        }
        let count = (hi - lo + 1) as u64;
        if let Some(last) = self.run_bounds.last_mut() {
            let lp = self.run_prefix.len() - 1;
            let lpi = self.run_prefix[lp] as usize;
            let last_prefix = &self.prefixes[lpi * pw..(lpi + 1) * pw];
            if last_prefix == prefix {
                debug_assert!(lo > last.1, "runs must be appended in lex order");
                if lo == last.1 + 1 {
                    last.1 = hi;
                    self.len += count;
                    return;
                }
            } else {
                debug_assert!(
                    cme_math::lexi::lex_cmp(last_prefix, prefix) == std::cmp::Ordering::Less,
                    "prefixes must be appended in lex order"
                );
            }
        }
        // Reuse the previous prefix entry when unchanged.
        let pi = if pw == 0 {
            0 // depth-1 points all share the empty prefix
        } else {
            match self.run_prefix.last() {
                Some(&p) if &self.prefixes[p as usize * pw..(p as usize + 1) * pw] == prefix => p,
                _ => {
                    self.prefixes.extend_from_slice(prefix);
                    (self.prefixes.len() / pw) as u32 - 1
                }
            }
        };
        self.run_prefix.push(pi);
        self.run_bounds.push((lo, hi));
        self.run_start.push(self.len);
        self.len += count;
    }

    /// Appends one point (in lexicographic order).
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != depth`.
    pub fn push(&mut self, point: &[i64]) {
        assert_eq!(point.len(), self.depth, "point dimension mismatch");
        let inner = point[self.depth - 1];
        self.push_run(&point[..self.depth - 1], inner, inner);
    }

    /// Visits every point in lexicographic order. The slice passed to
    /// `visit` is a scratch buffer valid only for the duration of the call.
    pub fn for_each(&self, mut visit: impl FnMut(&[i64])) {
        let mut buf = vec![0i64; self.depth];
        let pw = self.depth - 1;
        for ri in 0..self.run_bounds.len() {
            let pi = self.run_prefix[ri] as usize;
            buf[..pw].copy_from_slice(&self.prefixes[pi * pw..(pi + 1) * pw]);
            let (lo, hi) = self.run_bounds[ri];
            for v in lo..=hi {
                buf[pw] = v;
                visit(&buf);
            }
        }
    }

    /// The `idx`-th point in lexicographic order (O(log runs)).
    ///
    /// # Panics
    ///
    /// Panics when `idx >= len()`.
    pub fn point(&self, idx: u64) -> Vec<i64> {
        assert!(idx < self.len, "point index out of range");
        let ri = match self.run_start.binary_search(&idx) {
            Ok(ri) => ri,
            Err(ins) => ins - 1,
        };
        let r = self.run(ri);
        let mut p = Vec::with_capacity(self.depth);
        p.extend_from_slice(r.prefix);
        p.push(r.lo + (idx - r.start) as i64);
        p
    }

    /// Expands into an equivalent [`PointSet`] (same points, same order).
    pub fn to_point_set(&self) -> PointSet {
        let mut out = PointSet::new(self.depth);
        self.for_each(|p| out.push(p));
        out
    }

    /// Compresses a [`PointSet`] whose points are in lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics when `ps.depth() == 0`, and (in debug builds) when the points
    /// are out of order.
    pub fn from_point_set(ps: &PointSet) -> Self {
        let mut out = RunSet::new(ps.depth());
        for p in ps {
            out.push(p);
        }
        out
    }

    /// Sum of `(hi − lo + 1)` over runs — always equals `len()`; exposed so
    /// accounting code can cross-check compression invariants cheaply.
    pub fn recount(&self) -> u64 {
        self.run_bounds
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iter_roundtrip() {
        let mut s = PointSet::new(2);
        assert!(s.is_empty());
        s.push(&[3, 4]);
        s.push(&[5, 6]);
        let pts: Vec<_> = s.iter().map(|p| p.to_vec()).collect();
        assert_eq!(pts, vec![vec![3, 4], vec![5, 6]]);
        assert_eq!(s.len(), 2);
        assert_eq!((&s).into_iter().count(), 2);
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_panics() {
        PointSet::new(2).push(&[1]);
    }

    #[test]
    fn zero_depth_is_empty() {
        let s = PointSet::new(0);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn runset_merges_contiguous_points_and_runs() {
        let mut s = RunSet::new(3);
        s.push(&[1, 1, 4]);
        s.push(&[1, 1, 5]);
        s.push_run(&[1, 1], 6, 9); // contiguous: extends the run
        s.push_run(&[1, 1], 11, 11); // gap: new run, same prefix
        s.push(&[1, 2, 1]);
        assert_eq!(s.len(), 8);
        assert_eq!(s.run_count(), 3);
        assert_eq!(s.recount(), s.len());
        let r0 = s.run(0);
        assert_eq!(
            (r0.prefix, r0.lo, r0.hi, r0.start),
            (&[1i64, 1][..], 4, 9, 0)
        );
        assert_eq!(s.run(1).start, 6);
        assert_eq!(s.run(2).prefix, &[1, 2]);
    }

    #[test]
    fn runset_point_random_access_matches_iteration() {
        let mut s = RunSet::new(2);
        for p in [[0, 0], [0, 1], [0, 5], [2, 2], [2, 3], [3, 0]] {
            s.push(&p);
        }
        let mut seen = Vec::new();
        s.for_each(|p| seen.push(p.to_vec()));
        assert_eq!(seen.len() as u64, s.len());
        for (i, p) in seen.iter().enumerate() {
            assert_eq!(&s.point(i as u64), p);
        }
    }

    #[test]
    fn runset_pointset_roundtrip() {
        let mut ps = PointSet::new(2);
        for p in [[1, 1], [1, 2], [1, 4], [2, 1]] {
            ps.push(&p);
        }
        let rs = RunSet::from_point_set(&ps);
        assert_eq!(rs.len(), ps.len());
        assert_eq!(rs.to_point_set(), ps);
    }

    #[test]
    fn runset_depth_one_uses_empty_prefix() {
        let mut s = RunSet::new(1);
        s.push(&[3]);
        s.push(&[4]);
        s.push(&[9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.run_count(), 2);
        assert_eq!(s.point(2), vec![9]);
        assert!(s.run(0).prefix.is_empty());
    }

    #[test]
    fn runset_ignores_empty_interval() {
        let mut s = RunSet::new(2);
        s.push_run(&[1], 5, 4);
        assert!(s.is_empty());
        assert_eq!(s.run_count(), 0);
    }

    #[test]
    #[should_panic]
    fn runset_rejects_zero_depth() {
        let _ = RunSet::new(0);
    }

    mod props {
        use super::*;
        use cme_testgen::{arb_nest, NestDistribution};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Round-trip through the run-compressed form preserves the
            /// points, their lexicographic order, the count, and random
            /// access, for every random iteration space.
            #[test]
            fn runset_roundtrips_random_iteration_spaces(
                nest in arb_nest(NestDistribution::default()),
                probe in 0u64..4096,
            ) {
                let mut ps = PointSet::new(nest.depth());
                let mut sp = nest.space();
                while let Some(q) = sp.next_point() {
                    ps.push(&q);
                }
                let rs = RunSet::from_point_set(&ps);
                prop_assert_eq!(rs.len(), ps.len());
                prop_assert_eq!(rs.recount(), rs.len());
                prop_assert_eq!(&rs.to_point_set(), &ps);
                // A full space is one run per outer prefix.
                prop_assert!(rs.run_count() as u64 <= rs.len());
                if !rs.is_empty() {
                    let idx = probe % rs.len();
                    prop_assert_eq!(rs.point(idx), ps.point(idx as usize).to_vec());
                }
            }
        }
    }
}
