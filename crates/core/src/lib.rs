//! Cache Miss Equations — the core of the ASPLOS 1998 paper
//! *Precise Miss Analysis for Program Transformations with Caches of
//! Arbitrary Associativity* (Ghosh, Martonosi, Malik).
//!
//! A **Cache Miss Equation** is a linear Diophantine constraint whose
//! solutions are potential cache misses of one reference *along one reuse
//! vector*:
//!
//! - **Cold miss equations** (Section 3.1) capture iteration points whose
//!   access is the first touch of a memory line along the vector — either
//!   the first access in that direction, or an access that just crossed a
//!   line boundary.
//! - **Replacement miss equations** (Section 3.2, Equation 4) capture cache
//!   *set contention*: `Mem_A(i⃗) = Mem_B(j⃗) + n·Cs/k + b` with `n ≠ 0`,
//!   `j⃗` ranging over the potentially-interfering points between the reuse
//!   source `p⃗ = i⃗ − r⃗` and `i⃗`, and `b` spanning one line. In a `k`-way
//!   set-associative cache, an iteration point is a miss along `r⃗` iff at
//!   least `k` *distinct* wraparound values `n` — equivalently, `k` distinct
//!   memory lines mapping to the victim's set — occur in that window.
//!
//! This crate provides:
//!
//! - [`equations`] — symbolic equation objects ([`ColdEquation`],
//!   [`ReplacementEquation`], [`CmeSystem`]) mirroring the paper's Figure 3
//!   generation algorithm; these are what the optimizers manipulate.
//! - [`solve`] — the miss-finding algorithm of Figure 6, generalized to
//!   arbitrary associativity (Section 4.2), evaluating the equations
//!   exactly over the iteration space with per-reuse-vector accounting
//!   (reproducing Figure 8's progress table) and the `ε` precision/time
//!   knob.
//! - [`engine`] — the staged analysis pipeline behind [`Analyzer`]:
//!   nests are interned into a program database
//!   ([`cme_ir::ProgramDb`], re-exported here as [`ProgramDb`]) and run
//!   through `lower → reuse → solve → cascade → classify`, with each
//!   stage's artifact memoized across the candidate nests of an optimizer
//!   search; [`Analyzer::analyze_batch`] analyzes many interned nests in
//!   one shared-pool session (see `docs/ENGINE.md`).
//! - [`governor`] — the resource governor: per-query [`Budget`]s,
//!   cooperative [`CancelToken`]s, and graceful degradation of exhausted
//!   queries to sound overcounts (the paper's `ε > 0` semantics), plus
//!   the structured [`AnalysisError`] for worker panics and address
//!   overflow.
//! - [`accuracy`] — side-by-side comparison against the LRU simulator
//!   (Table 1's DineroIII columns).
//! - [`store`] — the persistent artifact store: finished analyses on
//!   disk, keyed by `(structural_hash, layout_hash, geometry, options)`
//!   with integrity checks and LRU size bounding, so repeated queries
//!   survive the process (see `docs/SERVE.md`).
//! - [`api`] — the unified request/response contract
//!   ([`api::AnalyzeRequest`], [`api::AnalyzeResponse`],
//!   [`api::ErrorCode`]) shared by `cmetool`, the `cme-serve` wire
//!   protocol, and in-process batch callers.
//!
//! # Example
//!
//! ```
//! use cme_cache::CacheConfig;
//! use cme_core::Analyzer;
//! use cme_ir::{AccessKind, NestBuilder};
//!
//! // A unit-stride sweep: misses = one per 8-element line.
//! let mut b = NestBuilder::new();
//! b.ct_loop("i", 1, 64);
//! let a = b.array("A", &[64], 0);
//! b.reference(a, AccessKind::Read, &[("i", 0)]);
//! let nest = b.build().unwrap();
//!
//! let cfg = CacheConfig::new(8192, 1, 32, 4)?;
//! let mut analyzer = Analyzer::new(cfg);
//! let analysis = analyzer.analyze(&nest);
//! assert_eq!(analysis.total_misses(), 8);
//! // Re-analyses of structurally similar nests hit the engine's memos.
//! analyzer.analyze(&nest);
//! assert!(analyzer.stats().memo_hit_rate() > 0.0);
//! # Ok::<(), cme_cache::CacheConfigError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod accuracy;
pub mod api;
pub mod engine;
pub mod equations;
pub mod faults;
pub mod governor;
pub mod pointset;
pub mod sequence;
pub mod solve;
pub mod store;
mod window;

pub use accuracy::{compare_with_simulation, AccuracyRow};
pub use cme_ir::{NestId, ProgramDb};
pub use engine::{
    Analyzer, Engine, EngineStats, ModelClassification, SweepMetric, SweepParameter, SweepRequest,
    SweepResult,
};
pub use equations::{CmeSystem, ColdEquation, EquationGroup, RefEquations, ReplacementEquation};
pub use faults::{FaultPlan, InjectedFaults, ReadFault, WriteFault};
pub use governor::{AnalysisError, Budget, CancelToken, ExhaustReason, GovernedAnalysis, Outcome};
pub use pointset::{DenseSet, PointSet, Run, RunSet, SurvivorRepr, SurvivorRuns, SurvivorSet};
pub use sequence::{analyze_sequence, SequenceAnalysis};
pub use solve::{
    AnalysisOptions, AnalysisOptionsBuilder, InvalidOptions, NestAnalysis, RefAnalysis,
    VectorReport,
};
pub use store::{ArtifactKey, ArtifactStore, StoreError, StoreStats, SweepRecord};
