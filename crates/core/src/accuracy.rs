//! CME-vs-simulation accuracy comparison (the methodology of Table 1).
//!
//! The paper's Table 1 validates CME miss counts against DineroIII
//! simulations; [`compare_with_simulation`] produces one such row from our
//! analyzer and our LRU simulator.

use crate::engine::Analyzer;
use crate::solve::{AnalysisOptions, NestAnalysis};
use cme_cache::{simulate_nest, CacheConfig, NestSimResult};
use cme_ir::LoopNest;
use std::collections::HashSet;
use std::fmt;

/// One row of a Table-1-style accuracy report.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Nest name.
    pub nest: String,
    /// Number of distinct arrays accessed.
    pub arrays: usize,
    /// Maximum number of references to any single array.
    pub max_refs_per_array: usize,
    /// Total data accesses executed.
    pub accesses: u64,
    /// Misses measured by the LRU simulator (the DineroIII column).
    pub sim_misses: u64,
    /// Misses counted from the CMEs.
    pub cme_misses: u64,
    /// Number of references.
    pub refs: usize,
    /// Maximum number of reuse vectors used by any reference.
    pub max_rvs_used: usize,
    /// The full CME analysis (for drill-down).
    pub analysis: NestAnalysis,
    /// The full simulation result (for drill-down).
    pub simulation: NestSimResult,
}

impl AccuracyRow {
    /// Signed percentage error of the CME count relative to simulation
    /// (positive = CME over-counts, the sound direction).
    pub fn error_pct(&self) -> f64 {
        if self.sim_misses == 0 {
            if self.cme_misses == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.cme_misses as f64 - self.sim_misses as f64) / self.sim_misses as f64 * 100.0
        }
    }

    /// `true` when the CME count never under-counts the simulator — the
    /// soundness invariant of the analysis.
    pub fn is_sound(&self) -> bool {
        self.cme_misses >= self.sim_misses
    }
}

impl fmt::Display for AccuracyRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} arrays={} accesses={} sim={} cme={} err={:.2}% refs={} maxRV={}",
            self.nest,
            self.arrays,
            self.accesses,
            self.sim_misses,
            self.cme_misses,
            self.error_pct(),
            self.refs,
            self.max_rvs_used
        )
    }
}

/// Runs both the CME analysis and the LRU simulation of a nest and returns
/// the comparison row.
pub fn compare_with_simulation(
    nest: &LoopNest,
    cache: CacheConfig,
    options: &AnalysisOptions,
) -> AccuracyRow {
    let analysis = Analyzer::new(cache)
        .options(options.clone())
        .parallel(true)
        .analyze(nest);
    let simulation = simulate_nest(nest, cache);
    let arrays: HashSet<usize> = nest
        .references()
        .iter()
        .map(|r| r.array().index())
        .collect();
    let max_refs_per_array = arrays
        .iter()
        .map(|&a| {
            nest.references()
                .iter()
                .filter(|r| r.array().index() == a)
                .count()
        })
        .max()
        .unwrap_or(0);
    AccuracyRow {
        nest: nest.name().to_string(),
        arrays: arrays.len(),
        max_refs_per_array,
        accesses: nest.access_count(),
        sim_misses: simulation.total().misses(),
        cme_misses: analysis.total_misses(),
        refs: nest.references().len(),
        max_rvs_used: analysis.max_vectors_used(),
        analysis,
        simulation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_ir::{AccessKind, NestBuilder};

    #[test]
    fn exact_on_unit_stride() {
        let mut b = NestBuilder::new();
        b.name("sweep").ct_loop("i", 1, 128);
        let a = b.array("A", &[128], 0);
        b.reference(a, AccessKind::Read, &[("i", 0)]);
        let nest = b.build().unwrap();
        let cache = CacheConfig::new(8192, 1, 32, 4).unwrap();
        let row = compare_with_simulation(&nest, cache, &AnalysisOptions::default());
        assert_eq!(row.sim_misses, row.cme_misses);
        assert_eq!(row.error_pct(), 0.0);
        assert!(row.is_sound());
        assert_eq!(row.arrays, 1);
        assert_eq!(row.refs, 1);
        assert!(row.to_string().contains("sweep"));
    }

    #[test]
    fn error_pct_handles_zero_sim_misses() {
        let row_zero = |cme: u64| AccuracyRow {
            nest: "x".into(),
            arrays: 1,
            max_refs_per_array: 1,
            accesses: 1,
            sim_misses: 0,
            cme_misses: cme,
            refs: 1,
            max_rvs_used: 0,
            analysis: NestAnalysis {
                nest_name: "x".into(),
                cache: CacheConfig::new(64, 1, 16, 4).unwrap(),
                per_ref: vec![],
            },
            simulation: cme_cache::NestSimResult {
                nest_name: "x".into(),
                per_ref: vec![],
                writebacks: 0,
            },
        };
        assert_eq!(row_zero(0).error_pct(), 0.0);
        assert!(row_zero(5).error_pct().is_infinite());
    }
}
