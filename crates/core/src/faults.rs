//! Deterministic fault injection at the artifact-store I/O boundary.
//!
//! The store's trust model (`crate::store`) promises that *every* I/O
//! anomaly — a failed read, a torn temp file, a corrupt entry, a crash
//! between write and rename — degrades to a recompute with bit-identical
//! counts, never to a wrong or truncated artifact. This module makes
//! that promise testable the way `cme-diffcheck` makes numerical
//! soundness testable: a [`FaultPlan`] is a seeded, reproducible stream
//! of injected failures that an [`crate::ArtifactStore`] consults on
//! every read and write, so a chaos suite can replay thousands of
//! distinct failure interleavings from nothing but a `u64` seed.
//!
//! Injection points mirror the real failure modes:
//!
//! - **read error** ([`ReadFault::Error`]) — `fs::read` fails (EIO, a
//!   vanished file); the store must miss and recompute;
//! - **truncated read** ([`ReadFault::Truncate`]) — the entry's byte
//!   stream ends early (torn write that slipped through, short read);
//!   the checksum must reject it and the entry must be evicted;
//! - **flipped byte** ([`ReadFault::FlipByte`]) — silent media
//!   corruption; same required outcome as truncation;
//! - **write error** ([`WriteFault::Error`]) — the temp file cannot be
//!   written (ENOSPC, EACCES); the analysis must still succeed and the
//!   failure must be counted, not raised;
//! - **torn write** ([`WriteFault::Torn`]) — only a prefix of the entry
//!   reaches disk but the rename still lands: the *next reader* must
//!   detect and evict it;
//! - **mid-write crash** ([`WriteFault::CrashBeforeRename`]) — the
//!   process "dies" after writing the temp file and before the rename:
//!   the live name must stay untouched and the stray temp file ignored.
//!
//! Decisions are derived per operation index from a splitmix64 stream,
//! so a plan's fault sequence depends only on `(seed, rates)` and the
//! order of store operations — identical across runs of a
//! single-threaded replay, and reproducible enough under concurrency to
//! shake out interleavings. The plan counts every injection
//! ([`FaultPlan::injected`]) so a suite can assert it actually exercised
//! each class.

use std::sync::atomic::{AtomicU64, Ordering};

/// An injected failure on the read side of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The underlying `fs::read` fails outright.
    Error,
    /// The bytes come back truncated at a seeded fraction.
    Truncate,
    /// One seeded byte of the payload is flipped.
    FlipByte,
}

/// An injected failure on the write side of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The temp file cannot be created or written at all.
    Error,
    /// Only a prefix of the entry reaches the temp file, and the rename
    /// still happens — a torn entry lands under the live name.
    Torn,
    /// The process "crashes" after the temp write, before the rename:
    /// the temp file is stranded and the live name never changes.
    CrashBeforeRename,
}

/// Counters of faults actually injected by a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Read operations that failed outright.
    pub read_errors: u64,
    /// Reads whose bytes were truncated.
    pub truncated_reads: u64,
    /// Reads with a flipped payload byte.
    pub corrupted_reads: u64,
    /// Writes that failed outright.
    pub write_errors: u64,
    /// Writes torn to a prefix under the live name.
    pub torn_writes: u64,
    /// Writes abandoned between temp file and rename.
    pub crashed_writes: u64,
}

impl InjectedFaults {
    /// Total injections across every class.
    pub fn total(&self) -> u64 {
        self.read_errors
            + self.truncated_reads
            + self.corrupted_reads
            + self.write_errors
            + self.torn_writes
            + self.crashed_writes
    }
}

/// A seeded, reproducible schedule of store I/O faults.
///
/// Rates are percentages (0–100) per operation; read and write sides
/// draw from independent substreams, so changing one rate never shifts
/// the other side's schedule.
///
/// ```
/// use cme_core::faults::FaultPlan;
/// let a = FaultPlan::new(7).read_fault_percent(50);
/// let b = FaultPlan::new(7).read_fault_percent(50);
/// assert_eq!(a.next_read_fault(), b.next_read_fault());
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    read_percent: u32,
    write_percent: u32,
    reads: AtomicU64,
    writes: AtomicU64,
    injected_read_errors: AtomicU64,
    injected_truncated: AtomicU64,
    injected_corrupted: AtomicU64,
    injected_write_errors: AtomicU64,
    injected_torn: AtomicU64,
    injected_crashed: AtomicU64,
}

/// splitmix64: one decorrelated 64-bit value per (seed, index) pair.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with the given seed and default rates: 25% of reads and
    /// 25% of writes fault (an aggressive chaos setting; production
    /// stores see none of this).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            read_percent: 25,
            write_percent: 25,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            injected_read_errors: AtomicU64::new(0),
            injected_truncated: AtomicU64::new(0),
            injected_corrupted: AtomicU64::new(0),
            injected_write_errors: AtomicU64::new(0),
            injected_torn: AtomicU64::new(0),
            injected_crashed: AtomicU64::new(0),
        }
    }

    /// Sets the per-read fault probability in percent (clamped to 100).
    pub fn read_fault_percent(mut self, percent: u32) -> Self {
        self.read_percent = percent.min(100);
        self
    }

    /// Sets the per-write fault probability in percent (clamped to 100).
    pub fn write_fault_percent(mut self, percent: u32) -> Self {
        self.write_percent = percent.min(100);
        self
    }

    /// The plan's seed (printed in chaos-suite failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault decision for the next read operation, advancing the
    /// read substream. `None` = the read proceeds untouched.
    pub fn next_read_fault(&self) -> Option<ReadFault> {
        let index = self.reads.fetch_add(1, Ordering::Relaxed);
        let draw = mix(self.seed ^ 0x52_45_41_44, index); // "READ"
        if draw % 100 >= u64::from(self.read_percent) {
            return None;
        }
        let fault = match (draw >> 8) % 3 {
            0 => {
                self.injected_read_errors.fetch_add(1, Ordering::Relaxed);
                ReadFault::Error
            }
            1 => {
                self.injected_truncated.fetch_add(1, Ordering::Relaxed);
                ReadFault::Truncate
            }
            _ => {
                self.injected_corrupted.fetch_add(1, Ordering::Relaxed);
                ReadFault::FlipByte
            }
        };
        Some(fault)
    }

    /// The fault decision for the next write operation, advancing the
    /// write substream. `None` = the write proceeds untouched.
    pub fn next_write_fault(&self) -> Option<WriteFault> {
        let index = self.writes.fetch_add(1, Ordering::Relaxed);
        let draw = mix(self.seed ^ 0x57_52_49_54, index); // "WRIT"
        if draw % 100 >= u64::from(self.write_percent) {
            return None;
        }
        let fault = match (draw >> 8) % 3 {
            0 => {
                self.injected_write_errors.fetch_add(1, Ordering::Relaxed);
                WriteFault::Error
            }
            1 => {
                self.injected_torn.fetch_add(1, Ordering::Relaxed);
                WriteFault::Torn
            }
            _ => {
                self.injected_crashed.fetch_add(1, Ordering::Relaxed);
                WriteFault::CrashBeforeRename
            }
        };
        Some(fault)
    }

    /// A seeded cut point in `1..len` for truncating or corrupting a
    /// byte stream (deterministic per plan and stream length).
    pub fn cut_point(&self, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        (mix(self.seed ^ 0x43_55_54, len as u64) as usize) % (len - 1) + 1 // "CUT"
    }

    /// Snapshot of how many faults this plan has actually injected.
    pub fn injected(&self) -> InjectedFaults {
        InjectedFaults {
            read_errors: self.injected_read_errors.load(Ordering::Relaxed),
            truncated_reads: self.injected_truncated.load(Ordering::Relaxed),
            corrupted_reads: self.injected_corrupted.load(Ordering::Relaxed),
            write_errors: self.injected_write_errors.load(Ordering::Relaxed),
            torn_writes: self.injected_torn.load(Ordering::Relaxed),
            crashed_writes: self.injected_crashed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &FaultPlan, n: usize) -> (Vec<Option<ReadFault>>, Vec<Option<WriteFault>>) {
        (
            (0..n).map(|_| plan.next_read_fault()).collect(),
            (0..n).map(|_| plan.next_write_fault()).collect(),
        )
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let (ra, wa) = drain(&FaultPlan::new(11), 256);
        let (rb, wb) = drain(&FaultPlan::new(11), 256);
        assert_eq!(ra, rb);
        assert_eq!(wa, wb);
        let (rc, wc) = drain(&FaultPlan::new(12), 256);
        assert!(ra != rc || wa != wc, "seeds must differ");
    }

    #[test]
    fn rates_bound_injection_and_counters_track_it() {
        let plan = FaultPlan::new(3)
            .read_fault_percent(0)
            .write_fault_percent(100);
        let (reads, writes) = drain(&plan, 300);
        assert!(reads.iter().all(Option::is_none));
        assert!(writes.iter().all(Option::is_some));
        let injected = plan.injected();
        assert_eq!(
            injected.read_errors + injected.truncated_reads + injected.corrupted_reads,
            0
        );
        assert_eq!(
            injected.write_errors + injected.torn_writes + injected.crashed_writes,
            300
        );
        assert_eq!(injected.total(), 300);
    }

    #[test]
    fn default_rates_hit_every_fault_class_eventually() {
        let plan = FaultPlan::new(0xc0ffee);
        drain(&plan, 4096);
        let i = plan.injected();
        for (name, count) in [
            ("read_errors", i.read_errors),
            ("truncated_reads", i.truncated_reads),
            ("corrupted_reads", i.corrupted_reads),
            ("write_errors", i.write_errors),
            ("torn_writes", i.torn_writes),
            ("crashed_writes", i.crashed_writes),
        ] {
            assert!(count > 0, "{name} never injected over 4096 ops");
        }
    }

    #[test]
    fn cut_points_stay_in_bounds() {
        let plan = FaultPlan::new(9);
        for len in [2usize, 3, 10, 1000] {
            let cut = plan.cut_point(len);
            assert!(cut >= 1 && cut < len, "cut {cut} out of bounds for {len}");
        }
        assert_eq!(plan.cut_point(0), 0);
        assert_eq!(plan.cut_point(1), 0);
    }
}
