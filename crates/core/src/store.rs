//! The persistent artifact store: classify-stage results on disk,
//! surviving the process.
//!
//! The in-memory memo tables ([`crate::Engine`]) already carry per-stage
//! artifacts across the candidate nests of one optimizer search; this
//! module extends the outermost artifact — the finished
//! [`NestAnalysis`] — across *processes*, so a repeated query (a
//! re-started search, a second `cme-serve` client, a corpus replay)
//! costs one file read instead of a full pipeline run.
//!
//! Entries are keyed by [`ArtifactKey`]: `(structural_hash, layout_hash,
//! cache geometry, options fingerprint)`, with the engine version and
//! store format version echoed in every file header. That tuple pins the
//! analysis inputs exactly (see `cme_ir::db`), so a stored result is
//! bit-identical to recomputing — which is why a store hit satisfies any
//! request budget: the stored artifact is always a *complete* analysis.
//!
//! Trust and failure model:
//!
//! - files carry the `CMEA` magic, both versions, a full key echo, and an
//!   FNV-1a checksum over everything else; any mismatch (truncation,
//!   corruption, version skew, filename collision) is a **miss** — the
//!   caller recomputes — and corrupt or version-skewed entries are
//!   deleted, never trusted;
//! - governor-truncated analyses are sound overcounts, not exact
//!   artifacts: the engine never offers them to [`ArtifactStore::put`]
//!   (and callers must not);
//! - writes are atomic (temp file + rename), so a crash mid-write leaves
//!   at worst an ignored temp file, never a half entry under a live name;
//! - the store is size-bounded: beyond [`ArtifactStore::max_bytes`],
//!   least-recently-*used* entries are evicted (reads touch the file
//!   mtime), and single entries above `max_entry_bytes` are not persisted
//!   at all.
//!
//! I/O failures never fail an analysis: a read error is a miss, a write
//! error is counted ([`StoreStats::write_errors`]) and dropped.

use crate::faults::{FaultPlan, ReadFault, WriteFault};
use crate::solve::{AnalysisOptions, NestAnalysis, RefAnalysis, VectorReport};
use cme_cache::{CacheConfig, CacheModel};
use cme_ir::codec::{fnv1a64, CodecError, Decoder, Encoder};
use cme_ir::{KeyHasher, RefId};
use cme_math::quasipoly::{FitCertificate, QuasiPolynomial};
use cme_reuse::{ReuseKind, ReuseVector};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

/// Layout version of the artifact file format. Bump on any codec change;
/// old entries are evicted on first contact, not migrated.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// The engine version stamped into (and required of) every artifact:
/// results from another engine build are recomputed, not trusted.
pub const ENGINE_VERSION: &str = env!("CARGO_PKG_VERSION");

const MAGIC: &[u8; 4] = b"CMEA";

/// Magic of persisted parametric-sweep entries ([`SweepRecord`]). Sweep
/// entries share the store directory, extension, size bound, and LRU
/// eviction with analysis entries; the distinct magic (plus a distinct
/// filename salt) keeps the two namespaces from ever decoding as each
/// other.
const SWEEP_MAGIC: &[u8; 4] = b"CMES";

/// Extension of live entries; temp files use `.tmp` and are ignored.
const ENTRY_EXT: &str = "cmea";

/// The identity of one persisted artifact: everything the analysis result
/// depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Base-invariant structural hash of the nest
    /// ([`cme_ir::db::structural_hash`]).
    pub structural: u128,
    /// Full layout hash — every array base ([`cme_ir::db::layout_hash`]).
    pub layout: u128,
    /// Cache geometry as `[size, assoc, line, elem]` bytes.
    pub cache: [i64; 4],
    /// Fingerprint of the [`AnalysisOptions`]
    /// ([`options_fingerprint`]).
    pub options_fp: u128,
}

impl ArtifactKey {
    /// Builds the key for one `(nest, geometry, options)` query.
    pub fn new(
        structural: u128,
        layout: u128,
        cache: &CacheConfig,
        options: &AnalysisOptions,
    ) -> Self {
        ArtifactKey {
            structural,
            layout,
            cache: [
                cache.size_bytes(),
                cache.assoc(),
                cache.line_bytes(),
                cache.elem_bytes(),
            ],
            options_fp: options_fingerprint(options),
        }
    }

    /// [`ArtifactKey::new`] for a query against an arbitrary
    /// [`CacheModel`]: the replacement/write policy and the optional L2
    /// are folded into the options fingerprint
    /// ([`model_fingerprint`]), so artifacts produced under different
    /// models can never alias — while the baseline model (single-level
    /// LRU write-back) produces keys bit-identical to
    /// [`ArtifactKey::new`], keeping every pre-model store entry valid.
    pub fn for_model(
        structural: u128,
        layout: u128,
        model: &CacheModel,
        options: &AnalysisOptions,
    ) -> Self {
        let mut key = ArtifactKey::new(structural, layout, &model.l1(), options);
        key.options_fp = model_fingerprint(options, model);
        key
    }

    /// The entry's file name: a 128-bit composite hash in hex. The full
    /// key is echoed inside the file, so a (vanishingly unlikely) name
    /// collision reads as a miss, never as a wrong result.
    pub fn file_name(&self) -> String {
        let mut h = KeyHasher::new(0xa27f);
        h.feed(&self.structural)
            .feed(&self.layout)
            .feed(&self.cache)
            .feed(&self.options_fp);
        format!("{:032x}.{ENTRY_EXT}", h.finish())
    }

    fn encode(&self, e: &mut Encoder) {
        e.u128(self.structural);
        e.u128(self.layout);
        for v in self.cache {
            e.i64(v);
        }
        e.u128(self.options_fp);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ArtifactKey {
            structural: d.u128()?,
            layout: d.u128()?,
            cache: [d.i64()?, d.i64()?, d.i64()?, d.i64()?],
            options_fp: d.u128()?,
        })
    }
}

/// Hashes every analysis-relevant field of [`AnalysisOptions`] into the
/// store key. Any option that can change the result (or its recorded
/// side data, like collected miss points) must land here. Pure
/// performance knobs stay out: `survivor_repr` only moves the
/// time/memory trade of the in-memory scan sets, and both
/// representations produce bit-identical results, so a persisted
/// artifact is valid under any representation policy.
pub fn options_fingerprint(options: &AnalysisOptions) -> u128 {
    let mut h = KeyHasher::new(0x09f5);
    h.feed(&options.epsilon)
        .feed(&options.exact_equation_counts)
        .feed(&options.collect_miss_points)
        .feed(&options.pointwise_windows)
        .feed(&options.reuse.group)
        .feed(&options.reuse.extended)
        .feed(&options.reuse.max_vectors)
        .feed(&options.reuse.candidate_budget);
    h.finish()
}

/// [`options_fingerprint`] extended with the [`CacheModel`]: for the
/// baseline model (single-level LRU write-back — the geometry already in
/// [`ArtifactKey::cache`]) this returns *exactly*
/// `options_fingerprint(options)`, so every store key minted before the
/// model existed stays valid; any other policy, write handling, or L2
/// perturbs the fingerprint and can never alias a baseline artifact (or
/// another model's).
pub fn model_fingerprint(options: &AnalysisOptions, model: &CacheModel) -> u128 {
    let base = options_fingerprint(options);
    if model.is_baseline() {
        return base;
    }
    let mut h = KeyHasher::new(0x5b1d);
    h.feed(&base).feed(model);
    h.finish()
}

/// A store failure that the caller cannot transparently recover from —
/// today that is only opening the store directory. Per-entry read/write
/// failures degrade to misses and counters instead.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The store directory could not be created or probed.
    Open {
        /// The directory.
        dir: PathBuf,
        /// The OS error text.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Open { dir, message } => {
                write!(f, "cannot open artifact store {}: {message}", dir.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[derive(Debug, Default)]
struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt_evicted: AtomicU64,
    version_evicted: AtomicU64,
    lru_evicted: AtomicU64,
    skipped_large: AtomicU64,
    write_errors: AtomicU64,
}

/// Snapshot of a store's traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that fell through to recompute (absent, corrupt, version
    /// skew, or read error).
    pub misses: u64,
    /// Entries persisted.
    pub writes: u64,
    /// Entries deleted because their bytes failed integrity checks.
    pub corrupt_evicted: u64,
    /// Entries deleted because their format or engine version differed.
    pub version_evicted: u64,
    /// Entries deleted by the size bound (least recently used first).
    pub lru_evicted: u64,
    /// Artifacts not persisted because they exceeded the per-entry cap.
    pub skipped_large: u64,
    /// Writes dropped on I/O failure (the analysis still succeeded).
    pub write_errors: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store: {} hits, {} misses, {} writes; evicted {} corrupt, {} version, {} lru; {} skipped large, {} write errors",
            self.hits,
            self.misses,
            self.writes,
            self.corrupt_evicted,
            self.version_evicted,
            self.lru_evicted,
            self.skipped_large,
            self.write_errors
        )
    }
}

/// The on-disk artifact store: one checksummed file per analysis result,
/// shared by every session (and process) pointed at the same directory.
///
/// All methods take `&self`; the store is safe to share behind an `Arc`
/// across threads (concurrent writers of the same key race to an
/// identical file via atomic rename).
///
/// ```
/// use cme_cache::CacheConfig;
/// use cme_core::store::{ArtifactKey, ArtifactStore};
/// use cme_core::AnalysisOptions;
///
/// let dir = std::env::temp_dir().join("cme-store-doc");
/// let store = ArtifactStore::open(&dir)?;
/// let cache = CacheConfig::new(8192, 1, 32, 4).unwrap();
/// let key = ArtifactKey::new(1, 2, &cache, &AnalysisOptions::default());
/// assert!(store.get(&key).is_none()); // cold
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), cme_core::store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    max_bytes: u64,
    max_entry_bytes: u64,
    counters: StoreCounters,
    faults: Option<Arc<FaultPlan>>,
}

impl ArtifactStore {
    /// Default size bound: 256 MiB of artifacts.
    pub const DEFAULT_MAX_BYTES: u64 = 256 << 20;

    /// Default per-entry cap: 16 MiB (a single huge traced analysis must
    /// not dominate the whole store).
    pub const DEFAULT_MAX_ENTRY_BYTES: u64 = 16 << 20;

    /// Opens (creating if needed) the store at `dir` with default bounds.
    ///
    /// # Errors
    ///
    /// [`StoreError::Open`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_bounded(dir, Self::DEFAULT_MAX_BYTES, Self::DEFAULT_MAX_ENTRY_BYTES)
    }

    /// [`ArtifactStore::open`] with explicit total and per-entry byte
    /// bounds.
    ///
    /// # Errors
    ///
    /// [`StoreError::Open`].
    pub fn open_bounded(
        dir: impl Into<PathBuf>,
        max_bytes: u64,
        max_entry_bytes: u64,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::Open {
            dir: dir.clone(),
            message: e.to_string(),
        })?;
        Ok(ArtifactStore {
            dir,
            max_bytes,
            max_entry_bytes,
            counters: StoreCounters::default(),
            faults: None,
        })
    }

    /// Attaches a seeded [`FaultPlan`] (chaos testing): every subsequent
    /// read and write consults the plan and may fail, truncate, corrupt,
    /// tear, or abandon the operation exactly as the matching real I/O
    /// failure would. The store's degradation contract is unchanged —
    /// that is the point: callers must not be able to tell an injected
    /// fault from a real one.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The total size bound in bytes.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Snapshot of the traffic counters (per store handle, not global
    /// across processes).
    pub fn stats(&self) -> StoreStats {
        let c = &self.counters;
        StoreStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            corrupt_evicted: c.corrupt_evicted.load(Ordering::Relaxed),
            version_evicted: c.version_evicted.load(Ordering::Relaxed),
            lru_evicted: c.lru_evicted.load(Ordering::Relaxed),
            skipped_large: c.skipped_large.load(Ordering::Relaxed),
            write_errors: c.write_errors.load(Ordering::Relaxed),
        }
    }

    /// Live entries on disk right now (diagnostics and tests).
    pub fn entry_count(&self) -> usize {
        self.entries().len()
    }

    /// Total bytes of live entries on disk right now.
    pub fn total_bytes(&self) -> u64 {
        self.entries().iter().map(|e| e.len).sum()
    }

    /// Looks up a persisted analysis. `None` is a miss for *any* reason —
    /// absent, corrupt (entry deleted), version skew (entry deleted), key
    /// echo mismatch, or read error — and means "recompute". A hit
    /// touches the entry's mtime, making eviction least-recently-used.
    pub fn get(&self, key: &ArtifactKey) -> Option<NestAnalysis> {
        let path = self.dir.join(key.file_name());
        let bytes = match self.read_entry_bytes(&path) {
            Ok(b) => b,
            Err(_) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&bytes, key) {
            Ok(Some(analysis)) => {
                // LRU touch; best-effort (a read-only store still serves).
                if let Ok(f) = fs::File::options().append(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(analysis)
            }
            Ok(None) => {
                // Key echo mismatch: someone else's entry under a
                // colliding name. Leave it; just miss.
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(kind) => {
                let slot = match kind {
                    EntryReject::Corrupt => &self.counters.corrupt_evicted,
                    EntryReject::Version => &self.counters.version_evicted,
                };
                slot.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists a **complete** analysis under `key`, then enforces the
    /// size bound. Truncated (exhausted) analyses must never be offered:
    /// they are sound overcounts, not exact artifacts, and a later reader
    /// could not tell the difference. I/O failures are counted and
    /// swallowed — persistence is an optimization, not a contract.
    pub fn put(&self, key: &ArtifactKey, analysis: &NestAnalysis) {
        let bytes = encode_entry(key, analysis);
        if bytes.len() as u64 > self.max_entry_bytes {
            self.counters.skipped_large.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let final_path = self.dir.join(key.file_name());
        if self.write_entry(&final_path, &bytes) {
            self.counters.writes.fetch_add(1, Ordering::Relaxed);
            self.evict_to_fit();
        }
    }

    /// Reads an entry's raw bytes, routing through the fault plan when
    /// one is attached: an injected read error behaves exactly like a
    /// failed `fs::read`; truncation and byte flips mutate the returned
    /// stream so the decoder's checksum discipline is what catches them.
    fn read_entry_bytes(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let fault = self.faults.as_ref().and_then(|f| f.next_read_fault());
        if matches!(fault, Some(ReadFault::Error)) {
            return Err(std::io::Error::other("injected read error"));
        }
        let mut bytes = fs::read(path)?;
        if bytes.is_empty() {
            return Ok(bytes);
        }
        match (fault, &self.faults) {
            (Some(ReadFault::Truncate), Some(plan)) => {
                let cut = plan.cut_point(bytes.len());
                bytes.truncate(cut);
            }
            (Some(ReadFault::FlipByte), Some(plan)) => {
                let at = plan.cut_point(bytes.len()).min(bytes.len() - 1);
                bytes[at] ^= 0x40;
            }
            _ => {}
        }
        Ok(bytes)
    }

    /// Writes `bytes` under `final_path` via the atomic temp+rename
    /// discipline, routing through the fault plan when one is attached.
    /// Returns `false` when the write (real or injected) failed outright;
    /// torn and crash-abandoned writes return as the matching real
    /// failure would (a torn write "succeeds" from the writer's view —
    /// the *next reader* is who must catch it).
    fn write_entry(&self, final_path: &Path, bytes: &[u8]) -> bool {
        let fault = self.faults.as_ref().and_then(|f| f.next_write_fault());
        if matches!(fault, Some(WriteFault::Error)) {
            self.counters.write_errors.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let written: &[u8] = match (&fault, &self.faults) {
            (Some(WriteFault::Torn), Some(plan)) => &bytes[..plan.cut_point(bytes.len())],
            _ => bytes,
        };
        let tmp_path = self.dir.join(format!(
            "{:016x}-{:x}.tmp",
            fnv1a64(final_path.as_os_str().as_encoded_bytes()),
            std::process::id()
        ));
        let write = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(written)?;
            f.sync_all()?;
            if matches!(fault, Some(WriteFault::CrashBeforeRename)) {
                // The simulated crash: the temp file is stranded and the
                // live name never changes. The writer reports success the
                // way a really-crashed process reports nothing at all.
                return Ok(());
            }
            fs::rename(&tmp_path, final_path)
        })();
        match write {
            Ok(()) => true,
            Err(_) => {
                let _ = fs::remove_file(&tmp_path);
                self.counters.write_errors.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    fn entries(&self) -> Vec<EntryMeta> {
        let mut out = Vec::new();
        let Ok(rd) = fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in rd.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            out.push(EntryMeta {
                path,
                len: meta.len(),
                mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        out
    }

    /// Deletes least-recently-used entries until the total fits
    /// `max_bytes`.
    fn evict_to_fit(&self) {
        let mut entries = self.entries();
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        if total <= self.max_bytes {
            return;
        }
        entries.sort_by_key(|e| e.mtime);
        for e in entries {
            if total <= self.max_bytes {
                break;
            }
            if fs::remove_file(&e.path).is_ok() {
                total = total.saturating_sub(e.len);
                self.counters.lru_evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

struct EntryMeta {
    path: PathBuf,
    len: u64,
    mtime: SystemTime,
}

enum EntryReject {
    /// Checksum/shape failure: the bytes are not a well-formed entry.
    Corrupt,
    /// Well-formed, but written by a different format or engine version.
    Version,
}

/// Serializes one entry: header (magic, versions, key echo), payload,
/// trailing FNV-1a checksum over everything before it.
fn encode_entry(key: &ArtifactKey, analysis: &NestAnalysis) -> Vec<u8> {
    let mut e = Encoder::new();
    e.raw(MAGIC);
    e.u32(STORE_FORMAT_VERSION);
    e.str(ENGINE_VERSION);
    key.encode(&mut e);
    encode_analysis(&mut e, analysis);
    let checksum = fnv1a64(e.bytes());
    e.u64(checksum);
    e.into_bytes()
}

/// Decodes one entry. `Ok(None)` = well-formed entry for a *different*
/// key (filename collision — not ours to evict). `Err` says whether the
/// entry is corrupt or merely version-skewed; either way it is safe to
/// delete.
fn decode_entry(bytes: &[u8], key: &ArtifactKey) -> Result<Option<NestAnalysis>, EntryReject> {
    // Checksum first: nothing else in the file is trusted before it.
    if bytes.len() < MAGIC.len() + 8 {
        return Err(EntryReject::Corrupt);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(tail);
    if fnv1a64(body) != u64::from_le_bytes(stored) {
        return Err(EntryReject::Corrupt);
    }
    let mut d = Decoder::new(body);
    if d.raw(MAGIC.len()).map_err(|_| EntryReject::Corrupt)? != MAGIC {
        return Err(EntryReject::Corrupt);
    }
    if d.u32().map_err(|_| EntryReject::Corrupt)? != STORE_FORMAT_VERSION {
        return Err(EntryReject::Version);
    }
    if d.str().map_err(|_| EntryReject::Corrupt)? != ENGINE_VERSION {
        return Err(EntryReject::Version);
    }
    let echoed = ArtifactKey::decode(&mut d).map_err(|_| EntryReject::Corrupt)?;
    if &echoed != key {
        return Ok(None);
    }
    let analysis = decode_analysis(&mut d).map_err(|_| EntryReject::Corrupt)?;
    if !d.is_exhausted() {
        return Err(EntryReject::Corrupt);
    }
    Ok(Some(analysis))
}

fn encode_analysis(e: &mut Encoder, a: &NestAnalysis) {
    e.str(&a.nest_name);
    e.i64(a.cache.size_bytes());
    e.i64(a.cache.assoc());
    e.i64(a.cache.line_bytes());
    e.i64(a.cache.elem_bytes());
    e.u32(a.per_ref.len() as u32);
    for r in &a.per_ref {
        encode_ref(e, r);
    }
}

fn decode_analysis(d: &mut Decoder<'_>) -> Result<NestAnalysis, CodecError> {
    let nest_name = d.str()?;
    let (size, assoc, line, elem) = (d.i64()?, d.i64()?, d.i64()?, d.i64()?);
    let cache = CacheConfig::new(size, assoc, line, elem).map_err(|_| {
        // An impossible geometry in a checksummed entry is still corrupt
        // as far as the caller is concerned.
        CodecError::BadDiscriminant {
            at: d.position(),
            value: 0,
            what: "cache geometry",
        }
    })?;
    let n = d.len_prefix(1 << 16)?;
    let mut per_ref = Vec::with_capacity(n);
    for _ in 0..n {
        per_ref.push(decode_ref(d)?);
    }
    Ok(NestAnalysis {
        nest_name,
        cache,
        per_ref,
    })
}

fn encode_ref(e: &mut Encoder, r: &RefAnalysis) {
    e.u32(r.dest.index() as u32);
    e.str(&r.label);
    e.u32(r.vectors.len() as u32);
    for v in &r.vectors {
        encode_vector_report(e, v);
    }
    e.u64(r.cold_misses);
    e.u64(r.replacement_misses);
    e.bool(r.early_stopped);
    e.u32(r.replacement_miss_points.len() as u32);
    for (point, vi) in &r.replacement_miss_points {
        e.i64s(point);
        e.u32(*vi as u32);
    }
    e.u32(r.cold_miss_points.len() as u32);
    for point in &r.cold_miss_points {
        e.i64s(point);
    }
}

fn decode_ref(d: &mut Decoder<'_>) -> Result<RefAnalysis, CodecError> {
    let dest = RefId::from_index(d.u32()? as usize);
    let label = d.str()?;
    let nv = d.len_prefix(1 << 20)?;
    let mut vectors = Vec::with_capacity(nv.min(1 << 12));
    for _ in 0..nv {
        vectors.push(decode_vector_report(d)?);
    }
    let cold_misses = d.u64()?;
    let replacement_misses = d.u64()?;
    let early_stopped = d.bool()?;
    let nr = d.len_prefix(cme_ir::codec::MAX_SEQ_LEN)?;
    let mut replacement_miss_points = Vec::with_capacity(nr.min(1 << 16));
    for _ in 0..nr {
        let point = d.i64s()?;
        let vi = d.u32()? as usize;
        replacement_miss_points.push((point, vi));
    }
    let nc = d.len_prefix(cme_ir::codec::MAX_SEQ_LEN)?;
    let mut cold_miss_points = Vec::with_capacity(nc.min(1 << 16));
    for _ in 0..nc {
        cold_miss_points.push(d.i64s()?);
    }
    Ok(RefAnalysis {
        dest,
        label,
        vectors,
        cold_misses,
        replacement_misses,
        early_stopped,
        replacement_miss_points,
        cold_miss_points,
    })
}

fn encode_vector_report(e: &mut Encoder, v: &VectorReport) {
    e.i64s(v.reuse.vector());
    e.u32(v.reuse.source().index() as u32);
    e.u8(match v.reuse.kind() {
        ReuseKind::SelfTemporal => 0,
        ReuseKind::SelfSpatial => 1,
        ReuseKind::GroupTemporal => 2,
        ReuseKind::GroupSpatial => 3,
    });
    e.i64(v.reuse.delta());
    e.u64(v.examined);
    e.u64(v.cold_solutions);
    e.u64(v.replacement_misses);
    e.u64s(&v.contentions_per_perpetrator);
    e.u64(v.cumulative_replacement_misses);
}

fn decode_vector_report(d: &mut Decoder<'_>) -> Result<VectorReport, CodecError> {
    let vector = d.i64s()?;
    let source = RefId::from_index(d.u32()? as usize);
    let at = d.position();
    let kind = match d.u8()? {
        0 => ReuseKind::SelfTemporal,
        1 => ReuseKind::SelfSpatial,
        2 => ReuseKind::GroupTemporal,
        3 => ReuseKind::GroupSpatial,
        value => {
            return Err(CodecError::BadDiscriminant {
                at,
                value,
                what: "reuse kind",
            })
        }
    };
    let delta = d.i64()?;
    Ok(VectorReport {
        reuse: ReuseVector::new(vector, source, kind, delta),
        examined: d.u64()?,
        cold_solutions: d.u64()?,
        replacement_misses: d.u64()?,
        contentions_per_perpetrator: d.u64s()?,
        cumulative_replacement_misses: d.u64()?,
    })
}

/// A persisted fitted sweep: the quasi-polynomial, its certificate, and
/// the sample cost that produced it. Pure data — the argmin is always
/// recomputed from the function on rehydration, never trusted from disk.
/// Only *fitted, complete* sweeps are ever recorded (the same contract as
/// [`ArtifactStore::put`]: degraded results are sound overcounts, not
/// artifacts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRecord {
    head: Vec<i64>,
    coeffs: Vec<(i64, i64, i64)>,
    degree: u8,
    samples: u64,
    margin: u64,
    /// Numeric analyses the original fit consumed.
    pub evaluations: u64,
}

impl SweepRecord {
    /// Captures a fitted function and its certificate for persistence.
    pub fn new(function: &QuasiPolynomial, cert: &FitCertificate, evaluations: u64) -> Self {
        SweepRecord {
            head: function.head().to_vec(),
            coeffs: function.coefficients().to_vec(),
            degree: cert.degree,
            samples: cert.samples as u64,
            margin: cert.verification_margin as u64,
            evaluations,
        }
    }

    /// The fitted function; `None` if the record is malformed (empty
    /// residue table — cannot happen through [`SweepRecord::new`]).
    pub fn function(&self) -> Option<QuasiPolynomial> {
        if self.coeffs.is_empty() {
            return None;
        }
        Some(QuasiPolynomial::with_head(
            self.head.clone(),
            self.coeffs.clone(),
        ))
    }

    /// The exact-fit certificate backing the function.
    pub fn certificate(&self) -> FitCertificate {
        FitCertificate {
            period: self.coeffs.len(),
            onset: self.head.len() as i64,
            degree: self.degree,
            samples: self.samples as usize,
            verification_margin: self.margin as usize,
        }
    }
}

/// File name of a sweep entry: the composite hash of the artifact key
/// plus the sweep fingerprint (parameter, range, step, metric). Same
/// collision posture as [`ArtifactKey::file_name`] — the key and
/// fingerprint are echoed inside the file, so a name collision is a
/// miss, never a wrong result.
fn sweep_file_name(key: &ArtifactKey, param_fp: u128) -> String {
    let mut h = KeyHasher::new(0x53e9);
    h.feed(&key.structural)
        .feed(&key.layout)
        .feed(&key.cache)
        .feed(&key.options_fp)
        .feed(&param_fp);
    format!("{:032x}.{ENTRY_EXT}", h.finish())
}

fn encode_sweep_entry(key: &ArtifactKey, param_fp: u128, rec: &SweepRecord) -> Vec<u8> {
    let mut e = Encoder::new();
    e.raw(SWEEP_MAGIC);
    e.u32(STORE_FORMAT_VERSION);
    e.str(ENGINE_VERSION);
    key.encode(&mut e);
    e.u128(param_fp);
    e.i64s(&rec.head);
    e.u32(rec.coeffs.len() as u32);
    for &(a, b, c) in &rec.coeffs {
        e.i64(a);
        e.i64(b);
        e.i64(c);
    }
    e.u8(rec.degree);
    e.u64(rec.samples);
    e.u64(rec.margin);
    e.u64(rec.evaluations);
    let checksum = fnv1a64(e.bytes());
    e.u64(checksum);
    e.into_bytes()
}

fn decode_sweep_entry(
    bytes: &[u8],
    key: &ArtifactKey,
    param_fp: u128,
) -> Result<Option<SweepRecord>, EntryReject> {
    if bytes.len() < SWEEP_MAGIC.len() + 8 {
        return Err(EntryReject::Corrupt);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(tail);
    if fnv1a64(body) != u64::from_le_bytes(stored) {
        return Err(EntryReject::Corrupt);
    }
    let mut d = Decoder::new(body);
    if d.raw(SWEEP_MAGIC.len()).map_err(|_| EntryReject::Corrupt)? != SWEEP_MAGIC {
        return Err(EntryReject::Corrupt);
    }
    if d.u32().map_err(|_| EntryReject::Corrupt)? != STORE_FORMAT_VERSION {
        return Err(EntryReject::Version);
    }
    if d.str().map_err(|_| EntryReject::Corrupt)? != ENGINE_VERSION {
        return Err(EntryReject::Version);
    }
    let echoed = ArtifactKey::decode(&mut d).map_err(|_| EntryReject::Corrupt)?;
    let echoed_fp = d.u128().map_err(|_| EntryReject::Corrupt)?;
    if &echoed != key || echoed_fp != param_fp {
        return Ok(None);
    }
    let rec = (|| -> Result<SweepRecord, CodecError> {
        let head = d.i64s()?;
        let n = d.u32()? as usize;
        let mut coeffs = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            coeffs.push((d.i64()?, d.i64()?, d.i64()?));
        }
        Ok(SweepRecord {
            head,
            coeffs,
            degree: d.u8()?,
            samples: d.u64()?,
            margin: d.u64()?,
            evaluations: d.u64()?,
        })
    })()
    .map_err(|_| EntryReject::Corrupt)?;
    if rec.coeffs.is_empty() || !d.is_exhausted() {
        return Err(EntryReject::Corrupt);
    }
    Ok(Some(rec))
}

impl ArtifactStore {
    /// Looks up a persisted sweep for `(key, param_fp)`. Same trust and
    /// miss model as [`ArtifactStore::get`]: any anomaly is a miss, and
    /// corrupt or version-skewed entries are evicted on contact.
    pub fn get_sweep(&self, key: &ArtifactKey, param_fp: u128) -> Option<SweepRecord> {
        let path = self.dir.join(sweep_file_name(key, param_fp));
        let bytes = match self.read_entry_bytes(&path) {
            Ok(b) => b,
            Err(_) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_sweep_entry(&bytes, key, param_fp) {
            Ok(Some(rec)) => {
                if let Ok(f) = fs::File::options().append(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(rec)
            }
            Ok(None) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(kind) => {
                let slot = match kind {
                    EntryReject::Corrupt => &self.counters.corrupt_evicted,
                    EntryReject::Version => &self.counters.version_evicted,
                };
                slot.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists a **fitted, complete** sweep, then enforces the size
    /// bound. The caller contract mirrors [`ArtifactStore::put`]:
    /// fallback or budget-degraded sweeps must never be offered.
    pub fn put_sweep(&self, key: &ArtifactKey, param_fp: u128, rec: &SweepRecord) {
        let bytes = encode_sweep_entry(key, param_fp, rec);
        if bytes.len() as u64 > self.max_entry_bytes {
            self.counters.skipped_large.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let final_path = self.dir.join(sweep_file_name(key, param_fp));
        if self.write_entry(&final_path, &bytes) {
            self.counters.writes.fetch_add(1, Ordering::Relaxed);
            self.evict_to_fit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Analyzer;
    use cme_ir::{AccessKind, NestBuilder};

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("cme-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).unwrap()
    }

    fn sample_analysis() -> NestAnalysis {
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 32).ct_loop("j", 1, 32);
        let a = b.array("A", &[32, 32], 0);
        b.reference(a, AccessKind::Read, &[("i", 0), ("j", 0)]);
        let nest = b.build().unwrap();
        let cfg = CacheConfig::new(1024, 2, 32, 4).unwrap();
        Analyzer::new(cfg).analyze(&nest)
    }

    fn sample_key(salt: u128) -> ArtifactKey {
        let cfg = CacheConfig::new(1024, 2, 32, 4).unwrap();
        ArtifactKey::new(salt, salt ^ 0xff, &cfg, &AnalysisOptions::default())
    }

    #[test]
    fn put_get_round_trips_bit_identically() {
        let store = temp_store("roundtrip");
        let analysis = sample_analysis();
        let key = sample_key(1);
        assert!(store.get(&key).is_none());
        store.put(&key, &analysis);
        let got = store.get(&key).expect("warm read");
        assert_eq!(got, analysis);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes), (1, 1, 1));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn sweep_entries_round_trip_and_share_the_namespace_safely() {
        let store = temp_store("sweep-roundtrip");
        let key = sample_key(7);
        let q = QuasiPolynomial::with_head(vec![41, 37], vec![(5, 1, 0), (9, 0, 0)]);
        let cert = FitCertificate {
            period: 2,
            onset: 2,
            degree: 1,
            samples: 12,
            verification_margin: 3,
        };
        let rec = SweepRecord::new(&q, &cert, 12);
        let fp = 0x1234_5678_u128;
        assert!(store.get_sweep(&key, fp).is_none());
        store.put_sweep(&key, fp, &rec);
        let got = store.get_sweep(&key, fp).expect("warm sweep read");
        assert_eq!(got, rec);
        assert_eq!(got.function().expect("function"), q);
        assert_eq!(got.certificate(), cert);
        // A different fingerprint is a different entry, not a collision.
        assert!(store.get_sweep(&key, fp ^ 1).is_none());
        // The analysis namespace never sees the sweep entry.
        assert!(store.get(&key).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_sweep_entries_are_evicted_not_trusted() {
        let store = temp_store("sweep-corrupt");
        let key = sample_key(9);
        let q = QuasiPolynomial::with_head(vec![], vec![(3, 0, 0)]);
        let cert = FitCertificate {
            period: 1,
            onset: 0,
            degree: 0,
            samples: 8,
            verification_margin: 7,
        };
        store.put_sweep(&key, 5, &SweepRecord::new(&q, &cert, 8));
        let path = store.dir().join(sweep_file_name(&key, 5));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(store.get_sweep(&key, 5).is_none());
        assert!(!path.exists(), "corrupt sweep entry must be deleted");
        assert_eq!(store.stats().corrupt_evicted, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_entries_are_evicted_not_trusted() {
        let store = temp_store("corrupt");
        let analysis = sample_analysis();
        let key = sample_key(2);
        store.put(&key, &analysis);
        let path = store.dir().join(key.file_name());
        // Flip a payload byte: the checksum must catch it.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(store.get(&key).is_none());
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert_eq!(store.stats().corrupt_evicted, 1);
        // Truncation is likewise corruption.
        store.put(&key, &analysis);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(store.get(&key).is_none());
        assert_eq!(store.stats().corrupt_evicted, 2);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn version_skew_is_evicted() {
        let store = temp_store("version");
        let analysis = sample_analysis();
        let key = sample_key(3);
        // Forge an entry with a bumped format version and a valid
        // checksum: well-formed, wrong vintage.
        let mut e = Encoder::new();
        e.raw(MAGIC);
        e.u32(STORE_FORMAT_VERSION + 1);
        e.str(ENGINE_VERSION);
        key.encode(&mut e);
        encode_analysis(&mut e, &analysis);
        let sum = fnv1a64(e.bytes());
        e.u64(sum);
        let path = store.dir().join(key.file_name());
        fs::write(&path, e.into_bytes()).unwrap();
        assert!(store.get(&key).is_none());
        assert!(!path.exists());
        assert_eq!(store.stats().version_evicted, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn filename_collision_misses_without_evicting() {
        let store = temp_store("collision");
        let analysis = sample_analysis();
        let ours = sample_key(4);
        let theirs = sample_key(5);
        // Plant a valid entry for `theirs` under `ours`' file name.
        let mut e = Encoder::new();
        e.raw(MAGIC);
        e.u32(STORE_FORMAT_VERSION);
        e.str(ENGINE_VERSION);
        theirs.encode(&mut e);
        encode_analysis(&mut e, &analysis);
        let sum = fnv1a64(e.bytes());
        e.u64(sum);
        let path = store.dir().join(ours.file_name());
        fs::write(&path, e.into_bytes()).unwrap();
        assert!(store.get(&ours).is_none());
        assert!(path.exists(), "someone else's entry is not ours to evict");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn lru_eviction_bounds_total_size() {
        let dir = std::env::temp_dir().join(format!("cme-store-test-lru-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let analysis = sample_analysis();
        let one = encode_entry(&sample_key(0), &analysis).len() as u64;
        // Room for about three entries.
        let store = ArtifactStore::open_bounded(&dir, one * 3 + one / 2, u64::MAX).unwrap();
        for salt in 0..6u128 {
            store.put(&sample_key(salt), &analysis);
        }
        assert!(store.total_bytes() <= store.max_bytes());
        assert!(store.entry_count() <= 3);
        assert!(store.stats().lru_evicted >= 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_entries_are_skipped() {
        let dir = std::env::temp_dir().join(format!("cme-store-test-big-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ArtifactStore::open_bounded(&dir, u64::MAX, 8).unwrap();
        store.put(&sample_key(9), &sample_analysis());
        assert_eq!(store.entry_count(), 0);
        assert_eq!(store.stats().skipped_large, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_options_get_distinct_keys() {
        let exact = AnalysisOptions::default();
        let eps = AnalysisOptions::builder().epsilon(100).build();
        assert_ne!(options_fingerprint(&exact), options_fingerprint(&eps));
        let cfg = CacheConfig::new(1024, 2, 32, 4).unwrap();
        let a = ArtifactKey::new(1, 2, &cfg, &exact);
        let b = ArtifactKey::new(1, 2, &cfg, &eps);
        assert_ne!(a.file_name(), b.file_name());
    }

    #[test]
    fn faulted_store_never_serves_wrong_data_and_always_degrades() {
        // Across seeds, a store under aggressive injected I/O faults must
        // behave like a (possibly forgetful) correct store: every `get`
        // either misses or returns the bit-identical artifact, `put`
        // never raises, and torn/corrupt entries are evicted on contact.
        let analysis = sample_analysis();
        for seed in 0..32u64 {
            let dir = std::env::temp_dir().join(format!(
                "cme-store-test-faulted-{seed}-{}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&dir);
            let plan = Arc::new(
                FaultPlan::new(seed)
                    .read_fault_percent(60)
                    .write_fault_percent(60),
            );
            let store = ArtifactStore::open(&dir)
                .unwrap()
                .with_faults(Arc::clone(&plan));
            for round in 0..6u128 {
                let key = sample_key(round % 2);
                store.put(&key, &analysis);
                if let Some(got) = store.get(&key) {
                    assert_eq!(got, analysis, "seed {seed} round {round}: wrong artifact");
                }
            }
            // Whatever survived on disk must be the exact artifact when
            // read through a clean (fault-free) store handle.
            let clean = ArtifactStore::open(&dir).unwrap();
            for salt in 0..2u128 {
                if let Some(got) = clean.get(&sample_key(salt)) {
                    assert_eq!(got, analysis, "seed {seed}: corrupt entry served");
                }
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn torn_write_lands_corrupt_and_is_evicted_by_the_next_reader() {
        let dir = std::env::temp_dir().join(format!("cme-store-test-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // A plan that tears every write (write faults at 100% cycle
        // through the classes; find a seed whose first write is Torn).
        let seed = (0..64)
            .find(|&s| {
                matches!(
                    FaultPlan::new(s)
                        .write_fault_percent(100)
                        .next_write_fault(),
                    Some(crate::faults::WriteFault::Torn)
                )
            })
            .expect("some seed tears first");
        let plan = Arc::new(
            FaultPlan::new(seed)
                .write_fault_percent(100)
                .read_fault_percent(0),
        );
        let store = ArtifactStore::open(&dir).unwrap().with_faults(plan);
        let key = sample_key(1);
        store.put(&key, &sample_analysis());
        let path = store.dir().join(key.file_name());
        assert!(path.exists(), "torn write still renames");
        // The same handle reads with faults off: the checksum catches it.
        assert!(store.get(&key).is_none());
        assert!(!path.exists(), "torn entry must be evicted on contact");
        assert_eq!(store.stats().corrupt_evicted, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashed_write_strands_a_temp_file_and_preserves_the_live_entry() {
        let dir = std::env::temp_dir().join(format!("cme-store-test-crash-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let analysis = sample_analysis();
        let key = sample_key(2);
        // First, a clean write of the live entry.
        let clean = ArtifactStore::open(&dir).unwrap();
        clean.put(&key, &analysis);
        let live = fs::read(clean.dir().join(key.file_name())).unwrap();
        // Then a crash-before-rename overwrite attempt.
        let seed = (0..64)
            .find(|&s| {
                matches!(
                    FaultPlan::new(s)
                        .write_fault_percent(100)
                        .next_write_fault(),
                    Some(crate::faults::WriteFault::CrashBeforeRename)
                )
            })
            .expect("some seed crashes first");
        let plan = Arc::new(
            FaultPlan::new(seed)
                .write_fault_percent(100)
                .read_fault_percent(0),
        );
        let store = ArtifactStore::open(&dir).unwrap().with_faults(plan);
        store.put(&key, &analysis);
        // The live name is byte-identical, the temp file is ignored.
        assert_eq!(fs::read(store.dir().join(key.file_name())).unwrap(), live);
        assert_eq!(store.entry_count(), 1, "temp files are not entries");
        assert_eq!(store.get(&key).unwrap(), analysis);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn survivor_repr_does_not_split_the_store() {
        // The representation policy is a pure performance knob — both
        // sides produce bit-identical artifacts, so forcing either must
        // hit entries persisted under the other.
        let base = AnalysisOptions::default();
        for repr in [
            crate::SurvivorRepr::ForceRuns,
            crate::SurvivorRepr::ForceDense,
        ] {
            let forced = AnalysisOptions::builder().survivor_repr(repr).build();
            assert_eq!(options_fingerprint(&base), options_fingerprint(&forced));
        }
    }
}
