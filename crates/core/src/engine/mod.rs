//! The incremental analysis engine and the [`Analyzer`] session API.
//!
//! Optimizer searches (padding, tiling, fusion) score dozens to hundreds
//! of *candidate* nests that differ only in array layout — base addresses
//! and padded column sizes — while the loop structure, the subscripts, and
//! the cache stay fixed. Re-running the full miss-finding algorithm
//! (Figure 6) per candidate repeats enormous amounts of identical work.
//! This module memoizes the algorithm's two phases separately, each under
//! the narrowest invalidation key that is still sound (see
//! [`keys`] and `docs/ENGINE.md`):
//!
//! - the **cold/indeterminate cascade** per reference — which iteration
//!   points are cold-CME solutions along each reuse vector, and which need
//!   a window scan — depends only on the nest structure and the
//!   reference's own line offset `B mod Ls`, so candidates that merely
//!   move *other* arrays reuse it outright;
//! - each **`(reference, reuse-vector)` window scan** depends on the full
//!   layout only through per-array line offsets and exact relative line
//!   distances, so converged search sweeps (which re-evaluate earlier
//!   candidates) and line-aligned translations skip the scans entirely;
//! - reuse vectors are base-invariant and cached per structure;
//! - generated [`CmeSystem`]s are cached per structure and *rebased*
//!   (constant terms only) onto candidates with new layouts; their
//!   polytope counts go through a shared [`cme_math::SolveMemo`].
//!
//! Every cached artifact is an exact analysis result: an [`Analyzer`] is
//! bit-identical to the legacy sequential [`crate::analyze_nest`] whether
//! its memos are warm or cold, sequential or pooled (property-tested in
//! `tests/engine_equivalence.rs`).

mod keys;
mod pool;

use crate::equations::CmeSystem;
use crate::pointset::PointSet;
use crate::solve::{
    scan_interior, scan_interior_pointwise, AnalysisOptions, NestAnalysis, RefAnalysis, Scanner,
    VectorReport,
};
use cme_cache::CacheConfig;
use cme_ir::{LoopNest, RefId};
use cme_math::{Affine, SolveMemo};
use cme_reuse::{reuse_vectors, ReuseOptions, ReuseVector};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One reuse vector's slice of a reference's cascade: how many points
/// entered, how many stayed indeterminate (cold-CME solutions), and the
/// points whose reuse windows must be scanned.
#[derive(Debug, Clone)]
struct CascadeVector {
    examined: u64,
    cold_solutions: u64,
    scan_set: PointSet,
}

/// A reference's full cold/indeterminate refinement (Figure 6 minus the
/// window scans), reusable across every candidate layout that preserves
/// the nest structure and the reference's own `B mod Ls`.
#[derive(Debug, Clone)]
struct CascadeEntry {
    vectors: Vec<CascadeVector>,
    /// Indeterminate set after the last processed vector; `None` when no
    /// vector ran (no reuse, or `ε` at least the whole space).
    final_set: Option<PointSet>,
    early_stopped: bool,
}

/// The verdicts of one `(reference, reuse-vector)` batch of window scans,
/// aligned with the cascade's `scan_set` order.
#[derive(Debug, Clone)]
struct ScanOutcome {
    replacement_misses: u64,
    /// Per-perpetrator contention counts (all zero unless exact mode).
    contentions: Vec<u64>,
    /// Indices into the scan set of the points judged misses.
    miss_indices: Vec<u32>,
}

#[derive(Debug)]
struct SystemEntry {
    layout: u128,
    system: Arc<CmeSystem>,
}

#[derive(Debug, Default)]
struct Counters {
    analyses: AtomicU64,
    passthroughs: AtomicU64,
    reuse_built: AtomicU64,
    reuse_reused: AtomicU64,
    cascades_built: AtomicU64,
    cascades_reused: AtomicU64,
    scans_executed: AtomicU64,
    scans_reused: AtomicU64,
    systems_generated: AtomicU64,
    systems_rebased: AtomicU64,
    systems_reused: AtomicU64,
}

#[derive(Debug, Default, Clone, Copy)]
struct Timings {
    prepare: Duration,
    scan: Duration,
    assemble: Duration,
}

/// Snapshot of an [`Engine`]'s work accounting: artifacts generated vs
/// reused, solver-memo traffic, and per-phase wall time.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Nest analyses run through the engine.
    pub analyses: u64,
    /// References analyzed uncached (caching off or nest too large).
    pub passthroughs: u64,
    /// Reuse-vector sets computed.
    pub reuse_built: u64,
    /// Reuse-vector sets answered from the memo.
    pub reuse_reused: u64,
    /// Cold/indeterminate cascades computed.
    pub cascades_built: u64,
    /// Cascades answered from the memo.
    pub cascades_reused: u64,
    /// `(reference, reuse-vector)` scan batches executed.
    pub scans_executed: u64,
    /// Scan batches answered from the memo.
    pub scans_reused: u64,
    /// [`CmeSystem`]s generated from scratch.
    pub systems_generated: u64,
    /// Cached systems re-targeted at a new layout (constant terms only).
    pub systems_rebased: u64,
    /// Cached systems returned verbatim.
    pub systems_reused: u64,
    /// Diophantine/polytope solver memo hits (shared [`SolveMemo`]).
    pub solver_hits: u64,
    /// Solver memo misses (counts actually computed).
    pub solver_misses: u64,
    /// Wall time spent generating reuse vectors and cascades.
    pub time_prepare: Duration,
    /// Wall time spent in window scans.
    pub time_scan: Duration,
    /// Wall time spent assembling results.
    pub time_assemble: Duration,
}

impl EngineStats {
    /// Fraction of memo lookups (reuse, cascade, scan) answered from
    /// cache; `0.0` when nothing was looked up.
    pub fn memo_hit_rate(&self) -> f64 {
        let hits = self.reuse_reused + self.cascades_reused + self.scans_reused;
        let total = hits + self.reuse_built + self.cascades_built + self.scans_executed;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Total equation-system artifacts served without regeneration.
    pub fn systems_saved(&self) -> u64 {
        self.systems_rebased + self.systems_reused
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {} analyses ({} uncached references)",
            self.analyses, self.passthroughs
        )?;
        writeln!(
            f,
            "  reuse vectors: {} built, {} reused",
            self.reuse_built, self.reuse_reused
        )?;
        writeln!(
            f,
            "  cascades:      {} built, {} reused",
            self.cascades_built, self.cascades_reused
        )?;
        writeln!(
            f,
            "  window scans:  {} executed, {} reused",
            self.scans_executed, self.scans_reused
        )?;
        writeln!(
            f,
            "  systems:       {} generated, {} rebased, {} reused",
            self.systems_generated, self.systems_rebased, self.systems_reused
        )?;
        writeln!(
            f,
            "  solver memo:   {} hits, {} misses",
            self.solver_hits, self.solver_misses
        )?;
        writeln!(f, "  memo hit rate: {:.1}%", self.memo_hit_rate() * 100.0)?;
        write!(
            f,
            "  phases: prepare {:.1?}, scan {:.1?}, assemble {:.1?}",
            self.time_prepare, self.time_scan, self.time_assemble
        )
    }
}

/// Entry caps: when a memo reaches its cap it is cleared wholesale (the
/// values are `Arc`-shared, so in-flight users are unaffected). Crude, but
/// sized so a full optimizer search fits: a padding search visits tens of
/// candidate layouts, each contributing one scan entry per (reference ×
/// vector) and one cascade entry per distinct destination line offset —
/// the scan table is the big one (small entries: a few counters plus the
/// miss indices), the others stay tiny.
const REUSE_CAP: usize = 4096;
const CASCADE_CAP: usize = 4096;
const SCAN_CAP: usize = 1 << 17;
const SYSTEM_CAP: usize = 256;

/// The incremental analysis engine: a fixed cache geometry plus memo
/// tables that carry analysis artifacts across candidate nests.
///
/// Most callers want the [`Analyzer`] wrapper, which fixes options and
/// threading as session defaults. `Engine` is the per-call-options core
/// (e.g. the diagnosis pass analyzes the same nest under two option sets).
#[derive(Debug)]
pub struct Engine {
    cache: CacheConfig,
    caching: bool,
    max_cached_points: u64,
    reuse_memo: Mutex<HashMap<u128, Arc<Vec<ReuseVector>>>>,
    cascade_memo: Mutex<HashMap<u128, Arc<CascadeEntry>>>,
    scan_memo: Mutex<HashMap<u128, Arc<ScanOutcome>>>,
    system_memo: Mutex<HashMap<u128, SystemEntry>>,
    solve_memo: Arc<SolveMemo>,
    counters: Counters,
    timings: Mutex<Timings>,
}

enum ScanSlot {
    Ready(Arc<ScanOutcome>),
    Todo(u128),
}

enum Plan {
    Done(RefAnalysis),
    Cached {
        rvs: Arc<Vec<ReuseVector>>,
        cascade: Arc<CascadeEntry>,
        scans: Vec<ScanSlot>,
    },
}

impl Engine {
    /// A fresh engine for one cache geometry, caching enabled.
    pub fn new(cache: CacheConfig) -> Self {
        Engine {
            cache,
            caching: true,
            max_cached_points: 1 << 22,
            reuse_memo: Mutex::new(HashMap::new()),
            cascade_memo: Mutex::new(HashMap::new()),
            scan_memo: Mutex::new(HashMap::new()),
            system_memo: Mutex::new(HashMap::new()),
            solve_memo: Arc::new(SolveMemo::new()),
            counters: Counters::default(),
            timings: Mutex::new(Timings::default()),
        }
    }

    /// The cache geometry this engine analyzes against.
    pub fn cache(&self) -> &CacheConfig {
        &self.cache
    }

    /// Enables or disables memoization (disabled = every analysis is a
    /// passthrough to the uncached algorithm).
    pub fn set_caching(&mut self, on: bool) {
        self.caching = on;
    }

    /// Iteration-space size above which nests bypass the memos (their
    /// point sets would dominate memory). Default: 4M points.
    pub fn set_max_cached_points(&mut self, points: u64) {
        self.max_cached_points = points;
    }

    /// The shared Diophantine/polytope solve memo (for symbolic counting).
    pub fn solve_memo(&self) -> &Arc<SolveMemo> {
        &self.solve_memo
    }

    /// Drops every cached artifact. Counters keep accumulating.
    pub fn clear_caches(&self) {
        self.reuse_memo
            .lock()
            .expect("engine memo poisoned")
            .clear();
        self.cascade_memo
            .lock()
            .expect("engine memo poisoned")
            .clear();
        self.scan_memo.lock().expect("engine memo poisoned").clear();
        self.system_memo
            .lock()
            .expect("engine memo poisoned")
            .clear();
        self.solve_memo.clear();
    }

    /// Snapshot of the engine's accounting.
    pub fn stats(&self) -> EngineStats {
        let c = &self.counters;
        let t = *self.timings.lock().expect("engine timings poisoned");
        EngineStats {
            analyses: c.analyses.load(Ordering::Relaxed),
            passthroughs: c.passthroughs.load(Ordering::Relaxed),
            reuse_built: c.reuse_built.load(Ordering::Relaxed),
            reuse_reused: c.reuse_reused.load(Ordering::Relaxed),
            cascades_built: c.cascades_built.load(Ordering::Relaxed),
            cascades_reused: c.cascades_reused.load(Ordering::Relaxed),
            scans_executed: c.scans_executed.load(Ordering::Relaxed),
            scans_reused: c.scans_reused.load(Ordering::Relaxed),
            systems_generated: c.systems_generated.load(Ordering::Relaxed),
            systems_rebased: c.systems_rebased.load(Ordering::Relaxed),
            systems_reused: c.systems_reused.load(Ordering::Relaxed),
            solver_hits: self.solve_memo.hits(),
            solver_misses: self.solve_memo.misses(),
            time_prepare: t.prepare,
            time_scan: t.scan,
            time_assemble: t.assemble,
        }
    }

    /// Analyzes a nest, reusing every memoized artifact the candidate's
    /// invalidation keys admit. Bit-identical to [`crate::analyze_nest`].
    ///
    /// `threads` sizes the work pool over `(reference × reuse-vector)`
    /// items; `<= 1` runs inline on the caller's thread.
    pub fn analyze(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
        threads: usize,
    ) -> NestAnalysis {
        self.counters.analyses.fetch_add(1, Ordering::Relaxed);
        let cache = self.cache;
        let nrefs = nest.references().len();
        let use_cache = self.caching && nest.space().count() <= self.max_cached_points;
        let addrs: Vec<Affine> = nest
            .references()
            .iter()
            .map(|r| nest.address_affine(r.id()))
            .collect();
        let prefix = if use_cache {
            keys::prefix_key(&cache, options, nest)
        } else {
            0
        };
        let ls = cache.line_elems();
        let eng = &*self;

        // Phase 1 — per reference: reuse vectors, then the cascade (memo
        // or fresh); scan batches become slots (memo hit or todo).
        let t0 = Instant::now();
        let plans: Vec<Plan> = pool::run_pool((0..nrefs).collect(), threads, |_, ridx| {
            let id = RefId::from_index(ridx);
            if !use_cache {
                eng.counters.passthroughs.fetch_add(1, Ordering::Relaxed);
                let rvs = reuse_vectors(nest, &cache, id, &options.reuse);
                #[allow(deprecated)]
                return Plan::Done(crate::solve::analyze_reference(
                    nest, cache, id, &rvs, options,
                ));
            }
            let rkey = keys::KeyHasher::from_prefix(0x4e5e, prefix)
                .feed(&ridx)
                .finish();
            let rvs = eng.lookup_reuse(rkey, || reuse_vectors(nest, &cache, id, &options.reuse));
            let ckey = keys::cascade_key(prefix, nest, options, ridx, ls);
            let cascade = eng.lookup_cascade(ckey, || {
                build_cascade(nest, &cache, &addrs, ridx, &rvs, options)
            });
            let scans = (0..cascade.vectors.len())
                .map(|vi| {
                    let skey = keys::scan_key(prefix, nest, options, ridx, vi, ls);
                    match eng.peek_scan(skey) {
                        Some(o) => ScanSlot::Ready(o),
                        None => ScanSlot::Todo(skey),
                    }
                })
                .collect();
            Plan::Cached {
                rvs,
                cascade,
                scans,
            }
        });
        let prepare_elapsed = t0.elapsed();

        // Phase 2 — pooled window scans for every scan-memo miss.
        let t1 = Instant::now();
        let mut todo: Vec<(usize, usize, u128)> = Vec::new();
        for (ridx, plan) in plans.iter().enumerate() {
            if let Plan::Cached { scans, .. } = plan {
                for (vi, slot) in scans.iter().enumerate() {
                    if let ScanSlot::Todo(key) = slot {
                        todo.push((ridx, vi, *key));
                    }
                }
            }
        }
        let outcomes: Vec<Arc<ScanOutcome>> =
            pool::run_pool(todo.clone(), threads, |_, (ridx, vi, key)| {
                let Plan::Cached { rvs, cascade, .. } = &plans[ridx] else {
                    unreachable!("todo items only come from cached plans");
                };
                let outcome = Arc::new(scan_points(
                    nest,
                    &cache,
                    &addrs,
                    ridx,
                    &rvs[vi],
                    &cascade.vectors[vi].scan_set,
                    options,
                ));
                eng.store_scan(key, outcome.clone());
                outcome
            });
        let scan_elapsed = t1.elapsed();

        // Phase 3 — deterministic assembly in reference order.
        let t2 = Instant::now();
        let mut fills: HashMap<(usize, usize), Arc<ScanOutcome>> = HashMap::new();
        for ((ridx, vi, _), outcome) in todo.into_iter().zip(outcomes) {
            fills.insert((ridx, vi), outcome);
        }
        let per_ref: Vec<RefAnalysis> = plans
            .into_iter()
            .enumerate()
            .map(|(ridx, plan)| match plan {
                Plan::Done(r) => r,
                Plan::Cached {
                    rvs,
                    cascade,
                    scans,
                } => {
                    let resolved: Vec<Arc<ScanOutcome>> = scans
                        .into_iter()
                        .enumerate()
                        .map(|(vi, slot)| match slot {
                            ScanSlot::Ready(o) => o,
                            ScanSlot::Todo(_) => fills[&(ridx, vi)].clone(),
                        })
                        .collect();
                    assemble(
                        nest,
                        RefId::from_index(ridx),
                        &rvs,
                        &cascade,
                        &resolved,
                        options,
                    )
                }
            })
            .collect();
        let assemble_elapsed = t2.elapsed();
        {
            let mut t = self.timings.lock().expect("engine timings poisoned");
            t.prepare += prepare_elapsed;
            t.scan += scan_elapsed;
            t.assemble += assemble_elapsed;
        }
        NestAnalysis {
            nest_name: nest.name().to_string(),
            cache,
            per_ref,
        }
    }

    /// The symbolic CME system for a nest: generated once per structure,
    /// *rebased* (address constants only) when only the layout moved, and
    /// returned verbatim when nothing changed.
    pub fn system(&mut self, nest: &LoopNest, reuse: &ReuseOptions) -> Arc<CmeSystem> {
        let key = keys::system_key(&self.cache, reuse, nest);
        let layout = keys::layout_hash(nest);
        {
            let mut map = self.system_memo.lock().expect("engine memo poisoned");
            if let Some(entry) = map.get_mut(&key) {
                if entry.layout == layout {
                    self.counters.systems_reused.fetch_add(1, Ordering::Relaxed);
                    return entry.system.clone();
                }
                let rebased = Arc::new(entry.system.rebase_to(nest));
                entry.layout = layout;
                entry.system = rebased.clone();
                self.counters
                    .systems_rebased
                    .fetch_add(1, Ordering::Relaxed);
                return rebased;
            }
        }
        let system = Arc::new(CmeSystem::generate(nest, self.cache, reuse));
        self.counters
            .systems_generated
            .fetch_add(1, Ordering::Relaxed);
        let mut map = self.system_memo.lock().expect("engine memo poisoned");
        if map.len() >= SYSTEM_CAP {
            map.clear();
        }
        map.insert(
            key,
            SystemEntry {
                layout,
                system: system.clone(),
            },
        );
        system
    }

    /// Counts a replacement equation's solutions through the shared solve
    /// memo (see
    /// [`crate::equations::ReplacementEquation::count_solutions_memo`]).
    pub fn count_replacement(
        &self,
        eq: &crate::equations::ReplacementEquation,
        nest: &LoopNest,
    ) -> u64 {
        eq.count_solutions_memo(nest, &self.cache, Some(&self.solve_memo))
    }

    fn lookup_reuse(
        &self,
        key: u128,
        build: impl FnOnce() -> Vec<ReuseVector>,
    ) -> Arc<Vec<ReuseVector>> {
        if let Some(v) = self
            .reuse_memo
            .lock()
            .expect("engine memo poisoned")
            .get(&key)
        {
            self.counters.reuse_reused.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        let v = Arc::new(build());
        self.counters.reuse_built.fetch_add(1, Ordering::Relaxed);
        let mut map = self.reuse_memo.lock().expect("engine memo poisoned");
        if map.len() >= REUSE_CAP {
            map.clear();
        }
        map.insert(key, v.clone());
        v
    }

    fn lookup_cascade(&self, key: u128, build: impl FnOnce() -> CascadeEntry) -> Arc<CascadeEntry> {
        if let Some(c) = self
            .cascade_memo
            .lock()
            .expect("engine memo poisoned")
            .get(&key)
        {
            self.counters
                .cascades_reused
                .fetch_add(1, Ordering::Relaxed);
            return c.clone();
        }
        let c = Arc::new(build());
        self.counters.cascades_built.fetch_add(1, Ordering::Relaxed);
        let mut map = self.cascade_memo.lock().expect("engine memo poisoned");
        if map.len() >= CASCADE_CAP {
            map.clear();
        }
        map.insert(key, c.clone());
        c
    }

    fn peek_scan(&self, key: u128) -> Option<Arc<ScanOutcome>> {
        let hit = self
            .scan_memo
            .lock()
            .expect("engine memo poisoned")
            .get(&key)
            .cloned();
        if hit.is_some() {
            self.counters.scans_reused.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn store_scan(&self, key: u128, outcome: Arc<ScanOutcome>) {
        self.counters.scans_executed.fetch_add(1, Ordering::Relaxed);
        let mut map = self.scan_memo.lock().expect("engine memo poisoned");
        if map.len() >= SCAN_CAP {
            map.clear();
        }
        map.insert(key, outcome);
    }
}

/// Runs the cold/indeterminate refinement for one reference — the
/// classification half of Figure 6, with the points needing window scans
/// recorded per vector instead of scanned inline.
fn build_cascade(
    nest: &LoopNest,
    cache: &CacheConfig,
    addrs: &[Affine],
    dest_idx: usize,
    rvs: &[ReuseVector],
    options: &AnalysisOptions,
) -> CascadeEntry {
    let depth = nest.depth();
    let space = nest.space();
    let dest_addr = &addrs[dest_idx];
    let mut c: Option<PointSet> = None;
    let mut vectors = Vec::new();
    let mut early_stopped = false;
    for rv in rvs {
        let examined = match &c {
            Some(set) => set.len(),
            None => space.count(),
        };
        if examined <= options.epsilon {
            early_stopped = c.is_some() && examined > 0;
            break;
        }
        let mut next = PointSet::new(depth);
        let mut scan_set = PointSet::new(depth);
        let mut cold_solutions = 0u64;
        let r = rv.vector();
        let src_addr = &addrs[rv.source().index()];
        let intra = rv.is_intra_iteration();
        let mut p = vec![0i64; depth];
        let mut classify = |i: &[i64]| {
            for l in 0..depth {
                p[l] = i[l] - r[l];
            }
            let dest_line = cache.memory_line(dest_addr.eval(i));
            let cold = (!intra && !space.contains(&p))
                || cache.memory_line(src_addr.eval(&p)) != dest_line;
            if cold {
                next.push(i);
                cold_solutions += 1;
            } else {
                scan_set.push(i);
            }
        };
        match &c {
            None => {
                let mut sp = nest.space();
                while let Some(pt) = sp.next_point() {
                    classify(&pt);
                }
            }
            Some(set) => {
                for pt in set {
                    classify(pt);
                }
            }
        }
        vectors.push(CascadeVector {
            examined,
            cold_solutions,
            scan_set,
        });
        c = Some(next);
    }
    CascadeEntry {
        vectors,
        final_set: c,
        early_stopped,
    }
}

/// Scans the reuse windows of every point in `points` along `rv` — the
/// verdict half of Figure 6, identical to the reference implementation's
/// inline scan.
fn scan_points(
    nest: &LoopNest,
    cache: &CacheConfig,
    addrs: &[Affine],
    dest_idx: usize,
    rv: &ReuseVector,
    points: &PointSet,
    options: &AnalysisOptions,
) -> ScanOutcome {
    let depth = nest.depth();
    let space = nest.space();
    let k = cache.assoc() as usize;
    let nrefs = addrs.len();
    let dest_addr = &addrs[dest_idx];
    let src_idx = rv.source().index();
    let r = rv.vector();
    let intra = rv.is_intra_iteration();
    let mut scanner = Scanner::new(cache, addrs, k, options.exact_equation_counts);
    let mut p = vec![0i64; depth];
    let mut contentions = vec![0u64; nrefs];
    let mut replacement_misses = 0u64;
    let mut miss_indices = Vec::new();
    for (idx, i) in points.iter().enumerate() {
        for l in 0..depth {
            p[l] = i[l] - r[l];
        }
        let a_dest = dest_addr.eval(i);
        scanner.reset(cache.cache_set(a_dest), cache.memory_line(a_dest));
        let mut go = true;
        if intra {
            for s in (src_idx + 1)..dest_idx {
                if !scanner.check(i, s) {
                    break;
                }
            }
        } else {
            // Tail of the source iteration (statements after the source).
            for s in (src_idx + 1)..nrefs {
                if !scanner.check(&p, s) {
                    go = false;
                    break;
                }
            }
            // Whole iterations strictly between, row by row.
            if go {
                go = if options.pointwise_windows {
                    scan_interior_pointwise(&mut scanner, &space, &p, i)
                } else {
                    scan_interior(&mut scanner, &space, &p, i)
                };
            }
            // Head of the destination iteration (statements before dest).
            if go {
                for s in 0..dest_idx {
                    if !scanner.check(i, s) {
                        break;
                    }
                }
            }
        }
        if options.exact_equation_counts {
            for (s, v) in scanner.per_perp.iter().enumerate() {
                contentions[s] += v.len() as u64;
            }
        }
        if scanner.distinct.len() >= k {
            replacement_misses += 1;
            miss_indices.push(idx as u32);
        }
    }
    ScanOutcome {
        replacement_misses,
        contentions,
        miss_indices,
    }
}

/// Stitches a cascade and its scan outcomes into the public
/// [`RefAnalysis`], byte for byte what the reference implementation emits.
fn assemble(
    nest: &LoopNest,
    dest: RefId,
    rvs: &[ReuseVector],
    cascade: &CascadeEntry,
    scans: &[Arc<ScanOutcome>],
    options: &AnalysisOptions,
) -> RefAnalysis {
    let mut vectors = Vec::with_capacity(cascade.vectors.len());
    let mut replacement_misses = 0u64;
    let mut repl_points: Vec<(Vec<i64>, usize)> = Vec::new();
    for (vi, (cv, scan)) in cascade.vectors.iter().zip(scans).enumerate() {
        replacement_misses += scan.replacement_misses;
        vectors.push(VectorReport {
            reuse: rvs[vi].clone(),
            examined: cv.examined,
            cold_solutions: cv.cold_solutions,
            replacement_misses: scan.replacement_misses,
            contentions_per_perpetrator: scan.contentions.clone(),
            cumulative_replacement_misses: replacement_misses,
        });
        if options.collect_miss_points {
            for &mi in &scan.miss_indices {
                repl_points.push((cv.scan_set.point(mi as usize).to_vec(), vi));
            }
        }
    }
    let (cold_misses, cold_points) = match &cascade.final_set {
        Some(set) => (
            set.len(),
            if options.collect_miss_points {
                set.iter().map(|q| q.to_vec()).collect()
            } else {
                Vec::new()
            },
        ),
        None => {
            let mut pts = Vec::new();
            if options.collect_miss_points {
                let mut sp = nest.space();
                while let Some(q) = sp.next_point() {
                    pts.push(q);
                }
            }
            (nest.space().count(), pts)
        }
    };
    RefAnalysis {
        dest,
        label: nest.reference(dest).label().to_string(),
        vectors,
        cold_misses,
        replacement_misses,
        early_stopped: cascade.early_stopped,
        replacement_miss_points: repl_points,
        cold_miss_points: cold_points,
    }
}

/// A configured analysis session: cache, options, and threading fixed as
/// defaults, with the incremental [`Engine`] carrying memoized work across
/// every `analyze` call.
///
/// ```
/// use cme_cache::CacheConfig;
/// use cme_core::{AnalysisOptions, Analyzer};
/// use cme_ir::{AccessKind, NestBuilder};
///
/// let mut b = NestBuilder::new();
/// b.ct_loop("i", 1, 64);
/// let a = b.array("A", &[64], 0);
/// b.reference(a, AccessKind::Read, &[("i", 0)]);
/// let nest = b.build().unwrap();
///
/// let cfg = CacheConfig::new(8192, 1, 32, 4)?;
/// let analysis = Analyzer::new(cfg)
///     .options(AnalysisOptions::default())
///     .parallel(true)
///     .analyze(&nest);
/// assert_eq!(analysis.total_misses(), 8);
/// # Ok::<(), cme_cache::CacheConfigError>(())
/// ```
#[derive(Debug)]
pub struct Analyzer {
    engine: Engine,
    options: AnalysisOptions,
    parallel: bool,
    threads: usize,
}

impl Analyzer {
    /// A sequential session with default options and caching on.
    pub fn new(cache: CacheConfig) -> Self {
        Analyzer {
            engine: Engine::new(cache),
            options: AnalysisOptions::default(),
            parallel: false,
            threads: 0,
        }
    }

    /// Sets the session's default analysis options.
    pub fn options(mut self, options: AnalysisOptions) -> Self {
        self.options = options;
        self
    }

    /// Spreads each analysis over the machine's cores.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Pins the work-pool width explicitly (overrides [`Analyzer::parallel`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the engine's memoization.
    pub fn caching(mut self, on: bool) -> Self {
        self.engine.set_caching(on);
        self
    }

    /// The cache geometry this session analyzes against.
    pub fn cache(&self) -> &CacheConfig {
        self.engine.cache()
    }

    /// The session's default options.
    pub fn current_options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Analyzes a nest with the session defaults. Results are bit-identical
    /// to [`crate::analyze_nest`], warm or cold.
    pub fn analyze(&mut self, nest: &LoopNest) -> NestAnalysis {
        let options = self.options.clone();
        self.analyze_with_options(nest, &options)
    }

    /// Analyzes with one-off options (e.g. an exact-counting pass) while
    /// still sharing the session's memo tables.
    pub fn analyze_with_options(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
    ) -> NestAnalysis {
        let threads = self.thread_count();
        self.engine.analyze(nest, options, threads)
    }

    /// The symbolic CME system for a nest (generated, rebased, or reused).
    pub fn system(&mut self, nest: &LoopNest) -> Arc<CmeSystem> {
        let reuse = self.options.reuse.clone();
        self.engine.system(nest, &reuse)
    }

    /// Snapshot of the engine's accounting.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Shared access to the underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    fn thread_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else if self.parallel {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            1
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy free functions are the equivalence baseline
mod tests {
    use super::*;
    use cme_ir::{AccessKind, NestBuilder};

    fn matmul(n: i64, bz: i64, bx: i64, by: i64) -> LoopNest {
        let mut b = NestBuilder::new();
        b.name("mmult");
        b.ct_loop("i", 1, n).ct_loop("k", 1, n).ct_loop("j", 1, n);
        let z = b.array("Z", &[n, n], bz);
        let x = b.array("X", &[n, n], bx);
        let y = b.array("Y", &[n, n], by);
        b.reference(z, AccessKind::Read, &[("j", 0), ("i", 0)]);
        b.reference(x, AccessKind::Read, &[("k", 0), ("i", 0)]);
        b.reference(y, AccessKind::Read, &[("j", 0), ("k", 0)]);
        b.reference(z, AccessKind::Write, &[("j", 0), ("i", 0)]);
        b.build().unwrap()
    }

    #[test]
    fn engine_matches_legacy_warm_and_cold() {
        let cache = CacheConfig::new(2048, 2, 32, 4).unwrap();
        let opts = AnalysisOptions::builder().collect_miss_points(true).build();
        let mut analyzer = Analyzer::new(cache).options(opts.clone());
        for bases in [[0, 300, 777], [0, 300, 777], [32, 300, 777], [5, 311, 801]] {
            let nest = matmul(12, bases[0], bases[1], bases[2]);
            let legacy = crate::solve::analyze_nest(&nest, cache, &opts);
            let cold = analyzer.analyze(&nest);
            let warm = analyzer.analyze(&nest);
            assert_eq!(legacy, cold);
            assert_eq!(legacy, warm);
        }
        let stats = analyzer.stats();
        assert!(stats.cascades_reused > 0, "{stats}");
        assert!(stats.scans_reused > 0, "{stats}");
        assert!(stats.memo_hit_rate() > 0.0);
    }

    #[test]
    fn engine_matches_legacy_with_epsilon_and_exact() {
        let cache = CacheConfig::new(8192, 1, 32, 4).unwrap();
        for opts in [
            AnalysisOptions::builder().epsilon(200).build(),
            AnalysisOptions::builder()
                .exact_equation_counts(true)
                .build(),
            AnalysisOptions::builder().pointwise_windows(true).build(),
        ] {
            let nest = matmul(8, 0, 4096, 8192);
            let legacy = crate::solve::analyze_nest(&nest, cache, &opts);
            let mut analyzer = Analyzer::new(cache).options(opts.clone());
            assert_eq!(legacy, analyzer.analyze(&nest));
            assert_eq!(legacy, analyzer.analyze(&nest), "warm pass diverged");
        }
    }

    #[test]
    fn caching_off_is_a_passthrough() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let nest = matmul(6, 0, 100, 200);
        let mut analyzer = Analyzer::new(cache).caching(false);
        let a = analyzer.analyze(&nest);
        let b = analyzer.analyze(&nest);
        assert_eq!(a, b);
        let stats = analyzer.stats();
        assert_eq!(stats.passthroughs, 8, "4 refs x 2 analyses uncached");
        assert_eq!(stats.cascades_built + stats.cascades_reused, 0);
    }

    #[test]
    fn moving_one_array_reuses_other_cascades() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let ls = cache.line_elems();
        let mut analyzer = Analyzer::new(cache);
        let n1 = matmul(8, 0, 128, 256);
        let n2 = matmul(8, 0, 128, 256 + ls); // move Y by a whole line
        let legacy = crate::solve::analyze_nest(&n2, cache, &AnalysisOptions::default());
        analyzer.analyze(&n1);
        let built_before = analyzer.stats().cascades_built;
        assert_eq!(analyzer.analyze(&n2), legacy);
        // Every reference keeps B mod Ls, so no cascade is rebuilt.
        assert_eq!(analyzer.stats().cascades_built, built_before);
    }

    #[test]
    fn system_cache_generates_rebases_and_reuses() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let reuse = cme_reuse::ReuseOptions::default();
        let mut engine = Engine::new(cache);
        let n1 = matmul(8, 0, 128, 256);
        let s1 = engine.system(&n1, &reuse);
        let s1b = engine.system(&n1, &reuse);
        assert!(Arc::ptr_eq(&s1, &s1b));
        let n2 = matmul(8, 8, 130, 300);
        let s2 = engine.system(&n2, &reuse);
        assert_eq!(*s2, CmeSystem::generate(&n2, cache, &reuse));
        let stats = engine.stats();
        assert_eq!(stats.systems_generated, 1);
        assert_eq!(stats.systems_rebased, 1);
        assert_eq!(stats.systems_reused, 1);
        assert!(stats.systems_saved() == 2);
    }

    #[test]
    fn clear_caches_resets_tables_not_counters() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let nest = matmul(6, 0, 100, 200);
        let mut analyzer = Analyzer::new(cache);
        analyzer.analyze(&nest);
        analyzer.engine().clear_caches();
        let legacy = crate::solve::analyze_nest(&nest, cache, &AnalysisOptions::default());
        assert_eq!(analyzer.analyze(&nest), legacy);
        let stats = analyzer.stats();
        assert_eq!(stats.analyses, 2);
        assert!(stats.cascades_built >= 8, "rebuilt after clear");
    }
}
