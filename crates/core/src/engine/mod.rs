//! The staged, incremental analysis engine and the [`Analyzer`] session
//! API.
//!
//! Optimizer searches (padding, tiling, fusion) score dozens to hundreds
//! of *candidate* nests that differ only in array layout — base addresses
//! and padded column sizes — while the loop structure, the subscripts, and
//! the cache stay fixed. Re-running the full miss-finding algorithm
//! (Figure 6) per candidate repeats enormous amounts of identical work.
//!
//! The engine runs every analysis through the five-stage pipeline in
//! `stages` (`lower → reuse → solve → cascade → classify`) over nests
//! interned in a [`ProgramDb`], and memoizes each stage's artifact
//! independently under the narrowest invalidation key that is still sound
//! (derived in `keys` and `docs/ENGINE.md`):
//!
//! - **lowered nests** are cached per handle — structural hashes are
//!   computed once, at intern time;
//! - **reuse vectors** are base-invariant and cached per structure;
//! - a reference's **solve set** (the cold/indeterminate refinement)
//!   depends only on the structure and the reference's own line offset
//!   `B mod Ls`, so candidates that merely move *other* arrays reuse it;
//! - each **`(reference, reuse-vector)` window scan** depends on the full
//!   layout only through per-array line offsets and exact relative line
//!   distances, so converged search sweeps and line-aligned translations
//!   skip the scans entirely;
//! - generated [`crate::equations::CmeSystem`]s are cached per structure and *rebased*
//!   (constant terms only) onto candidates with new layouts; their
//!   polytope counts go through a shared [`cme_math::SolveMemo`].
//!
//! [`Engine::analyze_batch`] analyzes many interned nests in one call:
//! every `(nest, reference)` work item and every scan shard of the whole
//! batch shares one work pool, so small nests cannot leave workers idle,
//! and all nests share the session's memo tables. Duplicate scan slots
//! across the batch (layout siblings share scan keys) are coalesced onto
//! one executor per key (see the `batch` module docs). A batch's
//! per-nest results are bit-identical to analyzing each nest on its own
//! — the single-nest path *is* a batch of one.
//!
//! Every cached artifact is an exact analysis result: an [`Analyzer`] is
//! bit-identical to the uncached reference path (session with
//! `.caching(false)`) whether its memos are warm or cold, sequential or
//! pooled (property-tested in `tests/engine_equivalence.rs`).
//!
//! Nests whose iteration space exceeds the memo size cap run through the
//! very same pipeline, just without storing the artifacts.

mod analyzer;
mod batch;
mod keys;
mod memo;
mod model;
mod persist;
mod pool;
mod stages;
mod stats;
pub mod sweep;
#[cfg(test)]
mod tests;

pub use analyzer::Analyzer;
pub use model::ModelClassification;
pub use stats::EngineStats;
pub use sweep::{SweepMetric, SweepParameter, SweepRequest, SweepResult};

use crate::governor::{AnalysisError, Budget, CancelToken, GovernedAnalysis, QueryGovernor};
use crate::solve::{AnalysisOptions, NestAnalysis, RefAnalysis};
use crate::store::ArtifactStore;
use cme_cache::{CacheConfig, CacheModel};
use cme_ir::{LoopNest, NestId, ProgramDb, RefId};
use cme_math::SolveMemo;
use cme_reuse::ReuseVector;
use stages::cascade::{scan_run_block, shard_weight, split_blocks, CascadeResult};
use stages::classify::Classification;
use stages::lower::LoweredNest;
use stages::reuse::ReusePlan;
use stages::solve::SolveSet;
use stats::Counters;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The staged incremental analysis engine: a fixed cache geometry, an
/// interned [`ProgramDb`], and per-stage memo tables that carry analysis
/// artifacts across candidate nests.
///
/// Most callers want the [`Analyzer`] wrapper, which fixes options and
/// threading as session defaults. `Engine` is the per-call-options core
/// (e.g. the diagnosis pass analyzes the same nest under two option sets).
#[derive(Debug)]
pub struct Engine {
    cache: CacheConfig,
    model: CacheModel, // L1 = `cache`; accessors in `engine/model.rs`
    caching: bool,
    max_cached_points: u64,
    db: ProgramDb,
    lower_memo: Mutex<HashMap<usize, Arc<LoweredNest>>>,
    reuse_memo: Mutex<HashMap<u128, ReusePlan>>,
    cascade_memo: Mutex<HashMap<u128, Arc<SolveSet>>>,
    scan_memo: Mutex<HashMap<u128, Arc<CascadeResult>>>,
    system_memo: Mutex<HashMap<u128, memo::SystemEntry>>,
    solve_memo: Arc<SolveMemo>,
    store: Option<Arc<ArtifactStore>>,
    counters: Counters,
    /// Test hook: worker items left before an injected panic fires
    /// (`u64::MAX` = disarmed).
    panic_countdown: AtomicU64,
}

enum ScanSlot {
    Ready(Arc<CascadeResult>),
    /// Needs scanning; `Some(key)` stores the merged outcome in the memo,
    /// `None` (nest too large to cache) scans without storing.
    Todo(Option<u128>),
}

enum Plan {
    Done(Classification),
    Cached {
        rvs: Arc<Vec<ReuseVector>>,
        solve: Arc<SolveSet>,
        scans: Vec<ScanSlot>,
    },
}

/// One nest's slice of a batch: its lowered artifact plus the derived
/// memo-key prefix.
struct NestCtx {
    lowered: Arc<LoweredNest>,
    prefix: u128,
    fits_memo: bool,
}

impl Engine {
    /// A fresh engine for one cache geometry, caching enabled.
    pub fn new(cache: CacheConfig) -> Self {
        Engine {
            cache,
            model: CacheModel::new(cache),
            caching: true,
            max_cached_points: 1 << 22,
            db: ProgramDb::new(),
            lower_memo: Mutex::new(HashMap::new()),
            reuse_memo: Mutex::new(HashMap::new()),
            cascade_memo: Mutex::new(HashMap::new()),
            scan_memo: Mutex::new(HashMap::new()),
            system_memo: Mutex::new(HashMap::new()),
            solve_memo: Arc::new(SolveMemo::new()),
            store: None,
            counters: Counters::default(),
            panic_countdown: AtomicU64::new(u64::MAX),
        }
    }

    /// Test hook: arms an injected panic that fires in the worker that
    /// claims the `after`-th pool item (counting from 0) of subsequent
    /// analyses, then disarms itself. Exists to prove the panic boundary:
    /// the poisoned query returns [`AnalysisError::WorkerPanic`] while the
    /// session stays usable.
    #[doc(hidden)]
    pub fn inject_worker_panic(&self, after: u64) {
        self.panic_countdown.store(after, Ordering::Relaxed);
    }

    /// Fires the injected test panic when armed and due (the counter wraps
    /// to `u64::MAX` on the firing decrement, disarming the hook).
    fn maybe_inject_panic(&self) {
        if self.panic_countdown.load(Ordering::Relaxed) == u64::MAX {
            return;
        }
        if self.panic_countdown.fetch_sub(1, Ordering::Relaxed) == 0 {
            panic!("injected worker panic (test hook)");
        }
    }

    /// The cache geometry this engine analyzes against.
    pub fn cache(&self) -> &CacheConfig {
        &self.cache
    }

    /// Interns a nest into the engine's program database, returning its
    /// handle. Idempotent: equal nests share a handle (and therefore every
    /// memoized artifact).
    pub fn intern(&mut self, nest: &LoopNest) -> NestId {
        self.db.intern(nest)
    }

    /// The engine's interned program database.
    pub fn db(&self) -> &ProgramDb {
        &self.db
    }

    /// Enables or disables memoization (disabled = every analysis rebuilds
    /// every stage artifact — the uncached reference path).
    pub fn set_caching(&mut self, on: bool) {
        self.caching = on;
    }

    /// Iteration-space size above which nests bypass the memos (their
    /// point sets would dominate memory). Default: 4M points.
    pub fn set_max_cached_points(&mut self, points: u64) {
        self.max_cached_points = points;
    }

    /// The shared Diophantine/polytope solve memo (for symbolic counting).
    pub fn solve_memo(&self) -> &Arc<SolveMemo> {
        &self.solve_memo
    }

    /// Interns and analyzes a nest at full budget. Panics (with the
    /// worker's message) if a pool worker panics, and on nests whose
    /// address arithmetic would overflow — use [`Engine::try_analyze`] for
    /// the error-returning, budgeted entry point.
    pub fn analyze(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
        threads: usize,
    ) -> NestAnalysis {
        let id = self.intern(nest);
        self.analyze_id(id, options, threads)
    }

    /// [`Engine::analyze`] for an already-interned nest.
    pub fn analyze_id(
        &mut self,
        id: NestId,
        options: &AnalysisOptions,
        threads: usize,
    ) -> NestAnalysis {
        match self.analyze_batch(&[id], options, threads).pop() {
            Some(analysis) => analysis,
            None => unreachable!("batch of one returns one result"),
        }
    }

    /// Analyzes a batch of interned nests at full budget, sharing one
    /// work pool and the session memo tables across the whole batch.
    /// Results are in `ids` order, each bit-identical to analyzing that
    /// nest alone. Panics like [`Engine::analyze`].
    pub fn analyze_batch(
        &mut self,
        ids: &[NestId],
        options: &AnalysisOptions,
        threads: usize,
    ) -> Vec<NestAnalysis> {
        match self.try_analyze_batch(ids, options, threads, Budget::unlimited(), None) {
            Ok(results) => results.into_iter().map(|g| g.analysis).collect(),
            Err(e) => panic!("{e}"),
        }
    }

    /// The governed entry point: interns and analyzes under `budget`,
    /// honoring `cancel`, and never panics on the governed path.
    /// Exhaustion or cancellation degrades instead of failing: unfinished
    /// iteration points are counted as misses (the paper's `ε > 0`
    /// semantics, a sound overcount) and the result is tagged
    /// [`crate::Outcome::Exhausted`].
    ///
    /// # Errors
    ///
    /// [`AnalysisError::WorkerPanic`] when a pool worker panicked (only
    /// this query is lost; the session and its memo tables stay usable)
    /// and [`AnalysisError::Overflow`] when the nest's address arithmetic
    /// cannot be performed in 64 bits.
    pub fn try_analyze(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
        threads: usize,
        budget: Budget,
        cancel: Option<&CancelToken>,
    ) -> Result<GovernedAnalysis, AnalysisError> {
        let id = self.intern(nest);
        self.try_analyze_id(id, options, threads, budget, cancel)
    }

    /// [`Engine::try_analyze`] for an already-interned nest.
    ///
    /// # Errors
    ///
    /// See [`Engine::try_analyze`].
    pub fn try_analyze_id(
        &mut self,
        id: NestId,
        options: &AnalysisOptions,
        threads: usize,
        budget: Budget,
        cancel: Option<&CancelToken>,
    ) -> Result<GovernedAnalysis, AnalysisError> {
        match self
            .try_analyze_batch(&[id], options, threads, budget, cancel)?
            .pop()
        {
            Some(governed) => Ok(governed),
            None => unreachable!("batch of one returns one result"),
        }
    }

    /// Governed batch analysis: each nest runs under its *own* fresh
    /// query governor built from `budget` (solve/point budgets are
    /// per-nest; a deadline budget shares the wall clock, so later nests
    /// see less of it), all honoring the same `cancel` token. Results are
    /// in `ids` order with per-nest [`crate::Outcome`] tags.
    ///
    /// # Errors
    ///
    /// See [`Engine::try_analyze`]; one failing nest fails the whole
    /// batch (the session stays usable).
    pub fn try_analyze_batch(
        &mut self,
        ids: &[NestId],
        options: &AnalysisOptions,
        threads: usize,
        budget: Budget,
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<GovernedAnalysis>, AnalysisError> {
        // Persistent-store consult, ahead of every pipeline stage (see
        // `engine/persist.rs`): a hit is always a complete analysis, so
        // it satisfies any budget.
        let keys = self.artifact_keys(ids, options);
        let served = self.consult_store(&keys);
        let miss_idx: Vec<usize> = served
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect();
        let miss_ids: Vec<NestId> = miss_idx.iter().map(|&i| ids[i]).collect();
        self.counters
            .analyses
            .fetch_add((ids.len() - miss_ids.len()) as u64, Ordering::Relaxed);

        let govs: Vec<QueryGovernor> = miss_ids
            .iter()
            .map(|_| QueryGovernor::new(budget, cancel.cloned()))
            .collect();
        let computed = self.analyze_governed_batch(&miss_ids, options, threads, &govs)?;
        Ok(self.merge_batch_results(served, &keys, &miss_idx, computed, &govs))
    }

    /// The batch pipeline driver: runs every nest of the batch through
    /// `lower → reuse → solve → cascade → classify`, pooling the work of
    /// all nests together at each pooled stage.
    fn analyze_governed_batch(
        &mut self,
        ids: &[NestId],
        options: &AnalysisOptions,
        threads: usize,
        govs: &[QueryGovernor],
    ) -> Result<Vec<NestAnalysis>, AnalysisError> {
        debug_assert_eq!(ids.len(), govs.len());
        self.counters
            .analyses
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        let cache = self.cache;
        let ls = cache.line_elems();

        // Stage: lower — resolve every handle to its validated artifact
        // and derive the memo-key prefix from the intern-time hash.
        let t_lower = Instant::now();
        let mut ctxs: Vec<NestCtx> = Vec::with_capacity(ids.len());
        for &id in ids {
            let lowered = self.lookup_lowered(id)?;
            let fits_memo = lowered.nest.space().count() <= self.max_cached_points;
            let prefix = if self.caching && fits_memo {
                keys::prefix_key(&cache, options, lowered.structural)
            } else {
                0
            };
            ctxs.push(NestCtx {
                lowered,
                prefix,
                fits_memo,
            });
        }
        Counters::add_time(&self.counters.lower_ns, t_lower.elapsed());

        // Every (nest, reference) of the batch is one pool item, so small
        // nests cannot leave workers idle. Item order (nest-major, then
        // reference order) is the classification order downstream.
        let mut item_of: Vec<(usize, usize)> = Vec::new();
        for (ni, ctx) in ctxs.iter().enumerate() {
            for ridx in 0..ctx.lowered.nest.references().len() {
                item_of.push((ni, ridx));
            }
        }

        let eng = &*self;
        // Stages: reuse + solve, fused per item (the memo lookups run
        // inline in the worker); scan batches become slots (memo hit or
        // todo). Their stage times are summed across workers.
        let plans: Vec<Plan> = pool::run_pool(item_of.clone(), threads, |_, (ni, ridx)| {
            eng.maybe_inject_panic();
            let ctx = &ctxs[ni];
            let nest = &*ctx.lowered.nest;
            let gov = &govs[ni];
            let id = RefId::from_index(ridx);
            if !gov.live() {
                // Budget already gone: every point of this reference is
                // indeterminate-treated-as-miss.
                return Plan::Done(stages::classify::truncated(nest, id, options, gov));
            }
            if !eng.caching {
                // True passthrough: the uncached reference implementation
                // (governed only at reference granularity).
                eng.counters.passthroughs.fetch_add(1, Ordering::Relaxed);
                let t = Instant::now();
                let plan = stages::reuse::build(&ctx.lowered, &cache, id, &options.reuse);
                Counters::add_time(&eng.counters.reuse_ns, t.elapsed());
                let t = Instant::now();
                let done = crate::solve::solve_reference(nest, cache, id, &plan.rvs, options);
                Counters::add_time(&eng.counters.solve_ns, t.elapsed());
                return Plan::Done(Classification { result: done });
            }
            if !ctx.fits_memo {
                // Too large for the memo tables: run the fast pipeline,
                // but store nothing.
                eng.counters.passthroughs.fetch_add(1, Ordering::Relaxed);
                eng.counters.reuse_built.fetch_add(1, Ordering::Relaxed);
                let t = Instant::now();
                let plan = stages::reuse::build(&ctx.lowered, &cache, id, &options.reuse);
                Counters::add_time(&eng.counters.reuse_ns, t.elapsed());
                eng.counters.cascades_built.fetch_add(1, Ordering::Relaxed);
                let t = Instant::now();
                let solve = Arc::new(stages::solve::build(
                    &ctx.lowered,
                    &cache,
                    ridx,
                    &plan.rvs,
                    options,
                    gov,
                ));
                Counters::add_time(&eng.counters.solve_ns, t.elapsed());
                let scans = solve.vectors.iter().map(|_| ScanSlot::Todo(None)).collect();
                return Plan::Cached {
                    rvs: plan.rvs,
                    solve,
                    scans,
                };
            }
            let rkey = keys::KeyHasher::from_prefix(0x4e5e, ctx.prefix)
                .feed(&ridx)
                .finish();
            let t = Instant::now();
            let plan = eng.lookup_reuse(rkey, || {
                stages::reuse::build(&ctx.lowered, &cache, id, &options.reuse)
            });
            Counters::add_time(&eng.counters.reuse_ns, t.elapsed());
            let ckey = keys::cascade_key(ctx.prefix, nest, options, ridx, ls);
            let t = Instant::now();
            let solve = eng.lookup_cascade(ckey, || {
                stages::solve::build(&ctx.lowered, &cache, ridx, &plan.rvs, options, gov)
            });
            Counters::add_time(&eng.counters.solve_ns, t.elapsed());
            let scans = (0..solve.vectors.len())
                .map(|vi| {
                    let skey = keys::scan_key(ctx.prefix, nest, options, ridx, vi, ls);
                    match eng.peek_scan(skey) {
                        Some(o) => ScanSlot::Ready(o),
                        None => ScanSlot::Todo(Some(skey)),
                    }
                })
                .collect();
            Plan::Cached {
                rvs: plan.rvs,
                solve,
                scans,
            }
        })
        .map_err(|p| eng.note_worker_panic(p))?;
        for plan in &plans {
            if let Plan::Cached { solve, .. } = plan {
                for sv in &solve.vectors {
                    eng.counters
                        .note_solved_vector(sv.examined, sv.scan_set.is_dense());
                }
            }
        }

        // Stage: cascade — pooled window scans for every scan-memo miss
        // of the whole batch. Each `(nest, reference, vector)` scan is
        // sharded into contiguous blocks of survivor runs so one dominant
        // reference cannot serialize the pool; per-block outcomes are
        // merged in block order, making the memoized result independent
        // of the sharding.
        //
        // A batch plans every nest before any scan runs, so slots that
        // would hit the memo *had the nests run sequentially* (layout
        // siblings share scan keys) all miss `peek_scan` together. They
        // are coalesced here instead: one executor per distinct key, the
        // merged outcome shared by every duplicate slot — exactly the
        // artifact a sequential loop's memo hit would have returned.
        let t_cascade = Instant::now();
        let mut todo: Vec<(usize, usize, Option<u128>)> = Vec::new(); // (item, vector, key)
        for (pi, plan) in plans.iter().enumerate() {
            if let Plan::Cached { scans, .. } = plan {
                for (vi, slot) in scans.iter().enumerate() {
                    if let ScanSlot::Todo(key) = slot {
                        todo.push((pi, vi, *key));
                    }
                }
            }
        }
        let (exec_tis, role) = batch::coalesce_scan_slots(&todo);
        let scan_round = |tis: &[usize]| -> Result<Vec<Arc<CascadeResult>>, AnalysisError> {
            let mut jobs: Vec<(usize, usize, usize)> = Vec::new(); // (round idx, run_lo, run_hi)
            for (ri, &ti) in tis.iter().enumerate() {
                let (pi, vi, _) = todo[ti];
                let Plan::Cached { rvs, solve, .. } = &plans[pi] else {
                    unreachable!("todo items only come from cached plans");
                };
                let weight = shard_weight(rvs[vi].vector());
                for (run_lo, run_hi) in split_blocks(&solve.vectors[vi].scan_set, threads, weight) {
                    jobs.push((ri, run_lo, run_hi));
                }
            }
            let (partials, shard_stats): (Vec<CascadeResult>, pool::PoolStats) =
                pool::run_pool_stats(jobs.clone(), threads, |_, (ri, run_lo, run_hi)| {
                    eng.maybe_inject_panic();
                    let (pi, vi, _) = todo[tis[ri]];
                    let (ni, ridx) = item_of[pi];
                    let Plan::Cached { rvs, solve, .. } = &plans[pi] else {
                        unreachable!("todo items only come from cached plans");
                    };
                    scan_run_block(
                        &ctxs[ni].lowered,
                        &cache,
                        ridx,
                        &rvs[vi],
                        &solve.vectors[vi].scan_set,
                        run_lo,
                        run_hi,
                        options,
                        &eng.counters,
                        &govs[ni],
                    )
                })
                .map_err(|p| eng.note_worker_panic(p))?;
            eng.counters.note_shard_stats(&shard_stats);
            let empties: Vec<CascadeResult> = tis
                .iter()
                .map(|&ti| {
                    let (pi, _, _) = todo[ti];
                    let (ni, _) = item_of[pi];
                    CascadeResult::empty(ctxs[ni].lowered.addrs.len())
                })
                .collect();
            let t_merge = Instant::now();
            let merged = batch::merge_scan_blocks(empties, jobs, partials);
            Counters::add_time(&eng.counters.scan_merge_ns, t_merge.elapsed());
            Ok(merged)
        };
        let outcomes = scan_round(&exec_tis)?;
        let mut fills: HashMap<(usize, usize), Arc<CascadeResult>> = HashMap::new();
        for (&ti, outcome) in exec_tis.iter().zip(&outcomes) {
            let (pi, vi, key) = todo[ti];
            match key {
                // Truncated scans are sound overcounts, not exact
                // artifacts: never memoize them.
                Some(key) if outcome.truncated == 0 => eng.store_scan(key, outcome.clone()),
                _ => {
                    eng.counters.scans_executed.fetch_add(1, Ordering::Relaxed);
                }
            }
            fills.insert((pi, vi), outcome.clone());
        }
        // Duplicate slots share their executor's outcome — unless that
        // outcome was truncated by the *executor's* governor. A truncated
        // scan is a degradation chargeable only to the nest whose budget
        // tripped; handing it to a sibling would degrade a nest whose own
        // governor never fired, silently. Those slots re-scan under their
        // own governors, exactly as a sequential loop would have (a
        // truncated outcome is never memoized, so the sibling's lookup
        // would have missed).
        let mut retry: Vec<usize> = Vec::new();
        for (ti, &ei) in role.iter().enumerate() {
            if exec_tis[ei] == ti {
                continue;
            }
            let (pi, vi, _) = todo[ti];
            if outcomes[ei].truncated == 0 {
                eng.counters.scans_reused.fetch_add(1, Ordering::Relaxed);
                fills.insert((pi, vi), outcomes[ei].clone());
            } else {
                retry.push(ti);
            }
        }
        if !retry.is_empty() {
            for (&ti, outcome) in retry.iter().zip(scan_round(&retry)?) {
                let (pi, vi, key) = todo[ti];
                match key {
                    Some(key) if outcome.truncated == 0 => eng.store_scan(key, outcome.clone()),
                    _ => {
                        eng.counters.scans_executed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                fills.insert((pi, vi), outcome);
            }
        }
        Counters::add_time(&self.counters.cascade_ns, t_cascade.elapsed());

        // Stage: classify — deterministic assembly, nest-major in
        // reference order (the item order).
        let t_classify = Instant::now();
        let mut per_nest: Vec<Vec<RefAnalysis>> = ctxs.iter().map(|_| Vec::new()).collect();
        for (pi, plan) in plans.into_iter().enumerate() {
            let (ni, ridx) = item_of[pi];
            let result = match plan {
                Plan::Done(c) => c.result,
                Plan::Cached { rvs, solve, scans } => {
                    let resolved: Vec<Arc<CascadeResult>> = scans
                        .into_iter()
                        .enumerate()
                        .map(|(vi, slot)| match slot {
                            ScanSlot::Ready(o) => o,
                            ScanSlot::Todo(_) => fills[&(pi, vi)].clone(),
                        })
                        .collect();
                    stages::classify::classify(
                        &ctxs[ni].lowered.nest,
                        RefId::from_index(ridx),
                        &rvs,
                        &solve,
                        &resolved,
                        options,
                    )
                    .result
                }
            };
            per_nest[ni].push(result);
        }
        let results: Vec<NestAnalysis> = ctxs
            .iter()
            .zip(per_nest)
            .map(|(ctx, per_ref)| NestAnalysis {
                nest_name: ctx.lowered.nest.name().to_string(),
                cache,
                per_ref,
            })
            .collect();
        Counters::add_time(&self.counters.classify_ns, t_classify.elapsed());
        Ok(results)
    }

    fn note_worker_panic(&self, p: pool::WorkerPanic) -> AnalysisError {
        self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
        AnalysisError::WorkerPanic { message: p.0 }
    }
}
