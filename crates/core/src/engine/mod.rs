//! The incremental analysis engine and the [`Analyzer`] session API.
//!
//! Optimizer searches (padding, tiling, fusion) score dozens to hundreds
//! of *candidate* nests that differ only in array layout — base addresses
//! and padded column sizes — while the loop structure, the subscripts, and
//! the cache stay fixed. Re-running the full miss-finding algorithm
//! (Figure 6) per candidate repeats enormous amounts of identical work.
//! This module memoizes the algorithm's two phases separately, each under
//! the narrowest invalidation key that is still sound (see
//! [`keys`] and `docs/ENGINE.md`):
//!
//! - the **cold/indeterminate cascade** per reference — which iteration
//!   points are cold-CME solutions along each reuse vector, and which need
//!   a window scan — depends only on the nest structure and the
//!   reference's own line offset `B mod Ls`, so candidates that merely
//!   move *other* arrays reuse it outright;
//! - each **`(reference, reuse-vector)` window scan** depends on the full
//!   layout only through per-array line offsets and exact relative line
//!   distances, so converged search sweeps (which re-evaluate earlier
//!   candidates) and line-aligned translations skip the scans entirely;
//! - reuse vectors are base-invariant and cached per structure;
//! - generated [`CmeSystem`]s are cached per structure and *rebased*
//!   (constant terms only) onto candidates with new layouts; their
//!   polytope counts go through a shared [`cme_math::SolveMemo`].
//!
//! Every cached artifact is an exact analysis result: an [`Analyzer`] is
//! bit-identical to the legacy sequential [`crate::analyze_nest`] whether
//! its memos are warm or cold, sequential or pooled (property-tested in
//! `tests/engine_equivalence.rs`).
//!
//! Independent of the memos, a single analysis runs the fast cascade:
//!
//! - survivor sets are run-compressed ([`RunSet`]) and the cold/scan
//!   classification splits whole innermost runs at computable
//!   line-boundary crossings instead of testing every point;
//! - window scans slide incrementally along each run
//!   ([`crate::window::SlidingWindow`]), paying O(references) per point
//!   instead of O(window);
//! - each `(reference, reuse-vector)` scan is sharded into contiguous
//!   blocks of runs dispatched through the same work pool as the
//!   per-reference items, and the per-block outcomes are merged back in
//!   block order — so the merged [`ScanOutcome`] entering the memo tables
//!   is independent of the sharding (see `docs/ENGINE.md`).
//!
//! Nests whose iteration space exceeds the memo size cap run through the
//! very same fast path, just without storing the artifacts.

mod keys;
mod pool;

use crate::equations::CmeSystem;
use crate::governor::{AnalysisError, Budget, CancelToken, GovernedAnalysis, QueryGovernor};
use crate::pointset::RunSet;
use crate::solve::{
    scan_interior, scan_interior_pointwise, AnalysisOptions, NestAnalysis, RefAnalysis, Scanner,
    VectorReport,
};
use crate::window::{Geom, SlidingWindow, WindowStats};
use cme_cache::CacheConfig;
use cme_ir::{IterationSpace, LoopNest, RefId};
use cme_math::gcd::{floor_div, gcd, modulo};
use cme_math::{Affine, Interval, SolveMemo};
use cme_reuse::{reuse_vectors, ReuseOptions, ReuseVector};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One reuse vector's slice of a reference's cascade: how many points
/// entered, how many stayed indeterminate (cold-CME solutions), and the
/// run-compressed set of points whose reuse windows must be scanned.
#[derive(Debug, Clone)]
struct CascadeVector {
    examined: u64,
    cold_solutions: u64,
    scan_set: RunSet,
}

/// A reference's full cold/indeterminate refinement (Figure 6 minus the
/// window scans), reusable across every candidate layout that preserves
/// the nest structure and the reference's own `B mod Ls`.
#[derive(Debug, Clone)]
struct CascadeEntry {
    vectors: Vec<CascadeVector>,
    /// Indeterminate set after the last processed vector; `None` when no
    /// vector ran (no reuse, or `ε` at least the whole space).
    final_set: Option<RunSet>,
    early_stopped: bool,
    /// The governor stopped the refinement early; the entry is a sound
    /// overcount and must never enter the memo tables.
    truncated: bool,
}

/// The verdicts of one `(reference, reuse-vector)` batch of window scans,
/// aligned with the cascade's `scan_set` order. Always the *merged* result
/// over every shard — block boundaries never leak into the memo tables.
#[derive(Debug, Clone)]
struct ScanOutcome {
    replacement_misses: u64,
    /// Per-perpetrator contention counts (all zero unless exact mode).
    contentions: Vec<u64>,
    /// Indices into the scan set of the points judged misses.
    miss_indices: Vec<u64>,
    /// Points the governor cut short, counted as misses (sound
    /// overcount); nonzero outcomes must never enter the memo tables.
    truncated: u64,
}

#[derive(Debug)]
struct SystemEntry {
    layout: u128,
    system: Arc<CmeSystem>,
}

#[derive(Debug, Default)]
struct Counters {
    analyses: AtomicU64,
    passthroughs: AtomicU64,
    reuse_built: AtomicU64,
    reuse_reused: AtomicU64,
    cascades_built: AtomicU64,
    cascades_reused: AtomicU64,
    scans_executed: AtomicU64,
    scans_reused: AtomicU64,
    systems_generated: AtomicU64,
    systems_rebased: AtomicU64,
    systems_reused: AtomicU64,
    scan_points: AtomicU64,
    scan_blocks: AtomicU64,
    window_steps: AtomicU64,
    window_rebuilds: AtomicU64,
    window_rebuild_rows: AtomicU64,
    peak_survivors: AtomicU64,
    truncated_points: AtomicU64,
    exhausted_analyses: AtomicU64,
    worker_panics: AtomicU64,
}

impl Counters {
    fn absorb_scan(&self, points: u64, w: WindowStats) {
        self.scan_points.fetch_add(points, Ordering::Relaxed);
        self.scan_blocks.fetch_add(1, Ordering::Relaxed);
        self.window_steps.fetch_add(w.steps, Ordering::Relaxed);
        self.window_rebuilds
            .fetch_add(w.rebuilds, Ordering::Relaxed);
        self.window_rebuild_rows
            .fetch_add(w.rebuild_rows, Ordering::Relaxed);
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Timings {
    prepare: Duration,
    scan: Duration,
    assemble: Duration,
}

/// Snapshot of an [`Engine`]'s work accounting: artifacts generated vs
/// reused, solver-memo traffic, and per-phase wall time.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Nest analyses run through the engine.
    pub analyses: u64,
    /// References analyzed uncached (caching off or nest too large).
    pub passthroughs: u64,
    /// Reuse-vector sets computed.
    pub reuse_built: u64,
    /// Reuse-vector sets answered from the memo.
    pub reuse_reused: u64,
    /// Cold/indeterminate cascades computed.
    pub cascades_built: u64,
    /// Cascades answered from the memo.
    pub cascades_reused: u64,
    /// `(reference, reuse-vector)` scan batches executed.
    pub scans_executed: u64,
    /// Scan batches answered from the memo.
    pub scans_reused: u64,
    /// [`CmeSystem`]s generated from scratch.
    pub systems_generated: u64,
    /// Cached systems re-targeted at a new layout (constant terms only).
    pub systems_rebased: u64,
    /// Cached systems returned verbatim.
    pub systems_reused: u64,
    /// Destination points whose reuse windows were scanned.
    pub scan_points: u64,
    /// Contiguous run blocks the scans were sharded into.
    pub scan_blocks: u64,
    /// Scan points reached by sliding the window incrementally.
    pub window_steps: u64,
    /// Full window rebuilds (row/prefix boundaries, shard starts).
    pub window_rebuilds: u64,
    /// Innermost rows aggregated during those rebuilds.
    pub window_rebuild_rows: u64,
    /// Largest indeterminate set entering any single reuse vector.
    pub peak_survivors: u64,
    /// Iteration points classified indeterminate-treated-as-miss because
    /// a budget or cancellation cut their refinement short.
    pub truncated_points: u64,
    /// Analyses that ended [`crate::Outcome::Exhausted`].
    pub exhausted_analyses: u64,
    /// Worker panics caught at the pool boundary (each failed one query).
    pub worker_panics: u64,
    /// Diophantine/polytope solver memo hits (shared [`SolveMemo`]).
    pub solver_hits: u64,
    /// Solver memo misses (counts actually computed).
    pub solver_misses: u64,
    /// Wall time spent generating reuse vectors and cascades.
    pub time_prepare: Duration,
    /// Wall time spent in window scans.
    pub time_scan: Duration,
    /// Wall time spent assembling results.
    pub time_assemble: Duration,
}

impl EngineStats {
    /// Fraction of memo lookups (reuse, cascade, scan) answered from
    /// cache; `0.0` when nothing was looked up.
    pub fn memo_hit_rate(&self) -> f64 {
        // Saturating: long-lived sessions (nightly fuzz runs) may drive
        // individual counters arbitrarily high, and a diagnostic ratio
        // must never panic on the sum.
        let hits = self
            .reuse_reused
            .saturating_add(self.cascades_reused)
            .saturating_add(self.scans_reused);
        let total = hits
            .saturating_add(self.reuse_built)
            .saturating_add(self.cascades_built)
            .saturating_add(self.scans_executed);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Total equation-system artifacts served without regeneration.
    pub fn systems_saved(&self) -> u64 {
        self.systems_rebased.saturating_add(self.systems_reused)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {} analyses ({} uncached references)",
            self.analyses, self.passthroughs
        )?;
        writeln!(
            f,
            "  reuse vectors: {} built, {} reused",
            self.reuse_built, self.reuse_reused
        )?;
        writeln!(
            f,
            "  cascades:      {} built, {} reused",
            self.cascades_built, self.cascades_reused
        )?;
        writeln!(
            f,
            "  window scans:  {} executed, {} reused",
            self.scans_executed, self.scans_reused
        )?;
        writeln!(
            f,
            "  scan points:   {} in {} blocks ({} stepped, {} rebuilds over {} rows)",
            self.scan_points,
            self.scan_blocks,
            self.window_steps,
            self.window_rebuilds,
            self.window_rebuild_rows
        )?;
        writeln!(f, "  peak survivors: {} points", self.peak_survivors)?;
        writeln!(
            f,
            "  degraded:      {} exhausted analyses ({} points truncated-as-miss), {} worker panics",
            self.exhausted_analyses, self.truncated_points, self.worker_panics
        )?;
        writeln!(
            f,
            "  systems:       {} generated, {} rebased, {} reused",
            self.systems_generated, self.systems_rebased, self.systems_reused
        )?;
        writeln!(
            f,
            "  solver memo:   {} hits, {} misses",
            self.solver_hits, self.solver_misses
        )?;
        writeln!(f, "  memo hit rate: {:.1}%", self.memo_hit_rate() * 100.0)?;
        write!(
            f,
            "  phases: prepare {:.1?}, scan {:.1?}, assemble {:.1?}",
            self.time_prepare, self.time_scan, self.time_assemble
        )
    }
}

/// Entry caps: when a memo reaches its cap it is cleared wholesale (the
/// values are `Arc`-shared, so in-flight users are unaffected). Crude, but
/// sized so a full optimizer search fits: a padding search visits tens of
/// candidate layouts, each contributing one scan entry per (reference ×
/// vector) and one cascade entry per distinct destination line offset —
/// the scan table is the big one (small entries: a few counters plus the
/// miss indices), the others stay tiny.
const REUSE_CAP: usize = 4096;
const CASCADE_CAP: usize = 4096;
const SCAN_CAP: usize = 1 << 17;
const SYSTEM_CAP: usize = 256;

/// The incremental analysis engine: a fixed cache geometry plus memo
/// tables that carry analysis artifacts across candidate nests.
///
/// Most callers want the [`Analyzer`] wrapper, which fixes options and
/// threading as session defaults. `Engine` is the per-call-options core
/// (e.g. the diagnosis pass analyzes the same nest under two option sets).
#[derive(Debug)]
pub struct Engine {
    cache: CacheConfig,
    caching: bool,
    max_cached_points: u64,
    reuse_memo: Mutex<HashMap<u128, Arc<Vec<ReuseVector>>>>,
    cascade_memo: Mutex<HashMap<u128, Arc<CascadeEntry>>>,
    scan_memo: Mutex<HashMap<u128, Arc<ScanOutcome>>>,
    system_memo: Mutex<HashMap<u128, SystemEntry>>,
    solve_memo: Arc<SolveMemo>,
    counters: Counters,
    timings: Mutex<Timings>,
    /// Test hook: worker items left before an injected panic fires
    /// (`u64::MAX` = disarmed).
    panic_countdown: AtomicU64,
}

/// Locks a mutex, recovering from poisoning: every value behind the
/// engine's locks is either an `Arc`-shared immutable snapshot or a plain
/// accumulator written in one statement, so a panic elsewhere cannot leave
/// it half-updated — recovering keeps the *session* usable after a worker
/// panic fails one query.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

enum ScanSlot {
    Ready(Arc<ScanOutcome>),
    /// Needs scanning; `Some(key)` stores the merged outcome in the memo,
    /// `None` (nest too large to cache) scans without storing.
    Todo(Option<u128>),
}

enum Plan {
    Done(RefAnalysis),
    Cached {
        rvs: Arc<Vec<ReuseVector>>,
        cascade: Arc<CascadeEntry>,
        scans: Vec<ScanSlot>,
    },
}

impl Engine {
    /// A fresh engine for one cache geometry, caching enabled.
    pub fn new(cache: CacheConfig) -> Self {
        Engine {
            cache,
            caching: true,
            max_cached_points: 1 << 22,
            reuse_memo: Mutex::new(HashMap::new()),
            cascade_memo: Mutex::new(HashMap::new()),
            scan_memo: Mutex::new(HashMap::new()),
            system_memo: Mutex::new(HashMap::new()),
            solve_memo: Arc::new(SolveMemo::new()),
            counters: Counters::default(),
            timings: Mutex::new(Timings::default()),
            panic_countdown: AtomicU64::new(u64::MAX),
        }
    }

    /// Test hook: arms an injected panic that fires in the worker that
    /// claims the `after`-th pool item (counting from 0) of subsequent
    /// analyses, then disarms itself. Exists to prove the panic boundary:
    /// the poisoned query returns [`AnalysisError::WorkerPanic`] while the
    /// session stays usable.
    #[doc(hidden)]
    pub fn inject_worker_panic(&self, after: u64) {
        self.panic_countdown.store(after, Ordering::Relaxed);
    }

    /// Fires the injected test panic when armed and due (the counter wraps
    /// to `u64::MAX` on the firing decrement, disarming the hook).
    fn maybe_inject_panic(&self) {
        if self.panic_countdown.load(Ordering::Relaxed) == u64::MAX {
            return;
        }
        if self.panic_countdown.fetch_sub(1, Ordering::Relaxed) == 0 {
            panic!("injected worker panic (test hook)");
        }
    }

    /// The cache geometry this engine analyzes against.
    pub fn cache(&self) -> &CacheConfig {
        &self.cache
    }

    /// Enables or disables memoization (disabled = every analysis is a
    /// passthrough to the uncached algorithm).
    pub fn set_caching(&mut self, on: bool) {
        self.caching = on;
    }

    /// Iteration-space size above which nests bypass the memos (their
    /// point sets would dominate memory). Default: 4M points.
    pub fn set_max_cached_points(&mut self, points: u64) {
        self.max_cached_points = points;
    }

    /// The shared Diophantine/polytope solve memo (for symbolic counting).
    pub fn solve_memo(&self) -> &Arc<SolveMemo> {
        &self.solve_memo
    }

    /// Drops every cached artifact. Counters keep accumulating.
    pub fn clear_caches(&self) {
        relock(&self.reuse_memo).clear();
        relock(&self.cascade_memo).clear();
        relock(&self.scan_memo).clear();
        relock(&self.system_memo).clear();
        self.solve_memo.clear();
    }

    /// Snapshot of the engine's accounting.
    pub fn stats(&self) -> EngineStats {
        let c = &self.counters;
        let t = *relock(&self.timings);
        EngineStats {
            analyses: c.analyses.load(Ordering::Relaxed),
            passthroughs: c.passthroughs.load(Ordering::Relaxed),
            reuse_built: c.reuse_built.load(Ordering::Relaxed),
            reuse_reused: c.reuse_reused.load(Ordering::Relaxed),
            cascades_built: c.cascades_built.load(Ordering::Relaxed),
            cascades_reused: c.cascades_reused.load(Ordering::Relaxed),
            scans_executed: c.scans_executed.load(Ordering::Relaxed),
            scans_reused: c.scans_reused.load(Ordering::Relaxed),
            systems_generated: c.systems_generated.load(Ordering::Relaxed),
            systems_rebased: c.systems_rebased.load(Ordering::Relaxed),
            systems_reused: c.systems_reused.load(Ordering::Relaxed),
            scan_points: c.scan_points.load(Ordering::Relaxed),
            scan_blocks: c.scan_blocks.load(Ordering::Relaxed),
            window_steps: c.window_steps.load(Ordering::Relaxed),
            window_rebuilds: c.window_rebuilds.load(Ordering::Relaxed),
            window_rebuild_rows: c.window_rebuild_rows.load(Ordering::Relaxed),
            peak_survivors: c.peak_survivors.load(Ordering::Relaxed),
            truncated_points: c.truncated_points.load(Ordering::Relaxed),
            exhausted_analyses: c.exhausted_analyses.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            solver_hits: self.solve_memo.hits(),
            solver_misses: self.solve_memo.misses(),
            time_prepare: t.prepare,
            time_scan: t.scan,
            time_assemble: t.assemble,
        }
    }

    /// Analyzes a nest, reusing every memoized artifact the candidate's
    /// invalidation keys admit. Bit-identical to [`crate::analyze_nest`].
    ///
    /// `threads` sizes the work pool over `(reference × reuse-vector)`
    /// items; `<= 1` runs inline on the caller's thread.
    ///
    /// Runs at full budget. Panics (with the worker's message) if a pool
    /// worker panics, and on nests whose address arithmetic would overflow
    /// — use [`Engine::try_analyze`] for the error-returning, budgeted
    /// entry point.
    pub fn analyze(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
        threads: usize,
    ) -> NestAnalysis {
        let gov = QueryGovernor::new(Budget::unlimited(), None);
        match self.analyze_governed(nest, options, threads, &gov) {
            Ok(analysis) => analysis,
            Err(e) => panic!("{e}"),
        }
    }

    /// The governed entry point: analyzes under `budget`, honoring
    /// `cancel`, and never panics on the governed path. Exhaustion or
    /// cancellation degrades instead of failing: unfinished iteration
    /// points are counted as misses (the paper's `ε > 0` semantics, a
    /// sound overcount) and the result is tagged
    /// [`crate::Outcome::Exhausted`].
    ///
    /// # Errors
    ///
    /// [`AnalysisError::WorkerPanic`] when a pool worker panicked (only
    /// this query is lost; the session and its memo tables stay usable)
    /// and [`AnalysisError::Overflow`] when the nest's address arithmetic
    /// cannot be performed in 64 bits.
    pub fn try_analyze(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
        threads: usize,
        budget: Budget,
        cancel: Option<&CancelToken>,
    ) -> Result<GovernedAnalysis, AnalysisError> {
        let gov = QueryGovernor::new(budget, cancel.cloned());
        let analysis = self.analyze_governed(nest, options, threads, &gov)?;
        let outcome = gov.outcome();
        if outcome.is_exhausted() {
            self.counters
                .exhausted_analyses
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .truncated_points
                .fetch_add(gov.truncated_points(), Ordering::Relaxed);
        }
        Ok(GovernedAnalysis { analysis, outcome })
    }

    fn analyze_governed(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
        threads: usize,
        gov: &QueryGovernor,
    ) -> Result<NestAnalysis, AnalysisError> {
        self.counters.analyses.fetch_add(1, Ordering::Relaxed);
        let cache = self.cache;
        let nrefs = nest.references().len();
        let addrs: Vec<Affine> = nest
            .references()
            .iter()
            .map(|r| nest.address_affine(r.id()))
            .collect();
        // One up-front pass bounds every address and the space size, so
        // the unchecked arithmetic in the hot loops below cannot overflow.
        crate::governor::validate_address_math(nest, &addrs)?;
        let fits_memo = nest.space().count() <= self.max_cached_points;
        let use_cache = self.caching && fits_memo;
        let prefix = if use_cache {
            keys::prefix_key(&cache, options, nest)
        } else {
            0
        };
        let ls = cache.line_elems();
        let eng = &*self;

        // Phase 1 — per reference: reuse vectors, then the cascade (memo
        // or fresh); scan batches become slots (memo hit or todo).
        let t0 = Instant::now();
        let plans: Vec<Plan> = pool::run_pool((0..nrefs).collect(), threads, |_, ridx| {
            eng.maybe_inject_panic();
            let id = RefId::from_index(ridx);
            if !gov.live() {
                // Budget already gone: every point of this reference is
                // indeterminate-treated-as-miss.
                return Plan::Done(truncated_ref_analysis(nest, id, options, gov));
            }
            if !eng.caching {
                // True passthrough: the uncached reference implementation
                // (governed only at reference granularity).
                eng.counters.passthroughs.fetch_add(1, Ordering::Relaxed);
                let rvs = reuse_vectors(nest, &cache, id, &options.reuse);
                #[allow(deprecated)]
                return Plan::Done(crate::solve::analyze_reference(
                    nest, cache, id, &rvs, options,
                ));
            }
            if !fits_memo {
                // Too large for the memo tables: run the fast cascade and
                // sharded scans, but store nothing.
                eng.counters.passthroughs.fetch_add(1, Ordering::Relaxed);
                eng.counters.reuse_built.fetch_add(1, Ordering::Relaxed);
                let rvs = Arc::new(reuse_vectors(nest, &cache, id, &options.reuse));
                eng.counters.cascades_built.fetch_add(1, Ordering::Relaxed);
                let cascade = Arc::new(build_cascade(
                    nest, &cache, &addrs, ridx, &rvs, options, gov,
                ));
                let scans = cascade
                    .vectors
                    .iter()
                    .map(|_| ScanSlot::Todo(None))
                    .collect();
                return Plan::Cached {
                    rvs,
                    cascade,
                    scans,
                };
            }
            let rkey = keys::KeyHasher::from_prefix(0x4e5e, prefix)
                .feed(&ridx)
                .finish();
            let rvs = eng.lookup_reuse(rkey, || reuse_vectors(nest, &cache, id, &options.reuse));
            let ckey = keys::cascade_key(prefix, nest, options, ridx, ls);
            let cascade = eng.lookup_cascade(ckey, || {
                build_cascade(nest, &cache, &addrs, ridx, &rvs, options, gov)
            });
            let scans = (0..cascade.vectors.len())
                .map(|vi| {
                    let skey = keys::scan_key(prefix, nest, options, ridx, vi, ls);
                    match eng.peek_scan(skey) {
                        Some(o) => ScanSlot::Ready(o),
                        None => ScanSlot::Todo(Some(skey)),
                    }
                })
                .collect();
            Plan::Cached {
                rvs,
                cascade,
                scans,
            }
        })
        .map_err(|p| eng.note_worker_panic(p))?;
        for plan in &plans {
            if let Plan::Cached { cascade, .. } = plan {
                for cv in &cascade.vectors {
                    eng.counters
                        .peak_survivors
                        .fetch_max(cv.examined, Ordering::Relaxed);
                }
            }
        }
        let prepare_elapsed = t0.elapsed();

        // Phase 2 — pooled window scans for every scan-memo miss. Each
        // `(reference, vector)` scan is sharded into contiguous blocks of
        // survivor runs so one dominant reference cannot serialize the
        // pool; per-block outcomes are merged in block order, making the
        // memoized result independent of the sharding.
        let t1 = Instant::now();
        let mut todo: Vec<(usize, usize, Option<u128>)> = Vec::new();
        for (ridx, plan) in plans.iter().enumerate() {
            if let Plan::Cached { scans, .. } = plan {
                for (vi, slot) in scans.iter().enumerate() {
                    if let ScanSlot::Todo(key) = slot {
                        todo.push((ridx, vi, *key));
                    }
                }
            }
        }
        let mut jobs: Vec<(usize, usize, usize)> = Vec::new(); // (todo idx, run_lo, run_hi)
        for (ti, &(ridx, vi, _)) in todo.iter().enumerate() {
            let Plan::Cached { cascade, .. } = &plans[ridx] else {
                unreachable!("todo items only come from cached plans");
            };
            for (run_lo, run_hi) in split_blocks(&cascade.vectors[vi].scan_set, threads) {
                jobs.push((ti, run_lo, run_hi));
            }
        }
        let partials: Vec<ScanOutcome> =
            pool::run_pool(jobs.clone(), threads, |_, (ti, run_lo, run_hi)| {
                eng.maybe_inject_panic();
                let (ridx, vi, _) = todo[ti];
                let Plan::Cached { rvs, cascade, .. } = &plans[ridx] else {
                    unreachable!("todo items only come from cached plans");
                };
                scan_run_block(
                    nest,
                    &cache,
                    &addrs,
                    ridx,
                    &rvs[vi],
                    &cascade.vectors[vi].scan_set,
                    run_lo,
                    run_hi,
                    options,
                    &eng.counters,
                    gov,
                )
            })
            .map_err(|p| eng.note_worker_panic(p))?;
        let mut merged: Vec<ScanOutcome> = todo
            .iter()
            .map(|_| ScanOutcome {
                replacement_misses: 0,
                contentions: vec![0; nrefs],
                miss_indices: Vec::new(),
                truncated: 0,
            })
            .collect();
        for ((ti, _, _), part) in jobs.into_iter().zip(partials) {
            let m = &mut merged[ti];
            m.replacement_misses += part.replacement_misses;
            for (acc, c) in m.contentions.iter_mut().zip(&part.contentions) {
                *acc += c;
            }
            // Blocks cover run ranges in order, so global indices stay
            // sorted under concatenation.
            m.miss_indices.extend_from_slice(&part.miss_indices);
            m.truncated += part.truncated;
        }
        let outcomes: Vec<Arc<ScanOutcome>> = todo
            .iter()
            .zip(merged)
            .map(|(&(_, _, key), outcome)| {
                let outcome = Arc::new(outcome);
                match key {
                    // Truncated scans are sound overcounts, not exact
                    // artifacts: never memoize them.
                    Some(key) if outcome.truncated == 0 => eng.store_scan(key, outcome.clone()),
                    _ => {
                        eng.counters.scans_executed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                outcome
            })
            .collect();
        let scan_elapsed = t1.elapsed();

        // Phase 3 — deterministic assembly in reference order.
        let t2 = Instant::now();
        let mut fills: HashMap<(usize, usize), Arc<ScanOutcome>> = HashMap::new();
        for ((ridx, vi, _), outcome) in todo.into_iter().zip(outcomes) {
            fills.insert((ridx, vi), outcome);
        }
        let per_ref: Vec<RefAnalysis> = plans
            .into_iter()
            .enumerate()
            .map(|(ridx, plan)| match plan {
                Plan::Done(r) => r,
                Plan::Cached {
                    rvs,
                    cascade,
                    scans,
                } => {
                    let resolved: Vec<Arc<ScanOutcome>> = scans
                        .into_iter()
                        .enumerate()
                        .map(|(vi, slot)| match slot {
                            ScanSlot::Ready(o) => o,
                            ScanSlot::Todo(_) => fills[&(ridx, vi)].clone(),
                        })
                        .collect();
                    assemble(
                        nest,
                        RefId::from_index(ridx),
                        &rvs,
                        &cascade,
                        &resolved,
                        options,
                    )
                }
            })
            .collect();
        let assemble_elapsed = t2.elapsed();
        {
            let mut t = relock(&self.timings);
            t.prepare += prepare_elapsed;
            t.scan += scan_elapsed;
            t.assemble += assemble_elapsed;
        }
        Ok(NestAnalysis {
            nest_name: nest.name().to_string(),
            cache,
            per_ref,
        })
    }

    fn note_worker_panic(&self, p: pool::WorkerPanic) -> AnalysisError {
        self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
        AnalysisError::WorkerPanic { message: p.0 }
    }

    /// The symbolic CME system for a nest: generated once per structure,
    /// *rebased* (address constants only) when only the layout moved, and
    /// returned verbatim when nothing changed.
    pub fn system(&mut self, nest: &LoopNest, reuse: &ReuseOptions) -> Arc<CmeSystem> {
        let key = keys::system_key(&self.cache, reuse, nest);
        let layout = keys::layout_hash(nest);
        {
            let mut map = relock(&self.system_memo);
            if let Some(entry) = map.get_mut(&key) {
                if entry.layout == layout {
                    self.counters.systems_reused.fetch_add(1, Ordering::Relaxed);
                    return entry.system.clone();
                }
                let rebased = Arc::new(entry.system.rebase_to(nest));
                entry.layout = layout;
                entry.system = rebased.clone();
                self.counters
                    .systems_rebased
                    .fetch_add(1, Ordering::Relaxed);
                return rebased;
            }
        }
        let system = Arc::new(CmeSystem::generate(nest, self.cache, reuse));
        self.counters
            .systems_generated
            .fetch_add(1, Ordering::Relaxed);
        let mut map = relock(&self.system_memo);
        if map.len() >= SYSTEM_CAP {
            map.clear();
        }
        map.insert(
            key,
            SystemEntry {
                layout,
                system: system.clone(),
            },
        );
        system
    }

    /// Counts a replacement equation's solutions through the shared solve
    /// memo (see
    /// [`crate::equations::ReplacementEquation::count_solutions_memo`]).
    pub fn count_replacement(
        &self,
        eq: &crate::equations::ReplacementEquation,
        nest: &LoopNest,
    ) -> u64 {
        eq.count_solutions_memo(nest, &self.cache, Some(&self.solve_memo))
    }

    fn lookup_reuse(
        &self,
        key: u128,
        build: impl FnOnce() -> Vec<ReuseVector>,
    ) -> Arc<Vec<ReuseVector>> {
        if let Some(v) = relock(&self.reuse_memo).get(&key) {
            self.counters.reuse_reused.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        let v = Arc::new(build());
        self.counters.reuse_built.fetch_add(1, Ordering::Relaxed);
        let mut map = relock(&self.reuse_memo);
        if map.len() >= REUSE_CAP {
            map.clear();
        }
        map.insert(key, v.clone());
        v
    }

    fn lookup_cascade(&self, key: u128, build: impl FnOnce() -> CascadeEntry) -> Arc<CascadeEntry> {
        if let Some(c) = relock(&self.cascade_memo).get(&key) {
            self.counters
                .cascades_reused
                .fetch_add(1, Ordering::Relaxed);
            return c.clone();
        }
        let c = Arc::new(build());
        self.counters.cascades_built.fetch_add(1, Ordering::Relaxed);
        if c.truncated {
            // A truncated cascade is a sound overcount for *this* query
            // only; memoizing it would degrade future full-budget runs.
            return c;
        }
        let mut map = relock(&self.cascade_memo);
        if map.len() >= CASCADE_CAP {
            map.clear();
        }
        map.insert(key, c.clone());
        c
    }

    fn peek_scan(&self, key: u128) -> Option<Arc<ScanOutcome>> {
        let hit = relock(&self.scan_memo).get(&key).cloned();
        if hit.is_some() {
            self.counters.scans_reused.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn store_scan(&self, key: u128, outcome: Arc<ScanOutcome>) {
        self.counters.scans_executed.fetch_add(1, Ordering::Relaxed);
        let mut map = relock(&self.scan_memo);
        if map.len() >= SCAN_CAP {
            map.clear();
        }
        map.insert(key, outcome);
    }
}

/// The fully degraded per-reference result: the budget died before any
/// refinement, so every iteration point is indeterminate-treated-as-miss
/// (all cold, zero vectors) — the shape [`assemble`] produces for a
/// cascade with no processed vectors.
fn truncated_ref_analysis(
    nest: &LoopNest,
    dest: RefId,
    options: &AnalysisOptions,
    gov: &QueryGovernor,
) -> RefAnalysis {
    let count = nest.space().count();
    gov.note_truncated(count);
    let cold_points = if options.collect_miss_points {
        let mut pts = Vec::new();
        let mut sp = nest.space();
        while let Some(q) = sp.next_point() {
            pts.push(q);
        }
        pts
    } else {
        Vec::new()
    };
    RefAnalysis {
        dest,
        label: nest.reference(dest).label().to_string(),
        vectors: Vec::new(),
        cold_misses: count,
        replacement_misses: 0,
        early_stopped: true,
        replacement_miss_points: Vec::new(),
        cold_miss_points: cold_points,
    }
}

/// First innermost index `t' > t` at which `⌊(base + stride·t')/Ls⌋`
/// differs from `cur_line`, or `i64::MAX` when the line never changes.
fn next_line_crossing(base: i64, stride: i64, t: i64, cur_line: i64, ls: i64) -> i64 {
    match stride.cmp(&0) {
        std::cmp::Ordering::Equal => i64::MAX,
        // Increasing: first t' with base + stride·t' ≥ (cur+1)·Ls.
        std::cmp::Ordering::Greater => crate::window::ceil_div((cur_line + 1) * ls - base, stride),
        // Decreasing: first t' with base + stride·t' ≤ cur·Ls − 1.
        std::cmp::Ordering::Less => crate::window::ceil_div(base + 1 - cur_line * ls, -stride),
    }
    .max(t + 1)
}

/// Splits the cold/scan verdict of one survivor run into maximal
/// constant-verdict segments: along a run the destination and source lines
/// are floors of affine functions of the innermost index, so the verdict
/// can only flip at computable line-boundary crossings, and the membership
/// of the source point `p⃗` is a single interval of the innermost index.
struct RunClassifier<'a> {
    space: IterationSpace<'a>,
    ls: i64,
    dest_addr: &'a Affine,
    src_addr: &'a Affine,
    r: &'a [i64],
    r_in: i64,
    intra: bool,
    buf: Vec<i64>,
    p_prefix: Vec<i64>,
    next: RunSet,
    scan: RunSet,
    cold: u64,
}

impl RunClassifier<'_> {
    fn classify(&mut self, prefix: &[i64], lo: i64, hi: i64) {
        let inner = self.buf.len() - 1;
        self.buf[..inner].copy_from_slice(prefix);
        self.buf[inner] = 0;
        let d0 = self.dest_addr.eval(&self.buf);
        let sd = self.dest_addr.coeff(inner);
        for (l, p) in prefix.iter().enumerate().take(inner) {
            self.p_prefix[l] = p - self.r[l];
        }
        // Innermost interval where the source p⃗ = i⃗ − r⃗ is in the space
        // (intra-iteration reuse skips the membership test, matching the
        // reference implementation).
        let (a, b) = if self.intra {
            (lo, hi)
        } else {
            let inb = if self.space.contains_prefix(&self.p_prefix) {
                self.space.innermost_bounds(&self.p_prefix)
            } else {
                None
            };
            let live = inb.and_then(|(plo, phi)| {
                let a = (plo + self.r_in).max(lo);
                let b = (phi + self.r_in).min(hi);
                (a <= b).then_some((a, b))
            });
            match live {
                None => {
                    // Source out of space for the whole run: all cold.
                    self.cold += (hi - lo + 1) as u64;
                    self.next.push_run(prefix, lo, hi);
                    return;
                }
                Some((a, b)) => {
                    if lo < a {
                        self.cold += (a - lo) as u64;
                        self.next.push_run(prefix, lo, a - 1);
                    }
                    (a, b)
                }
            }
        };
        // Source line along the run: src(t) = src_addr(p_prefix, t − r_in).
        self.buf[..inner].copy_from_slice(&self.p_prefix);
        self.buf[inner] = 0;
        let ss = self.src_addr.coeff(inner);
        let s0 = self.src_addr.eval(&self.buf) - ss * self.r_in;
        let mut t = a;
        while t <= b {
            let ld = floor_div(d0 + sd * t, self.ls);
            let lsrc = floor_div(s0 + ss * t, self.ls);
            let seg_end = next_line_crossing(d0, sd, t, ld, self.ls)
                .min(next_line_crossing(s0, ss, t, lsrc, self.ls))
                .min(b + 1);
            if lsrc != ld {
                self.cold += (seg_end - t) as u64;
                self.next.push_run(prefix, t, seg_end - 1);
            } else {
                self.scan.push_run(prefix, t, seg_end - 1);
            }
            t = seg_end;
        }
        if b < hi {
            self.cold += (hi - b) as u64;
            self.next.push_run(prefix, b + 1, hi);
        }
    }
}

/// Constant destination–source address gap along reuse vector `r⃗`:
/// `dest(i⃗) − src(i⃗ − r⃗)` is independent of `i⃗` exactly when the two
/// references share coefficients, and then equals `Δc + Σ_l coeff_l·r_l`.
fn const_delta(dest: &Affine, src: &Affine, r: &[i64]) -> Option<i64> {
    (dest.coeffs() == src.coeffs())
        .then(|| dest.constant_term() - src.constant_term() + src.delta_along(r))
}

/// Facts about one survivor set that certify reuse vectors all-cold in
/// O(1), computed lazily and valid only while the set is unchanged (an
/// all-cold vector leaves it unchanged, so certified vectors keep the
/// certificates of the set they were certified against).
#[derive(Default)]
struct ColdCerts {
    /// `max(hi − plo(prefix))` over the runs: a purely-innermost reuse
    /// distance beyond this puts every source point below its row.
    reach: Option<i64>,
    /// Range of `dest_addr mod Ls` over the set's points.
    mod_range: Option<(i64, i64)>,
    /// Per-dimension coordinate range over the set's points.
    coord_ranges: Option<Vec<(i64, i64)>>,
}

impl ColdCerts {
    /// True when some dimension pushes every source point `i⃗ − r⃗` outside
    /// the space's bounding box — out of the space for certain, so every
    /// point of `set` is cold.
    fn source_outside(&mut self, r: &[i64], bbox: &[Interval], set: &RunSet) -> bool {
        let ranges = self
            .coord_ranges
            .get_or_insert_with(|| coord_ranges(set, r.len()));
        ranges
            .iter()
            .zip(bbox)
            .zip(r)
            .any(|((&(mn, mx), iv), &rd)| mx - rd < iv.lo || mn - rd > iv.hi)
    }

    /// True when every point of `set` is certainly cold for a vector whose
    /// destination–source address gap is the constant `delta`.
    #[allow(clippy::too_many_arguments)]
    fn all_cold(
        &mut self,
        delta: i64,
        intra: bool,
        r: &[i64],
        ls: i64,
        space: &IterationSpace,
        dest_addr: &Affine,
        set: &RunSet,
    ) -> bool {
        if delta == 0 {
            // Source and destination share a line at every point; cold only
            // if the source falls out of the space everywhere, decidable
            // when the vector is purely innermost (row membership becomes
            // `t − r_in ≥ plo`).
            let inner = r.len() - 1;
            if intra || r[inner] <= 0 || r[..inner].iter().any(|&x| x != 0) {
                return false;
            }
            let reach = *self.reach.get_or_insert_with(|| compute_reach(space, set));
            r[inner] > reach
        } else if delta.abs() >= ls {
            // Addresses `a` and `a − δ` can share a `Ls`-aligned line only
            // when `|δ| < Ls`.
            true
        } else {
            // Same line ⟺ `a mod Ls ≥ δ` (δ > 0) resp. `< Ls + δ` (δ < 0):
            // cold everywhere when the residue range stays clear of that.
            let (mn, mx) = *self
                .mod_range
                .get_or_insert_with(|| compute_mod_range(dest_addr, set, ls));
            if delta > 0 {
                mx < delta
            } else {
                mn >= ls + delta
            }
        }
    }
}

/// Min/max of every coordinate over the points of `set`.
fn coord_ranges(set: &RunSet, depth: usize) -> Vec<(i64, i64)> {
    let inner = depth - 1;
    let mut ranges = vec![(i64::MAX, i64::MIN); depth];
    for ri in 0..set.run_count() {
        let run = set.run(ri);
        for (range, &x) in ranges[..inner].iter_mut().zip(run.prefix) {
            range.0 = range.0.min(x);
            range.1 = range.1.max(x);
        }
        ranges[inner].0 = ranges[inner].0.min(run.lo);
        ranges[inner].1 = ranges[inner].1.max(run.hi);
    }
    ranges
}

/// `max(hi − plo(prefix))` over the runs of `set`, or `i64::MAX` (no
/// certificate) when a row's bounds are unavailable.
fn compute_reach(space: &IterationSpace, set: &RunSet) -> i64 {
    let mut reach = i64::MIN;
    for ri in 0..set.run_count() {
        let run = set.run(ri);
        match space.innermost_bounds(run.prefix) {
            Some((plo, _)) => reach = reach.max(run.hi - plo),
            None => return i64::MAX,
        }
    }
    reach
}

/// Min/max of `addr mod Ls` over the points of `set`, walking at most one
/// residue period per run.
fn compute_mod_range(addr: &Affine, set: &RunSet, ls: i64) -> (i64, i64) {
    let inner = addr.nvars() - 1;
    let step = modulo(addr.coeff(inner), ls);
    let period = if step == 0 { 1 } else { ls / gcd(step, ls) };
    let mut buf = vec![0i64; addr.nvars()];
    let (mut mn, mut mx) = (i64::MAX, i64::MIN);
    for ri in 0..set.run_count() {
        let run = set.run(ri);
        buf[..inner].copy_from_slice(run.prefix);
        buf[inner] = run.lo;
        let mut m = modulo(addr.eval(&buf), ls);
        for _ in 0..(run.hi - run.lo + 1).min(period) {
            mn = mn.min(m);
            mx = mx.max(m);
            m += step;
            if m >= ls {
                m -= ls;
            }
        }
        if mn == 0 && mx == ls - 1 {
            break; // saturated: no tighter range possible
        }
    }
    (mn, mx)
}

/// Runs the cold/indeterminate refinement for one reference — the
/// classification half of Figure 6, with the points needing window scans
/// recorded per vector instead of scanned inline. Survivor sets are
/// run-compressed and classified segment-wise, never point by point, and
/// vectors with a constant address gap are certified all-cold in O(1)
/// without touching the survivor runs at all.
#[allow(clippy::too_many_arguments)]
fn build_cascade(
    nest: &LoopNest,
    cache: &CacheConfig,
    addrs: &[Affine],
    dest_idx: usize,
    rvs: &[ReuseVector],
    options: &AnalysisOptions,
    gov: &QueryGovernor,
) -> CascadeEntry {
    let depth = nest.depth();
    let inner = depth - 1;
    let space = nest.space();
    let dest_addr = &addrs[dest_idx];
    let mut c: Option<RunSet> = None;
    let mut vectors = Vec::new();
    let mut early_stopped = false;
    let mut truncated = false;
    let mut certs = ColdCerts::default();
    let bbox = space.bounding_box();
    for rv in rvs {
        let examined = match &c {
            Some(set) => set.len(),
            None => space.count(),
        };
        if examined <= options.epsilon {
            early_stopped = c.is_some() && examined > 0;
            break;
        }
        // Governor checkpoint (after the ε check, so full-budget runs take
        // the exact same branches): a dead budget or an over-ceiling
        // survivor set stops the cascade here; the current survivors stay
        // the final set and count as misses — the same sound-overcount
        // shape as ε early stopping.
        if !gov.admit_points(examined) || !gov.live() {
            truncated = true;
            gov.note_truncated(examined);
            break;
        }
        let r = rv.vector();
        if let Some(set) = &c {
            let certified = (!rv.is_intra_iteration() && certs.source_outside(r, &bbox, set))
                || const_delta(dest_addr, &addrs[rv.source().index()], r).is_some_and(|delta| {
                    certs.all_cold(
                        delta,
                        rv.is_intra_iteration(),
                        r,
                        cache.line_elems(),
                        &space,
                        dest_addr,
                        set,
                    )
                });
            if certified {
                // Every survivor misses cold: the set is untouched, so the
                // certificates stay valid for the next vector too.
                vectors.push(CascadeVector {
                    examined,
                    cold_solutions: examined,
                    scan_set: RunSet::new(depth),
                });
                continue;
            }
        }
        let mut cls = RunClassifier {
            space: nest.space(),
            ls: cache.line_elems(),
            dest_addr,
            src_addr: &addrs[rv.source().index()],
            r,
            r_in: r[inner],
            intra: rv.is_intra_iteration(),
            buf: vec![0i64; depth],
            p_prefix: vec![0i64; inner],
            next: RunSet::new(depth),
            scan: RunSet::new(depth),
            cold: 0,
        };
        // Mid-vector checkpoints every 64 rows/runs: an abandoned walk
        // discards its partial classification (the previous survivor set
        // stays the final one, every point of it a miss — sound).
        let mut abandoned = false;
        match &c {
            None => {
                // Whole space, one row at a time.
                let mut rows = 0u64;
                let mut pfx = space.first().map(|f| f[..inner].to_vec());
                while let Some(pr) = pfx {
                    if rows & 63 == 0 && !gov.live() {
                        abandoned = true;
                        break;
                    }
                    rows += 1;
                    if let Some((lo, hi)) = space.innermost_bounds(&pr) {
                        cls.classify(&pr, lo, hi);
                    }
                    pfx = space.prefix_successor(&pr);
                }
            }
            Some(set) => {
                for ri in 0..set.run_count() {
                    if ri & 63 == 0 && !gov.live() {
                        abandoned = true;
                        break;
                    }
                    let run = set.run(ri);
                    cls.classify(run.prefix, run.lo, run.hi);
                }
            }
        }
        if abandoned {
            truncated = true;
            gov.note_truncated(examined);
            break;
        }
        gov.charge(examined);
        // An all-cold walk reproduces the set run for run; anything else
        // changed it and voids the memoized certificates.
        if cls.cold != examined {
            certs = ColdCerts::default();
        }
        vectors.push(CascadeVector {
            examined,
            cold_solutions: cls.cold,
            scan_set: cls.scan,
        });
        c = Some(cls.next);
    }
    CascadeEntry {
        vectors,
        final_set: c,
        early_stopped,
        truncated,
    }
}

/// Minimum points per scan block: below this the dispatch overhead beats
/// the parallelism.
const MIN_BLOCK_POINTS: u64 = 4096;

/// Shards a scan set into contiguous blocks of whole runs, sized so every
/// worker gets a few blocks. A single oversized run still forms one block
/// (runs are the sharding granularity).
fn split_blocks(set: &RunSet, threads: usize) -> Vec<(usize, usize)> {
    let nruns = set.run_count();
    if nruns == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return vec![(0, nruns)];
    }
    let target = (set.len() / (threads as u64 * 4)).max(MIN_BLOCK_POINTS);
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for ri in 0..nruns {
        acc += set.run(ri).len();
        if acc >= target {
            blocks.push((start, ri + 1));
            start = ri + 1;
            acc = 0;
        }
    }
    if start < nruns {
        blocks.push((start, nruns));
    }
    blocks
}

/// Scans the reuse windows of the survivors in runs `run_lo..run_hi` of
/// `points` along `rv` — the verdict half of Figure 6, with miss indices
/// reported in the scan set's global order so per-block outcomes
/// concatenate into the unsharded result.
///
/// The default mode slides a [`SlidingWindow`] along each run; exact-count
/// and pointwise modes fall back to the per-point [`Scanner`] (their
/// verdicts need per-perpetrator detail the window multiset does not
/// keep), which still shards fine — contentions are per-point sums.
#[allow(clippy::too_many_arguments)]
fn scan_run_block(
    nest: &LoopNest,
    cache: &CacheConfig,
    addrs: &[Affine],
    dest_idx: usize,
    rv: &ReuseVector,
    points: &RunSet,
    run_lo: usize,
    run_hi: usize,
    options: &AnalysisOptions,
    counters: &Counters,
    gov: &QueryGovernor,
) -> ScanOutcome {
    let depth = nest.depth();
    let inner = depth - 1;
    let space = nest.space();
    let k = cache.assoc() as usize;
    let nrefs = addrs.len();
    let dest_addr = &addrs[dest_idx];
    let src_idx = rv.source().index();
    let r = rv.vector();
    let intra = rv.is_intra_iteration();
    let geom = Geom::new(cache);
    let mut contentions = vec![0u64; nrefs];
    let mut replacement_misses = 0u64;
    let mut miss_indices: Vec<u64> = Vec::new();
    let mut i_buf = vec![0i64; depth];
    let mut block_points = 0u64;
    let mut truncated = 0u64;
    // Governed runs check the budget every `chunk` points; at full budget
    // the chunk spans the whole run, so the per-point loops below run
    // exactly as before (one extra comparison per run).
    let chunk: i64 = if gov.unlimited() { i64::MAX } else { 4096 };

    if options.exact_equation_counts || options.pointwise_windows {
        // Legacy per-point scan.
        let mut scanner = Scanner::new(cache, addrs, k, options.exact_equation_counts);
        let mut p = vec![0i64; depth];
        'runs_legacy: for ri in run_lo..run_hi {
            let run = points.run(ri);
            i_buf[..inner].copy_from_slice(run.prefix);
            let mut seg = run.lo;
            while seg <= run.hi {
                let seg_hi = run.hi.min(seg.saturating_add(chunk - 1));
                if !gov.live() {
                    truncated += count_rest_as_misses(
                        points,
                        ri,
                        run_hi,
                        seg,
                        &mut miss_indices,
                        &mut replacement_misses,
                    );
                    break 'runs_legacy;
                }
                block_points += (seg_hi - seg + 1) as u64;
                gov.charge((seg_hi - seg + 1) as u64);
                for t in seg..=seg_hi {
                    i_buf[inner] = t;
                    let i = &i_buf;
                    for l in 0..depth {
                        p[l] = i[l] - r[l];
                    }
                    let a_dest = dest_addr.eval(i);
                    let dline = geom.line(a_dest);
                    scanner.reset(geom.set_of_line(dline), dline);
                    let mut go = true;
                    if intra {
                        for s in (src_idx + 1)..dest_idx {
                            if !scanner.check(i, s) {
                                break;
                            }
                        }
                    } else {
                        // Tail of the source iteration (statements after the
                        // source).
                        for s in (src_idx + 1)..nrefs {
                            if !scanner.check(&p, s) {
                                go = false;
                                break;
                            }
                        }
                        // Whole iterations strictly between, row by row.
                        if go {
                            go = if options.pointwise_windows {
                                scan_interior_pointwise(&mut scanner, &space, &p, i)
                            } else {
                                scan_interior(&mut scanner, &space, &p, i)
                            };
                        }
                        // Head of the destination iteration (statements before
                        // dest).
                        if go {
                            for s in 0..dest_idx {
                                if !scanner.check(i, s) {
                                    break;
                                }
                            }
                        }
                    }
                    if options.exact_equation_counts {
                        for (s, v) in scanner.per_perp.iter().enumerate() {
                            contentions[s] += v.len() as u64;
                        }
                    }
                    if scanner.distinct.len() >= k {
                        replacement_misses += 1;
                        miss_indices.push(run.start + (t - run.lo) as u64);
                    }
                }
                seg = seg_hi + 1;
            }
        }
        counters.absorb_scan(block_points, WindowStats::default());
        gov.note_truncated(truncated);
        return ScanOutcome {
            replacement_misses,
            contentions,
            miss_indices,
            truncated,
        };
    }

    // Fast mode: slide the window along each run. Inside one run the
    // lockstep condition holds by construction, so the loop steps through
    // per-reference address accumulators — no affine evaluation and no
    // space checks per point; the endpoint side accesses fall out of the
    // same accumulators (`w.src_addr(s)` is reference `s` at `p⃗`,
    // `w.dst_addr(s)` at `i⃗`) and are deduplicated against the window and
    // each other.
    let mut w = SlidingWindow::new_for_space(cache, addrs, &space);
    let mut p_buf = vec![0i64; depth];
    let mut side: Vec<i64> = Vec::new();
    let kk = k as u64;
    'runs: for ri in run_lo..run_hi {
        let run = points.run(ri);
        i_buf[..inner].copy_from_slice(run.prefix);
        if intra {
            // No interior: only the statements strictly between the source
            // and the destination, at i⃗ itself, with addresses accumulated
            // along the run.
            let mut dest_a = {
                i_buf[inner] = run.lo;
                dest_addr.eval(&i_buf)
            };
            let dest_stride = dest_addr.coeff(inner);
            let mut side_a: Vec<i64> = addrs[(src_idx + 1)..dest_idx]
                .iter()
                .map(|a| a.eval(&i_buf))
                .collect();
            let side_strides: Vec<i64> = addrs[(src_idx + 1)..dest_idx]
                .iter()
                .map(|a| a.coeff(inner))
                .collect();
            let mut seg = run.lo;
            while seg <= run.hi {
                let seg_hi = run.hi.min(seg.saturating_add(chunk - 1));
                if !gov.live() {
                    truncated += count_rest_as_misses(
                        points,
                        ri,
                        run_hi,
                        seg,
                        &mut miss_indices,
                        &mut replacement_misses,
                    );
                    break 'runs;
                }
                block_points += (seg_hi - seg + 1) as u64;
                gov.charge((seg_hi - seg + 1) as u64);
                for t in seg..=seg_hi {
                    let dline = geom.line(dest_a);
                    let dset = geom.set_of_line(dline);
                    let mut conflicts = 0;
                    side.clear();
                    for &addr in &side_a {
                        if conflicts >= kk {
                            break;
                        }
                        let line = geom.line(addr);
                        if geom.set_of_line(line) == dset && line != dline && !side.contains(&line)
                        {
                            side.push(line);
                            conflicts += 1;
                        }
                    }
                    if conflicts >= kk {
                        replacement_misses += 1;
                        miss_indices.push(run.start + (t - run.lo) as u64);
                    }
                    dest_a += dest_stride;
                    for (a, st) in side_a.iter_mut().zip(&side_strides) {
                        *a += st;
                    }
                }
                seg = seg_hi + 1;
            }
            continue;
        }
        // Position the window at the run's first point; every further
        // point is one guaranteed-lockstep step.
        i_buf[inner] = run.lo;
        for l in 0..depth {
            p_buf[l] = i_buf[l] - r[l];
        }
        w.begin_segment(&space, &p_buf, &i_buf, r);
        let mut seg = run.lo;
        while seg <= run.hi {
            let seg_hi = run.hi.min(seg.saturating_add(chunk - 1));
            if !gov.live() {
                truncated += count_rest_as_misses(
                    points,
                    ri,
                    run_hi,
                    seg,
                    &mut miss_indices,
                    &mut replacement_misses,
                );
                break 'runs;
            }
            block_points += (seg_hi - seg + 1) as u64;
            gov.charge((seg_hi - seg + 1) as u64);
            for t in seg..=seg_hi {
                if t > run.lo {
                    w.step_in_segment();
                }
                let a_dest = w.dst_addr(dest_idx);
                let dline = geom.line(a_dest);
                let dset = geom.set_of_line(dline);
                let mut conflicts = w.distinct_excluding(dset, dline);
                side.clear();
                // Tail of the source iteration, then head of the destination
                // iteration.
                for (at_src, lo_s, hi_s) in [(true, src_idx + 1, nrefs), (false, 0, dest_idx)] {
                    for s in lo_s..hi_s {
                        if conflicts >= kk {
                            break;
                        }
                        let addr = if at_src { w.src_addr(s) } else { w.dst_addr(s) };
                        let line = geom.line(addr);
                        if geom.set_of_line(line) == dset
                            && line != dline
                            && !w.contains_line(line)
                            && !side.contains(&line)
                        {
                            side.push(line);
                            conflicts += 1;
                        }
                    }
                }
                if conflicts >= kk {
                    replacement_misses += 1;
                    miss_indices.push(run.start + (t - run.lo) as u64);
                }
            }
            seg = seg_hi + 1;
        }
    }
    counters.absorb_scan(block_points, w.stats);
    gov.note_truncated(truncated);
    ScanOutcome {
        replacement_misses,
        contentions,
        miss_indices,
        truncated,
    }
}

/// Degrades the unscanned tail of a block — everything from innermost
/// index `from_t` of run `from_run` through run `run_hi - 1` — by counting
/// every point as a replacement miss (indeterminate-treated-as-miss).
/// Indices stay in global scan-set order, so merged outcomes remain
/// well-formed. Returns the number of points degraded.
fn count_rest_as_misses(
    points: &RunSet,
    from_run: usize,
    run_hi: usize,
    from_t: i64,
    miss_indices: &mut Vec<u64>,
    replacement_misses: &mut u64,
) -> u64 {
    let mut degraded = 0u64;
    for ri in from_run..run_hi {
        let run = points.run(ri);
        let lo = if ri == from_run {
            from_t.max(run.lo)
        } else {
            run.lo
        };
        if lo > run.hi {
            continue;
        }
        for t in lo..=run.hi {
            miss_indices.push(run.start + (t - run.lo) as u64);
        }
        let n = (run.hi - lo + 1) as u64;
        *replacement_misses += n;
        degraded += n;
    }
    degraded
}

/// Stitches a cascade and its scan outcomes into the public
/// [`RefAnalysis`], byte for byte what the reference implementation emits.
fn assemble(
    nest: &LoopNest,
    dest: RefId,
    rvs: &[ReuseVector],
    cascade: &CascadeEntry,
    scans: &[Arc<ScanOutcome>],
    options: &AnalysisOptions,
) -> RefAnalysis {
    let mut vectors = Vec::with_capacity(cascade.vectors.len());
    let mut replacement_misses = 0u64;
    let mut repl_points: Vec<(Vec<i64>, usize)> = Vec::new();
    for (vi, (cv, scan)) in cascade.vectors.iter().zip(scans).enumerate() {
        replacement_misses += scan.replacement_misses;
        vectors.push(VectorReport {
            reuse: rvs[vi].clone(),
            examined: cv.examined,
            cold_solutions: cv.cold_solutions,
            replacement_misses: scan.replacement_misses,
            contentions_per_perpetrator: scan.contentions.clone(),
            cumulative_replacement_misses: replacement_misses,
        });
        if options.collect_miss_points {
            for &mi in &scan.miss_indices {
                repl_points.push((cv.scan_set.point(mi), vi));
            }
        }
    }
    let (cold_misses, cold_points) = match &cascade.final_set {
        Some(set) => (
            set.len(),
            if options.collect_miss_points {
                let mut pts = Vec::with_capacity(set.len() as usize);
                set.for_each(|q| pts.push(q.to_vec()));
                pts
            } else {
                Vec::new()
            },
        ),
        None => {
            let mut pts = Vec::new();
            if options.collect_miss_points {
                let mut sp = nest.space();
                while let Some(q) = sp.next_point() {
                    pts.push(q);
                }
            }
            (nest.space().count(), pts)
        }
    };
    RefAnalysis {
        dest,
        label: nest.reference(dest).label().to_string(),
        vectors,
        cold_misses,
        replacement_misses,
        // A truncated cascade reports as early-stopped: the remaining
        // survivors were counted as misses, exactly like ε stopping.
        early_stopped: cascade.early_stopped || cascade.truncated,
        replacement_miss_points: repl_points,
        cold_miss_points: cold_points,
    }
}

/// A configured analysis session: cache, options, and threading fixed as
/// defaults, with the incremental [`Engine`] carrying memoized work across
/// every `analyze` call.
///
/// ```
/// use cme_cache::CacheConfig;
/// use cme_core::{AnalysisOptions, Analyzer};
/// use cme_ir::{AccessKind, NestBuilder};
///
/// let mut b = NestBuilder::new();
/// b.ct_loop("i", 1, 64);
/// let a = b.array("A", &[64], 0);
/// b.reference(a, AccessKind::Read, &[("i", 0)]);
/// let nest = b.build().unwrap();
///
/// let cfg = CacheConfig::new(8192, 1, 32, 4)?;
/// let analysis = Analyzer::new(cfg)
///     .options(AnalysisOptions::default())
///     .parallel(true)
///     .analyze(&nest);
/// assert_eq!(analysis.total_misses(), 8);
/// # Ok::<(), cme_cache::CacheConfigError>(())
/// ```
#[derive(Debug)]
pub struct Analyzer {
    engine: Engine,
    options: AnalysisOptions,
    parallel: bool,
    threads: usize,
    budget: Budget,
    cancel: Option<CancelToken>,
}

impl Analyzer {
    /// A sequential session with default options, caching on, and an
    /// unlimited budget.
    pub fn new(cache: CacheConfig) -> Self {
        Analyzer {
            engine: Engine::new(cache),
            options: AnalysisOptions::default(),
            parallel: false,
            threads: 0,
            budget: Budget::unlimited(),
            cancel: None,
        }
    }

    /// Sets the session's per-query resource [`Budget`]. Exhausted
    /// queries degrade to sound overcounts instead of failing (see
    /// [`crate::Outcome`]).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a cooperative [`CancelToken`]: cancelling it (from any
    /// thread) stops in-flight and subsequent queries at the next
    /// checkpoint, degrading them like budget exhaustion.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the session's default analysis options.
    pub fn options(mut self, options: AnalysisOptions) -> Self {
        self.options = options;
        self
    }

    /// Spreads each analysis over the machine's cores.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Pins the work-pool width explicitly (overrides [`Analyzer::parallel`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the engine's memoization.
    pub fn caching(mut self, on: bool) -> Self {
        self.engine.set_caching(on);
        self
    }

    /// The cache geometry this session analyzes against.
    pub fn cache(&self) -> &CacheConfig {
        self.engine.cache()
    }

    /// The session's default options.
    pub fn current_options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Analyzes a nest with the session defaults. At the default
    /// unlimited budget, results are bit-identical to
    /// [`crate::analyze_nest`], warm or cold; under a session budget or
    /// cancellation the counts degrade to a sound overcount (use
    /// [`Analyzer::try_analyze`] to observe the [`crate::Outcome`] tag).
    /// Panics on [`AnalysisError`] — worker panic or address overflow.
    pub fn analyze(&mut self, nest: &LoopNest) -> NestAnalysis {
        let options = self.options.clone();
        self.analyze_with_options(nest, &options)
    }

    /// Analyzes with one-off options (e.g. an exact-counting pass) while
    /// still sharing the session's memo tables. Panics on
    /// [`AnalysisError`]; see [`Analyzer::try_analyze_with_options`].
    pub fn analyze_with_options(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
    ) -> NestAnalysis {
        match self.try_analyze_with_options(nest, options) {
            Ok(governed) => governed.analysis,
            Err(e) => panic!("{e}"),
        }
    }

    /// The governed, panic-free entry point: analyzes under the session's
    /// budget and cancel token and reports how the query ended alongside
    /// the (possibly degraded, always sound) counts.
    ///
    /// # Errors
    ///
    /// See [`Engine::try_analyze`].
    pub fn try_analyze(&mut self, nest: &LoopNest) -> Result<GovernedAnalysis, AnalysisError> {
        let options = self.options.clone();
        self.try_analyze_with_options(nest, &options)
    }

    /// [`Analyzer::try_analyze`] with one-off options.
    ///
    /// # Errors
    ///
    /// See [`Engine::try_analyze`].
    pub fn try_analyze_with_options(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
    ) -> Result<GovernedAnalysis, AnalysisError> {
        let threads = self.thread_count();
        let budget = self.budget;
        let cancel = self.cancel.clone();
        self.engine
            .try_analyze(nest, options, threads, budget, cancel.as_ref())
    }

    /// Analyzes with the session options but with miss-point collection
    /// forced on — the oracle-facing entry point of the differential test
    /// harness (`cme-diffcheck`), which joins the returned
    /// replacement/cold miss points against per-access simulator verdicts
    /// from `cme_cache::simulate_nest_outcomes` to localize a
    /// disagreement. Shares the session's memo tables: scans always
    /// record their miss indices in the memo and `collect_miss_points`
    /// only affects result assembly, so interleaving traced and plain
    /// runs of the same nest stays fully memoized.
    pub fn analyze_traced(&mut self, nest: &LoopNest) -> NestAnalysis {
        let options = AnalysisOptions {
            collect_miss_points: true,
            ..self.options.clone()
        };
        self.analyze_with_options(nest, &options)
    }

    /// The symbolic CME system for a nest (generated, rebased, or reused).
    pub fn system(&mut self, nest: &LoopNest) -> Arc<CmeSystem> {
        let reuse = self.options.reuse.clone();
        self.engine.system(nest, &reuse)
    }

    /// Snapshot of the engine's accounting.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Shared access to the underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    fn thread_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else if self.parallel {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            1
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy free functions are the equivalence baseline
mod tests {
    use super::*;
    use cme_ir::{AccessKind, NestBuilder};

    fn matmul(n: i64, bz: i64, bx: i64, by: i64) -> LoopNest {
        let mut b = NestBuilder::new();
        b.name("mmult");
        b.ct_loop("i", 1, n).ct_loop("k", 1, n).ct_loop("j", 1, n);
        let z = b.array("Z", &[n, n], bz);
        let x = b.array("X", &[n, n], bx);
        let y = b.array("Y", &[n, n], by);
        b.reference(z, AccessKind::Read, &[("j", 0), ("i", 0)]);
        b.reference(x, AccessKind::Read, &[("k", 0), ("i", 0)]);
        b.reference(y, AccessKind::Read, &[("j", 0), ("k", 0)]);
        b.reference(z, AccessKind::Write, &[("j", 0), ("i", 0)]);
        b.build().unwrap()
    }

    #[test]
    fn engine_matches_legacy_warm_and_cold() {
        let cache = CacheConfig::new(2048, 2, 32, 4).unwrap();
        let opts = AnalysisOptions::builder().collect_miss_points(true).build();
        let mut analyzer = Analyzer::new(cache).options(opts.clone());
        for bases in [[0, 300, 777], [0, 300, 777], [32, 300, 777], [5, 311, 801]] {
            let nest = matmul(12, bases[0], bases[1], bases[2]);
            let legacy = crate::solve::analyze_nest(&nest, cache, &opts);
            let cold = analyzer.analyze(&nest);
            let warm = analyzer.analyze(&nest);
            assert_eq!(legacy, cold);
            assert_eq!(legacy, warm);
        }
        let stats = analyzer.stats();
        assert!(stats.cascades_reused > 0, "{stats}");
        assert!(stats.scans_reused > 0, "{stats}");
        assert!(stats.memo_hit_rate() > 0.0);
    }

    #[test]
    fn engine_matches_legacy_with_epsilon_and_exact() {
        let cache = CacheConfig::new(8192, 1, 32, 4).unwrap();
        for opts in [
            AnalysisOptions::builder().epsilon(200).build(),
            AnalysisOptions::builder()
                .exact_equation_counts(true)
                .build(),
            AnalysisOptions::builder().pointwise_windows(true).build(),
        ] {
            let nest = matmul(8, 0, 4096, 8192);
            let legacy = crate::solve::analyze_nest(&nest, cache, &opts);
            let mut analyzer = Analyzer::new(cache).options(opts.clone());
            assert_eq!(legacy, analyzer.analyze(&nest));
            assert_eq!(legacy, analyzer.analyze(&nest), "warm pass diverged");
        }
    }

    #[test]
    fn caching_off_is_a_passthrough() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let nest = matmul(6, 0, 100, 200);
        let mut analyzer = Analyzer::new(cache).caching(false);
        let a = analyzer.analyze(&nest);
        let b = analyzer.analyze(&nest);
        assert_eq!(a, b);
        let stats = analyzer.stats();
        assert_eq!(stats.passthroughs, 8, "4 refs x 2 analyses uncached");
        assert_eq!(stats.cascades_built + stats.cascades_reused, 0);
    }

    #[test]
    fn moving_one_array_reuses_other_cascades() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let ls = cache.line_elems();
        let mut analyzer = Analyzer::new(cache);
        let n1 = matmul(8, 0, 128, 256);
        let n2 = matmul(8, 0, 128, 256 + ls); // move Y by a whole line
        let legacy = crate::solve::analyze_nest(&n2, cache, &AnalysisOptions::default());
        analyzer.analyze(&n1);
        let built_before = analyzer.stats().cascades_built;
        assert_eq!(analyzer.analyze(&n2), legacy);
        // Every reference keeps B mod Ls, so no cascade is rebuilt.
        assert_eq!(analyzer.stats().cascades_built, built_before);
    }

    #[test]
    fn system_cache_generates_rebases_and_reuses() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let reuse = cme_reuse::ReuseOptions::default();
        let mut engine = Engine::new(cache);
        let n1 = matmul(8, 0, 128, 256);
        let s1 = engine.system(&n1, &reuse);
        let s1b = engine.system(&n1, &reuse);
        assert!(Arc::ptr_eq(&s1, &s1b));
        let n2 = matmul(8, 8, 130, 300);
        let s2 = engine.system(&n2, &reuse);
        assert_eq!(*s2, CmeSystem::generate(&n2, cache, &reuse));
        let stats = engine.stats();
        assert_eq!(stats.systems_generated, 1);
        assert_eq!(stats.systems_rebased, 1);
        assert_eq!(stats.systems_reused, 1);
        assert!(stats.systems_saved() == 2);
    }

    #[test]
    fn clear_caches_resets_tables_not_counters() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let nest = matmul(6, 0, 100, 200);
        let mut analyzer = Analyzer::new(cache);
        analyzer.analyze(&nest);
        analyzer.engine().clear_caches();
        let legacy = crate::solve::analyze_nest(&nest, cache, &AnalysisOptions::default());
        assert_eq!(analyzer.analyze(&nest), legacy);
        let stats = analyzer.stats();
        assert_eq!(stats.analyses, 2);
        assert!(stats.cascades_built >= 8, "rebuilt after clear");
    }

    #[test]
    fn stats_helpers_on_zero_queries() {
        let stats = EngineStats::default();
        assert_eq!(stats.memo_hit_rate(), 0.0);
        assert_eq!(stats.systems_saved(), 0);
        // A fresh engine that has answered nothing reports the same.
        let engine = Engine::new(CacheConfig::new(1024, 1, 32, 4).unwrap());
        assert_eq!(engine.stats().memo_hit_rate(), 0.0);
        assert_eq!(engine.stats().systems_saved(), 0);
    }

    #[test]
    fn stats_helpers_saturate_instead_of_overflowing() {
        let stats = EngineStats {
            reuse_built: u64::MAX,
            reuse_reused: u64::MAX,
            cascades_built: u64::MAX,
            cascades_reused: u64::MAX,
            scans_executed: u64::MAX,
            scans_reused: u64::MAX,
            systems_rebased: u64::MAX,
            systems_reused: u64::MAX,
            ..EngineStats::default()
        };
        let rate = stats.memo_hit_rate();
        assert!(rate.is_finite() && (0.0..=1.0).contains(&rate));
        assert_eq!(rate, 1.0, "hits and total both saturate to u64::MAX");
        assert_eq!(stats.systems_saved(), u64::MAX);
    }

    #[test]
    fn stats_hit_rate_counts_all_three_memo_families() {
        let stats = EngineStats {
            reuse_built: 1,
            reuse_reused: 1,
            cascades_built: 1,
            cascades_reused: 1,
            scans_executed: 1,
            scans_reused: 1,
            ..EngineStats::default()
        };
        assert!((stats.memo_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn traced_analysis_collects_points_and_stays_memoized() {
        let cache = CacheConfig::new(1024, 2, 32, 4).unwrap();
        let nest = matmul(8, 0, 100, 200);
        let mut analyzer = Analyzer::new(cache);
        let plain = analyzer.analyze(&nest);
        let traced = analyzer.analyze_traced(&nest);
        assert_eq!(traced.total_misses(), plain.total_misses());
        let collected: usize = traced
            .per_ref
            .iter()
            .map(|r| r.replacement_miss_points.len() + r.cold_miss_points.len())
            .sum();
        assert_eq!(collected as u64, traced.total_misses());
        assert!(
            analyzer.stats().scans_reused > 0,
            "traced re-analysis must reuse the plain run's scans"
        );
        // Session options are untouched.
        assert!(!analyzer.current_options().collect_miss_points);
    }

    /// Miss points traced at k=8 — real cascade output, not synthetic
    /// runs — survive run compression losslessly: same count, same
    /// points, same lexicographic order, random access intact.
    #[test]
    fn traced_miss_points_at_k8_run_compress_losslessly() {
        use crate::pointset::{PointSet, RunSet};
        let cache = CacheConfig::new(512, 8, 16, 4).unwrap();
        let nest = matmul(8, 0, 100, 200);
        let traced = Analyzer::new(cache).analyze_traced(&nest);
        assert!(traced.total_misses() > 0, "degenerate fixture");
        for (ri, r) in traced.per_ref.iter().enumerate() {
            let mut pts: Vec<Vec<i64>> = r
                .cold_miss_points
                .iter()
                .cloned()
                .chain(r.replacement_miss_points.iter().map(|(p, _)| p.clone()))
                .collect();
            pts.sort();
            pts.dedup();
            let mut ps = PointSet::new(nest.depth());
            for p in &pts {
                ps.push(p);
            }
            let rs = RunSet::from_point_set(&ps);
            assert_eq!(rs.len(), ps.len(), "ref {ri}: count changed");
            assert_eq!(rs.recount(), rs.len(), "ref {ri}: run totals drifted");
            assert_eq!(rs.to_point_set(), ps, "ref {ri}: points changed");
            for (idx, p) in pts.iter().enumerate() {
                assert_eq!(&rs.point(idx as u64), p, "ref {ri}: random access");
            }
        }
    }
}
