//! Batch-driver bookkeeping: coalescing duplicate scan slots and merging
//! sharded scan blocks.
//!
//! A batch plans every nest before any scan runs, so slots that would hit
//! the scan memo *had the nests run sequentially* (layout siblings share
//! scan keys) all miss `peek_scan` together. [`coalesce_scan_slots`]
//! recovers the sharing: one executor per distinct key, every duplicate
//! slot aliased to it. [`merge_scan_blocks`] folds the per-block partial
//! outcomes of one pooled round back into whole per-slot outcomes,
//! independent of how the blocks were sharded.

use std::collections::HashMap;
use std::sync::Arc;

use super::stages::cascade::CascadeResult;

/// Assigns every scan slot an executor: the first slot with each distinct
/// key executes; later slots with the same key alias it. Unkeyed slots
/// (caching off / oversized nests) always execute their own scan. Returns
/// `(executors, role)`: `executors[ei]` is the todo index that scans, and
/// `role[ti]` is the executor index whose outcome slot `ti` consumes.
pub(crate) fn coalesce_scan_slots(
    todo: &[(usize, usize, Option<u128>)],
) -> (Vec<usize>, Vec<usize>) {
    let mut canon: HashMap<u128, usize> = HashMap::new();
    let mut executors: Vec<usize> = Vec::new();
    let mut role: Vec<usize> = Vec::with_capacity(todo.len());
    for (ti, &(_, _, key)) in todo.iter().enumerate() {
        let ei = match key {
            Some(k) => *canon.entry(k).or_insert_with(|| {
                executors.push(ti);
                executors.len() - 1
            }),
            None => {
                executors.push(ti);
                executors.len() - 1
            }
        };
        role.push(ei);
    }
    (executors, role)
}

/// Merges pooled per-block scan results into one outcome per round item.
/// `jobs[j].0` names the round item block `j` belongs to; blocks cover
/// run ranges in order, so concatenating miss indices in job order keeps
/// them sorted globally and per-point contention sums add associatively —
/// the merged outcome is byte-identical to an unsharded scan.
pub(crate) fn merge_scan_blocks(
    empties: Vec<CascadeResult>,
    jobs: Vec<(usize, usize, usize)>,
    partials: Vec<CascadeResult>,
) -> Vec<Arc<CascadeResult>> {
    let mut merged = empties;
    for ((ri, _, _), part) in jobs.into_iter().zip(partials) {
        let m = &mut merged[ri];
        m.replacement_misses += part.replacement_misses;
        for (acc, c) in m.contentions.iter_mut().zip(&part.contentions) {
            *acc += c;
        }
        m.miss_indices.extend_from_slice(&part.miss_indices);
        m.truncated += part.truncated;
    }
    merged.into_iter().map(Arc::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_alias_their_first_executor_and_unkeyed_never_alias() {
        let todo = vec![
            (0, 0, Some(7u128)),
            (0, 1, None),
            (1, 0, Some(7u128)), // duplicate of slot 0
            (1, 1, None),        // unkeyed: never coalesced, even repeated
            (2, 0, Some(9u128)),
            (2, 1, Some(7u128)), // duplicate of slot 0
        ];
        let (executors, role) = coalesce_scan_slots(&todo);
        assert_eq!(executors, vec![0, 1, 3, 4]);
        assert_eq!(role, vec![0, 1, 0, 2, 3, 0]);
    }
}
