//! Batch-driver bookkeeping: coalescing duplicate scan slots and merging
//! sharded scan blocks.
//!
//! A batch plans every nest before any scan runs, so slots that would hit
//! the scan memo *had the nests run sequentially* (layout siblings share
//! scan keys) all miss `peek_scan` together. [`coalesce_scan_slots`]
//! recovers the sharing: one executor per distinct key, every duplicate
//! slot aliased to it. [`merge_scan_blocks`] folds the per-block partial
//! outcomes of one pooled round back into whole per-slot outcomes,
//! independent of how the blocks were sharded.

use std::collections::HashMap;
use std::sync::Arc;

use super::stages::cascade::CascadeResult;

/// Assigns every scan slot an executor: the first slot with each distinct
/// key executes; later slots with the same key alias it. Unkeyed slots
/// (caching off / oversized nests) always execute their own scan. Returns
/// `(executors, role)`: `executors[ei]` is the todo index that scans, and
/// `role[ti]` is the executor index whose outcome slot `ti` consumes.
pub(crate) fn coalesce_scan_slots(
    todo: &[(usize, usize, Option<u128>)],
) -> (Vec<usize>, Vec<usize>) {
    let mut canon: HashMap<u128, usize> = HashMap::new();
    let mut executors: Vec<usize> = Vec::new();
    let mut role: Vec<usize> = Vec::with_capacity(todo.len());
    for (ti, &(_, _, key)) in todo.iter().enumerate() {
        let ei = match key {
            Some(k) => *canon.entry(k).or_insert_with(|| {
                executors.push(ti);
                executors.len() - 1
            }),
            None => {
                executors.push(ti);
                executors.len() - 1
            }
        };
        role.push(ei);
    }
    (executors, role)
}

/// Merges two outcomes of *adjacent* block ranges (`a` before `b`).
/// Counters add; miss runs concatenate wholesale, fusing only at the seam
/// when `b`'s first run abuts `a`'s last (a miss cluster split by the
/// block boundary). Because each side's run list is already maximal, this
/// seam rule is exactly [`push_miss_span`]'s fusion rule, so adjacent
/// merges are associative and any merge order yields the same bytes.
///
/// [`push_miss_span`]: super::stages::cascade::push_miss_span
fn merge_adjacent(mut a: CascadeResult, mut b: CascadeResult) -> CascadeResult {
    a.replacement_misses += b.replacement_misses;
    for (acc, c) in a.contentions.iter_mut().zip(&b.contentions) {
        *acc += c;
    }
    a.truncated += b.truncated;
    let mut skip = 0;
    if let (Some(last), Some(&(b_lo, b_hi))) = (a.miss_runs.last_mut(), b.miss_runs.first()) {
        if last.1 + 1 == b_lo {
            last.1 = b_hi;
            skip = 1;
        }
    }
    a.miss_runs.extend(b.miss_runs.drain(skip..));
    a
}

/// Pairwise tree reduction over one round item's block outcomes, in block
/// order. A tree of adjacent merges moves whole run vectors at each level
/// instead of re-pushing every run through a single accumulator, so the
/// merge cost is governed by the tree depth rather than re-traversing the
/// growing fold accumulator once per block.
fn reduce_tree(mut level: Vec<CascadeResult>) -> Option<CascadeResult> {
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut pairs = level.into_iter();
        while let Some(a) = pairs.next() {
            match pairs.next() {
                Some(b) => next.push(merge_adjacent(a, b)),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.pop()
}

/// Merges pooled per-block scan results into one outcome per round item.
/// `jobs[j].0` names the round item block `j` belongs to; blocks cover
/// run ranges in order, so a tree of adjacent merges per item rebuilds
/// the canonical maximal-run list and associative counter sums — the
/// merged outcome is byte-identical to an unsharded scan.
pub(crate) fn merge_scan_blocks(
    empties: Vec<CascadeResult>,
    jobs: Vec<(usize, usize, usize)>,
    partials: Vec<CascadeResult>,
) -> Vec<Arc<CascadeResult>> {
    let mut groups: Vec<Vec<CascadeResult>> = (0..empties.len()).map(|_| Vec::new()).collect();
    for ((ri, _, _), part) in jobs.into_iter().zip(partials) {
        groups[ri].push(part);
    }
    empties
        .into_iter()
        .zip(groups)
        .map(|(base, group)| {
            Arc::new(match reduce_tree(group) {
                Some(part) => merge_adjacent(base, part),
                None => base,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_alias_their_first_executor_and_unkeyed_never_alias() {
        let todo = vec![
            (0, 0, Some(7u128)),
            (0, 1, None),
            (1, 0, Some(7u128)), // duplicate of slot 0
            (1, 1, None),        // unkeyed: never coalesced, even repeated
            (2, 0, Some(9u128)),
            (2, 1, Some(7u128)), // duplicate of slot 0
        ];
        let (executors, role) = coalesce_scan_slots(&todo);
        assert_eq!(executors, vec![0, 1, 3, 4]);
        assert_eq!(role, vec![0, 1, 0, 2, 3, 0]);
    }

    fn block(misses: u64, contentions: Vec<u64>, runs: Vec<(u64, u64)>) -> CascadeResult {
        CascadeResult {
            replacement_misses: misses,
            contentions,
            miss_runs: runs,
            truncated: 0,
        }
    }

    #[test]
    fn merge_tree_fuses_seams_across_odd_block_counts() {
        // Five blocks of one round item whose boundary runs chain: the
        // cluster 3..=9 is split across blocks 0-2, and 20..=25 across
        // blocks 3-4. The tree (pairs, then a leftover odd block) must
        // fuse every seam exactly as a sequential fold would.
        let empties = vec![CascadeResult::empty(2)];
        let jobs = vec![(0, 0, 2), (0, 2, 4), (0, 4, 6), (0, 6, 8), (0, 8, 10)];
        let partials = vec![
            block(2, vec![1, 0], vec![(0, 0), (3, 4)]),
            block(3, vec![0, 2], vec![(5, 6)]),
            block(1, vec![1, 1], vec![(7, 9), (12, 12)]),
            block(4, vec![0, 0], vec![(20, 22)]),
            block(1, vec![2, 3], vec![(23, 25)]),
        ];
        let merged = merge_scan_blocks(empties, jobs, partials);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].replacement_misses, 11);
        assert_eq!(merged[0].contentions, vec![4, 6]);
        assert_eq!(
            merged[0].miss_runs,
            vec![(0, 0), (3, 9), (12, 12), (20, 25)]
        );
        assert_eq!(merged[0].truncated, 0);
    }

    #[test]
    fn merge_routes_blocks_to_their_round_item() {
        let empties = vec![CascadeResult::empty(1), CascadeResult::empty(1)];
        let jobs = vec![(1, 0, 2), (0, 0, 2), (1, 2, 4)];
        let partials = vec![
            block(1, vec![0], vec![(0, 1)]),
            block(2, vec![1], vec![(4, 4)]),
            block(1, vec![0], vec![(2, 3)]),
        ];
        let merged = merge_scan_blocks(empties, jobs, partials);
        assert_eq!(merged[0].replacement_misses, 2);
        assert_eq!(merged[0].miss_runs, vec![(4, 4)]);
        assert_eq!(merged[1].replacement_misses, 2);
        assert_eq!(merged[1].miss_runs, vec![(0, 3)]);
    }
}
