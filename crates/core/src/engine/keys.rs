//! Invalidation keys of the incremental engine.
//!
//! Every cache inside [`crate::Engine`] is keyed by a 128-bit double hash
//! of exactly the inputs its payload depends on — nothing more, so a
//! candidate transform that leaves those inputs untouched re-solves from
//! the cache, and nothing less, so a transform that changes them cannot
//! alias into a stale entry. The derivations live in `docs/ENGINE.md`; in
//! short, for a destination reference `D` of array `A_D` with base
//! `B_D = q_D·Ls + r_D` (`0 ≤ r_D < Ls`):
//!
//! - a **solve set** (the cold/indeterminate refinement of Figure 6)
//!   depends only on the nest *structure* (loop bounds, subscript
//!   coefficients, base-relative constants), the cache geometry, the
//!   options, and `r_D = B_D mod Ls` — reuse sources always address the
//!   same array, so the whole-line quotient `q_D` cancels out of every
//!   line comparison;
//! - a **window scan**'s verdict additionally depends on every array's
//!   line offset `r_A` and *exact* line distance `λ_A = q_A − q_D` — the
//!   set test needs `λ_A mod Ns`, but line-identity coincidences across
//!   arrays need the exact value, so the exact value is keyed.
//!
//! The base-invariant structure itself is hashed **once, at intern
//! time**, by [`cme_ir::db::structural_hash`]; every key here starts from
//! that precomputed digest instead of re-walking the nest. Two
//! independent 64-bit hashes (seeded differently) are concatenated into
//! the `u128` key ([`KeyHasher`], hosted by `cme-ir` next to the
//! interner), making accidental collisions negligible — the memoized
//! values are exact analysis artifacts, so a collision would be silent.

use cme_cache::CacheConfig;
pub(crate) use cme_ir::db::KeyHasher;
use cme_ir::LoopNest;
use cme_math::gcd::{floor_div, modulo};

use crate::solve::AnalysisOptions;

/// Hashes everything *every* engine memo depends on: cache geometry,
/// reuse-vector options, and the interned base-invariant structural hash.
/// Analysis-mode options are keyed only where they matter — `ε` into the
/// solve-set key (it truncates the vector sequence), the scan-mode flags
/// into the scan key — so a plain pass and an exact-counting pass share
/// solve sets. `collect_miss_points` is keyed nowhere: it only controls
/// result assembly, never verdicts.
pub(crate) fn prefix_key(cache: &CacheConfig, options: &AnalysisOptions, structural: u128) -> u128 {
    let mut h = KeyHasher::new(0x9e37);
    h.feed(cache);
    h.feed(&options.reuse.group)
        .feed(&options.reuse.extended)
        .feed(&options.reuse.max_vectors)
        .feed(&options.reuse.candidate_budget)
        .feed(&options.reuse.prune_dominated);
    h.feed(&(structural as u64))
        .feed(&((structural >> 64) as u64));
    h.finish()
}

/// Key of one reference's solve set (cold/indeterminate cascade): the
/// prefix plus the reference index, its own array's line offset
/// `B_D mod Ls`, the `ε` early-stop threshold (which truncates the
/// vector sequence), and the survivor-representation policy — the
/// memoized `SolveSet` *embeds* its scan sets in the chosen
/// representation, so a `ForceDense` session must not be handed a
/// run-compressed artifact cached by an earlier `Auto` run (the verdicts
/// would still be bit-identical, but the policy and its stats counters
/// would silently lie). Scan outcomes are representation-independent, so
/// [`scan_key`] deliberately does *not* key the policy.
pub(crate) fn cascade_key(
    prefix: u128,
    nest: &LoopNest,
    options: &AnalysisOptions,
    dest: usize,
    ls: i64,
) -> u128 {
    let base = nest.array(nest.references()[dest].array()).base();
    let mut h = KeyHasher::from_prefix(0xca5c, prefix);
    h.feed(&dest)
        .feed(&modulo(base, ls))
        .feed(&options.epsilon)
        .feed(&options.survivor_repr);
    h.finish()
}

/// Key of one `(reference, reuse-vector)` window-scan result: the prefix
/// plus the reference and vector indices, the scan-mode flags, and the
/// full relative layout — per array, `(B_A mod Ls, ⌊B_A/Ls⌋ − ⌊B_D/Ls⌋)`.
/// The `ε` threshold is *not* keyed: a vector's scan set is the same under
/// any `ε` that lets the vector run at all.
pub(crate) fn scan_key(
    prefix: u128,
    nest: &LoopNest,
    options: &AnalysisOptions,
    dest: usize,
    vector_index: usize,
    ls: i64,
) -> u128 {
    let dest_q = floor_div(nest.array(nest.references()[dest].array()).base(), ls);
    let mut h = KeyHasher::from_prefix(0x5ca9, prefix);
    h.feed(&dest)
        .feed(&vector_index)
        .feed(&options.exact_equation_counts)
        .feed(&options.pointwise_windows);
    for a in nest.arrays() {
        h.feed(&modulo(a.base(), ls));
        h.feed(&(floor_div(a.base(), ls) - dest_q));
    }
    h.finish()
}

/// Key of a generated [`crate::CmeSystem`]: cache + reuse options +
/// structure (no bases — a cached system is rebased on layout changes).
pub(crate) fn system_key(
    cache: &CacheConfig,
    reuse: &cme_reuse::ReuseOptions,
    structural: u128,
) -> u128 {
    let mut h = KeyHasher::new(0x5751);
    h.feed(cache);
    h.feed(&reuse.group)
        .feed(&reuse.extended)
        .feed(&reuse.max_vectors)
        .feed(&reuse.candidate_budget)
        .feed(&reuse.prune_dominated);
    h.feed(&(structural as u64))
        .feed(&((structural >> 64) as u64));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_ir::db::structural_hash;
    use cme_ir::{AccessKind, NestBuilder};

    fn nest_with_bases(bases: [i64; 2]) -> LoopNest {
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 8).ct_loop("j", 1, 8);
        let a = b.array("A", &[8, 8], bases[0]);
        let c = b.array("B", &[8, 8], bases[1]);
        b.reference(a, AccessKind::Read, &[("j", 0), ("i", 0)]);
        b.reference(c, AccessKind::Write, &[("j", 0), ("i", 0)]);
        b.build().unwrap()
    }

    fn prefix_of(cache: &CacheConfig, opts: &AnalysisOptions, nest: &LoopNest) -> u128 {
        prefix_key(cache, opts, structural_hash(nest))
    }

    #[test]
    fn prefix_is_base_invariant_but_structure_sensitive() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let opts = AnalysisOptions::default();
        let k1 = prefix_of(&cache, &opts, &nest_with_bases([0, 100]));
        let k2 = prefix_of(&cache, &opts, &nest_with_bases([64, 7]));
        assert_eq!(k1, k2, "bases must not affect the structure prefix");
        let mut padded = nest_with_bases([0, 100]);
        let first_array = padded.references()[0].array();
        padded.array_mut(first_array).pad_column_to(9);
        assert_ne!(
            k1,
            prefix_of(&cache, &opts, &padded),
            "column padding changes strides, so the prefix must move"
        );
        let eps = AnalysisOptions::builder().epsilon(10).build();
        assert_eq!(
            k1,
            prefix_of(&cache, &eps, &nest_with_bases([0, 100])),
            "epsilon is keyed in the solve set, not the prefix"
        );
    }

    #[test]
    fn cascade_key_sees_only_own_line_offset() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let ls = cache.line_elems();
        let opts = AnalysisOptions::default();
        let n1 = nest_with_bases([0, 100]);
        let n2 = nest_with_bases([ls * 3, 177]); // same B_A mod Ls, other array moved
        let p = prefix_of(&cache, &opts, &n1);
        assert_eq!(p, prefix_of(&cache, &opts, &n2));
        assert_eq!(
            cascade_key(p, &n1, &opts, 0, ls),
            cascade_key(p, &n2, &opts, 0, ls)
        );
        let n3 = nest_with_bases([1, 100]); // dest line offset moved
        assert_ne!(
            cascade_key(p, &n1, &opts, 0, ls),
            cascade_key(p, &n3, &opts, 0, ls)
        );
        // Epsilon truncates the vector sequence, so it must be keyed here.
        let eps = AnalysisOptions::builder().epsilon(10).build();
        assert_ne!(
            cascade_key(p, &n1, &opts, 0, ls),
            cascade_key(p, &n1, &eps, 0, ls)
        );
        // Exact-count mode does not affect the solve set.
        let exact = AnalysisOptions::builder()
            .exact_equation_counts(true)
            .build();
        assert_eq!(
            cascade_key(p, &n1, &opts, 0, ls),
            cascade_key(p, &n1, &exact, 0, ls)
        );
    }

    #[test]
    fn survivor_repr_keys_solve_sets_but_not_scan_outcomes() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let ls = cache.line_elems();
        let n = nest_with_bases([0, 100]);
        let opts = AnalysisOptions::default();
        let p = prefix_of(&cache, &opts, &n);
        for forced in [
            crate::SurvivorRepr::ForceRuns,
            crate::SurvivorRepr::ForceDense,
        ] {
            let alt = AnalysisOptions::builder().survivor_repr(forced).build();
            // The memoized SolveSet embeds its representation: key it.
            assert_ne!(
                cascade_key(p, &n, &opts, 0, ls),
                cascade_key(p, &n, &alt, 0, ls)
            );
            // Scan verdicts are representation-independent: share them.
            assert_eq!(
                scan_key(p, &n, &opts, 0, 1, ls),
                scan_key(p, &n, &alt, 0, 1, ls)
            );
        }
    }

    #[test]
    fn scan_key_tracks_relative_layout() {
        let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
        let ls = cache.line_elems();
        let opts = AnalysisOptions::default();
        let n1 = nest_with_bases([0, 100]);
        // Whole-layout translation by a multiple of Ls: identical key.
        let n2 = nest_with_bases([5 * ls, 100 + 5 * ls]);
        let p = prefix_of(&cache, &opts, &n1);
        assert_eq!(
            scan_key(p, &n1, &opts, 0, 1, ls),
            scan_key(p, &n2, &opts, 0, 1, ls)
        );
        // Moving one array by a line changes the relative layout.
        let n3 = nest_with_bases([0, 100 + ls]);
        assert_ne!(
            scan_key(p, &n1, &opts, 0, 1, ls),
            scan_key(p, &n3, &opts, 0, 1, ls)
        );
        // Different vector index: different key.
        assert_ne!(
            scan_key(p, &n1, &opts, 0, 1, ls),
            scan_key(p, &n1, &opts, 0, 2, ls)
        );
        // Scan-mode flags change the outcome shape, so they are keyed.
        let exact = AnalysisOptions::builder()
            .exact_equation_counts(true)
            .build();
        assert_ne!(
            scan_key(p, &n1, &opts, 0, 1, ls),
            scan_key(p, &n1, &exact, 0, 1, ls)
        );
        // Epsilon is NOT keyed: the vector's scan set is epsilon-invariant.
        let eps = AnalysisOptions::builder().epsilon(10).build();
        assert_eq!(
            scan_key(p, &n1, &opts, 0, 1, ls),
            scan_key(p, &n1, &eps, 0, 1, ls)
        );
    }
}
