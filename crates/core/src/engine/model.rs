//! The simulator-backed classify path for non-baseline cache models.
//!
//! The analytic pipeline evaluates *LRU* miss equations: the stack-depth
//! criterion behind the replacement equations (Section 3.2) counts
//! distinct interfering lines, which is exactly the LRU replacement
//! condition and only an approximation of FIFO or pseudo-LRU behavior.
//! For a non-baseline [`CacheModel`] the engine therefore answers with an
//! **exact trace replay** through the model simulator
//! ([`cme_cache::simulate_nest_model`]) and attaches the analytic LRU
//! result as a documented *bound* — under non-LRU policies the LRU count
//! plus `ε`/budget truncation is the sound reference the optimizers keep
//! steering by, while the simulator provides ground truth for the model
//! actually requested.
//!
//! Simulation is governed like solving: every simulated access charges
//! the query budget one step (the same unit as an equation evaluation),
//! the deadline/cancel checkpoints fire every
//! [`cme_cache::GOVERNED_SIM_CHECK_INTERVAL`] accesses, and an exhausted
//! replay yields **no counts at all** — a partial trace classifies
//! nothing soundly — so the caller degrades to the analytic bound,
//! tagged with the exhaustion outcome.

use super::Engine;
use crate::governor::{Budget, CancelToken, Outcome, QueryGovernor};
use cme_cache::{simulate_nest_model_governed, CacheModel, ModelSimResult};
use cme_ir::LoopNest;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// The outcome of one governed model-simulation query: either the exact
/// per-reference replay, or the exhaustion tag telling the caller to fall
/// back to the analytic LRU bound.
#[derive(Debug, Clone)]
pub struct ModelClassification {
    /// Exact per-reference counts from the trace replay; `None` when the
    /// budget exhausted mid-replay (partial traces are never exposed).
    pub sim: Option<ModelSimResult>,
    /// How the governed replay ended. [`Outcome::Complete`] iff `sim` is
    /// `Some`.
    pub outcome: Outcome,
    /// Wall time spent replaying.
    pub elapsed: std::time::Duration,
}

impl Engine {
    /// The full cache model this session answers for (baseline unless
    /// [`Engine::set_model`] was called).
    pub fn model(&self) -> &CacheModel {
        &self.model
    }

    /// Installs a richer cache model for this session. The model's L1
    /// geometry must equal the engine's cache — the analytic pipeline
    /// keeps computing the (LRU) miss equations against that geometry,
    /// while non-baseline requests additionally go through the
    /// simulator-backed classify path ([`Engine::classify_model`]) and
    /// persistent artifacts are keyed under the model
    /// ([`crate::store::model_fingerprint`]).
    ///
    /// # Panics
    ///
    /// Panics when `model.l1()` is not this engine's geometry; the serve
    /// layers construct the engine *from* the model, so a mismatch is a
    /// caller bug, never data-dependent.
    pub fn set_model(&mut self, model: CacheModel) {
        assert_eq!(
            model.l1(),
            *self.cache(),
            "cache model L1 must match the engine geometry"
        );
        self.model = model;
    }

    /// Classifies `nest` under an arbitrary [`CacheModel`] by exact trace
    /// replay, governed by `budget`/`cancel`: each simulated access
    /// charges one budget step, and exhaustion abandons the replay
    /// (returning no counts) instead of blowing the deadline on a huge
    /// iteration space. Counters land in [`crate::EngineStats`]
    /// (`sim_classifications`, `sim_accesses`, `sim_writebacks`,
    /// `sim_exhausted`).
    ///
    /// The caller is responsible for address-overflow validation — in the
    /// serve path the analytic bound runs first and performs it.
    pub fn classify_model(
        &self,
        nest: &LoopNest,
        model: &CacheModel,
        budget: Budget,
        cancel: Option<&CancelToken>,
    ) -> ModelClassification {
        let t = Instant::now();
        self.counters
            .sim_classifications
            .fetch_add(1, Ordering::Relaxed);
        let gov = QueryGovernor::new(budget, cancel.cloned());
        let total_accesses = nest
            .space()
            .count()
            .saturating_mul(nest.references().len() as u64);
        let mut charged: u64 = 0;
        let sim = simulate_nest_model_governed(nest, model, |done| {
            gov.charge(done - charged);
            charged = done;
            gov.live()
        });
        match &sim {
            Some(result) => {
                let total = result.per_ref.iter().fold(0u64, |acc, s| acc + s.accesses);
                self.counters
                    .sim_accesses
                    .fetch_add(total, Ordering::Relaxed);
                self.counters
                    .sim_writebacks
                    .fetch_add(result.writebacks, Ordering::Relaxed);
            }
            None => {
                self.counters
                    .sim_accesses
                    .fetch_add(charged, Ordering::Relaxed);
                self.counters.sim_exhausted.fetch_add(1, Ordering::Relaxed);
                // Everything not replayed is indeterminate — the caller's
                // fallback (the analytic LRU bound) treats those points
                // under the paper's `ε > 0` semantics.
                gov.note_truncated(total_accesses.saturating_sub(charged));
            }
        }
        ModelClassification {
            sim,
            outcome: gov.outcome(),
            elapsed: t.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cme_cache::{simulate_nest_model, CacheConfig, PolicyKind};
    use cme_ir::{AccessKind, NestBuilder};

    fn conflict_nest(n: i64) -> LoopNest {
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 8).ct_loop("j", 1, n);
        let a = b.array("A", &[n], 0);
        let c = b.array("C", &[n], 32);
        b.reference(a, AccessKind::Read, &[("j", 0)]);
        b.reference(c, AccessKind::Write, &[("j", 0)]);
        b.build().unwrap()
    }

    #[test]
    fn unlimited_budget_matches_the_plain_replay() {
        let cfg = CacheConfig::new(128, 2, 16, 4).unwrap();
        let model = CacheModel::new(cfg).policy(PolicyKind::Fifo);
        let nest = conflict_nest(16);
        let engine = Engine::new(cfg);
        let got = engine.classify_model(&nest, &model, Budget::unlimited(), None);
        assert!(got.outcome.is_complete());
        assert_eq!(got.sim.unwrap(), simulate_nest_model(&nest, &model));
        let stats = engine.stats();
        assert_eq!(stats.sim_classifications, 1);
        assert_eq!(stats.sim_accesses, 8 * 16 * 2);
        assert_eq!(stats.sim_exhausted, 0);
    }

    #[test]
    fn solve_budget_exhausts_the_replay() {
        let cfg = CacheConfig::new(128, 2, 16, 4).unwrap();
        let model = CacheModel::new(cfg).policy(PolicyKind::Plru);
        // Large enough that several governor checkpoints fire.
        let nest = conflict_nest(8192);
        let engine = Engine::new(cfg);
        let got = engine.classify_model(
            &nest,
            &model,
            Budget::unlimited().with_max_solves(5000),
            None,
        );
        assert!(got.sim.is_none());
        assert!(got.outcome.is_exhausted(), "{:?}", got.outcome);
        assert_eq!(engine.stats().sim_exhausted, 1);
    }

    #[test]
    fn cancellation_aborts_like_exhaustion() {
        let cfg = CacheConfig::new(128, 2, 16, 4).unwrap();
        let model = CacheModel::new(cfg).policy(PolicyKind::Fifo);
        let nest = conflict_nest(8192);
        let engine = Engine::new(cfg);
        let token = CancelToken::new();
        token.cancel();
        let got = engine.classify_model(&nest, &model, Budget::unlimited(), Some(&token));
        assert!(got.sim.is_none());
        assert!(got.outcome.is_exhausted());
    }
}
