//! Closed-form parametric sweeps: miss counts as certified
//! quasi-polynomials of one layout parameter (Section 5.1.3).
//!
//! The paper's endgame replaces per-candidate re-analysis with an
//! Ehrhart-style closed form: the miss count as a function of a symbolic
//! layout parameter, minimized analytically. This module builds that path
//! on top of the staged pipeline. Given an interned nest and a declared
//! [`SweepParameter`], [`Analyzer::sweep`]:
//!
//! 1. derives candidate periods from the cache geometry — shifting a base
//!    address by the way span `Cs/k` (in elements) maps every access to
//!    the same cache set and line offset, so the miss count as a function
//!    of a base shift, inter-array pad, or leading dimension is *exactly*
//!    periodic with a period dividing the way span over the sweep's step
//!    lattice;
//! 2. drives [`Analyzer::try_analyze_batch`] to sample one full period
//!    plus a verification window under the session governor;
//! 3. fits an eventually periodic quasi-polynomial
//!    ([`cme_math::quasipoly::fit_eventually_periodic`]) and returns it
//!    with its exact-fit [`FitCertificate`] inside a [`SweepResult`] —
//!    the whole candidate range then costs O(samples) numeric analyses
//!    instead of O(range);
//! 4. degrades to exhaustive batched evaluation when no model fits (or
//!    when any sample came back budget-exhausted — a truncated sample is
//!    a sound overcount, never fit material).
//!
//! Fitted functions are memoized in the session and persisted through the
//! artifact store under a sweep key ([`crate::store::SweepRecord`]).
//! Results that involved *any* degraded sample are neither memoized nor
//! persisted. `cme-diffcheck` replays every fitted function against the
//! numeric engine at adversarial points (period boundaries, onset edge,
//! range endpoints, random interior) and flags divergence as a
//! first-class soundness violation.

use super::Analyzer;
use crate::governor::AnalysisError;
use crate::solve::NestAnalysis;
use crate::store::{options_fingerprint, ArtifactKey, SweepRecord};
use cme_cache::CacheConfig;
use cme_ir::{ArrayId, KeyHasher, LoopNest, NestId};
use cme_math::gcd::gcd;
use cme_math::quasipoly::{fit_eventually_periodic, FitCertificate, QuasiPolynomial, TieBreak};
use std::fmt;
use std::sync::atomic::Ordering;

/// The layout parameter a sweep ranges over. Candidate `k` of a
/// [`SweepRequest`] is the nest with the parameter set to
/// `start + k·step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepParameter {
    /// Shift `array`'s base address by the parameter value (elements),
    /// leaving every other array in place — the paper's inter-variable
    /// spacing `|B_X − B_Y|`.
    BaseSpacing {
        /// The array whose base is shifted.
        array: ArrayId,
    },
    /// Insert the parameter value (bytes, truncated to whole elements) of
    /// padding after `after`: every array whose base lies above it shifts
    /// up together, preserving their relative spacings.
    PadBytes {
        /// The array the padding is inserted after.
        after: ArrayId,
    },
    /// Grow `array`'s leading dimension (column size) to the parameter
    /// value — intra-variable padding. Values below the declared column
    /// size are infeasible.
    LeadingDimension {
        /// The rank-2 array whose column is padded.
        array: ArrayId,
    },
    /// Tile loop `level` of the nest with the parameter value as the tile
    /// size ([`cme_ir::transform::tile_nest`]). Unlike the layout
    /// parameters, tile-size periodicity is *heuristic* (small candidate
    /// periods, no geometric guarantee): fits are still certified against
    /// the sample window, and the differential tier cross-validates them.
    TileSize {
        /// The loop level (outermost = 0) to tile.
        level: usize,
    },
}

impl SweepParameter {
    /// Applies the parameter at `value` to a clone of the nest. `None`
    /// means the value is infeasible for this nest (shrinking a column,
    /// a non-dividing tile size, an unknown array, a negative shift).
    pub fn apply(&self, nest: &LoopNest, cache: &CacheConfig, value: i64) -> Option<LoopNest> {
        match *self {
            SweepParameter::BaseSpacing { array } => {
                if value < 0 || array.index() >= nest.arrays().len() {
                    return None;
                }
                let mut out = nest.clone();
                let base = out.array(array).base();
                out.array_mut(array).set_base(base.checked_add(value)?);
                Some(out)
            }
            SweepParameter::PadBytes { after } => {
                if value < 0 || after.index() >= nest.arrays().len() {
                    return None;
                }
                let elems = value / cache.elem_bytes();
                let mut out = nest.clone();
                let pivot = out.array(after).base();
                for id in used_arrays(nest) {
                    let base = out.array(id).base();
                    if base > pivot {
                        out.array_mut(id).set_base(base.checked_add(elems)?);
                    }
                }
                Some(out)
            }
            SweepParameter::LeadingDimension { array } => {
                if array.index() >= nest.arrays().len() {
                    return None;
                }
                let mut out = nest.clone();
                let a = out.array_mut(array);
                if a.rank() != 2 || value < a.column_size() {
                    return None;
                }
                a.pad_column_to(value);
                Some(out)
            }
            SweepParameter::TileSize { level } => {
                if value < 1 || level >= nest.depth() {
                    return None;
                }
                cme_ir::transform::tile_nest(nest, &[(level, value)]).ok()
            }
        }
    }

    /// The geometric period of the miss function in raw parameter units,
    /// when one is guaranteed: shifting any base by the way span `Cs/k`
    /// elements preserves every set index and line offset, so base
    /// shifts, pads, and leading-dimension changes are exactly periodic.
    /// Tile size has no such guarantee (`None` → heuristic periods).
    fn raw_period(&self, cache: &CacheConfig) -> Option<i64> {
        match self {
            SweepParameter::BaseSpacing { .. } | SweepParameter::LeadingDimension { .. } => {
                Some(cache.way_span_elems())
            }
            SweepParameter::PadBytes { .. } => Some(cache.way_span_elems() * cache.elem_bytes()),
            SweepParameter::TileSize { .. } => None,
        }
    }

    fn feed_key(&self, h: &mut KeyHasher) {
        match *self {
            SweepParameter::BaseSpacing { array } => h.feed(&0u8).feed(&array.index()),
            SweepParameter::PadBytes { after } => h.feed(&1u8).feed(&after.index()),
            SweepParameter::LeadingDimension { array } => h.feed(&2u8).feed(&array.index()),
            SweepParameter::TileSize { level } => h.feed(&3u8).feed(&level),
        };
    }
}

impl fmt::Display for SweepParameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepParameter::BaseSpacing { array } => write!(f, "base-spacing({array})"),
            SweepParameter::PadBytes { after } => write!(f, "pad-bytes(after {after})"),
            SweepParameter::LeadingDimension { array } => {
                write!(f, "leading-dimension({array})")
            }
            SweepParameter::TileSize { level } => write!(f, "tile-size(level {level})"),
        }
    }
}

/// Which miss count the sweep's function models and minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SweepMetric {
    /// Total misses (cold + replacement) summed over all references.
    #[default]
    TotalMisses,
    /// Replacement misses only — the quantity the padding search ranks by.
    ReplacementMisses,
}

impl SweepMetric {
    fn of(&self, analysis: &NestAnalysis) -> u64 {
        match self {
            SweepMetric::TotalMisses => analysis.total_misses(),
            SweepMetric::ReplacementMisses => analysis.total_replacement(),
        }
    }
}

/// One parametric sweep: candidate `k ∈ 0..count` is the nest with
/// `parameter = start + k·step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepRequest {
    /// The parameter swept.
    pub parameter: SweepParameter,
    /// Parameter value of candidate 0.
    pub start: i64,
    /// Number of candidates.
    pub count: usize,
    /// Raw-unit increment between consecutive candidates (≥ 1).
    pub step: i64,
    /// The miss count being modeled.
    pub metric: SweepMetric,
    /// When no model fits: `true` evaluates every candidate in governed
    /// batches (the sound, slow path); `false` returns the best among the
    /// samples already taken, flagged [`SweepResult::fallback`] — for
    /// callers (the padding search) that treat the sweep as an optional
    /// refinement.
    pub exhaustive_fallback: bool,
}

impl SweepRequest {
    /// A total-miss sweep with exhaustive fallback enabled.
    pub fn new(parameter: SweepParameter, start: i64, count: usize, step: i64) -> Self {
        SweepRequest {
            parameter,
            start,
            count,
            step,
            metric: SweepMetric::TotalMisses,
            exhaustive_fallback: true,
        }
    }

    /// The raw parameter value of candidate `k`.
    pub fn value_at(&self, k: usize) -> i64 {
        self.start + k as i64 * self.step
    }

    /// The sweep's identity for memoization and persistence: everything
    /// the result depends on besides the nest and session already pinned
    /// by the [`ArtifactKey`].
    pub fn fingerprint(&self) -> u128 {
        let mut h = KeyHasher::new(0x5e37);
        self.parameter.feed_key(&mut h);
        h.feed(&self.start)
            .feed(&self.count)
            .feed(&self.step)
            .feed(&matches!(self.metric, SweepMetric::ReplacementMisses));
        h.finish()
    }
}

/// The answer to a parametric sweep.
///
/// On the closed-form path, `function` maps the candidate index `k` (not
/// the raw value — divide out `step` first) to the metric, `certificate`
/// records the sample window backing it, and `best_*` is its exact
/// argmin over `0..count` (ties to the smallest parameter). On the
/// fallback path `function` is `None` and `best_*` comes from direct
/// evaluation, ranked with the degraded-last policy: complete scores
/// outrank budget-exhausted ones, which outrank failed candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepResult {
    /// The fitted miss function of the candidate index, when one fit.
    pub function: Option<QuasiPolynomial>,
    /// The exact-fit certificate backing `function`.
    pub certificate: Option<FitCertificate>,
    /// Whether the sweep degraded to direct evaluation.
    pub fallback: bool,
    /// Candidates in the requested range.
    pub candidates: usize,
    /// Numeric analyses actually run.
    pub evaluations: usize,
    /// Samples or candidates that came back budget-exhausted (their
    /// scores are sound overcounts; such sweeps are never fitted,
    /// memoized, or persisted).
    pub degraded: usize,
    /// Candidates that were infeasible or failed to analyze.
    pub failed: usize,
    /// Candidate index (`0..candidates`) minimizing the metric.
    pub best_k: usize,
    /// Raw parameter value minimizing the metric.
    pub best_value: i64,
    /// The metric at `best_value` (an overcount if that score degraded).
    pub best_misses: u64,
    /// Whether this result was answered from the session sweep memo.
    pub memo_hit: bool,
    /// Whether this result was answered from the persistent store.
    pub store_hit: bool,
}

impl SweepResult {
    /// Numeric analyses the closed form saved versus exhaustive
    /// evaluation of the range.
    pub fn evaluations_saved(&self) -> usize {
        self.candidates.saturating_sub(self.evaluations)
    }
}

impl fmt::Display for SweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(cert) = &self.certificate {
            write!(
                f,
                "closed form ({cert}) over {} candidates in {} analyses; best {} -> {}",
                self.candidates, self.evaluations, self.best_value, self.best_misses
            )?;
        } else {
            write!(
                f,
                "fallback over {} candidates in {} analyses; best {} -> {}",
                self.candidates, self.evaluations, self.best_value, self.best_misses
            )?;
        }
        if self.degraded > 0 || self.failed > 0 {
            write!(f, " [{} degraded, {} failed]", self.degraded, self.failed)?;
        }
        Ok(())
    }
}

/// Distinct referenced arrays (declaration order).
fn used_arrays(nest: &LoopNest) -> Vec<ArrayId> {
    let mut ids: Vec<ArrayId> = Vec::new();
    for r in nest.references() {
        if !ids.contains(&r.array()) {
            ids.push(r.array());
        }
    }
    ids
}

/// Candidate periods over the sweep's step lattice, smallest first. For
/// geometric parameters every divisor of `raw/gcd(raw, step)` is sound
/// (the true period divides it, and all samples are verified); tile-size
/// sweeps try small heuristic periods instead.
fn period_candidates(
    parameter: &SweepParameter,
    cache: &CacheConfig,
    step: i64,
    count: usize,
) -> Vec<usize> {
    let pk = match parameter.raw_period(cache) {
        Some(raw) => raw / gcd(raw, step),
        // Heuristic: tile-size functions are usually low-period; cap the
        // largest candidate so sampling stays a fraction of the range.
        None => ((count / 4).max(1).next_power_of_two().min(64)) as i64,
    };
    let pk = pk.max(1) as usize;
    let mut divisors: Vec<usize> = (1..=pk)
        .filter(|&d| pk.is_multiple_of(d))
        .take(64)
        .collect();
    divisors.sort_unstable();
    divisors
}

/// Verification window beyond the period: enough extra samples to expose
/// onset effects and give every residue class a margin.
fn verification_window(p_max: usize) -> usize {
    (p_max / 4).clamp(1, 64)
}

impl Analyzer {
    /// Answers a parametric sweep in closed form: samples one period plus
    /// a verification window, fits a certified quasi-polynomial, and
    /// minimizes it analytically — falling back to exhaustive batched
    /// evaluation (per [`SweepRequest::exhaustive_fallback`]) when no
    /// model fits. See the module docs for the full contract.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the underlying batched analyses
    /// (worker panic, address overflow); the session stays usable.
    ///
    /// # Panics
    ///
    /// Panics if `request.count == 0` or `request.step < 1`.
    pub fn sweep(
        &mut self,
        nest: &LoopNest,
        request: &SweepRequest,
    ) -> Result<SweepResult, AnalysisError> {
        assert!(request.count >= 1, "sweep needs at least one candidate");
        assert!(request.step >= 1, "sweep step must be positive");
        let cache = *self.cache();
        let base_id = self.intern(nest);
        let key = self.sweep_key(base_id, request);

        if let Some(key) = key {
            if let Some(cached) = self.sweep_memo.get(&key) {
                let eng = self.engine();
                eng.counters.sweep_memo_hits.fetch_add(1, Ordering::Relaxed);
                let mut hit = cached.clone();
                hit.memo_hit = true;
                return Ok(hit);
            }
            if let Some(record) = self.consult_sweep_store(base_id, request) {
                if let Some(result) = self.rehydrate(record, request) {
                    self.sweep_memo.insert(key, result.clone());
                    return Ok(result);
                }
            }
        }

        let periods = period_candidates(&request.parameter, &cache, request.step, request.count);
        let p_max = periods.last().copied().unwrap_or(0);
        let w = verification_window(p_max);
        let stage1 = request.count.min(2 * p_max + w);
        let stage2 = request.count.min(4 * p_max + w);

        let mut scores: Vec<(u64, bool)> = Vec::new(); // (metric, degraded)
        let mut failed = 0usize;
        let feasible = self.sample_range(nest, &cache, request, 0, stage1, &mut scores)?;
        let mut degraded = scores.iter().filter(|(_, d)| *d).count();

        if feasible && degraded == 0 && p_max > 0 {
            for attempt in 0..2 {
                if attempt == 1 {
                    if stage2 <= scores.len() {
                        break;
                    }
                    let more = self.sample_range(
                        nest,
                        &cache,
                        request,
                        scores.len(),
                        stage2,
                        &mut scores,
                    )?;
                    degraded = scores.iter().filter(|(_, d)| *d).count();
                    if !more || degraded > 0 {
                        break;
                    }
                }
                let samples: Option<Vec<i64>> =
                    scores.iter().map(|&(v, _)| i64::try_from(v).ok()).collect();
                let Some(samples) = samples else { break };
                if let Ok((function, certificate)) = fit_eventually_periodic(&samples, &periods, w)
                {
                    let hi = request.count as i64 - 1;
                    let (best_k, best) = function.argmin_with(0..=hi, TieBreak::SmallestParameter);
                    let result = SweepResult {
                        best_value: request.value_at(best_k as usize),
                        best_misses: best as u64,
                        function: Some(function),
                        certificate: Some(certificate),
                        fallback: false,
                        candidates: request.count,
                        evaluations: scores.len(),
                        degraded: 0,
                        failed: 0,
                        best_k: best_k as usize,
                        memo_hit: false,
                        store_hit: false,
                    };
                    let eng = self.engine();
                    eng.counters.sweeps_fitted.fetch_add(1, Ordering::Relaxed);
                    eng.counters
                        .sweep_samples
                        .fetch_add(result.evaluations as u64, Ordering::Relaxed);
                    if let Some(key) = key {
                        self.persist_sweep(base_id, request, &result);
                        self.sweep_memo.insert(key, result.clone());
                    }
                    return Ok(result);
                }
            }
        }

        // Fallback: direct evaluation — the whole range when requested,
        // otherwise just the samples in hand. Degraded-last ranking:
        // complete scores outrank exhausted overcounts, which outrank
        // failures; ties to the smallest parameter.
        if request.exhaustive_fallback {
            let mut from = scores.len();
            while from < request.count {
                let to = request.count.min(from + 512);
                self.sample_range(nest, &cache, request, from, to, &mut scores)?;
                from = to;
            }
            degraded = scores.iter().filter(|(_, d)| *d).count();
        }
        let mut best: Option<(u8, u64, usize)> = None; // (rank, score, k)
        for (k, &(score, was_degraded)) in scores.iter().enumerate() {
            let rank = if score == u64::MAX {
                failed += 1;
                2u8
            } else {
                u8::from(was_degraded)
            };
            let cand = (rank, score, k);
            if best.map(|b| cand < b).unwrap_or(true) {
                best = Some(cand);
            }
        }
        let (_, best_misses, best_k) = best.unwrap_or((2, u64::MAX, 0));
        let eng = self.engine();
        eng.counters.sweeps_fallback.fetch_add(1, Ordering::Relaxed);
        eng.counters
            .sweep_samples
            .fetch_add(scores.len() as u64, Ordering::Relaxed);
        Ok(SweepResult {
            function: None,
            certificate: None,
            fallback: true,
            candidates: request.count,
            evaluations: scores.len(),
            degraded,
            failed,
            best_value: request.value_at(best_k),
            best_misses,
            best_k,
            memo_hit: false,
            store_hit: false,
        })
    }

    /// Analyzes candidates `from..to` in one governed batch, appending
    /// `(metric, degraded)` per candidate (`u64::MAX` for infeasible
    /// values). Returns whether every candidate was feasible.
    fn sample_range(
        &mut self,
        nest: &LoopNest,
        cache: &CacheConfig,
        request: &SweepRequest,
        from: usize,
        to: usize,
        scores: &mut Vec<(u64, bool)>,
    ) -> Result<bool, AnalysisError> {
        let mut ids: Vec<Option<NestId>> = Vec::with_capacity(to - from);
        let mut feasible = true;
        for k in from..to {
            match request.parameter.apply(nest, cache, request.value_at(k)) {
                Some(candidate) => ids.push(Some(self.intern(&candidate))),
                None => {
                    feasible = false;
                    ids.push(None);
                }
            }
        }
        let live: Vec<NestId> = ids.iter().filter_map(|id| *id).collect();
        let mut governed = self.try_analyze_batch(&live)?.into_iter();
        for id in &ids {
            match id {
                Some(_) => match governed.next() {
                    Some(g) => {
                        scores.push((request.metric.of(&g.analysis), g.outcome.is_exhausted()))
                    }
                    None => scores.push((u64::MAX, false)),
                },
                None => scores.push((u64::MAX, false)),
            }
        }
        Ok(feasible)
    }

    /// The session memo key, or `None` when the engine's caching is off
    /// (a sweep on an uncached session is a true recompute).
    fn sweep_key(&self, base_id: NestId, request: &SweepRequest) -> Option<u128> {
        let eng = self.engine();
        if !eng.caching {
            return None;
        }
        let mut h = KeyHasher::new(0x5eed);
        h.feed(&eng.db.structural_hash(base_id))
            .feed(&eng.db.layout_hash(base_id))
            .feed(&options_fingerprint(self.current_options()))
            .feed(&request.fingerprint());
        let cache = eng.cache;
        h.feed(&cache.size_bytes())
            .feed(&cache.assoc())
            .feed(&cache.line_bytes())
            .feed(&cache.elem_bytes());
        Some(h.finish())
    }

    fn sweep_artifact_key(&self, base_id: NestId) -> ArtifactKey {
        let eng = self.engine();
        ArtifactKey::new(
            eng.db.structural_hash(base_id),
            eng.db.layout_hash(base_id),
            &eng.cache,
            self.current_options(),
        )
    }

    fn consult_sweep_store(&self, base_id: NestId, request: &SweepRequest) -> Option<SweepRecord> {
        let eng = self.engine();
        let store = eng.store.as_ref()?;
        store.get_sweep(&self.sweep_artifact_key(base_id), request.fingerprint())
    }

    /// Rebuilds a [`SweepResult`] from a persisted record, recomputing the
    /// argmin (closed-form, cheap) instead of trusting a stored optimum.
    fn rehydrate(&self, record: SweepRecord, request: &SweepRequest) -> Option<SweepResult> {
        let function = record.function()?;
        let certificate = record.certificate();
        let hi = request.count as i64 - 1;
        let (best_k, best) = function.argmin_with(0..=hi, TieBreak::SmallestParameter);
        self.engine()
            .counters
            .sweeps_fitted
            .fetch_add(1, Ordering::Relaxed);
        Some(SweepResult {
            best_value: request.value_at(best_k as usize),
            best_misses: best as u64,
            function: Some(function),
            certificate: Some(certificate),
            fallback: false,
            candidates: request.count,
            evaluations: record.evaluations as usize,
            degraded: 0,
            failed: 0,
            best_k: best_k as usize,
            memo_hit: false,
            store_hit: true,
        })
    }

    /// Write-through of a *fitted, complete* sweep. Fallback and degraded
    /// results never reach this point.
    fn persist_sweep(&self, base_id: NestId, request: &SweepRequest, result: &SweepResult) {
        let key = self.sweep_artifact_key(base_id);
        let eng = self.engine();
        if let (Some(store), Some(function), Some(cert)) =
            (&eng.store, &result.function, &result.certificate)
        {
            let record = SweepRecord::new(function, cert, result.evaluations as u64);
            store.put_sweep(&key, request.fingerprint(), &record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::Budget;
    use crate::store::ArtifactStore;
    use cme_ir::{AccessKind, NestBuilder};
    use std::sync::Arc;

    /// Two arrays streamed in lockstep: the miss count is a pure function
    /// of their base spacing modulo the way span, with heavy conflict
    /// misses when the spacing aligns their lines onto the same sets.
    fn spacing_nest(gap: i64) -> LoopNest {
        let mut b = NestBuilder::new();
        b.ct_loop("i", 0, 64);
        let a = b.array("A", &[64], 0);
        let c = b.array("B", &[64], gap);
        b.reference(a, AccessKind::Read, &[("i", 0)]);
        b.reference(c, AccessKind::Read, &[("i", 0)]);
        b.build().expect("valid nest")
    }

    fn second_array(nest: &LoopNest) -> ArrayId {
        used_arrays(nest)[1]
    }

    fn small_cache() -> CacheConfig {
        CacheConfig::new(1024, 1, 32, 4).expect("valid config")
    }

    #[test]
    fn closed_form_matches_exhaustive_bit_identically() {
        let nest = spacing_nest(256);
        let param = SweepParameter::BaseSpacing {
            array: second_array(&nest),
        };
        let request = SweepRequest::new(param, 0, 128, 8);

        let mut swept = Analyzer::new(small_cache());
        let result = swept.sweep(&nest, &request).expect("sweep");
        let function = result.function.as_ref().expect("fit");
        assert!(!result.fallback);
        assert!(result.certificate.is_some(), "fit must carry a certificate");
        assert!(result.evaluations < request.count);

        let mut exhaustive = Analyzer::new(small_cache());
        let mut best = None;
        for k in 0..request.count {
            let candidate = param
                .apply(&nest, &small_cache(), request.value_at(k))
                .expect("feasible");
            let misses = exhaustive.analyze(&candidate).total_misses();
            assert_eq!(
                function.eval(k as i64),
                misses as i64,
                "closed form diverges at k={k}"
            );
            if best.map(|(m, _)| misses < m).unwrap_or(true) {
                best = Some((misses, request.value_at(k)));
            }
        }
        let (best_misses, best_value) = best.expect("non-empty range");
        assert_eq!(result.best_misses, best_misses);
        assert_eq!(result.best_value, best_value);
    }

    #[test]
    fn repeated_sweeps_hit_the_session_memo() {
        let nest = spacing_nest(300);
        let request = SweepRequest::new(
            SweepParameter::BaseSpacing {
                array: second_array(&nest),
            },
            0,
            64,
            8,
        );
        let mut analyzer = Analyzer::new(small_cache());
        let first = analyzer.sweep(&nest, &request).expect("sweep");
        assert!(!first.memo_hit);
        let second = analyzer.sweep(&nest, &request).expect("sweep");
        assert!(second.memo_hit);
        assert_eq!(first.function, second.function);
        assert_eq!(first.best_value, second.best_value);
        assert_eq!(analyzer.stats().sweep_memo_hits, 1);
    }

    #[test]
    fn truncated_sweeps_fall_back_and_are_never_memoized() {
        let nest = spacing_nest(256);
        let request = SweepRequest::new(
            SweepParameter::BaseSpacing {
                array: second_array(&nest),
            },
            0,
            32,
            8,
        );
        let mut analyzer =
            Analyzer::new(small_cache()).budget(Budget::unlimited().with_max_points(1));
        let result = analyzer.sweep(&nest, &request).expect("sweep");
        assert!(result.fallback, "a truncated sweep must not ship a fit");
        assert!(result.function.is_none());
        assert!(result.degraded > 0);
        assert!(
            analyzer.sweep_memo.is_empty(),
            "degraded results are not memoized"
        );
        let again = analyzer.sweep(&nest, &request).expect("sweep");
        assert!(!again.memo_hit);
        assert_eq!(analyzer.stats().sweeps_fallback, 2);
    }

    #[test]
    fn fitted_sweeps_persist_and_rehydrate_across_sessions() {
        let dir = std::env::temp_dir().join(format!("cme-sweep-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ArtifactStore::open(&dir).expect("open store"));
        let nest = spacing_nest(256);
        let request = SweepRequest::new(
            SweepParameter::BaseSpacing {
                array: second_array(&nest),
            },
            0,
            96,
            8,
        );

        let mut first = Analyzer::new(small_cache()).store(Arc::clone(&store));
        let fitted = first.sweep(&nest, &request).expect("sweep");
        assert!(!fitted.fallback && !fitted.store_hit);

        let mut second = Analyzer::new(small_cache()).store(Arc::clone(&store));
        let rehydrated = second.sweep(&nest, &request).expect("sweep");
        assert!(
            rehydrated.store_hit,
            "second session answers from the store"
        );
        assert_eq!(rehydrated.function, fitted.function);
        assert_eq!(rehydrated.best_value, fitted.best_value);
        assert_eq!(rehydrated.best_misses, fitted.best_misses);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn infeasible_candidates_force_the_fallback_path() {
        // Tile sizes that do not divide the trip count are infeasible, so
        // the sweep cannot fit and must evaluate directly.
        let mut b = NestBuilder::new();
        b.ct_loop("i", 0, 15); // 16 trips: tiles 2 and 4 divide, 3/5/6/7 do not
        b.ct_loop("j", 0, 15);
        let a = b.array("A", &[16, 16], 0);
        b.reference(a, AccessKind::Read, &[("i", 0), ("j", 0)]);
        let nest = b.build().expect("valid nest");
        let request = SweepRequest::new(SweepParameter::TileSize { level: 0 }, 2, 6, 1);
        let mut analyzer = Analyzer::new(small_cache());
        let result = analyzer.sweep(&nest, &request).expect("sweep");
        assert!(result.fallback);
        assert!(result.failed > 0, "non-dividing tiles count as failed");
        assert!(result.best_misses < u64::MAX, "some tile size is feasible");
    }

    #[test]
    fn sampled_fallback_skips_the_tail_when_exhaustive_is_off() {
        let nest = spacing_nest(256);
        let mut request = SweepRequest::new(
            SweepParameter::BaseSpacing {
                array: second_array(&nest),
            },
            0,
            4096,
            1,
        );
        request.exhaustive_fallback = false;
        let mut analyzer =
            Analyzer::new(small_cache()).budget(Budget::unlimited().with_max_points(1));
        let result = analyzer.sweep(&nest, &request).expect("sweep");
        assert!(result.fallback);
        assert!(
            result.evaluations < request.count,
            "sampled fallback must not evaluate the whole range"
        );
    }
}
