//! The engine's memo tables: per-stage artifact caches and the
//! equation-system cache, with their capacity policy.
//!
//! Every table maps a 128-bit invalidation key (see [`super::keys`]) to an
//! `Arc`-shared, immutable artifact. When a table reaches its cap it is
//! cleared wholesale — crude, but the values are shared, so in-flight
//! users are unaffected, and the caps are sized so a full optimizer search
//! fits: a padding search visits tens of candidate layouts, each
//! contributing one scan entry per (reference × vector) and one solve set
//! per distinct destination line offset — the scan table is the big one
//! (small entries: a few counters plus the miss indices), the others stay
//! tiny.
//!
//! Truncated artifacts (a governor stopped the work early) are sound
//! overcounts for *one* query, not exact results: they are returned to the
//! caller but never stored.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use cme_ir::{LoopNest, NestId};
use cme_reuse::ReuseOptions;

use crate::equations::CmeSystem;
use crate::governor::AnalysisError;

use super::stages::cascade::CascadeResult;
use super::stages::lower::{self, LoweredNest};
use super::stages::reuse::ReusePlan;
use super::stages::solve::SolveSet;
use super::{keys, Engine};

pub(crate) const REUSE_CAP: usize = 4096;
pub(crate) const CASCADE_CAP: usize = 4096;
pub(crate) const SCAN_CAP: usize = 1 << 17;
pub(crate) const SYSTEM_CAP: usize = 256;

/// A cached [`CmeSystem`] together with the layout it is targeted at;
/// a candidate with the same structure but a moved layout *rebases* the
/// system (constant terms only) instead of regenerating it.
#[derive(Debug)]
pub(crate) struct SystemEntry {
    pub(crate) layout: u128,
    pub(crate) system: Arc<CmeSystem>,
}

/// Locks a mutex, recovering from poisoning: every value behind the
/// engine's locks is either an `Arc`-shared immutable snapshot or a plain
/// accumulator written in one statement, so a panic elsewhere cannot leave
/// it half-updated — recovering keeps the *session* usable after a worker
/// panic fails one query.
pub(crate) fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Engine {
    /// The lower-stage artifact of an interned nest: memoized per handle
    /// (the database is append-only, so entries never go stale). With
    /// caching off the artifact is rebuilt every query, like every other
    /// stage.
    pub(crate) fn lookup_lowered(&self, id: NestId) -> Result<Arc<LoweredNest>, AnalysisError> {
        if self.caching {
            if let Some(l) = relock(&self.lower_memo).get(&id.index()) {
                self.counters.lowered_reused.fetch_add(1, Ordering::Relaxed);
                return Ok(l.clone());
            }
        }
        let l = Arc::new(lower::lower(&self.db, id)?);
        self.counters.lowered_built.fetch_add(1, Ordering::Relaxed);
        if self.caching {
            relock(&self.lower_memo).insert(id.index(), l.clone());
        }
        Ok(l)
    }

    pub(crate) fn lookup_reuse(&self, key: u128, build: impl FnOnce() -> ReusePlan) -> ReusePlan {
        if let Some(v) = relock(&self.reuse_memo).get(&key) {
            self.counters.reuse_reused.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        let v = build();
        self.counters.reuse_built.fetch_add(1, Ordering::Relaxed);
        let mut map = relock(&self.reuse_memo);
        if map.len() >= REUSE_CAP {
            map.clear();
        }
        map.insert(key, v.clone());
        v
    }

    pub(crate) fn lookup_cascade(
        &self,
        key: u128,
        build: impl FnOnce() -> SolveSet,
    ) -> Arc<SolveSet> {
        if let Some(c) = relock(&self.cascade_memo).get(&key) {
            self.counters
                .cascades_reused
                .fetch_add(1, Ordering::Relaxed);
            return c.clone();
        }
        let c = Arc::new(build());
        self.counters.cascades_built.fetch_add(1, Ordering::Relaxed);
        if c.truncated {
            // A truncated solve set is a sound overcount for *this* query
            // only; memoizing it would degrade future full-budget runs.
            return c;
        }
        let mut map = relock(&self.cascade_memo);
        if map.len() >= CASCADE_CAP {
            map.clear();
        }
        map.insert(key, c.clone());
        c
    }

    pub(crate) fn peek_scan(&self, key: u128) -> Option<Arc<CascadeResult>> {
        let hit = relock(&self.scan_memo).get(&key).cloned();
        if hit.is_some() {
            self.counters.scans_reused.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    pub(crate) fn store_scan(&self, key: u128, outcome: Arc<CascadeResult>) {
        self.counters.scans_executed.fetch_add(1, Ordering::Relaxed);
        let mut map = relock(&self.scan_memo);
        if map.len() >= SCAN_CAP {
            map.clear();
        }
        map.insert(key, outcome);
    }

    /// The symbolic CME system for a nest: generated once per structure,
    /// *rebased* (address constants only) when only the layout moved, and
    /// returned verbatim when nothing changed. Interns the nest.
    pub fn system(&mut self, nest: &LoopNest, reuse: &ReuseOptions) -> Arc<CmeSystem> {
        let id = self.db.intern(nest);
        let key = keys::system_key(&self.cache, reuse, self.db.structural_hash(id));
        let layout = self.db.layout_hash(id);
        {
            let mut map = relock(&self.system_memo);
            if let Some(entry) = map.get_mut(&key) {
                if entry.layout == layout {
                    self.counters.systems_reused.fetch_add(1, Ordering::Relaxed);
                    return entry.system.clone();
                }
                let rebased = Arc::new(entry.system.rebase_to(nest));
                entry.layout = layout;
                entry.system = rebased.clone();
                self.counters
                    .systems_rebased
                    .fetch_add(1, Ordering::Relaxed);
                return rebased;
            }
        }
        let system = Arc::new(CmeSystem::generate(nest, self.cache, reuse));
        self.counters
            .systems_generated
            .fetch_add(1, Ordering::Relaxed);
        let mut map = relock(&self.system_memo);
        if map.len() >= SYSTEM_CAP {
            map.clear();
        }
        map.insert(
            key,
            SystemEntry {
                layout,
                system: system.clone(),
            },
        );
        system
    }

    /// Counts a replacement equation's solutions through the shared solve
    /// memo (see
    /// [`crate::equations::ReplacementEquation::count_solutions_memo`]).
    pub fn count_replacement(
        &self,
        eq: &crate::equations::ReplacementEquation,
        nest: &LoopNest,
    ) -> u64 {
        eq.count_solutions_memo(nest, &self.cache, Some(&self.solve_memo))
    }

    /// Drops every cached artifact (including lowered nests; the interned
    /// program database itself is kept — handles stay valid). Counters
    /// keep accumulating.
    pub fn clear_caches(&self) {
        relock(&self.lower_memo).clear();
        relock(&self.reuse_memo).clear();
        relock(&self.cascade_memo).clear();
        relock(&self.scan_memo).clear();
        relock(&self.system_memo).clear();
        self.solve_memo.clear();
    }
}
