use super::*;
use crate::equations::CmeSystem;
use crate::governor::Outcome;
use cme_ir::{AccessKind, NestBuilder};
use std::time::Duration;

fn matmul(n: i64, bz: i64, bx: i64, by: i64) -> LoopNest {
    let mut b = NestBuilder::new();
    b.name("mmult");
    b.ct_loop("i", 1, n).ct_loop("k", 1, n).ct_loop("j", 1, n);
    let z = b.array("Z", &[n, n], bz);
    let x = b.array("X", &[n, n], bx);
    let y = b.array("Y", &[n, n], by);
    b.reference(z, AccessKind::Read, &[("j", 0), ("i", 0)]);
    b.reference(x, AccessKind::Read, &[("k", 0), ("i", 0)]);
    b.reference(y, AccessKind::Read, &[("j", 0), ("k", 0)]);
    b.reference(z, AccessKind::Write, &[("j", 0), ("i", 0)]);
    b.build().unwrap()
}

#[test]
fn engine_matches_reference_warm_and_cold() {
    let cache = CacheConfig::new(2048, 2, 32, 4).unwrap();
    let opts = AnalysisOptions::builder().collect_miss_points(true).build();
    let mut analyzer = Analyzer::new(cache).options(opts.clone());
    for bases in [[0, 300, 777], [0, 300, 777], [32, 300, 777], [5, 311, 801]] {
        let nest = matmul(12, bases[0], bases[1], bases[2]);
        let reference = crate::solve::solve_nest(&nest, cache, &opts);
        let cold = analyzer.analyze(&nest);
        let warm = analyzer.analyze(&nest);
        assert_eq!(reference, cold);
        assert_eq!(reference, warm);
    }
    let stats = analyzer.stats();
    assert!(stats.lowered_reused > 0, "{stats}");
    assert!(stats.cascades_reused > 0, "{stats}");
    assert!(stats.scans_reused > 0, "{stats}");
    assert!(stats.memo_hit_rate() > 0.0);
}

#[test]
fn engine_matches_reference_with_epsilon_and_exact() {
    let cache = CacheConfig::new(8192, 1, 32, 4).unwrap();
    for opts in [
        AnalysisOptions::builder().epsilon(200).build(),
        AnalysisOptions::builder()
            .exact_equation_counts(true)
            .build(),
        AnalysisOptions::builder().pointwise_windows(true).build(),
    ] {
        let nest = matmul(8, 0, 4096, 8192);
        let reference = crate::solve::solve_nest(&nest, cache, &opts);
        let mut analyzer = Analyzer::new(cache).options(opts.clone());
        assert_eq!(reference, analyzer.analyze(&nest));
        assert_eq!(reference, analyzer.analyze(&nest), "warm pass diverged");
    }
}

#[test]
fn batch_is_bit_identical_to_per_nest_analyses() {
    let cache = CacheConfig::new(2048, 2, 32, 4).unwrap();
    let ls = cache.line_elems();
    let nests: Vec<LoopNest> = vec![
        matmul(10, 0, 300, 777),
        matmul(10, 0, 300, 777 + ls), // shares structure + most artifacts
        matmul(7, 5, 311, 801),       // different structure entirely
    ];
    let mut solo = Analyzer::new(cache).threads(3);
    let one_by_one: Vec<NestAnalysis> = nests.iter().map(|n| solo.analyze(n)).collect();

    let mut batched = Analyzer::new(cache).threads(3);
    let ids: Vec<NestId> = nests.iter().map(|n| batched.intern(n)).collect();
    let together = batched.analyze_batch(&ids);
    assert_eq!(together, one_by_one);

    // The batch shares memo tables across its nests: the layout twin
    // reuses the first nest's reuse vectors and solve sets in the same
    // call, and re-batching is a pure memo sweep.
    let stats = batched.stats();
    assert!(stats.cascades_reused > 0, "{stats}");
    let built = stats.cascades_built;
    assert_eq!(batched.analyze_batch(&ids), one_by_one);
    assert_eq!(batched.stats().cascades_built, built, "warm batch rebuilt");
}

#[test]
fn governed_batch_tags_outcomes_per_nest() {
    let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
    let mut analyzer = Analyzer::new(cache);
    let ids = [
        analyzer.intern(&matmul(6, 0, 100, 200)),
        analyzer.intern(&matmul(8, 0, 128, 256)),
    ];
    let governed = analyzer.try_analyze_batch(&ids).unwrap();
    assert_eq!(governed.len(), 2);
    for g in &governed {
        assert_eq!(g.outcome, Outcome::Complete);
    }
    assert_eq!(governed[0].analysis, analyzer.analyze_id(ids[0]));

    // A cancelled batch degrades every nest to the sound all-cold bound.
    let token = CancelToken::new();
    token.cancel();
    let mut cancelled = Analyzer::new(cache).cancel_token(token);
    let ids = [
        cancelled.intern(&matmul(6, 0, 100, 200)),
        cancelled.intern(&matmul(8, 0, 128, 256)),
    ];
    let degraded = cancelled.try_analyze_batch(&ids).unwrap();
    for (g, id) in degraded.iter().zip(ids) {
        assert!(g.outcome.is_exhausted());
        let space: u64 = cancelled.engine().db().nest(id).space().count();
        let per_ref = cancelled.engine().db().nest(id).references().len() as u64;
        assert_eq!(g.analysis.total_misses(), space * per_ref);
    }
}

#[test]
fn caching_off_is_a_passthrough() {
    let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
    let nest = matmul(6, 0, 100, 200);
    let mut analyzer = Analyzer::new(cache).caching(false);
    let a = analyzer.analyze(&nest);
    let b = analyzer.analyze(&nest);
    assert_eq!(a, b);
    let stats = analyzer.stats();
    assert_eq!(stats.passthroughs, 8, "4 refs x 2 analyses uncached");
    assert_eq!(stats.cascades_built + stats.cascades_reused, 0);
}

#[test]
fn moving_one_array_reuses_other_cascades() {
    let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
    let ls = cache.line_elems();
    let mut analyzer = Analyzer::new(cache);
    let n1 = matmul(8, 0, 128, 256);
    let n2 = matmul(8, 0, 128, 256 + ls); // move Y by a whole line
    let reference = crate::solve::solve_nest(&n2, cache, &AnalysisOptions::default());
    analyzer.analyze(&n1);
    let built_before = analyzer.stats().cascades_built;
    assert_eq!(analyzer.analyze(&n2), reference);
    // Every reference keeps B mod Ls, so no cascade is rebuilt.
    assert_eq!(analyzer.stats().cascades_built, built_before);
}

#[test]
fn system_cache_generates_rebases_and_reuses() {
    let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
    let reuse = cme_reuse::ReuseOptions::default();
    let mut engine = Engine::new(cache);
    let n1 = matmul(8, 0, 128, 256);
    let s1 = engine.system(&n1, &reuse);
    let s1b = engine.system(&n1, &reuse);
    assert!(Arc::ptr_eq(&s1, &s1b));
    let n2 = matmul(8, 8, 130, 300);
    let s2 = engine.system(&n2, &reuse);
    assert_eq!(*s2, CmeSystem::generate(&n2, cache, &reuse));
    let stats = engine.stats();
    assert_eq!(stats.systems_generated, 1);
    assert_eq!(stats.systems_rebased, 1);
    assert_eq!(stats.systems_reused, 1);
    assert!(stats.systems_saved() == 2);
}

#[test]
fn clear_caches_resets_tables_not_counters() {
    let cache = CacheConfig::new(1024, 1, 32, 4).unwrap();
    let nest = matmul(6, 0, 100, 200);
    let mut analyzer = Analyzer::new(cache);
    analyzer.analyze(&nest);
    analyzer.engine().clear_caches();
    let reference = crate::solve::solve_nest(&nest, cache, &AnalysisOptions::default());
    assert_eq!(analyzer.analyze(&nest), reference);
    let stats = analyzer.stats();
    assert_eq!(stats.analyses, 2);
    assert!(stats.cascades_built >= 8, "rebuilt after clear");
}

#[test]
fn stage_times_are_populated() {
    let cache = CacheConfig::new(2048, 2, 32, 4).unwrap();
    let mut analyzer = Analyzer::new(cache);
    analyzer.analyze(&matmul(12, 0, 300, 777));
    let stats = analyzer.stats();
    assert!(stats.time_lower > Duration::ZERO, "{stats}");
    assert!(stats.time_reuse > Duration::ZERO, "{stats}");
    assert!(stats.time_solve > Duration::ZERO, "{stats}");
    assert!(stats.time_cascade > Duration::ZERO, "{stats}");
    assert!(stats.time_classify > Duration::ZERO, "{stats}");
}

#[test]
fn stats_helpers_on_zero_queries() {
    let stats = EngineStats::default();
    assert_eq!(stats.memo_hit_rate(), 0.0);
    assert_eq!(stats.systems_saved(), 0);
    // A fresh engine that has answered nothing reports the same.
    let engine = Engine::new(CacheConfig::new(1024, 1, 32, 4).unwrap());
    assert_eq!(engine.stats().memo_hit_rate(), 0.0);
    assert_eq!(engine.stats().systems_saved(), 0);
}

#[test]
fn stats_helpers_saturate_instead_of_overflowing() {
    let stats = EngineStats {
        lowered_built: u64::MAX,
        lowered_reused: u64::MAX,
        reuse_built: u64::MAX,
        reuse_reused: u64::MAX,
        cascades_built: u64::MAX,
        cascades_reused: u64::MAX,
        scans_executed: u64::MAX,
        scans_reused: u64::MAX,
        systems_rebased: u64::MAX,
        systems_reused: u64::MAX,
        ..EngineStats::default()
    };
    let rate = stats.memo_hit_rate();
    assert!(rate.is_finite() && (0.0..=1.0).contains(&rate));
    assert_eq!(rate, 1.0, "hits and total both saturate to u64::MAX");
    assert_eq!(stats.systems_saved(), u64::MAX);
}

#[test]
fn stats_hit_rate_counts_all_four_memo_families() {
    let stats = EngineStats {
        lowered_built: 1,
        lowered_reused: 1,
        reuse_built: 1,
        reuse_reused: 1,
        cascades_built: 1,
        cascades_reused: 1,
        scans_executed: 1,
        scans_reused: 1,
        ..EngineStats::default()
    };
    assert!((stats.memo_hit_rate() - 0.5).abs() < 1e-12);
}

#[test]
fn traced_analysis_collects_points_and_stays_memoized() {
    let cache = CacheConfig::new(1024, 2, 32, 4).unwrap();
    let nest = matmul(8, 0, 100, 200);
    let mut analyzer = Analyzer::new(cache);
    let plain = analyzer.analyze(&nest);
    let traced = analyzer.analyze_traced(&nest);
    assert_eq!(traced.total_misses(), plain.total_misses());
    let collected: usize = traced
        .per_ref
        .iter()
        .map(|r| r.replacement_miss_points.len() + r.cold_miss_points.len())
        .sum();
    assert_eq!(collected as u64, traced.total_misses());
    assert!(
        analyzer.stats().scans_reused > 0,
        "traced re-analysis must reuse the plain run's scans"
    );
    // Session options are untouched.
    assert!(!analyzer.current_options().collect_miss_points);
}

/// Miss points traced at k=8 — real cascade output, not synthetic
/// runs — survive run compression losslessly: same count, same
/// points, same lexicographic order, random access intact.
#[test]
fn traced_miss_points_at_k8_run_compress_losslessly() {
    use crate::pointset::{PointSet, RunSet};
    let cache = CacheConfig::new(512, 8, 16, 4).unwrap();
    let nest = matmul(8, 0, 100, 200);
    let traced = Analyzer::new(cache).analyze_traced(&nest);
    assert!(traced.total_misses() > 0, "degenerate fixture");
    for (ri, r) in traced.per_ref.iter().enumerate() {
        let mut pts: Vec<Vec<i64>> = r
            .cold_miss_points
            .iter()
            .cloned()
            .chain(r.replacement_miss_points.iter().map(|(p, _)| p.clone()))
            .collect();
        pts.sort();
        pts.dedup();
        let mut ps = PointSet::new(nest.depth());
        for p in &pts {
            ps.push(p);
        }
        let rs = RunSet::from_point_set(&ps);
        assert_eq!(rs.len(), ps.len(), "ref {ri}: count changed");
        assert_eq!(rs.recount(), rs.len(), "ref {ri}: run totals drifted");
        assert_eq!(rs.to_point_set(), ps, "ref {ri}: points changed");
        for (idx, p) in pts.iter().enumerate() {
            assert_eq!(&rs.point(idx as u64), p, "ref {ri}: random access");
        }
    }
}
