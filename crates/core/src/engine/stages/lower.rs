//! Stage 1 — **lower**: resolve an interned [`NestId`] into the validated
//! artifact every later stage consumes.
//!
//! Lowering materializes the per-reference address affines (§2.4: the
//! memory address of a reference is an affine function of the iteration
//! vector), proves in one up-front pass that every address and the space
//! size fit 64-bit arithmetic (so the hot loops downstream can use
//! unchecked arithmetic), and carries the intern-time structural hash that
//! seeds every memo key.

use std::sync::Arc;

use cme_ir::{LoopNest, NestId, ProgramDb};
use cme_math::Affine;

use crate::governor::AnalysisError;

/// A validated, address-lowered nest: the output of the lower stage.
#[derive(Debug)]
pub(crate) struct LoweredNest {
    /// The interned nest (shared with the [`ProgramDb`]).
    pub(crate) nest: Arc<LoopNest>,
    /// Address affine of each reference, in reference order.
    pub(crate) addrs: Vec<Affine>,
    /// The intern-time base-invariant structural hash.
    pub(crate) structural: u128,
}

/// Lowers one interned nest.
///
/// # Errors
///
/// [`AnalysisError::Overflow`] when the nest's address arithmetic cannot
/// be performed in 64 bits.
pub(crate) fn lower(db: &ProgramDb, id: NestId) -> Result<LoweredNest, AnalysisError> {
    let nest = db.nest(id).clone();
    let addrs: Vec<Affine> = nest
        .references()
        .iter()
        .map(|r| nest.address_affine(r.id()))
        .collect();
    crate::governor::validate_address_math(&nest, &addrs)?;
    Ok(LoweredNest {
        addrs,
        structural: db.structural_hash(id),
        nest,
    })
}
