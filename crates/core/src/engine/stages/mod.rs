//! The staged analysis pipeline. One analysis flows through five stages,
//! each consuming the previous stage's typed artifact:
//!
//! ```text
//!  NestId ──lower──▶ LoweredNest ──reuse──▶ ReusePlan
//!                                              │
//!                                            solve
//!                                              ▼
//!   Classification ◀──classify── CascadeResult ◀──cascade── SolveSet
//! ```
//!
//! | stage      | paper ground                          | artifact        |
//! |------------|---------------------------------------|-----------------|
//! | `lower`    | §2.4 iteration space / addressing     | [`lower::LoweredNest`] |
//! | `reuse`    | §2.2, §3.3 reuse vectors              | [`reuse::ReusePlan`]   |
//! | `solve`    | §3.1 cold CMEs, Fig. 6 classification | [`solve::SolveSet`]    |
//! | `cascade`  | §3.2 Eq. 4 replacement, §4.2 k-way    | [`cascade::CascadeResult`] |
//! | `classify` | Fig. 6 composition, ε early stop      | [`classify::Classification`] |
//!
//! Layering rule (enforced by `tests/architecture.rs`): a stage may use
//! artifacts of *upstream* stages only — `lower < reuse < solve < cascade
//! < classify` — and never reaches into a downstream stage. Only the
//! driver in [`super`] (`engine/mod.rs`) sees the whole pipeline; it
//! memoizes each stage's artifact independently under the keys of
//! [`super::keys`] and promotes governor checkpoints to the stage
//! boundaries (plus the documented mid-stage checkpoints inside `solve`
//! and `cascade`, which keep long stages cancellable).

pub(crate) mod lower;

pub(crate) mod reuse;

pub(crate) mod solve;

pub(crate) mod cascade;

pub(crate) mod classify;
