//! Stage 4 — **cascade**: the window scans that settle each surviving
//! point's fate — §3.2's replacement equations (Eq. 4), generalized to
//! k-way LRU sets (§4.2: a point misses when at least `k` distinct
//! interfering lines map into its set inside the reuse window).
//!
//! Each `(reference, reuse-vector)` scan is sharded into contiguous
//! blocks of whole survivor runs ([`split_blocks`]) dispatched through
//! the driver's work pool, and the per-block [`CascadeResult`]s are
//! merged back in block order — so the merged outcome entering the memo
//! tables is independent of the sharding.
//!
//! The default mode slides a [`SlidingWindow`] along each run, paying
//! O(references) per point instead of O(window); exact-count and
//! pointwise modes fall back to the per-point [`Scanner`] (their verdicts
//! need per-perpetrator detail the window multiset does not keep), which
//! still shards fine — contentions are per-point sums.

use cme_cache::CacheConfig;
use cme_reuse::ReuseVector;

use crate::governor::QueryGovernor;
use crate::pointset::RunSet;
use crate::solve::{scan_interior, scan_interior_pointwise, AnalysisOptions, Scanner};
use crate::window::{Geom, SlidingWindow, WindowStats};

use super::super::stats::Counters;
use super::lower::LoweredNest;

/// The verdicts of one `(reference, reuse-vector)` batch of window scans,
/// aligned with the solve set's `scan_set` order. Always the *merged*
/// result over every shard — block boundaries never leak into the memo
/// tables.
#[derive(Debug, Clone)]
pub(crate) struct CascadeResult {
    pub(crate) replacement_misses: u64,
    /// Per-perpetrator contention counts (all zero unless exact mode).
    pub(crate) contentions: Vec<u64>,
    /// Indices into the scan set of the points judged misses.
    pub(crate) miss_indices: Vec<u64>,
    /// Points the governor cut short, counted as misses (sound
    /// overcount); nonzero outcomes must never enter the memo tables.
    pub(crate) truncated: u64,
}

impl CascadeResult {
    /// An all-zero accumulator for merging block results of a nest with
    /// `nrefs` references.
    pub(crate) fn empty(nrefs: usize) -> Self {
        CascadeResult {
            replacement_misses: 0,
            contentions: vec![0; nrefs],
            miss_indices: Vec::new(),
            truncated: 0,
        }
    }
}

/// Minimum points per scan block: below this the dispatch overhead beats
/// the parallelism.
const MIN_BLOCK_POINTS: u64 = 4096;

/// Shards a scan set into contiguous blocks of whole runs, sized so every
/// worker gets a few blocks. A single oversized run still forms one block
/// (runs are the sharding granularity).
pub(crate) fn split_blocks(set: &RunSet, threads: usize) -> Vec<(usize, usize)> {
    let nruns = set.run_count();
    if nruns == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return vec![(0, nruns)];
    }
    let target = (set.len() / (threads as u64 * 4)).max(MIN_BLOCK_POINTS);
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for ri in 0..nruns {
        acc += set.run(ri).len();
        if acc >= target {
            blocks.push((start, ri + 1));
            start = ri + 1;
            acc = 0;
        }
    }
    if start < nruns {
        blocks.push((start, nruns));
    }
    blocks
}

/// Scans the reuse windows of the survivors in runs `run_lo..run_hi` of
/// `points` along `rv` — the verdict half of Figure 6, with miss indices
/// reported in the scan set's global order so per-block outcomes
/// concatenate into the unsharded result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_run_block(
    lowered: &LoweredNest,
    cache: &CacheConfig,
    dest_idx: usize,
    rv: &ReuseVector,
    points: &RunSet,
    run_lo: usize,
    run_hi: usize,
    options: &AnalysisOptions,
    counters: &Counters,
    gov: &QueryGovernor,
) -> CascadeResult {
    let nest = &*lowered.nest;
    let addrs = &lowered.addrs;
    let depth = nest.depth();
    let inner = depth - 1;
    let space = nest.space();
    let k = cache.assoc() as usize;
    let nrefs = addrs.len();
    let dest_addr = &addrs[dest_idx];
    let src_idx = rv.source().index();
    let r = rv.vector();
    let intra = rv.is_intra_iteration();
    let geom = Geom::new(cache);
    let mut contentions = vec![0u64; nrefs];
    let mut replacement_misses = 0u64;
    let mut miss_indices: Vec<u64> = Vec::new();
    let mut i_buf = vec![0i64; depth];
    let mut block_points = 0u64;
    let mut truncated = 0u64;
    // Governed runs check the budget every `chunk` points; at full budget
    // the chunk spans the whole run, so the per-point loops below run
    // exactly as before (one extra comparison per run).
    let chunk: i64 = if gov.unlimited() { i64::MAX } else { 4096 };

    if options.exact_equation_counts || options.pointwise_windows {
        // Per-point scan.
        let mut scanner = Scanner::new(cache, addrs, k, options.exact_equation_counts);
        let mut p = vec![0i64; depth];
        'runs_pointwise: for ri in run_lo..run_hi {
            let run = points.run(ri);
            i_buf[..inner].copy_from_slice(run.prefix);
            let mut seg = run.lo;
            while seg <= run.hi {
                let seg_hi = run.hi.min(seg.saturating_add(chunk - 1));
                if !gov.live() {
                    truncated += count_rest_as_misses(
                        points,
                        ri,
                        run_hi,
                        seg,
                        &mut miss_indices,
                        &mut replacement_misses,
                    );
                    break 'runs_pointwise;
                }
                block_points += (seg_hi - seg + 1) as u64;
                gov.charge((seg_hi - seg + 1) as u64);
                for t in seg..=seg_hi {
                    i_buf[inner] = t;
                    let i = &i_buf;
                    for l in 0..depth {
                        p[l] = i[l] - r[l];
                    }
                    let a_dest = dest_addr.eval(i);
                    let dline = geom.line(a_dest);
                    scanner.reset(geom.set_of_line(dline), dline);
                    let mut go = true;
                    if intra {
                        for s in (src_idx + 1)..dest_idx {
                            if !scanner.check(i, s) {
                                break;
                            }
                        }
                    } else {
                        // Tail of the source iteration (statements after the
                        // source).
                        for s in (src_idx + 1)..nrefs {
                            if !scanner.check(&p, s) {
                                go = false;
                                break;
                            }
                        }
                        // Whole iterations strictly between, row by row.
                        if go {
                            go = if options.pointwise_windows {
                                scan_interior_pointwise(&mut scanner, &space, &p, i)
                            } else {
                                scan_interior(&mut scanner, &space, &p, i)
                            };
                        }
                        // Head of the destination iteration (statements before
                        // dest).
                        if go {
                            for s in 0..dest_idx {
                                if !scanner.check(i, s) {
                                    break;
                                }
                            }
                        }
                    }
                    if options.exact_equation_counts {
                        for (s, v) in scanner.per_perp.iter().enumerate() {
                            contentions[s] += v.len() as u64;
                        }
                    }
                    if scanner.distinct.len() >= k {
                        replacement_misses += 1;
                        miss_indices.push(run.start + (t - run.lo) as u64);
                    }
                }
                seg = seg_hi + 1;
            }
        }
        counters.absorb_scan(block_points, WindowStats::default());
        gov.note_truncated(truncated);
        return CascadeResult {
            replacement_misses,
            contentions,
            miss_indices,
            truncated,
        };
    }

    // Fast mode: slide the window along each run. Inside one run the
    // lockstep condition holds by construction, so the loop steps through
    // per-reference address accumulators — no affine evaluation and no
    // space checks per point; the endpoint side accesses fall out of the
    // same accumulators (`w.src_addr(s)` is reference `s` at `p⃗`,
    // `w.dst_addr(s)` at `i⃗`) and are deduplicated against the window and
    // each other.
    let mut w = SlidingWindow::new_for_space(cache, addrs, &space);
    let mut p_buf = vec![0i64; depth];
    let mut side: Vec<i64> = Vec::new();
    let kk = k as u64;
    'runs: for ri in run_lo..run_hi {
        let run = points.run(ri);
        i_buf[..inner].copy_from_slice(run.prefix);
        if intra {
            // No interior: only the statements strictly between the source
            // and the destination, at i⃗ itself, with addresses accumulated
            // along the run.
            let mut dest_a = {
                i_buf[inner] = run.lo;
                dest_addr.eval(&i_buf)
            };
            let dest_stride = dest_addr.coeff(inner);
            let mut side_a: Vec<i64> = addrs[(src_idx + 1)..dest_idx]
                .iter()
                .map(|a| a.eval(&i_buf))
                .collect();
            let side_strides: Vec<i64> = addrs[(src_idx + 1)..dest_idx]
                .iter()
                .map(|a| a.coeff(inner))
                .collect();
            let mut seg = run.lo;
            while seg <= run.hi {
                let seg_hi = run.hi.min(seg.saturating_add(chunk - 1));
                if !gov.live() {
                    truncated += count_rest_as_misses(
                        points,
                        ri,
                        run_hi,
                        seg,
                        &mut miss_indices,
                        &mut replacement_misses,
                    );
                    break 'runs;
                }
                block_points += (seg_hi - seg + 1) as u64;
                gov.charge((seg_hi - seg + 1) as u64);
                for t in seg..=seg_hi {
                    let dline = geom.line(dest_a);
                    let dset = geom.set_of_line(dline);
                    let mut conflicts = 0;
                    side.clear();
                    for &addr in &side_a {
                        if conflicts >= kk {
                            break;
                        }
                        let line = geom.line(addr);
                        if geom.set_of_line(line) == dset && line != dline && !side.contains(&line)
                        {
                            side.push(line);
                            conflicts += 1;
                        }
                    }
                    if conflicts >= kk {
                        replacement_misses += 1;
                        miss_indices.push(run.start + (t - run.lo) as u64);
                    }
                    dest_a += dest_stride;
                    for (a, st) in side_a.iter_mut().zip(&side_strides) {
                        *a += st;
                    }
                }
                seg = seg_hi + 1;
            }
            continue;
        }
        // Position the window at the run's first point; every further
        // point is one guaranteed-lockstep step.
        i_buf[inner] = run.lo;
        for l in 0..depth {
            p_buf[l] = i_buf[l] - r[l];
        }
        w.begin_segment(&space, &p_buf, &i_buf, r);
        let mut seg = run.lo;
        while seg <= run.hi {
            let seg_hi = run.hi.min(seg.saturating_add(chunk - 1));
            if !gov.live() {
                truncated += count_rest_as_misses(
                    points,
                    ri,
                    run_hi,
                    seg,
                    &mut miss_indices,
                    &mut replacement_misses,
                );
                break 'runs;
            }
            block_points += (seg_hi - seg + 1) as u64;
            gov.charge((seg_hi - seg + 1) as u64);
            for t in seg..=seg_hi {
                if t > run.lo {
                    w.step_in_segment();
                }
                let a_dest = w.dst_addr(dest_idx);
                let dline = geom.line(a_dest);
                let dset = geom.set_of_line(dline);
                let mut conflicts = w.distinct_excluding(dset, dline);
                side.clear();
                // Tail of the source iteration, then head of the destination
                // iteration.
                for (at_src, lo_s, hi_s) in [(true, src_idx + 1, nrefs), (false, 0, dest_idx)] {
                    for s in lo_s..hi_s {
                        if conflicts >= kk {
                            break;
                        }
                        let addr = if at_src { w.src_addr(s) } else { w.dst_addr(s) };
                        let line = geom.line(addr);
                        if geom.set_of_line(line) == dset
                            && line != dline
                            && !w.contains_line(line)
                            && !side.contains(&line)
                        {
                            side.push(line);
                            conflicts += 1;
                        }
                    }
                }
                if conflicts >= kk {
                    replacement_misses += 1;
                    miss_indices.push(run.start + (t - run.lo) as u64);
                }
            }
            seg = seg_hi + 1;
        }
    }
    counters.absorb_scan(block_points, w.stats);
    gov.note_truncated(truncated);
    CascadeResult {
        replacement_misses,
        contentions,
        miss_indices,
        truncated,
    }
}

/// Degrades the unscanned tail of a block — everything from innermost
/// index `from_t` of run `from_run` through run `run_hi - 1` — by counting
/// every point as a replacement miss (indeterminate-treated-as-miss).
/// Indices stay in global scan-set order, so merged outcomes remain
/// well-formed. Returns the number of points degraded.
fn count_rest_as_misses(
    points: &RunSet,
    from_run: usize,
    run_hi: usize,
    from_t: i64,
    miss_indices: &mut Vec<u64>,
    replacement_misses: &mut u64,
) -> u64 {
    let mut degraded = 0u64;
    for ri in from_run..run_hi {
        let run = points.run(ri);
        let lo = if ri == from_run {
            from_t.max(run.lo)
        } else {
            run.lo
        };
        if lo > run.hi {
            continue;
        }
        for t in lo..=run.hi {
            miss_indices.push(run.start + (t - run.lo) as u64);
        }
        let n = (run.hi - lo + 1) as u64;
        *replacement_misses += n;
        degraded += n;
    }
    degraded
}
