//! Stage 4 — **cascade**: the window scans that settle each surviving
//! point's fate — §3.2's replacement equations (Eq. 4), generalized to
//! k-way LRU sets (§4.2: a point misses when at least `k` distinct
//! interfering lines map into its set inside the reuse window).
//!
//! Each `(reference, reuse-vector)` scan is sharded into contiguous
//! blocks of whole survivor runs ([`split_blocks`]) dispatched through
//! the driver's work pool, and the per-block [`CascadeResult`]s are
//! merged back in block order — so the merged outcome entering the memo
//! tables is independent of the sharding.
//!
//! The default mode slides a [`SlidingWindow`] along each run, paying
//! O(references) per point instead of O(window); exact-count and
//! pointwise modes fall back to the per-point [`Scanner`] (their verdicts
//! need per-perpetrator detail the window multiset does not keep), which
//! still shards fine — contentions are per-point sums.

use cme_cache::CacheConfig;
use cme_reuse::ReuseVector;

use crate::governor::QueryGovernor;
use crate::pointset::SurvivorSet;
use crate::solve::{scan_interior, scan_interior_pointwise, AnalysisOptions, Scanner};
use crate::window::{Geom, SlidingWindow, WindowStats};

use super::super::stats::Counters;
use super::lower::LoweredNest;

/// The verdicts of one `(reference, reuse-vector)` batch of window scans,
/// aligned with the solve set's `scan_set` order. Always the *merged*
/// result over every shard — block boundaries never leak into the memo
/// tables.
#[derive(Debug, Clone)]
pub(crate) struct CascadeResult {
    pub(crate) replacement_misses: u64,
    /// Per-perpetrator contention counts (all zero unless exact mode).
    pub(crate) contentions: Vec<u64>,
    /// Maximal runs `(lo, hi)` (inclusive, increasing, non-adjacent) of
    /// scan-set indices judged misses. Verdicts flip only at memory-line
    /// boundaries, so misses cluster into `O(points / Ls)` runs — the
    /// run form is both the compact storage and the unit the segmented
    /// scan emits directly.
    pub(crate) miss_runs: Vec<(u64, u64)>,
    /// Points the governor cut short, counted as misses (sound
    /// overcount); nonzero outcomes must never enter the memo tables.
    pub(crate) truncated: u64,
}

impl CascadeResult {
    /// An all-zero accumulator for merging block results of a nest with
    /// `nrefs` references.
    pub(crate) fn empty(nrefs: usize) -> Self {
        CascadeResult {
            replacement_misses: 0,
            contentions: vec![0; nrefs],
            miss_runs: Vec::new(),
            truncated: 0,
        }
    }
}

/// Appends the inclusive index span `[lo, hi]` to a canonical miss-run
/// list, fusing with the last run when adjacent — pushes arrive in
/// strictly increasing index order, so this keeps the list in maximal-run
/// form no matter how the scan was segmented.
#[inline]
pub(crate) fn push_miss_span(runs: &mut Vec<(u64, u64)>, lo: u64, hi: u64) {
    if let Some(last) = runs.last_mut() {
        if last.1 + 1 == lo {
            last.1 = hi;
            return;
        }
    }
    runs.push((lo, hi));
}

/// Number of innermost steps (≥ 1) for which `addr + stride·Δ` stays on
/// `line = ⌊addr/Ls⌋`; `i64::MAX` for temporal (stride-0) references.
#[inline]
fn line_span(addr: i64, stride: i64, line: i64, ls: i64) -> i64 {
    match stride.cmp(&0) {
        std::cmp::Ordering::Equal => i64::MAX,
        std::cmp::Ordering::Greater => crate::window::ceil_div((line + 1) * ls - addr, stride),
        std::cmp::Ordering::Less => crate::window::ceil_div(addr + 1 - line * ls, -stride),
    }
}

/// Minimum points per scan block: below this the dispatch overhead beats
/// the parallelism.
const MIN_BLOCK_POINTS: u64 = 4096;

/// Reuse-plan-aware shard weight for [`split_blocks`]: a stepping vector
/// (any component besides a gap-one innermost) drags the window across
/// whole array rows per point, so its per-point scan cost dwarfs gap-one
/// and intra-iteration vectors — its scans split 16× finer so the pool
/// can balance them.
pub(crate) fn shard_weight(r: &[i64]) -> u64 {
    let inner = r.len() - 1;
    let intra = r.iter().all(|&c| c == 0);
    let gap_one = r[inner] == 1 && r[..inner].iter().all(|&c| c == 0);
    if intra || gap_one {
        1
    } else {
        16
    }
}

/// Shards a scan set into contiguous blocks of whole chunks (runs of a
/// [`RunSet`], rows of a dense set), sized so every worker gets a few
/// blocks. `weight` is the reuse plan's relative per-point cost estimate
/// (stepping vectors touch far more window state per point than gap-one
/// or intra vectors), so expensive scans split into proportionally
/// smaller blocks and the pool can balance them. A single oversized
/// chunk still forms one block (chunks are the sharding granularity).
pub(crate) fn split_blocks(set: &SurvivorSet, threads: usize, weight: u64) -> Vec<(usize, usize)> {
    let nchunks = set.chunk_count();
    if nchunks == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return vec![(0, nchunks)];
    }
    let floor = MIN_BLOCK_POINTS / weight.clamp(1, MIN_BLOCK_POINTS);
    let target = (set.len() / (threads as u64 * 4)).max(floor.max(1));
    let mut blocks = Vec::new();
    let mut start = 0usize;
    for ci in 0..nchunks {
        if set.chunk_start(ci + 1) - set.chunk_start(start) >= target {
            blocks.push((start, ci + 1));
            start = ci + 1;
        }
    }
    if start < nchunks {
        blocks.push((start, nchunks));
    }
    blocks
}

/// Scans the reuse windows of the survivors in chunks `chunk_lo..chunk_hi`
/// of `points` along `rv` — the verdict half of Figure 6, with miss
/// indices reported in the scan set's global order so per-block outcomes
/// concatenate into the unsharded result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_run_block(
    lowered: &LoweredNest,
    cache: &CacheConfig,
    dest_idx: usize,
    rv: &ReuseVector,
    points: &SurvivorSet,
    chunk_lo: usize,
    chunk_hi: usize,
    options: &AnalysisOptions,
    counters: &Counters,
    gov: &QueryGovernor,
) -> CascadeResult {
    let nest = &*lowered.nest;
    let addrs = &lowered.addrs;
    let depth = nest.depth();
    let inner = depth - 1;
    let space = nest.space();
    let k = cache.assoc() as usize;
    let nrefs = addrs.len();
    let dest_addr = &addrs[dest_idx];
    let src_idx = rv.source().index();
    let r = rv.vector();
    let intra = rv.is_intra_iteration();
    let geom = Geom::new(cache);
    let mut contentions = vec![0u64; nrefs];
    let mut replacement_misses = 0u64;
    let mut miss_runs: Vec<(u64, u64)> = Vec::new();
    let mut i_buf = vec![0i64; depth];
    let mut block_points = 0u64;
    let mut truncated = 0u64;
    // Global point index one past this block — the truncation paths
    // degrade everything from the cut point to here in O(1).
    let block_end = points.chunk_start(chunk_hi);
    // Governed runs check the budget every `chunk` points; at full budget
    // the chunk spans the whole run, so the per-point loops below run
    // exactly as before (one extra comparison per run).
    let chunk: i64 = if gov.unlimited() { i64::MAX } else { 4096 };

    if options.exact_equation_counts || options.pointwise_windows {
        // Per-point scan.
        let mut scanner = Scanner::new(cache, addrs, k, options.exact_equation_counts);
        let mut p = vec![0i64; depth];
        'runs_pointwise: for run in points.runs_in(chunk_lo, chunk_hi) {
            i_buf[..inner].copy_from_slice(run.prefix);
            let mut seg = run.lo;
            while seg <= run.hi {
                let seg_hi = run.hi.min(seg.saturating_add(chunk - 1));
                if !gov.live() {
                    truncated += degrade_tail(
                        run.start + (seg - run.lo) as u64,
                        block_end,
                        &mut miss_runs,
                        &mut replacement_misses,
                    );
                    break 'runs_pointwise;
                }
                block_points += (seg_hi - seg + 1) as u64;
                gov.charge((seg_hi - seg + 1) as u64);
                for t in seg..=seg_hi {
                    i_buf[inner] = t;
                    let i = &i_buf;
                    for l in 0..depth {
                        p[l] = i[l] - r[l];
                    }
                    let a_dest = dest_addr.eval(i);
                    let dline = geom.line(a_dest);
                    scanner.reset(geom.set_of_line(dline), dline);
                    let mut go = true;
                    if intra {
                        for s in (src_idx + 1)..dest_idx {
                            if !scanner.check(i, s) {
                                break;
                            }
                        }
                    } else {
                        // Tail of the source iteration (statements after the
                        // source).
                        for s in (src_idx + 1)..nrefs {
                            if !scanner.check(&p, s) {
                                go = false;
                                break;
                            }
                        }
                        // Whole iterations strictly between, row by row.
                        if go {
                            go = if options.pointwise_windows {
                                scan_interior_pointwise(&mut scanner, &space, &p, i)
                            } else {
                                scan_interior(&mut scanner, &space, &p, i)
                            };
                        }
                        // Head of the destination iteration (statements before
                        // dest).
                        if go {
                            for s in 0..dest_idx {
                                if !scanner.check(i, s) {
                                    break;
                                }
                            }
                        }
                    }
                    if options.exact_equation_counts {
                        for (s, v) in scanner.per_perp.iter().enumerate() {
                            contentions[s] += v.len() as u64;
                        }
                    }
                    if scanner.distinct.len() >= k {
                        replacement_misses += 1;
                        let g = run.start + (t - run.lo) as u64;
                        push_miss_span(&mut miss_runs, g, g);
                    }
                }
                seg = seg_hi + 1;
            }
        }
        counters.absorb_scan(block_points, WindowStats::default());
        gov.note_truncated(truncated);
        return CascadeResult {
            replacement_misses,
            contentions,
            miss_runs,
            truncated,
        };
    }

    // Fast mode. Two sub-paths:
    //
    // **Affine segment path** — intra scans and gap-one scans (vector
    // `(0,…,0,1)`) have an *empty* reuse-window interior, so the verdict
    // at a point depends only on the endpoint side accesses, each an
    // affine function of the innermost index. Their memory lines are
    // floors of affine functions, constant between computable
    // line-boundary crossings, so one verdict settles a whole segment
    // (~Ls points for stride-1 references) pushed as a single miss run.
    //
    // **Stepping path** — every other vector keeps a live window
    // interior; slide a [`SlidingWindow`] along the run, paying
    // O(references) per point.
    let mut p_buf = vec![0i64; depth];
    let mut side: Vec<i64> = Vec::new();
    let kk = k as u64;
    let ls = cache.line_elems();
    let gap_one = !intra && r[inner] == 1 && r[..inner].iter().all(|&c| c == 0);

    if intra || gap_one {
        // Side references: for intra, the statements strictly between the
        // source and the destination, at i⃗ itself; for gap-one, the tail
        // of the source iteration at p⃗ then the head of the destination
        // iteration at i⃗ (matching the stepping path's probe order).
        let specs: Vec<(usize, bool)> = if intra {
            ((src_idx + 1)..dest_idx).map(|s| (s, false)).collect()
        } else {
            ((src_idx + 1)..nrefs)
                .map(|s| (s, true))
                .chain((0..dest_idx).map(|s| (s, false)))
                .collect()
        };
        let dest_stride = dest_addr.coeff(inner);
        let strides: Vec<i64> = specs.iter().map(|&(s, _)| addrs[s].coeff(inner)).collect();
        // Segment only when every involved reference crosses lines at
        // most every other step (average segment ≥ 2); a reference
        // striding a whole line per step would degrade segmentation to
        // per-point work plus the crossing arithmetic.
        let segmented = 2 * dest_stride.unsigned_abs() <= ls as u64
            && strides.iter().all(|s| 2 * s.unsigned_abs() <= ls as u64);
        let mut side_a: Vec<i64> = vec![0; specs.len()];
        'runs_affine: for run in points.runs_in(chunk_lo, chunk_hi) {
            i_buf[..inner].copy_from_slice(run.prefix);
            i_buf[inner] = run.lo;
            let mut dest_a = dest_addr.eval(&i_buf);
            for l in 0..depth {
                p_buf[l] = i_buf[l] - r[l];
            }
            for (slot, &(s, at_src)) in side_a.iter_mut().zip(&specs) {
                *slot = addrs[s].eval(if at_src { &p_buf } else { &i_buf });
            }
            let mut seg = run.lo;
            while seg <= run.hi {
                let seg_hi = run.hi.min(seg.saturating_add(chunk - 1));
                if !gov.live() {
                    truncated += degrade_tail(
                        run.start + (seg - run.lo) as u64,
                        block_end,
                        &mut miss_runs,
                        &mut replacement_misses,
                    );
                    break 'runs_affine;
                }
                block_points += (seg_hi - seg + 1) as u64;
                gov.charge((seg_hi - seg + 1) as u64);
                if specs.is_empty() {
                    // No interference source at all: the run is all hits.
                    // (Still charged above — budget use is path-independent.)
                    seg = seg_hi + 1;
                    continue;
                }
                if segmented {
                    let mut t = seg;
                    while t <= seg_hi {
                        let dline = geom.line(dest_a);
                        let dset = geom.set_of_line(dline);
                        let mut span =
                            (seg_hi - t + 1).min(line_span(dest_a, dest_stride, dline, ls));
                        let mut conflicts = 0u64;
                        side.clear();
                        for (j, &addr) in side_a.iter().enumerate() {
                            if conflicts >= kk {
                                // Unexamined references cannot lower the
                                // verdict: the examined prefix alone keeps
                                // `conflicts ≥ k` for the whole span.
                                break;
                            }
                            let line = geom.line(addr);
                            span = span.min(line_span(addr, strides[j], line, ls));
                            if geom.set_of_line(line) == dset
                                && line != dline
                                && !side.contains(&line)
                            {
                                side.push(line);
                                conflicts += 1;
                            }
                        }
                        if conflicts >= kk {
                            let g = run.start + (t - run.lo) as u64;
                            replacement_misses += span as u64;
                            push_miss_span(&mut miss_runs, g, g + span as u64 - 1);
                        }
                        dest_a += dest_stride * span;
                        for (a, st) in side_a.iter_mut().zip(&strides) {
                            *a += st * span;
                        }
                        t += span;
                    }
                } else {
                    for t in seg..=seg_hi {
                        let dline = geom.line(dest_a);
                        let dset = geom.set_of_line(dline);
                        let mut conflicts = 0;
                        side.clear();
                        for &addr in &side_a {
                            if conflicts >= kk {
                                break;
                            }
                            let line = geom.line(addr);
                            if geom.set_of_line(line) == dset
                                && line != dline
                                && !side.contains(&line)
                            {
                                side.push(line);
                                conflicts += 1;
                            }
                        }
                        if conflicts >= kk {
                            replacement_misses += 1;
                            let g = run.start + (t - run.lo) as u64;
                            push_miss_span(&mut miss_runs, g, g);
                        }
                        dest_a += dest_stride;
                        for (a, st) in side_a.iter_mut().zip(&strides) {
                            *a += st;
                        }
                    }
                }
                seg = seg_hi + 1;
            }
        }
        counters.absorb_scan(block_points, WindowStats::default());
        gov.note_truncated(truncated);
        return CascadeResult {
            replacement_misses,
            contentions,
            miss_runs,
            truncated,
        };
    }

    // Stepping path: slide the window along each run. Inside one run the
    // lockstep condition holds by construction, so the loop steps through
    // per-reference address accumulators — no affine evaluation and no
    // space checks per point; the endpoint side accesses fall out of the
    // same accumulators (`w.src_addr(s)` is reference `s` at `p⃗`,
    // `w.dst_addr(s)` at `i⃗`) and are deduplicated against the window and
    // each other.
    let mut w = SlidingWindow::new_for_space(cache, addrs, &space);
    // Armed-window chaining: once a run ends at destination `i⃗`, the next
    // run in the same row is reached by a raw [`SlidingWindow::slide_by`]
    // whenever the source endpoint also stays inside its row — skipping
    // the endpoint re-evaluation and lockstep checks of `begin_segment`.
    // This is the common shape for stepping vectors, whose scan sets are
    // short runs spaced uniformly along whole rows.
    let mut armed: Option<(&[i64], i64)> = None;
    let mut src_row_hi = i64::MIN;
    'runs: for run in points.runs_in(chunk_lo, chunk_hi) {
        let fast = match armed {
            Some((pfx, dst_inner)) if pfx == run.prefix => {
                let delta = run.lo - dst_inner;
                (delta > 0 && dst_inner - r[inner] + delta <= src_row_hi).then_some(delta)
            }
            _ => None,
        };
        if let Some(delta) = fast {
            w.slide_by(delta);
        } else {
            i_buf[..inner].copy_from_slice(run.prefix);
            // Position the window at the run's first point; every further
            // point is one guaranteed-lockstep step.
            i_buf[inner] = run.lo;
            for l in 0..depth {
                p_buf[l] = i_buf[l] - r[l];
            }
            w.begin_segment(&space, &p_buf, &i_buf, r);
            src_row_hi = space
                .innermost_bounds(&p_buf[..inner])
                .map_or(i64::MIN, |(_, hi)| hi);
        }
        armed = Some((run.prefix, run.hi));
        let mut seg = run.lo;
        while seg <= run.hi {
            let seg_hi = run.hi.min(seg.saturating_add(chunk - 1));
            if !gov.live() {
                truncated += degrade_tail(
                    run.start + (seg - run.lo) as u64,
                    block_end,
                    &mut miss_runs,
                    &mut replacement_misses,
                );
                break 'runs;
            }
            block_points += (seg_hi - seg + 1) as u64;
            gov.charge((seg_hi - seg + 1) as u64);
            for t in seg..=seg_hi {
                if t > run.lo {
                    w.step_in_segment();
                }
                let a_dest = w.dst_addr(dest_idx);
                let dline = geom.line(a_dest);
                let dset = geom.set_of_line(dline);
                let mut conflicts = w.distinct_excluding(dset, dline);
                side.clear();
                // Tail of the source iteration, then head of the destination
                // iteration.
                for (at_src, lo_s, hi_s) in [(true, src_idx + 1, nrefs), (false, 0, dest_idx)] {
                    for s in lo_s..hi_s {
                        if conflicts >= kk {
                            break;
                        }
                        let addr = if at_src { w.src_addr(s) } else { w.dst_addr(s) };
                        let line = geom.line(addr);
                        if geom.set_of_line(line) == dset
                            && line != dline
                            && !w.contains_line(line)
                            && !side.contains(&line)
                        {
                            side.push(line);
                            conflicts += 1;
                        }
                    }
                }
                if conflicts >= kk {
                    replacement_misses += 1;
                    let g = run.start + (t - run.lo) as u64;
                    push_miss_span(&mut miss_runs, g, g);
                }
            }
            seg = seg_hi + 1;
        }
    }
    counters.absorb_scan(block_points, w.stats);
    gov.note_truncated(truncated);
    CascadeResult {
        replacement_misses,
        contentions,
        miss_runs,
        truncated,
    }
}

/// Degrades the unscanned tail of a block — every scan-set point from
/// global index `g_from` up to the block's end `g_end` — by counting it
/// as a replacement miss (indeterminate-treated-as-miss). Survivor runs
/// are contiguous in the global index space, so the whole tail is one
/// fused miss span: O(1), independent of how many runs or points the
/// budget cut off. Returns the number of points degraded.
fn degrade_tail(
    g_from: u64,
    g_end: u64,
    miss_runs: &mut Vec<(u64, u64)>,
    replacement_misses: &mut u64,
) -> u64 {
    if g_from >= g_end {
        return 0;
    }
    push_miss_span(miss_runs, g_from, g_end - 1);
    let n = g_end - g_from;
    *replacement_misses += n;
    n
}
