//! Stage 3 — **solve**: the cold/indeterminate refinement of one
//! reference — the classification half of Figure 6, §3.1's cold CMEs —
//! with the points needing window scans recorded per vector instead of
//! scanned inline.
//!
//! Survivor sets are [`SurvivorSet`]s — run-compressed or flat dense,
//! picked per scan by a density estimate from the reuse plan (or forced
//! via [`SurvivorRepr`]); both enumerate points in the same
//! lexicographic order, so the classification is bit-identical either
//! way. Sets are classified segment-wise, never point by point: along an
//! innermost run the destination and source lines are floors of affine
//! functions of the innermost index, so the verdict can only flip at
//! computable line-boundary crossings — and when the stride divides the
//! line size those crossings are periodic and advance by pure increments.
//! Vectors with a constant destination–source address gap are certified
//! all-cold in O(1) without touching the survivor runs at all
//! ([`ColdCerts`]).
//!
//! A [`SolveSet`] depends only on the nest structure, the options, and
//! the destination's own line offset `B mod Ls` — which is exactly what
//! the driver keys it by, letting candidates that merely move *other*
//! arrays reuse it outright.

use cme_cache::CacheConfig;
use cme_ir::IterationSpace;
use cme_math::gcd::{floor_div, gcd, modulo};
use cme_math::{Affine, Interval};
use cme_reuse::ReuseVector;

use crate::governor::QueryGovernor;
use crate::pointset::{SurvivorRepr, SurvivorSet};
use crate::solve::AnalysisOptions;

use super::lower::LoweredNest;

/// One reuse vector's slice of a reference's refinement: how many points
/// entered, how many stayed indeterminate (cold-CME solutions), and the
/// set of points whose reuse windows must be scanned (run-compressed or
/// dense per the representation policy).
#[derive(Debug, Clone)]
pub(crate) struct SolvedVector {
    pub(crate) examined: u64,
    pub(crate) cold_solutions: u64,
    pub(crate) scan_set: SurvivorSet,
}

/// A reference's full cold/indeterminate refinement (Figure 6 minus the
/// window scans), reusable across every candidate layout that preserves
/// the nest structure and the reference's own `B mod Ls`.
#[derive(Debug, Clone)]
pub(crate) struct SolveSet {
    pub(crate) vectors: Vec<SolvedVector>,
    /// Indeterminate set after the last processed vector; `None` when no
    /// vector ran (no reuse, or `ε` at least the whole space).
    pub(crate) final_set: Option<SurvivorSet>,
    pub(crate) early_stopped: bool,
    /// The governor stopped the refinement early; the entry is a sound
    /// overcount and must never enter the memo tables.
    pub(crate) truncated: bool,
}

/// First innermost index `t' > t` at which `⌊(base + stride·t')/Ls⌋`
/// differs from `cur_line`, or `i64::MAX` when the line never changes.
fn next_line_crossing(base: i64, stride: i64, t: i64, cur_line: i64, ls: i64) -> i64 {
    match stride.cmp(&0) {
        std::cmp::Ordering::Equal => i64::MAX,
        // Increasing: first t' with base + stride·t' ≥ (cur+1)·Ls.
        std::cmp::Ordering::Greater => crate::window::ceil_div((cur_line + 1) * ls - base, stride),
        // Decreasing: first t' with base + stride·t' ≤ cur·Ls − 1.
        std::cmp::Ordering::Less => crate::window::ceil_div(base + 1 - cur_line * ls, -stride),
    }
    .max(t + 1)
}

/// Splits the cold/scan verdict of one survivor run into maximal
/// constant-verdict segments: along a run the destination and source lines
/// are floors of affine functions of the innermost index, so the verdict
/// can only flip at computable line-boundary crossings, and the membership
/// of the source point `p⃗` is a single interval of the innermost index.
struct RunClassifier<'a> {
    space: IterationSpace<'a>,
    ls: i64,
    dest_addr: &'a Affine,
    src_addr: &'a Affine,
    r: &'a [i64],
    r_in: i64,
    intra: bool,
    buf: Vec<i64>,
    sbuf: Vec<i64>,
    p_prefix: Vec<i64>,
    next: SurvivorSet,
    scan: SurvivorSet,
    cold: u64,
    // Per-prefix state, hoisted across consecutive runs that share a
    // prefix (the common shape for strided survivor sets: many short
    // runs per row). `buf[..inner]` doubles as the cached-prefix key.
    have_prefix: bool,
    d0: i64,
    sd: i64,
    s0: i64,
    ss: i64,
    /// Innermost interval (already shifted by `r_in`) where the source
    /// point is in the space; `None` means the whole row's sources are
    /// out of space. Unused for intra-iteration vectors.
    src_live: Option<(i64, i64)>,
}

impl RunClassifier<'_> {
    fn classify(&mut self, prefix: &[i64], lo: i64, hi: i64) {
        let inner = self.buf.len() - 1;
        if !self.have_prefix || self.buf[..inner] != *prefix {
            self.have_prefix = true;
            self.buf[..inner].copy_from_slice(prefix);
            self.buf[inner] = 0;
            self.d0 = self.dest_addr.eval(&self.buf);
            self.sd = self.dest_addr.coeff(inner);
            for (l, p) in prefix.iter().enumerate().take(inner) {
                self.p_prefix[l] = p - self.r[l];
            }
            // Innermost interval where the source p⃗ = i⃗ − r⃗ is in the
            // space (intra-iteration reuse skips the membership test,
            // matching the reference implementation).
            self.src_live = if self.intra {
                None
            } else if self.space.contains_prefix(&self.p_prefix) {
                self.space
                    .innermost_bounds(&self.p_prefix)
                    .map(|(plo, phi)| (plo + self.r_in, phi + self.r_in))
            } else {
                None
            };
            // Source line along the run: src(t) = src_addr(p_prefix, t − r_in).
            self.ss = self.src_addr.coeff(inner);
            self.sbuf[..inner].copy_from_slice(&self.p_prefix);
            self.sbuf[inner] = 0;
            self.s0 = self.src_addr.eval(&self.sbuf) - self.ss * self.r_in;
        }
        let (a, b) = if self.intra {
            (lo, hi)
        } else {
            let live = self.src_live.and_then(|(plo, phi)| {
                let a = plo.max(lo);
                let b = phi.min(hi);
                (a <= b).then_some((a, b))
            });
            match live {
                None => {
                    // Source out of space for the whole run: all cold.
                    self.cold += (hi - lo + 1) as u64;
                    self.next.push_run(prefix, lo, hi);
                    return;
                }
                Some((a, b)) => {
                    if lo < a {
                        self.cold += (a - lo) as u64;
                        self.next.push_run(prefix, lo, a - 1);
                    }
                    (a, b)
                }
            }
        };
        let (d0, sd, s0, ss) = (self.d0, self.sd, self.s0, self.ss);
        // Single-point run: one verdict, no crossing computations.
        if a == b {
            if floor_div(d0 + sd * a, self.ls) != floor_div(s0 + ss * a, self.ls) {
                self.cold += 1;
                self.next.push_run(prefix, a, a);
            } else {
                self.scan.push_run(prefix, a, a);
            }
            if b < hi {
                self.cold += (hi - b) as u64;
                self.next.push_run(prefix, b + 1, hi);
            }
            return;
        }
        let mut t = a;
        let mut ld = floor_div(d0 + sd * t, self.ls);
        let mut lsrc = floor_div(s0 + ss * t, self.ls);
        let mut nd = next_line_crossing(d0, sd, t, ld, self.ls);
        let mut ns = next_line_crossing(s0, ss, t, lsrc, self.ls);
        // A stride dividing Ls crosses a line boundary exactly every
        // Ls/|stride| steps, moving the line by ±1 — crossings after the
        // first advance by pure increments, no divisions (the common
        // unit-stride shape). Other strides recompute per crossing.
        let pd = if sd != 0 && self.ls % sd == 0 {
            self.ls / sd.abs()
        } else {
            0
        };
        let ps = if ss != 0 && self.ls % ss == 0 {
            self.ls / ss.abs()
        } else {
            0
        };
        loop {
            let seg_end = nd.min(ns).min(b + 1);
            if lsrc != ld {
                self.cold += (seg_end - t) as u64;
                self.next.push_run(prefix, t, seg_end - 1);
            } else {
                self.scan.push_run(prefix, t, seg_end - 1);
            }
            if seg_end > b {
                break;
            }
            t = seg_end;
            if t == nd {
                if pd != 0 {
                    ld += sd.signum();
                    nd += pd;
                } else {
                    ld = floor_div(d0 + sd * t, self.ls);
                    nd = next_line_crossing(d0, sd, t, ld, self.ls);
                }
            }
            if t == ns {
                if ps != 0 {
                    lsrc += ss.signum();
                    ns += ps;
                } else {
                    lsrc = floor_div(s0 + ss * t, self.ls);
                    ns = next_line_crossing(s0, ss, t, lsrc, self.ls);
                }
            }
        }
        if b < hi {
            self.cold += (hi - b) as u64;
            self.next.push_run(prefix, b + 1, hi);
        }
    }
}

/// Constant destination–source address gap along reuse vector `r⃗`:
/// `dest(i⃗) − src(i⃗ − r⃗)` is independent of `i⃗` exactly when the two
/// references share coefficients, and then equals `Δc + Σ_l coeff_l·r_l`.
fn const_delta(dest: &Affine, src: &Affine, r: &[i64]) -> Option<i64> {
    (dest.coeffs() == src.coeffs())
        .then(|| dest.constant_term() - src.constant_term() + src.delta_along(r))
}

/// Facts about one survivor set that certify reuse vectors all-cold in
/// O(1), computed lazily and valid only while the set is unchanged (an
/// all-cold vector leaves it unchanged, so certified vectors keep the
/// certificates of the set they were certified against).
#[derive(Default)]
struct ColdCerts {
    /// `max(hi − plo(prefix))` over the runs: a purely-innermost reuse
    /// distance beyond this puts every source point below its row.
    reach: Option<i64>,
    /// Range of `dest_addr mod Ls` over the set's points.
    mod_range: Option<(i64, i64)>,
    /// Per-dimension coordinate range over the set's points.
    coord_ranges: Option<Vec<(i64, i64)>>,
}

impl ColdCerts {
    /// True when some dimension pushes every source point `i⃗ − r⃗` outside
    /// the space's bounding box — out of the space for certain, so every
    /// point of `set` is cold.
    fn source_outside(&mut self, r: &[i64], bbox: &[Interval], set: &SurvivorSet) -> bool {
        let ranges = self
            .coord_ranges
            .get_or_insert_with(|| coord_ranges(set, r.len()));
        ranges
            .iter()
            .zip(bbox)
            .zip(r)
            .any(|((&(mn, mx), iv), &rd)| mx - rd < iv.lo || mn - rd > iv.hi)
    }

    /// True when every point of `set` is certainly cold for a vector whose
    /// destination–source address gap is the constant `delta`.
    #[allow(clippy::too_many_arguments)]
    fn all_cold(
        &mut self,
        delta: i64,
        intra: bool,
        r: &[i64],
        ls: i64,
        space: &IterationSpace,
        dest_addr: &Affine,
        set: &SurvivorSet,
    ) -> bool {
        if delta == 0 {
            // Source and destination share a line at every point; cold only
            // if the source falls out of the space everywhere, decidable
            // when the vector is purely innermost (row membership becomes
            // `t − r_in ≥ plo`).
            let inner = r.len() - 1;
            if intra || r[inner] <= 0 || r[..inner].iter().any(|&x| x != 0) {
                return false;
            }
            let reach = *self.reach.get_or_insert_with(|| compute_reach(space, set));
            r[inner] > reach
        } else if delta.abs() >= ls {
            // Addresses `a` and `a − δ` can share a `Ls`-aligned line only
            // when `|δ| < Ls`.
            true
        } else {
            // Same line ⟺ `a mod Ls ≥ δ` (δ > 0) resp. `< Ls + δ` (δ < 0):
            // cold everywhere when the residue range stays clear of that.
            let (mn, mx) = *self
                .mod_range
                .get_or_insert_with(|| compute_mod_range(dest_addr, set, ls));
            if delta > 0 {
                mx < delta
            } else {
                mn >= ls + delta
            }
        }
    }
}

/// Min/max of every coordinate over the points of `set`.
fn coord_ranges(set: &SurvivorSet, depth: usize) -> Vec<(i64, i64)> {
    let inner = depth - 1;
    let mut ranges = vec![(i64::MAX, i64::MIN); depth];
    for run in set.runs() {
        for (range, &x) in ranges[..inner].iter_mut().zip(run.prefix) {
            range.0 = range.0.min(x);
            range.1 = range.1.max(x);
        }
        ranges[inner].0 = ranges[inner].0.min(run.lo);
        ranges[inner].1 = ranges[inner].1.max(run.hi);
    }
    ranges
}

/// `max(hi − plo(prefix))` over the runs of `set`, or `i64::MAX` (no
/// certificate) when a row's bounds are unavailable.
fn compute_reach(space: &IterationSpace, set: &SurvivorSet) -> i64 {
    let mut reach = i64::MIN;
    for run in set.runs() {
        match space.innermost_bounds(run.prefix) {
            Some((plo, _)) => reach = reach.max(run.hi - plo),
            None => return i64::MAX,
        }
    }
    reach
}

/// Min/max of `addr mod Ls` over the points of `set`, walking at most one
/// residue period per run.
fn compute_mod_range(addr: &Affine, set: &SurvivorSet, ls: i64) -> (i64, i64) {
    let inner = addr.nvars() - 1;
    let step = modulo(addr.coeff(inner), ls);
    let period = if step == 0 { 1 } else { ls / gcd(step, ls) };
    let mut buf = vec![0i64; addr.nvars()];
    let (mut mn, mut mx) = (i64::MAX, i64::MIN);
    for run in set.runs() {
        buf[..inner].copy_from_slice(run.prefix);
        buf[inner] = run.lo;
        let mut m = modulo(addr.eval(&buf), ls);
        for _ in 0..(run.hi - run.lo + 1).min(period) {
            mn = mn.min(m);
            mx = mx.max(m);
            m += step;
            if m >= ls {
                m -= ls;
            }
        }
        if mn == 0 && mx == ls - 1 {
            break; // saturated: no tighter range possible
        }
    }
    (mn, mx)
}

/// Runs the refinement for one reference. Governor checkpoints sit at the
/// vector boundaries (plus mid-vector checks every 64 rows/runs); a dead
/// budget leaves the current survivors as the final set, every point a
/// miss — the same sound-overcount shape as ε early stopping.
pub(crate) fn build(
    lowered: &LoweredNest,
    cache: &CacheConfig,
    dest_idx: usize,
    rvs: &[ReuseVector],
    options: &AnalysisOptions,
    gov: &QueryGovernor,
) -> SolveSet {
    let nest = &*lowered.nest;
    let addrs = &lowered.addrs;
    let depth = nest.depth();
    let inner = depth - 1;
    let space = nest.space();
    let dest_addr = &addrs[dest_idx];
    let total_points = space.count();
    let mut c: Option<SurvivorSet> = None;
    let mut vectors = Vec::new();
    let mut early_stopped = false;
    let mut truncated = false;
    let mut certs = ColdCerts::default();
    let bbox = space.bounding_box();
    for rv in rvs {
        let examined = match &c {
            Some(set) => set.len(),
            None => space.count(),
        };
        if examined <= options.epsilon {
            early_stopped = c.is_some() && examined > 0;
            break;
        }
        // Governor checkpoint (after the ε check, so full-budget runs take
        // the exact same branches): a dead budget or an over-ceiling
        // survivor set stops the refinement here; the current survivors
        // stay the final set and count as misses — the same sound-overcount
        // shape as ε early stopping.
        if !gov.admit_points(examined) || !gov.live() {
            truncated = true;
            gov.note_truncated(examined);
            break;
        }
        let r = rv.vector();
        if let Some(set) = &c {
            let certified = (!rv.is_intra_iteration() && certs.source_outside(r, &bbox, set))
                || const_delta(dest_addr, &addrs[rv.source().index()], r).is_some_and(|delta| {
                    certs.all_cold(
                        delta,
                        rv.is_intra_iteration(),
                        r,
                        cache.line_elems(),
                        &space,
                        dest_addr,
                        set,
                    )
                });
            if certified {
                // Every survivor misses cold: the set is untouched, so the
                // certificates stay valid for the next vector too.
                vectors.push(SolvedVector {
                    examined,
                    cold_solutions: examined,
                    scan_set: SurvivorSet::new(depth, false),
                });
                continue;
            }
        }
        // Representation choice for this scan's output sets: dense rows
        // once the incoming survivors are at least a 1/Ls fraction of the
        // space — below that, run compression stores the same set in less
        // memory than one bit per space point.
        let dense = match options.survivor_repr {
            SurvivorRepr::ForceRuns => false,
            SurvivorRepr::ForceDense => true,
            SurvivorRepr::Auto => {
                examined.saturating_mul(cache.line_elems() as u64) >= total_points
            }
        };
        let mut cls = RunClassifier {
            space: nest.space(),
            ls: cache.line_elems(),
            dest_addr,
            src_addr: &addrs[rv.source().index()],
            r,
            r_in: r[inner],
            intra: rv.is_intra_iteration(),
            buf: vec![0i64; depth],
            sbuf: vec![0i64; depth],
            p_prefix: vec![0i64; inner],
            next: SurvivorSet::new(depth, dense),
            scan: SurvivorSet::new(depth, dense),
            cold: 0,
            have_prefix: false,
            d0: 0,
            sd: 0,
            s0: 0,
            ss: 0,
            src_live: None,
        };
        // Mid-vector checkpoints every 64 rows/runs: an abandoned walk
        // discards its partial classification (the previous survivor set
        // stays the final one, every point of it a miss — sound).
        let mut abandoned = false;
        match &c {
            None => {
                // Whole space, one row at a time.
                let mut rows = 0u64;
                let mut pfx = space.first().map(|f| f[..inner].to_vec());
                while let Some(pr) = pfx {
                    if rows & 63 == 0 && !gov.live() {
                        abandoned = true;
                        break;
                    }
                    rows += 1;
                    if let Some((lo, hi)) = space.innermost_bounds(&pr) {
                        cls.classify(&pr, lo, hi);
                    }
                    pfx = space.prefix_successor(&pr);
                }
            }
            Some(set) => {
                for (ri, run) in set.runs().enumerate() {
                    if ri & 63 == 0 && !gov.live() {
                        abandoned = true;
                        break;
                    }
                    cls.classify(run.prefix, run.lo, run.hi);
                }
            }
        }
        if abandoned {
            truncated = true;
            gov.note_truncated(examined);
            break;
        }
        gov.charge(examined);
        // An all-cold walk reproduces the set run for run; anything else
        // changed it and voids the memoized certificates.
        if cls.cold != examined {
            certs = ColdCerts::default();
        }
        vectors.push(SolvedVector {
            examined,
            cold_solutions: cls.cold,
            scan_set: cls.scan,
        });
        c = Some(cls.next);
    }
    SolveSet {
        vectors,
        final_set: c,
        early_stopped,
        truncated,
    }
}
