//! Stage 2 — **reuse**: the ordered reuse-vector set of one reference
//! (§2.2, §3.3), wrapped as the artifact the solve stage consumes.
//!
//! Reuse vectors are base-invariant: they depend on the nest structure
//! and the cache geometry, never on array placement, which is why the
//! driver memoizes a [`ReusePlan`] under the structural prefix key alone.

use std::sync::Arc;

use cme_cache::CacheConfig;
use cme_ir::RefId;
use cme_reuse::{reuse_vectors, ReuseOptions, ReuseVector};

use super::lower::LoweredNest;

/// The reuse-vector sequence of one destination reference, in the
/// processing order of Figure 6. Cheap to clone (`Arc`-shared).
#[derive(Debug, Clone)]
pub(crate) struct ReusePlan {
    pub(crate) rvs: Arc<Vec<ReuseVector>>,
}

/// Builds the reuse plan for `dest`.
pub(crate) fn build(
    lowered: &LoweredNest,
    cache: &CacheConfig,
    dest: RefId,
    options: &ReuseOptions,
) -> ReusePlan {
    ReusePlan {
        rvs: Arc::new(reuse_vectors(&lowered.nest, cache, dest, options)),
    }
}
