//! Stage 5 — **classify**: stitch a solve set and its scan outcomes into
//! the public [`RefAnalysis`] — the composition step of Figure 6, byte
//! for byte what the uncached reference path emits.
//!
//! Classification is pure assembly: it computes nothing new and is never
//! memoized. ε early stopping and governor truncation surface here as
//! `early_stopped` (the remaining survivors were counted as misses,
//! exactly like ε stopping — the paper's sound-overcount semantics).

use std::sync::Arc;

use cme_ir::{LoopNest, RefId};
use cme_reuse::ReuseVector;

use crate::governor::QueryGovernor;
use crate::solve::{AnalysisOptions, RefAnalysis, VectorReport};

use super::cascade::CascadeResult;
use super::solve::SolveSet;

/// The finished per-reference artifact of the pipeline.
#[derive(Debug)]
pub(crate) struct Classification {
    pub(crate) result: RefAnalysis,
}

/// Composes the final per-reference result from the upstream artifacts.
pub(crate) fn classify(
    nest: &LoopNest,
    dest: RefId,
    rvs: &[ReuseVector],
    solve: &SolveSet,
    scans: &[Arc<CascadeResult>],
    options: &AnalysisOptions,
) -> Classification {
    let mut vectors = Vec::with_capacity(solve.vectors.len());
    let mut replacement_misses = 0u64;
    let mut repl_points: Vec<(Vec<i64>, usize)> = Vec::new();
    for (vi, (sv, scan)) in solve.vectors.iter().zip(scans).enumerate() {
        replacement_misses += scan.replacement_misses;
        vectors.push(VectorReport {
            reuse: rvs[vi].clone(),
            examined: sv.examined,
            cold_solutions: sv.cold_solutions,
            replacement_misses: scan.replacement_misses,
            contentions_per_perpetrator: scan.contentions.clone(),
            cumulative_replacement_misses: replacement_misses,
        });
        if options.collect_miss_points {
            for &(lo, hi) in &scan.miss_runs {
                for mi in lo..=hi {
                    repl_points.push((sv.scan_set.point(mi), vi));
                }
            }
        }
    }
    let (cold_misses, cold_points) = match &solve.final_set {
        Some(set) => (
            set.len(),
            if options.collect_miss_points {
                let mut pts = Vec::with_capacity(set.len() as usize);
                set.for_each(|q| pts.push(q.to_vec()));
                pts
            } else {
                Vec::new()
            },
        ),
        None => {
            let mut pts = Vec::new();
            if options.collect_miss_points {
                let mut sp = nest.space();
                while let Some(q) = sp.next_point() {
                    pts.push(q);
                }
            }
            (nest.space().count(), pts)
        }
    };
    Classification {
        result: RefAnalysis {
            dest,
            label: nest.reference(dest).label().to_string(),
            vectors,
            cold_misses,
            replacement_misses,
            // A truncated solve set reports as early-stopped: the remaining
            // survivors were counted as misses, exactly like ε stopping.
            early_stopped: solve.early_stopped || solve.truncated,
            replacement_miss_points: repl_points,
            cold_miss_points: cold_points,
        },
    }
}

/// The fully degraded per-reference result: the budget died before any
/// refinement, so every iteration point is indeterminate-treated-as-miss
/// (all cold, zero vectors) — the shape [`classify`] produces for a solve
/// set with no processed vectors.
pub(crate) fn truncated(
    nest: &LoopNest,
    dest: RefId,
    options: &AnalysisOptions,
    gov: &QueryGovernor,
) -> Classification {
    let count = nest.space().count();
    gov.note_truncated(count);
    let cold_points = if options.collect_miss_points {
        let mut pts = Vec::new();
        let mut sp = nest.space();
        while let Some(q) = sp.next_point() {
            pts.push(q);
        }
        pts
    } else {
        Vec::new()
    };
    Classification {
        result: RefAnalysis {
            dest,
            label: nest.reference(dest).label().to_string(),
            vectors: Vec::new(),
            cold_misses: count,
            replacement_misses: 0,
            early_stopped: true,
            replacement_miss_points: Vec::new(),
            cold_miss_points: cold_points,
        },
    }
}
