//! The [`Analyzer`] session: cache, options, threading, and budget fixed
//! as defaults over the staged incremental [`Engine`].

use super::{Engine, EngineStats};
use crate::equations::CmeSystem;
use crate::governor::{AnalysisError, Budget, CancelToken, GovernedAnalysis};
use crate::solve::{AnalysisOptions, NestAnalysis, RefAnalysis};
use cme_cache::{CacheConfig, CacheModel};
use cme_ir::{LoopNest, NestId, RefId};
use cme_reuse::ReuseVector;
use std::collections::HashMap;
use std::sync::Arc;

/// A configured analysis session: cache, options, and threading fixed as
/// defaults, with the staged incremental [`Engine`] carrying memoized work
/// across every `analyze` call.
///
/// ```
/// use cme_cache::CacheConfig;
/// use cme_core::{AnalysisOptions, Analyzer};
/// use cme_ir::{AccessKind, NestBuilder};
///
/// let mut b = NestBuilder::new();
/// b.ct_loop("i", 1, 64);
/// let a = b.array("A", &[64], 0);
/// b.reference(a, AccessKind::Read, &[("i", 0)]);
/// let nest = b.build().unwrap();
///
/// let cfg = CacheConfig::new(8192, 1, 32, 4)?;
/// let mut analyzer = Analyzer::new(cfg)
///     .options(AnalysisOptions::default())
///     .parallel(true);
/// let analysis = analyzer.analyze(&nest);
/// assert_eq!(analysis.total_misses(), 8);
///
/// // The handle API: intern once, analyze (or batch-analyze) by id.
/// let id = analyzer.intern(&nest);
/// assert_eq!(analyzer.analyze_batch(&[id])[0], analysis);
/// # Ok::<(), cme_cache::CacheConfigError>(())
/// ```
#[derive(Debug)]
pub struct Analyzer {
    engine: Engine,
    options: AnalysisOptions,
    parallel: bool,
    threads: usize,
    budget: Budget,
    cancel: Option<CancelToken>,
    /// Session memo of fitted parametric sweeps (see
    /// [`super::sweep::SweepResult`]); only complete, fitted results are
    /// ever inserted.
    pub(super) sweep_memo: HashMap<u128, super::sweep::SweepResult>,
}

impl Analyzer {
    /// A sequential session with default options, caching on, and an
    /// unlimited budget.
    pub fn new(cache: CacheConfig) -> Self {
        Analyzer {
            engine: Engine::new(cache),
            options: AnalysisOptions::default(),
            parallel: false,
            threads: 0,
            budget: Budget::unlimited(),
            cancel: None,
            sweep_memo: HashMap::new(),
        }
    }

    /// A session for an arbitrary [`CacheModel`]: analytic equations run
    /// against the model's L1 geometry; non-baseline models additionally
    /// route served requests through the simulator-backed classify path
    /// and key persistent artifacts under the model. For the baseline
    /// model this is exactly [`Analyzer::new`].
    pub fn with_model(model: CacheModel) -> Self {
        let mut analyzer = Analyzer::new(model.l1());
        analyzer.engine.set_model(model);
        analyzer
    }

    /// The full cache model this session answers for.
    pub fn model(&self) -> &CacheModel {
        self.engine.model()
    }

    /// Sets the session's per-query resource [`Budget`]. Exhausted
    /// queries degrade to sound overcounts instead of failing (see
    /// [`crate::Outcome`]).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs a cooperative [`CancelToken`]: cancelling it (from any
    /// thread) stops in-flight and subsequent queries at the next
    /// checkpoint, degrading them like budget exhaustion.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the session's default analysis options.
    pub fn options(mut self, options: AnalysisOptions) -> Self {
        self.options = options;
        self
    }

    /// Spreads each analysis over the machine's cores.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Pins the work-pool width explicitly (overrides [`Analyzer::parallel`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the engine's memoization.
    pub fn caching(mut self, on: bool) -> Self {
        self.engine.set_caching(on);
        self
    }

    /// Attaches a persistent [`crate::ArtifactStore`]: complete analyses
    /// are written through to disk and repeated queries (same structure,
    /// layout, geometry, and options — across sessions and processes)
    /// are answered from the store before any pipeline stage runs. See
    /// [`Engine::set_store`].
    pub fn store(mut self, store: std::sync::Arc<crate::store::ArtifactStore>) -> Self {
        self.engine.set_store(store);
        self
    }

    /// The cache geometry this session analyzes against.
    pub fn cache(&self) -> &CacheConfig {
        self.engine.cache()
    }

    /// The session's default options.
    pub fn current_options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Interns a nest into the session's program database (idempotent).
    pub fn intern(&mut self, nest: &LoopNest) -> NestId {
        self.engine.intern(nest)
    }

    /// Analyzes a nest with the session defaults, interning it first. At
    /// the default unlimited budget, results are bit-identical to the
    /// uncached reference path, warm or cold; under a session budget or
    /// cancellation the counts degrade to a sound overcount (use
    /// [`Analyzer::try_analyze`] to observe the [`crate::Outcome`] tag).
    /// Panics on [`AnalysisError`] — worker panic or address overflow.
    pub fn analyze(&mut self, nest: &LoopNest) -> NestAnalysis {
        let id = self.intern(nest);
        self.analyze_id(id)
    }

    /// [`Analyzer::analyze`] for an already-interned nest.
    pub fn analyze_id(&mut self, id: NestId) -> NestAnalysis {
        let options = self.options.clone();
        let threads = self.thread_count();
        self.engine.analyze_id(id, &options, threads)
    }

    /// Analyzes a batch of interned nests in one session call: all
    /// `(nest, reference)` work items and scan shards share one work
    /// pool, and all nests share the session memo tables. Results are in
    /// `ids` order, each bit-identical to [`Analyzer::analyze_id`] on
    /// that nest alone. Panics on [`AnalysisError`].
    pub fn analyze_batch(&mut self, ids: &[NestId]) -> Vec<NestAnalysis> {
        let options = self.options.clone();
        let threads = self.thread_count();
        self.engine.analyze_batch(ids, &options, threads)
    }

    /// Governed batch analysis under the session budget (per nest) and
    /// cancel token; see [`Engine::try_analyze_batch`].
    ///
    /// # Errors
    ///
    /// See [`Engine::try_analyze`]; one failing nest fails the batch.
    pub fn try_analyze_batch(
        &mut self,
        ids: &[NestId],
    ) -> Result<Vec<GovernedAnalysis>, AnalysisError> {
        let options = self.options.clone();
        let threads = self.thread_count();
        let budget = self.budget;
        let cancel = self.cancel.clone();
        self.engine
            .try_analyze_batch(ids, &options, threads, budget, cancel.as_ref())
    }

    /// Analyzes with one-off options (e.g. an exact-counting pass) while
    /// still sharing the session's memo tables. Panics on
    /// [`AnalysisError`]; see [`Analyzer::try_analyze_with_options`].
    pub fn analyze_with_options(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
    ) -> NestAnalysis {
        match self.try_analyze_with_options(nest, options) {
            Ok(governed) => governed.analysis,
            Err(e) => panic!("{e}"),
        }
    }

    /// The governed, panic-free entry point: analyzes under the session's
    /// budget and cancel token and reports how the query ended alongside
    /// the (possibly degraded, always sound) counts.
    ///
    /// # Errors
    ///
    /// See [`Engine::try_analyze`].
    pub fn try_analyze(&mut self, nest: &LoopNest) -> Result<GovernedAnalysis, AnalysisError> {
        let options = self.options.clone();
        self.try_analyze_with_options(nest, &options)
    }

    /// [`Analyzer::try_analyze`] for an already-interned nest.
    ///
    /// # Errors
    ///
    /// See [`Engine::try_analyze`].
    pub fn try_analyze_id(&mut self, id: NestId) -> Result<GovernedAnalysis, AnalysisError> {
        let options = self.options.clone();
        let threads = self.thread_count();
        let budget = self.budget;
        let cancel = self.cancel.clone();
        self.engine
            .try_analyze_id(id, &options, threads, budget, cancel.as_ref())
    }

    /// [`Analyzer::try_analyze`] with one-off options.
    ///
    /// # Errors
    ///
    /// See [`Engine::try_analyze`].
    pub fn try_analyze_with_options(
        &mut self,
        nest: &LoopNest,
        options: &AnalysisOptions,
    ) -> Result<GovernedAnalysis, AnalysisError> {
        let threads = self.thread_count();
        let budget = self.budget;
        let cancel = self.cancel.clone();
        self.engine
            .try_analyze(nest, options, threads, budget, cancel.as_ref())
    }

    /// Analyzes with the session options but with miss-point collection
    /// forced on — the oracle-facing entry point of the differential test
    /// harness (`cme-diffcheck`), which joins the returned
    /// replacement/cold miss points against per-access simulator verdicts
    /// from `cme_cache::simulate_nest_outcomes` to localize a
    /// disagreement. Shares the session's memo tables: scans always
    /// record their miss indices in the memo and `collect_miss_points`
    /// only affects result assembly, so interleaving traced and plain
    /// runs of the same nest stays fully memoized.
    pub fn analyze_traced(&mut self, nest: &LoopNest) -> NestAnalysis {
        let options = AnalysisOptions {
            collect_miss_points: true,
            ..self.options.clone()
        };
        self.analyze_with_options(nest, &options)
    }

    /// Analyzes a single reference against caller-supplied reuse vectors
    /// (e.g. the hand-built vectors of the paper's Figure 8 walkthrough),
    /// bypassing reuse-vector generation and the memo tables entirely —
    /// the artifacts would be keyed by inputs the caller overrode.
    pub fn analyze_reference_with_vectors(
        &mut self,
        nest: &LoopNest,
        dest: RefId,
        rvs: &[ReuseVector],
    ) -> RefAnalysis {
        crate::solve::solve_reference(nest, *self.engine.cache(), dest, rvs, &self.options)
    }

    /// The symbolic CME system for a nest (generated, rebased, or reused).
    pub fn system(&mut self, nest: &LoopNest) -> Arc<CmeSystem> {
        let reuse = self.options.reuse.clone();
        self.engine.system(nest, &reuse)
    }

    /// Snapshot of the engine's accounting.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Shared access to the underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The work-pool width the session's analyses actually run at:
    /// [`Analyzer::threads`] when pinned, the machine's available
    /// parallelism under [`Analyzer::parallel`], 1 otherwise.
    pub fn thread_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else if self.parallel {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            1
        }
    }
}
