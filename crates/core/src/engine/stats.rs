//! Work accounting for the staged engine: internal atomic [`Counters`]
//! and the public [`EngineStats`] snapshot.
//!
//! Counter families map onto the pipeline stages in `engine/stages/`:
//!
//! | stage    | artifact                     | built / reused counters        |
//! |----------|------------------------------|--------------------------------|
//! | lower    | `LoweredNest`                | `lowered_built/-reused`        |
//! | reuse    | `ReusePlan`                  | `reuse_built/-reused`          |
//! | solve    | `SolveSet`                   | `cascades_built/-reused`       |
//! | cascade  | `CascadeResult`              | `scans_executed/scans_reused`  |
//! | classify | `Classification`             | — (pure assembly, never cached)|
//!
//! (The `cascades_*`/`scans_*` names predate the stage split and are kept
//! for output stability: a "cascade" counter counts solve-stage
//! cold/indeterminate refinements, a "scan" counter counts cascade-stage
//! window-scan batches.)
//!
//! Per-stage wall time: `time_lower`, `time_cascade`, and `time_classify`
//! are driver wall time; `time_reuse` and `time_solve` are summed across
//! pool workers (the two stages run fused inside the per-reference work
//! items), so on a multi-threaded session they can exceed wall time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::window::WindowStats;

use super::Engine;

#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) analyses: AtomicU64,
    pub(crate) passthroughs: AtomicU64,
    pub(crate) lowered_built: AtomicU64,
    pub(crate) lowered_reused: AtomicU64,
    pub(crate) reuse_built: AtomicU64,
    pub(crate) reuse_reused: AtomicU64,
    pub(crate) cascades_built: AtomicU64,
    pub(crate) cascades_reused: AtomicU64,
    pub(crate) scans_executed: AtomicU64,
    pub(crate) scans_reused: AtomicU64,
    pub(crate) systems_generated: AtomicU64,
    pub(crate) systems_rebased: AtomicU64,
    pub(crate) systems_reused: AtomicU64,
    pub(crate) scan_points: AtomicU64,
    pub(crate) scan_blocks: AtomicU64,
    pub(crate) window_steps: AtomicU64,
    pub(crate) window_rebuilds: AtomicU64,
    pub(crate) window_rebuild_rows: AtomicU64,
    pub(crate) peak_survivors: AtomicU64,
    pub(crate) scan_sets_dense: AtomicU64,
    pub(crate) scan_sets_runs: AtomicU64,
    pub(crate) scan_shard_busy_ns: AtomicU64,
    pub(crate) scan_shard_longest_ns: AtomicU64,
    pub(crate) scan_steals: AtomicU64,
    pub(crate) scan_merge_ns: AtomicU64,
    pub(crate) truncated_points: AtomicU64,
    pub(crate) exhausted_analyses: AtomicU64,
    pub(crate) worker_panics: AtomicU64,
    pub(crate) store_hits: AtomicU64,
    pub(crate) store_misses: AtomicU64,
    pub(crate) store_writes: AtomicU64,
    pub(crate) sim_classifications: AtomicU64,
    pub(crate) sim_accesses: AtomicU64,
    pub(crate) sim_writebacks: AtomicU64,
    pub(crate) sim_exhausted: AtomicU64,
    pub(crate) sweeps_fitted: AtomicU64,
    pub(crate) sweeps_fallback: AtomicU64,
    pub(crate) sweep_memo_hits: AtomicU64,
    pub(crate) sweep_samples: AtomicU64,
    pub(crate) lower_ns: AtomicU64,
    pub(crate) reuse_ns: AtomicU64,
    pub(crate) solve_ns: AtomicU64,
    pub(crate) cascade_ns: AtomicU64,
    pub(crate) classify_ns: AtomicU64,
}

impl Counters {
    pub(crate) fn absorb_scan(&self, points: u64, w: WindowStats) {
        self.scan_points.fetch_add(points, Ordering::Relaxed);
        self.scan_blocks.fetch_add(1, Ordering::Relaxed);
        self.window_steps.fetch_add(w.steps, Ordering::Relaxed);
        self.window_rebuilds
            .fetch_add(w.rebuilds, Ordering::Relaxed);
        self.window_rebuild_rows
            .fetch_add(w.rebuild_rows, Ordering::Relaxed);
    }

    /// Adds an elapsed duration to one stage-time accumulator.
    pub(crate) fn add_time(slot: &AtomicU64, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        slot.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one solved vector's survivor peak and which side of the
    /// density heuristic its scan sets landed on.
    pub(crate) fn note_solved_vector(&self, examined: u64, dense: bool) {
        self.peak_survivors.fetch_max(examined, Ordering::Relaxed);
        let slot = if dense {
            &self.scan_sets_dense
        } else {
            &self.scan_sets_runs
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one pooled scan round's lane clocks into the session totals.
    pub(crate) fn note_shard_stats(&self, stats: &super::pool::PoolStats) {
        self.scan_shard_busy_ns.fetch_add(
            u64::try_from(stats.busy.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.scan_shard_longest_ns.fetch_max(
            u64::try_from(stats.longest.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.scan_steals.fetch_add(stats.steals, Ordering::Relaxed);
    }
}

/// Snapshot of an [`Engine`]'s work accounting: per-stage artifacts
/// generated vs reused, solver-memo traffic, and per-stage time.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Nest analyses run through the engine.
    pub analyses: u64,
    /// References analyzed uncached (caching off or nest too large).
    pub passthroughs: u64,
    /// Lower-stage artifacts (`LoweredNest`) computed.
    pub lowered_built: u64,
    /// Lower-stage artifacts answered from the memo.
    pub lowered_reused: u64,
    /// Reuse-vector sets computed.
    pub reuse_built: u64,
    /// Reuse-vector sets answered from the memo.
    pub reuse_reused: u64,
    /// Solve-stage cold/indeterminate refinements (`SolveSet`) computed.
    pub cascades_built: u64,
    /// Solve sets answered from the memo.
    pub cascades_reused: u64,
    /// Cascade-stage `(reference, reuse-vector)` scan batches executed.
    pub scans_executed: u64,
    /// Scan batches answered from the memo.
    pub scans_reused: u64,
    /// [`crate::CmeSystem`]s generated from scratch.
    pub systems_generated: u64,
    /// Cached systems re-targeted at a new layout (constant terms only).
    pub systems_rebased: u64,
    /// Cached systems returned verbatim.
    pub systems_reused: u64,
    /// Destination points whose reuse windows were scanned.
    pub scan_points: u64,
    /// Contiguous run blocks the scans were sharded into.
    pub scan_blocks: u64,
    /// Scan points reached by sliding the window incrementally.
    pub window_steps: u64,
    /// Full window rebuilds (row/prefix boundaries, shard starts).
    pub window_rebuilds: u64,
    /// Innermost rows aggregated during those rebuilds.
    pub window_rebuild_rows: u64,
    /// Largest indeterminate set entering any single reuse vector.
    pub peak_survivors: u64,
    /// Survivor scan sets held in the flat dense representation (picked
    /// by the density heuristic or forced via
    /// [`crate::SurvivorRepr::ForceDense`]).
    pub scan_sets_dense: u64,
    /// Survivor scan sets held run-compressed.
    pub scan_sets_runs: u64,
    /// Worker-summed wall time spent inside cascade scan shards.
    pub time_scan_shards: Duration,
    /// Busiest single shard pass of any scan round — the cascade stage's
    /// parallel critical path.
    pub time_scan_longest_shard: Duration,
    /// Scan blocks a worker claimed from another worker's lane.
    pub scan_steals: u64,
    /// Wall time merging per-block scan outcomes back into per-slot
    /// results.
    pub time_scan_merge: Duration,
    /// Iteration points classified indeterminate-treated-as-miss because
    /// a budget or cancellation cut their refinement short.
    pub truncated_points: u64,
    /// Analyses that ended [`crate::Outcome::Exhausted`].
    pub exhausted_analyses: u64,
    /// Worker panics caught at the pool boundary (each failed one query).
    pub worker_panics: u64,
    /// Analyses answered from the persistent [`crate::ArtifactStore`]
    /// before any pipeline stage ran.
    pub store_hits: u64,
    /// Store lookups that fell through to the pipeline.
    pub store_misses: u64,
    /// Complete analyses written through to the persistent store.
    pub store_writes: u64,
    /// Model-simulation classify queries run for non-baseline
    /// [`cme_cache::CacheModel`]s ([`Engine::classify_model`]).
    pub sim_classifications: u64,
    /// Accesses replayed through the model simulator (including aborted
    /// replays' partial progress).
    pub sim_accesses: u64,
    /// Memory write traffic observed by completed model replays.
    pub sim_writebacks: u64,
    /// Model replays abandoned by budget exhaustion or cancellation (the
    /// query degraded to the analytic LRU bound).
    pub sim_exhausted: u64,
    /// Parametric sweeps answered by a certified closed form (fresh fits
    /// plus store rehydrations; see [`crate::SweepResult`]).
    pub sweeps_fitted: u64,
    /// Parametric sweeps that degraded to direct evaluation.
    pub sweeps_fallback: u64,
    /// Sweeps answered verbatim from the session sweep memo.
    pub sweep_memo_hits: u64,
    /// Numeric analyses run on behalf of sweeps (samples + fallback
    /// evaluations).
    pub sweep_samples: u64,
    /// Diophantine/polytope solver memo hits (shared [`cme_math::SolveMemo`]).
    pub solver_hits: u64,
    /// Solver memo misses (counts actually computed).
    pub solver_misses: u64,
    /// Wall time in the lower stage (interning, address affines,
    /// overflow validation).
    pub time_lower: Duration,
    /// Worker-summed time in the reuse stage (vector generation/lookup).
    pub time_reuse: Duration,
    /// Worker-summed time in the solve stage (cold/indeterminate
    /// refinement; uncached passthrough references are charged here).
    pub time_solve: Duration,
    /// Wall time in the cascade stage (sharded window scans).
    pub time_cascade: Duration,
    /// Wall time in the classify stage (deterministic result assembly).
    pub time_classify: Duration,
}

impl EngineStats {
    /// Fraction of memo lookups (lower, reuse, solve, scan) answered from
    /// cache; `0.0` when nothing was looked up.
    pub fn memo_hit_rate(&self) -> f64 {
        // Saturating: long-lived sessions (nightly fuzz runs) may drive
        // individual counters arbitrarily high, and a diagnostic ratio
        // must never panic on the sum.
        let hits = self
            .lowered_reused
            .saturating_add(self.reuse_reused)
            .saturating_add(self.cascades_reused)
            .saturating_add(self.scans_reused);
        let total = hits
            .saturating_add(self.lowered_built)
            .saturating_add(self.reuse_built)
            .saturating_add(self.cascades_built)
            .saturating_add(self.scans_executed);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Total equation-system artifacts served without regeneration.
    pub fn systems_saved(&self) -> u64 {
        self.systems_rebased.saturating_add(self.systems_reused)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {} analyses ({} uncached references)",
            self.analyses, self.passthroughs
        )?;
        writeln!(
            f,
            "  lowered nests: {} built, {} reused",
            self.lowered_built, self.lowered_reused
        )?;
        writeln!(
            f,
            "  reuse vectors: {} built, {} reused",
            self.reuse_built, self.reuse_reused
        )?;
        writeln!(
            f,
            "  solve sets:    {} built, {} reused",
            self.cascades_built, self.cascades_reused
        )?;
        writeln!(
            f,
            "  window scans:  {} executed, {} reused",
            self.scans_executed, self.scans_reused
        )?;
        writeln!(
            f,
            "  scan points:   {} in {} blocks ({} stepped, {} rebuilds over {} rows)",
            self.scan_points,
            self.scan_blocks,
            self.window_steps,
            self.window_rebuilds,
            self.window_rebuild_rows
        )?;
        writeln!(f, "  peak survivors: {} points", self.peak_survivors)?;
        writeln!(
            f,
            "  scan sets:     {} dense, {} run-compressed",
            self.scan_sets_dense, self.scan_sets_runs
        )?;
        writeln!(
            f,
            "  scan shards:   {:.1?} busy (longest {:.1?}), {} steals, merge {:.1?}",
            self.time_scan_shards,
            self.time_scan_longest_shard,
            self.scan_steals,
            self.time_scan_merge
        )?;
        writeln!(
            f,
            "  degraded:      {} exhausted analyses ({} points truncated-as-miss), {} worker panics",
            self.exhausted_analyses, self.truncated_points, self.worker_panics
        )?;
        writeln!(
            f,
            "  systems:       {} generated, {} rebased, {} reused",
            self.systems_generated, self.systems_rebased, self.systems_reused
        )?;
        writeln!(
            f,
            "  artifact store: {} hits, {} misses, {} writes",
            self.store_hits, self.store_misses, self.store_writes
        )?;
        writeln!(
            f,
            "  model sim:     {} classifications ({} accesses, {} writebacks), {} exhausted",
            self.sim_classifications, self.sim_accesses, self.sim_writebacks, self.sim_exhausted
        )?;
        writeln!(
            f,
            "  sweeps:        {} fitted, {} fallback, {} memo hits, {} samples",
            self.sweeps_fitted, self.sweeps_fallback, self.sweep_memo_hits, self.sweep_samples
        )?;
        writeln!(
            f,
            "  solver memo:   {} hits, {} misses",
            self.solver_hits, self.solver_misses
        )?;
        writeln!(f, "  memo hit rate: {:.1}%", self.memo_hit_rate() * 100.0)?;
        write!(
            f,
            "  stages: lower {:.1?}, reuse {:.1?}, solve {:.1?}, cascade {:.1?}, classify {:.1?}",
            self.time_lower,
            self.time_reuse,
            self.time_solve,
            self.time_cascade,
            self.time_classify
        )
    }
}

impl Engine {
    /// Snapshot of the engine's accounting.
    pub fn stats(&self) -> EngineStats {
        let c = &self.counters;
        let ns = |a: &AtomicU64| Duration::from_nanos(a.load(Ordering::Relaxed));
        EngineStats {
            analyses: c.analyses.load(Ordering::Relaxed),
            passthroughs: c.passthroughs.load(Ordering::Relaxed),
            lowered_built: c.lowered_built.load(Ordering::Relaxed),
            lowered_reused: c.lowered_reused.load(Ordering::Relaxed),
            reuse_built: c.reuse_built.load(Ordering::Relaxed),
            reuse_reused: c.reuse_reused.load(Ordering::Relaxed),
            cascades_built: c.cascades_built.load(Ordering::Relaxed),
            cascades_reused: c.cascades_reused.load(Ordering::Relaxed),
            scans_executed: c.scans_executed.load(Ordering::Relaxed),
            scans_reused: c.scans_reused.load(Ordering::Relaxed),
            systems_generated: c.systems_generated.load(Ordering::Relaxed),
            systems_rebased: c.systems_rebased.load(Ordering::Relaxed),
            systems_reused: c.systems_reused.load(Ordering::Relaxed),
            scan_points: c.scan_points.load(Ordering::Relaxed),
            scan_blocks: c.scan_blocks.load(Ordering::Relaxed),
            window_steps: c.window_steps.load(Ordering::Relaxed),
            window_rebuilds: c.window_rebuilds.load(Ordering::Relaxed),
            window_rebuild_rows: c.window_rebuild_rows.load(Ordering::Relaxed),
            peak_survivors: c.peak_survivors.load(Ordering::Relaxed),
            scan_sets_dense: c.scan_sets_dense.load(Ordering::Relaxed),
            scan_sets_runs: c.scan_sets_runs.load(Ordering::Relaxed),
            time_scan_shards: ns(&c.scan_shard_busy_ns),
            time_scan_longest_shard: ns(&c.scan_shard_longest_ns),
            scan_steals: c.scan_steals.load(Ordering::Relaxed),
            time_scan_merge: ns(&c.scan_merge_ns),
            truncated_points: c.truncated_points.load(Ordering::Relaxed),
            exhausted_analyses: c.exhausted_analyses.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            store_hits: c.store_hits.load(Ordering::Relaxed),
            store_misses: c.store_misses.load(Ordering::Relaxed),
            store_writes: c.store_writes.load(Ordering::Relaxed),
            sim_classifications: c.sim_classifications.load(Ordering::Relaxed),
            sim_accesses: c.sim_accesses.load(Ordering::Relaxed),
            sim_writebacks: c.sim_writebacks.load(Ordering::Relaxed),
            sim_exhausted: c.sim_exhausted.load(Ordering::Relaxed),
            sweeps_fitted: c.sweeps_fitted.load(Ordering::Relaxed),
            sweeps_fallback: c.sweeps_fallback.load(Ordering::Relaxed),
            sweep_memo_hits: c.sweep_memo_hits.load(Ordering::Relaxed),
            sweep_samples: c.sweep_samples.load(Ordering::Relaxed),
            solver_hits: self.solve_memo.hits(),
            solver_misses: self.solve_memo.misses(),
            time_lower: ns(&c.lower_ns),
            time_reuse: ns(&c.reuse_ns),
            time_solve: ns(&c.solve_ns),
            time_cascade: ns(&c.cascade_ns),
            time_classify: ns(&c.classify_ns),
        }
    }
}
