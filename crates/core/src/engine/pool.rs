//! A scoped work pool for independent analysis items.
//!
//! The engine's parallelism is a flat bag of independent work items —
//! whole-reference passthroughs and per-`(reference, reuse-vector)` window
//! scans. Workers pull the next unclaimed item from a shared atomic cursor
//! (idle workers steal whatever is left, so an expensive item never
//! serializes the cheap ones behind it), and results land in their item's
//! slot so the output order is deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `work(index, item)` over every item and returns the results in
/// item order. With `threads <= 1` (or one item) everything runs inline on
/// the caller's thread — no pool, no synchronization.
pub(crate) fn run_pool<T, R, F>(items: Vec<T>, threads: usize, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| work(i, t))
            .collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = slots[idx]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work item claimed twice");
                let out = work(idx, item);
                *results[idx].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped an item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_pooled_agree_and_preserve_order() {
        let items: Vec<u64> = (0..100).collect();
        let inline = run_pool(items.clone(), 1, |i, x| x * 2 + i as u64);
        let pooled = run_pool(items, 4, |i, x| x * 2 + i as u64);
        assert_eq!(inline, pooled);
        assert_eq!(inline[10], 30);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(run_pool(Vec::<u8>::new(), 8, |_, x| x), Vec::<u8>::new());
        assert_eq!(run_pool(vec![7], 8, |_, x| x + 1), vec![8]);
    }
}
