//! A scoped work pool for independent analysis items.
//!
//! The engine's parallelism is a flat bag of independent work items —
//! whole-reference passthroughs and per-`(reference, reuse-vector)` window
//! scans. The item range is partitioned into one contiguous lane per
//! worker, each lane owning a cache-line-padded claim cursor ([`Lane`]) so
//! the hot claim path never bounces a shared line between cores; a worker
//! that drains its lane *steals* from the fullest remaining lane, so an
//! expensive item never serializes the cheap ones behind it. Results land
//! in their item's slot, keeping the output order deterministic regardless
//! of scheduling, and every claim is timed — [`PoolStats`] reports the
//! per-shard busy time, the critical path, and the steal count that the
//! perf artifacts and `EngineStats` surface.
//!
//! The pool is also the engine's **panic boundary**: every `work` call
//! runs under `catch_unwind`, so a panicking item (inline or pooled)
//! surfaces as a structured [`WorkerPanic`] instead of unwinding through
//! — or aborting — the whole process. On the first panic the remaining
//! workers stop claiming items; the caller loses only this query.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A caught panic from one work item: the first panic's payload, rendered
/// as text when it was a string (the overwhelmingly common case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WorkerPanic(pub(crate) String);

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Scheduling telemetry from one pooled run: how many shards (workers)
/// actually ran, how much wall time they spent inside work items in total,
/// the busiest single shard (the run's critical path), and how many items
/// were claimed from another worker's lane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PoolStats {
    pub(crate) shards: usize,
    pub(crate) busy: Duration,
    pub(crate) longest: Duration,
    pub(crate) steals: u64,
}

/// One worker's contiguous slice of the item range, padded to a cache line
/// so claim traffic on one lane never invalidates a neighbour's cursor.
#[repr(align(64))]
struct Lane {
    /// Next unclaimed index in `lo..hi`; claims past `hi` mean "drained".
    cursor: AtomicUsize,
    hi: usize,
}

impl Lane {
    /// Claims the next item of this lane, if any.
    fn claim(&self) -> Option<usize> {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        (idx < self.hi).then_some(idx)
    }

    /// Items still unclaimed — racy by nature, used only to pick a victim.
    fn remaining(&self) -> usize {
        self.hi.saturating_sub(self.cursor.load(Ordering::Relaxed))
    }
}

/// Per-worker timing accumulators, padded like the lanes: `busy_ns` is hot
/// (one store per item) and must not share a line with another worker's.
#[repr(align(64))]
#[derive(Default)]
struct LaneClock {
    busy_ns: AtomicU64,
    steals: AtomicU64,
}

/// Runs `work(index, item)` over every item and returns the results in
/// item order, plus [`PoolStats`] describing how the run was scheduled.
/// With `threads <= 1` (or one item) everything runs inline on the
/// caller's thread — no pool, no synchronization — and the stats report a
/// single shard. A panic in any item (first one wins) yields
/// `Err(WorkerPanic)` instead of unwinding.
pub(crate) fn run_pool_stats<T, R, F>(
    items: Vec<T>,
    threads: usize,
    work: F,
) -> Result<(Vec<R>, PoolStats), WorkerPanic>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    // `AssertUnwindSafe` is sound here: on panic the engine discards every
    // in-flight result for the query, so no broken invariant escapes.
    let guarded = |i: usize, t: T| catch_unwind(AssertUnwindSafe(|| work(i, t)));
    if threads <= 1 || items.len() <= 1 {
        let start = Instant::now();
        let mut out = Vec::with_capacity(items.len());
        for (i, t) in items.into_iter().enumerate() {
            match guarded(i, t) {
                Ok(r) => out.push(r),
                Err(payload) => return Err(WorkerPanic(payload_message(payload))),
            }
        }
        let busy = start.elapsed();
        let stats = PoolStats {
            shards: usize::from(!out.is_empty()),
            busy,
            longest: busy,
            steals: 0,
        };
        return Ok((out, stats));
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(n);
    // Partition `0..n` into one contiguous lane per worker, front-loading
    // the remainder so lane sizes differ by at most one.
    let lanes: Vec<Lane> = {
        let (base, extra) = (n / workers, n % workers);
        let mut lo = 0;
        (0..workers)
            .map(|w| {
                let len = base + usize::from(w < extra);
                let lane = Lane {
                    cursor: AtomicUsize::new(lo),
                    hi: lo + len,
                };
                lo += len;
                lane
            })
            .collect()
    };
    let clocks: Vec<LaneClock> = (0..workers).map(|_| LaneClock::default()).collect();
    let aborted = AtomicBool::new(false);
    let first_panic: Mutex<Option<String>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let lanes = &lanes;
            let clocks = &clocks;
            let aborted = &aborted;
            let first_panic = &first_panic;
            let guarded = &guarded;
            let slots = &slots;
            let results = &results;
            scope.spawn(move || {
                let start = Instant::now();
                loop {
                    if aborted.load(Ordering::Relaxed) {
                        break;
                    }
                    // Own lane first; once drained, raid the fullest lane.
                    let idx = lanes[w].claim().or_else(|| {
                        let victim = (0..workers)
                            .filter(|&v| v != w)
                            .max_by_key(|&v| lanes[v].remaining())?;
                        let idx = lanes[victim].claim()?;
                        clocks[w].steals.fetch_add(1, Ordering::Relaxed);
                        Some(idx)
                    });
                    let Some(idx) = idx else { break };
                    // A poisoned slot can only mean another worker panicked
                    // while holding it mid-claim; treat its item as consumed.
                    let item = slots[idx].lock().unwrap_or_else(|e| e.into_inner()).take();
                    let Some(item) = item else { continue };
                    match guarded(idx, item) {
                        Ok(out) => {
                            *results[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                        }
                        Err(payload) => {
                            aborted.store(true, Ordering::Relaxed);
                            first_panic
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .get_or_insert_with(|| payload_message(payload));
                            break;
                        }
                    }
                }
                clocks[w]
                    .busy_ns
                    .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
    });
    if let Some(message) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(WorkerPanic(message));
    }
    let mut out = Vec::with_capacity(n);
    for m in results {
        match m.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(r) => out.push(r),
            // Unreachable without a recorded panic, but stay panic-free.
            None => return Err(WorkerPanic("worker skipped an item".to_string())),
        }
    }
    let mut stats = PoolStats {
        shards: workers,
        ..PoolStats::default()
    };
    for clock in &clocks {
        let busy = Duration::from_nanos(clock.busy_ns.load(Ordering::Relaxed));
        stats.busy += busy;
        stats.longest = stats.longest.max(busy);
        stats.steals += clock.steals.load(Ordering::Relaxed);
    }
    Ok((out, stats))
}

/// [`run_pool_stats`] without the telemetry, for call sites that only need
/// the results.
pub(crate) fn run_pool<T, R, F>(
    items: Vec<T>,
    threads: usize,
    work: F,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_pool_stats(items, threads, work).map(|(out, _)| out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_pooled_agree_and_preserve_order() {
        let items: Vec<u64> = (0..100).collect();
        let inline = run_pool(items.clone(), 1, |i, x| x * 2 + i as u64).unwrap();
        let pooled = run_pool(items, 4, |i, x| x * 2 + i as u64).unwrap();
        assert_eq!(inline, pooled);
        assert_eq!(inline[10], 30);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(
            run_pool(Vec::<u8>::new(), 8, |_, x| x).unwrap(),
            Vec::<u8>::new()
        );
        assert_eq!(run_pool(vec![7], 8, |_, x| x + 1).unwrap(), vec![8]);
    }

    #[test]
    fn inline_panic_is_caught() {
        let err = run_pool(vec![1u8, 2, 3], 1, |_, x| {
            if x == 2 {
                panic!("item {x} exploded");
            }
            x
        })
        .unwrap_err();
        assert!(err.0.contains("item 2 exploded"), "{}", err.0);
    }

    #[test]
    fn pooled_panic_aborts_and_reports() {
        let items: Vec<u64> = (0..64).collect();
        let err = run_pool(items, 4, |_, x| {
            if x == 13 {
                panic!("unlucky");
            }
            x
        })
        .unwrap_err();
        assert!(err.0.contains("unlucky"), "{}", err.0);
    }

    #[test]
    fn stats_cover_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let hits = AtomicU64::new(0);
        let items: Vec<u64> = (0..1000).collect();
        let (out, stats) = run_pool_stats(items, 4, |i, x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x + i as u64
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).map(|x| 2 * x).collect::<Vec<_>>());
        assert!(stats.shards >= 1 && stats.shards <= 4);
        assert!(stats.longest <= stats.busy);
    }

    #[test]
    fn slow_lane_is_raided() {
        // Lane 0 owns the first half of the items; making its first item
        // slow forces the other workers to drain their lanes and then
        // steal the rest of lane 0's work.
        let items: Vec<u64> = (0..64).collect();
        let (out, stats) = run_pool_stats(items, 4, |i, x| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x
        })
        .unwrap();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        if std::thread::available_parallelism().map_or(1, usize::from) >= 2 {
            assert!(stats.steals > 0, "expected steals, got {stats:?}");
        }
    }

    #[test]
    fn inline_stats_report_single_shard() {
        let (out, stats) = run_pool_stats(vec![1u8, 2, 3], 1, |_, x| x).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.shards, 1);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.busy, stats.longest);
    }

    #[test]
    fn non_string_payload_is_described() {
        let err =
            run_pool(vec![0u8], 1, |_, _| -> u8 { std::panic::panic_any(42i32) }).unwrap_err();
        assert_eq!(err.0, "non-string panic payload");
    }
}
