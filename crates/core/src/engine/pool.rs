//! A scoped work pool for independent analysis items.
//!
//! The engine's parallelism is a flat bag of independent work items —
//! whole-reference passthroughs and per-`(reference, reuse-vector)` window
//! scans. Workers pull the next unclaimed item from a shared atomic cursor
//! (idle workers steal whatever is left, so an expensive item never
//! serializes the cheap ones behind it), and results land in their item's
//! slot so the output order is deterministic regardless of scheduling.
//!
//! The pool is also the engine's **panic boundary**: every `work` call
//! runs under `catch_unwind`, so a panicking item (inline or pooled)
//! surfaces as a structured [`WorkerPanic`] instead of unwinding through
//! — or aborting — the whole process. On the first panic the remaining
//! workers stop claiming items; the caller loses only this query.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A caught panic from one work item: the first panic's payload, rendered
/// as text when it was a string (the overwhelmingly common case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WorkerPanic(pub(crate) String);

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work(index, item)` over every item and returns the results in
/// item order. With `threads <= 1` (or one item) everything runs inline on
/// the caller's thread — no pool, no synchronization. A panic in any item
/// (first one wins) yields `Err(WorkerPanic)` instead of unwinding.
pub(crate) fn run_pool<T, R, F>(
    items: Vec<T>,
    threads: usize,
    work: F,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    // `AssertUnwindSafe` is sound here: on panic the engine discards every
    // in-flight result for the query, so no broken invariant escapes.
    let guarded = |i: usize, t: T| catch_unwind(AssertUnwindSafe(|| work(i, t)));
    if threads <= 1 || items.len() <= 1 {
        let mut out = Vec::with_capacity(items.len());
        for (i, t) in items.into_iter().enumerate() {
            match guarded(i, t) {
                Ok(r) => out.push(r),
                Err(payload) => return Err(WorkerPanic(payload_message(payload))),
            }
        }
        return Ok(out);
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let first_panic: Mutex<Option<String>> = Mutex::new(None);
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if aborted.load(Ordering::Relaxed) {
                    break;
                }
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                // A poisoned slot can only mean another worker panicked
                // while holding it mid-claim; treat its item as consumed.
                let item = slots[idx].lock().unwrap_or_else(|e| e.into_inner()).take();
                let Some(item) = item else { continue };
                match guarded(idx, item) {
                    Ok(out) => {
                        *results[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    }
                    Err(payload) => {
                        aborted.store(true, Ordering::Relaxed);
                        first_panic
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .get_or_insert_with(|| payload_message(payload));
                        break;
                    }
                }
            });
        }
    });
    if let Some(message) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(WorkerPanic(message));
    }
    let mut out = Vec::with_capacity(n);
    for m in results {
        match m.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(r) => out.push(r),
            // Unreachable without a recorded panic, but stay panic-free.
            None => return Err(WorkerPanic("worker skipped an item".to_string())),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_pooled_agree_and_preserve_order() {
        let items: Vec<u64> = (0..100).collect();
        let inline = run_pool(items.clone(), 1, |i, x| x * 2 + i as u64).unwrap();
        let pooled = run_pool(items, 4, |i, x| x * 2 + i as u64).unwrap();
        assert_eq!(inline, pooled);
        assert_eq!(inline[10], 30);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(
            run_pool(Vec::<u8>::new(), 8, |_, x| x).unwrap(),
            Vec::<u8>::new()
        );
        assert_eq!(run_pool(vec![7], 8, |_, x| x + 1).unwrap(), vec![8]);
    }

    #[test]
    fn inline_panic_is_caught() {
        let err = run_pool(vec![1u8, 2, 3], 1, |_, x| {
            if x == 2 {
                panic!("item {x} exploded");
            }
            x
        })
        .unwrap_err();
        assert!(err.0.contains("item 2 exploded"), "{}", err.0);
    }

    #[test]
    fn pooled_panic_aborts_and_reports() {
        let items: Vec<u64> = (0..64).collect();
        let err = run_pool(items, 4, |_, x| {
            if x == 13 {
                panic!("unlucky");
            }
            x
        })
        .unwrap_err();
        assert!(err.0.contains("unlucky"), "{}", err.0);
    }

    #[test]
    fn non_string_payload_is_described() {
        let err =
            run_pool(vec![0u8], 1, |_, _| -> u8 { std::panic::panic_any(42i32) }).unwrap_err();
        assert_eq!(err.0, "non-string panic payload");
    }
}
