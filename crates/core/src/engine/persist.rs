//! Persistent-store glue for the engine driver: per-batch key
//! derivation, the read-side consult ahead of the pipeline, and the
//! exact-only write-through. Policy (what is trusted, what is evicted,
//! what is never written) lives in [`crate::store`]; this module only
//! wires it to the batch entry point and the counters.

use super::Engine;
use crate::governor::{GovernedAnalysis, Outcome, QueryGovernor};
use crate::solve::{AnalysisOptions, NestAnalysis};
use crate::store::{ArtifactKey, ArtifactStore};
use cme_ir::NestId;
use std::sync::atomic::Ordering;
use std::sync::Arc;

impl Engine {
    /// Attaches a persistent [`ArtifactStore`]: finished (complete)
    /// analyses are written through to disk and later queries for the
    /// same `(structure, layout, geometry, options)` are answered from
    /// the store before any pipeline stage runs. The store is only
    /// consulted while caching is on ([`Engine::set_caching`]) — the
    /// uncached reference path stays a true recompute. Exhausted
    /// (budget-truncated) results are never persisted.
    pub fn set_store(&mut self, store: Arc<ArtifactStore>) {
        self.store = Some(store);
    }

    /// The attached artifact store, if any.
    pub fn store(&self) -> Option<&Arc<ArtifactStore>> {
        self.store.as_ref()
    }
    /// The store key of every nest in the batch, or `None` per slot when
    /// no store is attached. The store mirrors the memo tables' on/off
    /// switch: with caching disabled this is a true recompute and every
    /// slot is `None`. Keys carry the session's full [`cme_cache::CacheModel`]
    /// through the options fingerprint, so a session serving a non-LRU or
    /// two-level model can never read (or shadow) a baseline artifact;
    /// for the baseline model the keys are bit-identical to the
    /// pre-model format.
    pub(super) fn artifact_keys(
        &self,
        ids: &[NestId],
        options: &AnalysisOptions,
    ) -> Vec<Option<ArtifactKey>> {
        match &self.store {
            Some(_) if self.caching => ids
                .iter()
                .map(|&id| {
                    Some(ArtifactKey::for_model(
                        self.db.structural_hash(id),
                        self.db.layout_hash(id),
                        &self.model,
                        options,
                    ))
                })
                .collect(),
            _ => vec![None; ids.len()],
        }
    }

    /// Read-side consult, ahead of every pipeline stage: one pre-served
    /// analysis per keyed slot. A stored artifact is always a *complete*
    /// analysis (truncated results are never persisted), so a hit
    /// satisfies any budget.
    pub(super) fn consult_store(&self, keys: &[Option<ArtifactKey>]) -> Vec<Option<NestAnalysis>> {
        let mut served: Vec<Option<NestAnalysis>> = vec![None; keys.len()];
        if let Some(store) = &self.store {
            for (slot, key) in served.iter_mut().zip(keys) {
                if let Some(key) = key {
                    match store.get(key) {
                        Some(analysis) => {
                            self.counters.store_hits.fetch_add(1, Ordering::Relaxed);
                            *slot = Some(analysis);
                        }
                        None => {
                            self.counters.store_misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        served
    }

    /// Write-through of exact artifacts only — the caller must have
    /// already checked the outcome: an exhausted result is a sound
    /// overcount a later reader could not distinguish from the exact
    /// answer, so it must never reach this point.
    pub(super) fn persist_exact(&self, key: Option<&ArtifactKey>, analysis: &NestAnalysis) {
        if let (Some(store), Some(key)) = (&self.store, key) {
            store.put(key, analysis);
            self.counters.store_writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Assembles the batch result in `ids` order from store hits
    /// (`served`, always [`Outcome::Complete`]) and pipeline results
    /// (`computed`, in `miss_idx` order), tallying exhaustion and
    /// writing exact artifacts through to the store.
    pub(super) fn merge_batch_results(
        &self,
        served: Vec<Option<NestAnalysis>>,
        keys: &[Option<ArtifactKey>],
        miss_idx: &[usize],
        computed: Vec<NestAnalysis>,
        govs: &[QueryGovernor],
    ) -> Vec<GovernedAnalysis> {
        let mut out: Vec<Option<GovernedAnalysis>> = served
            .into_iter()
            .map(|s| {
                s.map(|analysis| GovernedAnalysis {
                    analysis,
                    outcome: Outcome::Complete,
                })
            })
            .collect();
        for ((&i, analysis), gov) in miss_idx.iter().zip(computed).zip(govs) {
            let outcome = gov.outcome();
            if outcome.is_exhausted() {
                self.counters
                    .exhausted_analyses
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .truncated_points
                    .fetch_add(gov.truncated_points(), Ordering::Relaxed);
            } else {
                self.persist_exact(keys[i].as_ref(), &analysis);
            }
            out[i] = Some(GovernedAnalysis { analysis, outcome });
        }
        out.into_iter()
            .map(|g| match g {
                Some(g) => g,
                None => unreachable!("every slot is a hit or a computed miss"),
            })
            .collect()
    }
}
