//! Sliding-window interior scanner: the incremental half of the fast
//! cascade (see `docs/PERF.md`).
//!
//! The reuse window of a destination point `i⃗` along vector `r⃗` is the
//! set of iteration points strictly between `p⃗ = i⃗ − r⃗` and `i⃗`.
//! Adjacent survivors along the innermost axis have windows that differ by
//! exactly two points — the old destination enters, the successor of the
//! old source leaves — whenever both endpoints advance in lockstep:
//!
//! ```text
//!   W(succ(i⃗)) = W(i⃗) ∪ {i⃗} \ {succ(p⃗)}   iff succ(p⃗) = succ(i⃗) − r⃗
//! ```
//!
//! [`SlidingWindow`] maintains the interior's accesses as a multiset of
//! memory-line counts plus a per-cache-set tally of *distinct* lines, so a
//! step costs O(references) and a membership query O(1), independent of
//! the window size. When the lockstep condition fails (row or prefix
//! boundary crossed at a different time by the two endpoints, or the scan
//! jumps over excluded points) the state is rebuilt from scratch — but the
//! rebuild aggregates whole innermost rows as arithmetic progressions of
//! addresses, so it costs O(rows × lines), not O(points × references).
//!
//! Unlike [`crate::solve::Scanner`], which tallies only lines conflicting
//! with one fixed destination set/line, the window state is
//! destination-agnostic: changing the destination line between steps is a
//! query-time concern, never a rebuild trigger.

use cme_cache::CacheConfig;
use cme_ir::IterationSpace;
use cme_math::gcd::{floor_div, modulo};
use cme_math::lexi::lex_cmp;
use cme_math::Affine;
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Minimal multiplicative hasher for `i64` memory-line keys: the default
/// SipHash is overkill (and measurably slow) for hot per-step updates, and
/// line numbers are already well-spread integers.
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-style fallback for non-integer keys (unused on the hot path).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = self.0 ^ v;
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 32;
        self.0 = h;
    }
}

type LineCounts = HashMap<i64, u64, BuildHasherDefault<LineHasher>>;

/// Overflow tier of the dense multiset: line index → accesses beyond the
/// saturated `u8` counter. An entry exists (and is positive) only while
/// the fast-tier counter sits at [`SAT`].
type SpillCounts = HashMap<u32, u64, BuildHasherDefault<LineHasher>>;

/// Saturation ceiling of the dense fast tier's per-line `u8` counters.
const SAT: u8 = u8::MAX;

/// Widest line span (≈4 MB of `u8` counters plus a 512 KB occupancy
/// bitmap) still backed by the dense array.
const MAX_DENSE_LINES: i64 = 1 << 22;

/// Multiset of window-interior accesses keyed by memory line.
///
/// When every reference's address range over the space's bounding box
/// spans at most [`MAX_DENSE_LINES`] lines, counts live in a dense
/// saturating-`u8` array indexed by `line − base` — one predictable byte
/// load per update, no hashing — with the rare multiplicity above [`SAT`]
/// spilled to a side map. Membership lives in a separate occupancy bitmap
/// packing 64 lines per word: `contains_line` is a bit test, a clear
/// zeroes whole 64-counter blocks guided by the dirty-word list (O(words
/// touched), not O(span) and not O(lines touched)), and bulk updates over
/// contiguous line ranges discover 0→occupied transitions a word at a
/// time. Wider (or unknown) spans fall back to the hash multiset.
enum LineMultiset {
    Dense {
        base: i64,
        /// Saturating fast-tier counters: [`SAT`] means "at least `SAT`;
        /// the excess lives in `spill`".
        counts: Vec<u8>,
        /// Occupancy bitmap: bit `idx % 64` of word `idx / 64` is set iff
        /// `counts[idx] > 0`.
        occ: Vec<u64>,
        /// Occupancy words dirtied since the last clear (a word may repeat
        /// if it empties and refills; clearing is idempotent).
        touched: Vec<u32>,
        /// Overflow beyond the `u8` tier; `spill[idx] > 0` only while
        /// `counts[idx] == SAT`.
        spill: SpillCounts,
    },
    Sparse(LineCounts),
}

#[cfg(test)]
impl LineMultiset {
    /// Multiplicity of `line` (test support).
    fn count_of(&self, line: i64) -> u64 {
        match self {
            LineMultiset::Dense {
                base,
                counts,
                spill,
                ..
            } => {
                let idx = line.wrapping_sub(*base);
                if idx >= 0 && (idx as usize) < counts.len() {
                    u64::from(counts[idx as usize]) + spill.get(&(idx as u32)).copied().unwrap_or(0)
                } else {
                    0
                }
            }
            LineMultiset::Sparse(map) => map.get(&line).copied().unwrap_or(0),
        }
    }

    /// Number of distinct lines present (test support).
    fn distinct_len(&self) -> usize {
        match self {
            LineMultiset::Dense { occ, .. } => occ.iter().map(|w| w.count_ones() as usize).sum(),
            LineMultiset::Sparse(map) => map.len(),
        }
    }
}

/// Address→line→set mapping with shift/mask fast paths for power-of-two
/// geometries (the common case by far); non-power-of-two geometries fall
/// back to floored division / Euclidean modulo. Hot scan loops perform
/// this mapping several times per iteration point, where the general
/// `floor_div`/`modulo` pair costs two hardware divisions.
#[derive(Clone, Copy)]
pub(crate) struct Geom {
    line_elems: i64,
    num_sets: i64,
    line_shift: Option<u32>,
    set_mask: Option<i64>,
}

impl Geom {
    pub(crate) fn new(cache: &CacheConfig) -> Self {
        Self::from_parts(cache.line_elems(), cache.num_sets())
    }

    /// Builds the mapping from raw geometry parts. [`CacheConfig`] only
    /// produces power-of-two `line_elems`/`num_sets`, so this is the only
    /// way to reach the floored-division / Euclidean-modulo fallbacks —
    /// the differential tests use it to pin fast-path/generic agreement.
    pub(crate) fn from_parts(line_elems: i64, num_sets: i64) -> Self {
        debug_assert!(line_elems > 0 && num_sets > 0);
        Geom {
            line_elems,
            num_sets,
            line_shift: (line_elems & (line_elems - 1) == 0).then(|| line_elems.trailing_zeros()),
            set_mask: (num_sets & (num_sets - 1) == 0).then(|| num_sets - 1),
        }
    }

    /// Memory line of an element address (`⌊addr / Ls⌋`, negatives floored).
    #[inline]
    pub(crate) fn line(&self, addr: i64) -> i64 {
        match self.line_shift {
            // Arithmetic right shift is floored division for all signs.
            Some(s) => addr >> s,
            None => floor_div(addr, self.line_elems),
        }
    }

    /// Cache set of a memory line (Euclidean `line mod num_sets`).
    #[inline]
    pub(crate) fn set_of_line(&self, line: i64) -> i64 {
        match self.set_mask {
            // Two's-complement AND yields the non-negative residue.
            Some(m) => line & m,
            None => modulo(line, self.num_sets),
        }
    }
}

/// Step/rebuild accounting, drained into the engine's atomic counters
/// after each scan block.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WindowStats {
    /// Destination points advanced incrementally (O(refs) each).
    pub steps: u64,
    /// Full window rebuilds.
    pub rebuilds: u64,
    /// Innermost rows aggregated during rebuilds.
    pub rebuild_rows: u64,
}

/// Incremental reuse-window state (see module docs).
pub(crate) struct SlidingWindow<'a> {
    cache: &'a CacheConfig,
    addrs: &'a [Affine],
    geom: Geom,
    num_sets: i64,
    /// Multiset of window-interior accesses, keyed by memory line.
    counts: LineMultiset,
    /// Distinct lines currently present, per cache set.
    distinct_per_set: Vec<u32>,
    /// Current window endpoints (both exclusive): source `p⃗` and
    /// destination `i⃗`.
    src: Vec<i64>,
    dst: Vec<i64>,
    valid: bool,
    next_src: Vec<i64>,
    next_dst: Vec<i64>,
    /// Target source endpoint scratch for [`SlidingWindow::advance_to`].
    tgt_src: Vec<i64>,
    row_buf: Vec<i64>,
    /// Number of iteration points strictly inside the window. A gap-one
    /// window (`i⃗` the immediate successor of `p⃗`) has zero interior
    /// points; stepping it is a no-op on the multiset (the entering point
    /// is the leaving point), which [`SlidingWindow::step_in_segment`]
    /// exploits for innermost spatial vectors.
    interior_pts: u64,
    /// Per-reference addresses at the current endpoints, maintained
    /// incrementally while stepping inside a run segment (armed by
    /// [`SlidingWindow::begin_segment`]).
    src_addr: Vec<i64>,
    dst_addr: Vec<i64>,
    /// Per-reference innermost-axis address stride (constant per nest).
    stride_in: Vec<i64>,
    /// Line-count updates performed by the last rebuild; bounds how far a
    /// step chase may go before rebuilding is the cheaper move.
    last_rebuild_ops: u64,
    pub(crate) stats: WindowStats,
}

impl<'a> SlidingWindow<'a> {
    pub(crate) fn new(cache: &'a CacheConfig, addrs: &'a [Affine], depth: usize) -> Self {
        let num_sets = cache.num_sets();
        SlidingWindow {
            cache,
            addrs,
            geom: Geom::new(cache),
            num_sets,
            counts: LineMultiset::Sparse(LineCounts::default()),
            distinct_per_set: vec![0; num_sets as usize],
            src: vec![0; depth],
            dst: vec![0; depth],
            valid: false,
            next_src: vec![0; depth],
            next_dst: vec![0; depth],
            tgt_src: vec![0; depth],
            row_buf: vec![0; depth],
            interior_pts: 0,
            src_addr: vec![0; addrs.len()],
            dst_addr: vec![0; addrs.len()],
            stride_in: addrs.iter().map(|a| a.coeff(depth - 1)).collect(),
            last_rebuild_ops: 0,
            stats: WindowStats::default(),
        }
    }

    /// Like [`SlidingWindow::new`], but sized against the space: when the
    /// references' address ranges over the bounding box span few enough
    /// memory lines, the line multiset is backed by a dense array instead
    /// of a hash map (see [`LineMultiset`]).
    pub(crate) fn new_for_space(
        cache: &'a CacheConfig,
        addrs: &'a [Affine],
        space: &IterationSpace<'_>,
    ) -> Self {
        let mut w = Self::new(cache, addrs, space.nest().depth());
        let bbox = space.bounding_box();
        let (mut lmin, mut lmax) = (i64::MAX, i64::MIN);
        for a in addrs {
            let range = a.range(&bbox);
            lmin = lmin.min(w.geom.line(range.lo));
            lmax = lmax.max(w.geom.line(range.hi));
        }
        if lmin <= lmax && lmax - lmin < MAX_DENSE_LINES {
            let span = (lmax - lmin + 1) as usize;
            w.counts = LineMultiset::Dense {
                base: lmin,
                counts: vec![0; span],
                occ: vec![0; span.div_ceil(64)],
                touched: Vec::new(),
                spill: SpillCounts::default(),
            };
        }
        w
    }

    /// Address of reference `s` at the source endpoint `p⃗` (valid inside a
    /// segment armed by [`SlidingWindow::begin_segment`]).
    pub(crate) fn src_addr(&self, s: usize) -> i64 {
        self.src_addr[s]
    }

    /// Address of reference `s` at the destination endpoint `i⃗`.
    pub(crate) fn dst_addr(&self, s: usize) -> i64 {
        self.dst_addr[s]
    }

    /// Distinct conflicting lines in the window for a destination mapping
    /// to `dest_set` / `dest_line` — the window's contribution to the
    /// replacement-miss verdict (side accesses at the endpoints are
    /// layered on top by the caller).
    pub(crate) fn distinct_excluding(&self, dest_set: i64, dest_line: i64) -> u64 {
        debug_assert_eq!(modulo(dest_line, self.num_sets), dest_set);
        let d = u64::from(self.distinct_per_set[dest_set as usize]);
        if self.contains_line(dest_line) {
            d - 1
        } else {
            d
        }
    }

    /// Whether the window interior already accesses `line` (used to dedup
    /// endpoint side accesses against the window).
    pub(crate) fn contains_line(&self, line: i64) -> bool {
        match &self.counts {
            LineMultiset::Dense {
                base, counts, occ, ..
            } => {
                let idx = line.wrapping_sub(*base);
                idx >= 0
                    && (idx as usize) < counts.len()
                    && occ[idx as usize / 64] >> (idx as usize % 64) & 1 == 1
            }
            LineMultiset::Sparse(map) => map.contains_key(&line),
        }
    }

    fn clear_counts(&mut self) {
        match &mut self.counts {
            LineMultiset::Dense {
                counts,
                occ,
                touched,
                spill,
                ..
            } => {
                // Word-parallel clear: each dirty occupancy word zeroes its
                // whole 64-counter block, regardless of which bits are set.
                for wi in touched.drain(..) {
                    let wi = wi as usize;
                    occ[wi] = 0;
                    let lo = wi * 64;
                    let hi = (lo + 64).min(counts.len());
                    counts[lo..hi].fill(0);
                }
                spill.clear();
            }
            LineMultiset::Sparse(map) => map.clear(),
        }
        self.distinct_per_set.fill(0);
    }

    fn add_line(&mut self, line: i64, n: u64) {
        debug_assert!(n > 0);
        match &mut self.counts {
            LineMultiset::Dense {
                base,
                counts,
                occ,
                touched,
                spill,
            } => {
                let idx = (line - *base) as usize;
                let c = &mut counts[idx];
                if *c == 0 {
                    let w = &mut occ[idx / 64];
                    if *w == 0 {
                        touched.push((idx / 64) as u32);
                    }
                    *w |= 1u64 << (idx % 64);
                    self.distinct_per_set[self.geom.set_of_line(line) as usize] += 1;
                }
                let total = u64::from(*c) + n;
                if total >= u64::from(SAT) {
                    if total > u64::from(SAT) {
                        *spill.entry(idx as u32).or_insert(0) += total - u64::from(SAT);
                    }
                    *c = SAT;
                } else {
                    *c = total as u8;
                }
            }
            LineMultiset::Sparse(map) => match map.entry(line) {
                Entry::Occupied(mut e) => *e.get_mut() += n,
                Entry::Vacant(e) => {
                    e.insert(n);
                    self.distinct_per_set[self.geom.set_of_line(line) as usize] += 1;
                }
            },
        }
    }

    /// Removes one access of `line` (the single-step mirror of
    /// [`SlidingWindow::remove_line`]).
    fn remove_access(&mut self, line: i64) {
        self.remove_line(line, 1);
    }

    /// Removes `n` accesses of `line` at once, draining any spilled
    /// overflow before the saturated fast-tier counter is decremented.
    fn remove_line(&mut self, line: i64, n: u64) {
        debug_assert!(n > 0);
        match &mut self.counts {
            LineMultiset::Dense {
                base,
                counts,
                occ,
                spill,
                ..
            } => {
                let idx = (line - *base) as usize;
                let c = &mut counts[idx];
                let mut n = n;
                if *c == SAT {
                    if let Entry::Occupied(mut e) = spill.entry(idx as u32) {
                        let s = e.get_mut();
                        if *s > n {
                            *s -= n;
                            return;
                        }
                        n -= *s;
                        e.remove();
                        if n == 0 {
                            return;
                        }
                    }
                }
                debug_assert!(
                    u64::from(*c) >= n,
                    "removing accesses absent from the window"
                );
                let rem = u64::from(*c) - n;
                *c = rem as u8;
                if rem == 0 {
                    occ[idx / 64] &= !(1u64 << (idx % 64));
                    self.distinct_per_set[self.geom.set_of_line(line) as usize] -= 1;
                }
            }
            LineMultiset::Sparse(map) => match map.entry(line) {
                Entry::Occupied(mut e) => {
                    debug_assert!(*e.get() >= n, "removing accesses absent from the window");
                    if *e.get() == n {
                        e.remove();
                        self.distinct_per_set[self.geom.set_of_line(line) as usize] -= 1;
                    } else {
                        *e.get_mut() -= n;
                    }
                }
                Entry::Vacant(_) => {
                    debug_assert!(false, "removing accesses absent from the window")
                }
            },
        }
    }

    /// Word-parallel bulk add over the contiguous line range
    /// `[lmin, lmax]` of the access progression `base, base+stride, …`
    /// (`count` accesses, `0 < stride ≤ Ls`): membership transitions are
    /// discovered 64 lines per occupancy word — lines already present cost
    /// no per-line bookkeeping at all — then the saturating counters
    /// absorb each line's multiplicity. Returns `false` (no-op) when the
    /// multiset is not dense.
    fn dense_add_range(
        &mut self,
        lmin: i64,
        lmax: i64,
        base: i64,
        stride: i64,
        count: i64,
    ) -> bool {
        let ls = self.cache.line_elems();
        let geom = self.geom;
        let LineMultiset::Dense {
            base: dbase,
            counts,
            occ,
            touched,
            spill,
        } = &mut self.counts
        else {
            return false;
        };
        let ilo = (lmin - *dbase) as usize;
        let ihi = (lmax - *dbase) as usize;
        let (wlo, whi) = (ilo / 64, ihi / 64);
        for (wi, word) in occ.iter_mut().enumerate().take(whi + 1).skip(wlo) {
            let lo_bit = if wi == wlo { ilo % 64 } else { 0 };
            let hi_bit = if wi == whi { ihi % 64 } else { 63 };
            let mask = (!0u64 << lo_bit) & (!0u64 >> (63 - hi_bit));
            let mut newly = mask & !*word;
            if *word == 0 {
                touched.push(wi as u32);
            }
            *word |= mask;
            while newly != 0 {
                let b = newly.trailing_zeros() as usize;
                newly &= newly - 1;
                let line = *dbase + (wi * 64 + b) as i64;
                self.distinct_per_set[geom.set_of_line(line) as usize] += 1;
            }
        }
        for line in lmin..=lmax {
            // Accesses q with line·Ls ≤ base + stride·q < (line+1)·Ls;
            // stride ≤ Ls guarantees every line in the range is hit.
            let lo = ceil_div(line * ls - base, stride).max(0);
            let hi = floor_div((line + 1) * ls - 1 - base, stride).min(count - 1);
            debug_assert!(lo <= hi);
            let n = (hi - lo + 1) as u64;
            let c = &mut counts[(line - *dbase) as usize];
            let total = u64::from(*c) + n;
            if total >= u64::from(SAT) {
                if total > u64::from(SAT) {
                    *spill.entry((line - *dbase) as u32).or_insert(0) += total - u64::from(SAT);
                }
                *c = SAT;
            } else {
                *c = total as u8;
            }
        }
        true
    }

    /// Adds (`sign > 0`) or removes (`sign < 0`) one reference's accesses
    /// over an innermost segment: addresses `base, base+stride, …`
    /// (`count` of them), aggregated per memory line — consecutive
    /// accesses striding less than a line collapse into one count update
    /// per line covered, so a `count`-point batch costs
    /// `O(count·stride/Ls + 1)` updates instead of `count`. Returns the
    /// number of line-count updates performed.
    fn progression(&mut self, base: i64, stride: i64, count: i64, sign: i64) -> u64 {
        #[inline]
        fn apply(w: &mut SlidingWindow<'_>, line: i64, n: u64, sign: i64) {
            if sign > 0 {
                w.add_line(line, n);
            } else {
                w.remove_line(line, n);
            }
        }
        if count <= 0 {
            return 0;
        }
        let ls = self.cache.line_elems();
        if stride == 0 || count == 1 {
            apply(self, self.geom.line(base), count as u64, sign);
            return 1;
        }
        // Normalize to a positive stride (the multiset is order-blind).
        let (base, stride) = if stride < 0 {
            (base + stride * (count - 1), -stride)
        } else {
            (base, stride)
        };
        if stride <= ls {
            // Consecutive accesses move less than a line: the segment
            // covers every line in its address range, each with a
            // computable multiplicity.
            let lmin = self.geom.line(base);
            let lmax = self.geom.line(base + stride * (count - 1));
            if sign > 0 && self.dense_add_range(lmin, lmax, base, stride, count) {
                return (lmax - lmin + 1) as u64;
            }
            for line in lmin..=lmax {
                // Accesses q with line·Ls ≤ base + stride·q < (line+1)·Ls.
                let lo = ceil_div(line * ls - base, stride).max(0);
                let hi = floor_div((line + 1) * ls - 1 - base, stride).min(count - 1);
                if lo <= hi {
                    apply(self, line, (hi - lo + 1) as u64, sign);
                }
            }
            return (lmax - lmin + 1) as u64;
        }
        // Stride beyond a line: every access lands on its own line.
        for q in 0..count {
            apply(self, self.geom.line(base + stride * q), 1, sign);
        }
        count as u64
    }

    /// Adds one reference's accesses over a whole innermost row: addresses
    /// `base, base+stride, …` (`count` of them), aggregated per memory
    /// line. Returns the number of line-count updates performed.
    fn add_progression(&mut self, base: i64, stride: i64, count: i64) -> u64 {
        self.progression(base, stride, count, 1)
    }

    /// Adds every reference's accesses over the row `(prefix, lo..=hi)`.
    fn add_row(&mut self, prefix: &[i64], lo: i64, hi: i64) -> u64 {
        if lo > hi {
            return 0;
        }
        let inner = prefix.len();
        self.row_buf[..inner].copy_from_slice(prefix);
        self.row_buf[inner] = lo;
        self.stats.rebuild_rows += 1;
        self.interior_pts += (hi - lo + 1) as u64;
        let mut ops = 0;
        for s in 0..self.addrs.len() {
            let base = self.addrs[s].eval(&self.row_buf);
            let stride = self.addrs[s].coeff(inner);
            ops += self.add_progression(base, stride, hi - lo + 1);
        }
        ops
    }

    /// Rebuilds the window state for endpoints `p` (source, exclusive) and
    /// `i` (destination, exclusive) from scratch, aggregating whole rows.
    /// Mirrors `scan_interior`'s tail / full-rows / head decomposition.
    pub(crate) fn rebuild(&mut self, space: &IterationSpace<'_>, p: &[i64], i: &[i64]) {
        let inner = p.len() - 1;
        self.clear_counts();
        self.stats.rebuilds += 1;
        self.interior_pts = 0;
        let mut ops = 0u64;
        if p[..inner] == i[..inner] {
            ops += self.add_row(&p[..inner], p[inner] + 1, i[inner] - 1);
        } else {
            // Tail of the source's row.
            if let Some((_, phi)) = space.innermost_bounds(&p[..inner]) {
                ops += self.add_row(&p[..inner], p[inner] + 1, phi);
            }
            // Full rows strictly between the two prefixes.
            let mut prefix = p[..inner].to_vec();
            while let Some(next) = space.prefix_successor(&prefix) {
                if lex_cmp(&next, &i[..inner]) != Ordering::Less {
                    break;
                }
                if let Some((lo, hi)) = space.innermost_bounds(&next) {
                    ops += self.add_row(&next, lo, hi);
                }
                prefix = next;
            }
            // Head of the destination's row.
            if let Some((ilo, _)) = space.innermost_bounds(&i[..inner]) {
                ops += self.add_row(&i[..inner], ilo, i[inner] - 1);
            }
        }
        self.src.copy_from_slice(p);
        self.dst.copy_from_slice(i);
        self.valid = true;
        self.last_rebuild_ops = ops.max(1);
    }

    /// Tries to slide the window to the destination `i_next` (source
    /// `i_next − r`) by advancing the two endpoints independently — the
    /// destination adds the point it passes over to the interior, the
    /// source removes the point it uncovers — so windows survive row and
    /// prefix boundaries the endpoints cross at different times. Returns
    /// `false` — leaving the state consistent but positioned short — when
    /// the state is invalid, a target lies behind an endpoint, or stepping
    /// would cost more than the last rebuild did; the caller then calls
    /// [`SlidingWindow::rebuild`].
    pub(crate) fn advance_to(
        &mut self,
        space: &IterationSpace<'_>,
        i_next: &[i64],
        r: &[i64],
    ) -> bool {
        if !self.valid {
            return false;
        }
        if lex_cmp(&self.dst, i_next) == Ordering::Greater {
            return false;
        }
        for l in 0..i_next.len() {
            self.tgt_src[l] = i_next[l] - r[l];
        }
        if lex_cmp(&self.src, &self.tgt_src) == Ordering::Greater {
            return false;
        }
        // An endpoint move costs ~refs line updates; chasing further than
        // the last rebuild's work is a loss even when every move succeeds.
        // The budget is denominated in line-count updates so that batched
        // in-row slides (which collapse many moves into few updates) are
        // charged what they actually cost.
        let per_move = self.addrs.len().max(1) as u64;
        let budget = self.last_rebuild_ops.max(32 * per_move);
        let inner = i_next.len() - 1;
        let mut taken = 0u64;
        loop {
            let dst_behind = self.dst != i_next;
            let src_behind = self.src != self.tgt_src;
            if !dst_behind && !src_behind {
                return true;
            }
            if taken >= budget {
                return false;
            }
            // Batched in-row slide: an endpoint that stays in its current
            // row for k ≥ 2 moves enters (or uncovers) k consecutive
            // iteration points whose per-reference accesses form innermost
            // arithmetic progressions — whole-progression multiset updates
            // replace k single steps. Priority mirrors the per-step cases:
            // the destination catches up first (growing the interior is
            // always safe), the source only once the destination arrived
            // (its uncovered points are then strictly inside).
            if self.interior_pts > 0 {
                let k = if dst_behind && self.dst[..inner] == i_next[..inner] {
                    let k = i_next[inner] - self.dst[inner];
                    if k >= 2 {
                        // Entering points: self.dst, …, self.dst + k − 1.
                        let mut ops = 0u64;
                        for s in 0..self.addrs.len() {
                            let base = self.addrs[s].eval(&self.dst);
                            ops += self.progression(base, self.stride_in[s], k, 1);
                        }
                        self.interior_pts += k as u64;
                        self.dst[inner] += k;
                        taken += ops;
                    }
                    k
                } else if !dst_behind && self.src[..inner] == self.tgt_src[..inner] {
                    let k = self.tgt_src[inner] - self.src[inner];
                    if k >= 2 {
                        // Leaving points: self.src + 1, …, self.src + k.
                        debug_assert!((k as u64) <= self.interior_pts);
                        let mut ops = 0u64;
                        self.src[inner] += 1;
                        for s in 0..self.addrs.len() {
                            let base = self.addrs[s].eval(&self.src);
                            ops += self.progression(base, self.stride_in[s], k, -1);
                        }
                        self.interior_pts -= k as u64;
                        self.src[inner] += k - 1;
                        taken += ops;
                    }
                    k
                } else {
                    0
                };
                if k >= 2 {
                    self.stats.steps += k as u64;
                    continue;
                }
            }
            if dst_behind && src_behind && self.interior_pts == 0 {
                // Empty interior means `succ(p⃗) = i⃗`: the entering point is
                // the leaving point, so both endpoints move with no
                // multiset traffic at all (the innermost-spatial fast
                // path).
                self.next_dst.copy_from_slice(&self.dst);
                self.next_src.copy_from_slice(&self.src);
                if !space.advance(&mut self.next_dst) || !space.advance(&mut self.next_src) {
                    return false;
                }
                std::mem::swap(&mut self.src, &mut self.next_src);
                std::mem::swap(&mut self.dst, &mut self.next_dst);
            } else if dst_behind {
                // The current destination enters the interior.
                self.next_dst.copy_from_slice(&self.dst);
                if !space.advance(&mut self.next_dst) {
                    return false;
                }
                for s in 0..self.addrs.len() {
                    let line = self.geom.line(self.addrs[s].eval(&self.dst));
                    self.add_line(line, 1);
                }
                self.interior_pts += 1;
                std::mem::swap(&mut self.dst, &mut self.next_dst);
            } else {
                // The successor of the current source leaves the interior
                // (it is strictly inside: `succ(p⃗) ≤ tgt < i⃗`).
                self.next_src.copy_from_slice(&self.src);
                if !space.advance(&mut self.next_src) {
                    return false;
                }
                for s in 0..self.addrs.len() {
                    let line = self.geom.line(self.addrs[s].eval(&self.next_src));
                    self.remove_access(line);
                }
                self.interior_pts -= 1;
                std::mem::swap(&mut self.src, &mut self.next_src);
            }
            self.stats.steps += 1;
            taken += per_move;
        }
    }

    /// Positions the window at `(p⃗, i⃗)` — stepping when the state is close,
    /// rebuilding otherwise — and arms the per-reference address
    /// accumulators for [`SlidingWindow::step_in_segment`].
    pub(crate) fn begin_segment(
        &mut self,
        space: &IterationSpace<'_>,
        p: &[i64],
        i: &[i64],
        r: &[i64],
    ) {
        if !self.advance_to(space, i, r) {
            self.rebuild(space, p, i);
        }
        for s in 0..self.addrs.len() {
            self.src_addr[s] = self.addrs[s].eval(p);
            self.dst_addr[s] = self.addrs[s].eval(i);
        }
    }

    /// Slides an armed window forward `delta` innermost steps in one shot —
    /// the run-batched mirror of [`SlidingWindow::step_in_segment`] for
    /// the gap between two scan runs in the same row. The caller
    /// guarantees the lockstep condition over the whole stretch: both
    /// endpoints stay inside their current innermost rows, so every
    /// intermediate point is a space point. Entering and leaving accesses
    /// are applied as whole arithmetic progressions (word-parallel on the
    /// dense tier) and the per-reference address accumulators stay armed;
    /// gap-one windows (empty interior) move with no multiset traffic at
    /// all, since the entering stretch *is* the leaving stretch.
    pub(crate) fn slide_by(&mut self, delta: i64) {
        debug_assert!(delta > 0);
        let inner = self.dst.len() - 1;
        if self.interior_pts > 0 {
            for s in 0..self.addrs.len() {
                let (base, st) = (self.dst_addr[s], self.stride_in[s]);
                self.progression(base, st, delta, 1);
            }
            for s in 0..self.addrs.len() {
                let (base, st) = (self.src_addr[s] + self.stride_in[s], self.stride_in[s]);
                self.progression(base, st, delta, -1);
            }
        }
        for s in 0..self.addrs.len() {
            self.src_addr[s] += self.stride_in[s] * delta;
            self.dst_addr[s] += self.stride_in[s] * delta;
        }
        self.src[inner] += delta;
        self.dst[inner] += delta;
        self.stats.steps += delta as u64;
    }

    /// Slides one innermost step inside a classified scan segment, where
    /// the lockstep condition holds by construction (both endpoints stay in
    /// their rows for the whole segment — see the run classifier). Costs
    /// O(references) address additions; no space checks, no affine
    /// evaluation, and no multiset traffic at all for gap-one windows.
    pub(crate) fn step_in_segment(&mut self) {
        let inner = self.dst.len() - 1;
        if self.interior_pts > 0 {
            for s in 0..self.addrs.len() {
                self.add_line(self.geom.line(self.dst_addr[s]), 1);
            }
            for s in 0..self.addrs.len() {
                let line = self.geom.line(self.src_addr[s] + self.stride_in[s]);
                self.remove_access(line);
            }
        }
        for s in 0..self.addrs.len() {
            self.src_addr[s] += self.stride_in[s];
            self.dst_addr[s] += self.stride_in[s];
        }
        self.src[inner] += 1;
        self.dst[inner] += 1;
        self.stats.steps += 1;
    }
}

/// `⌈a / b⌉` for positive `b`.
pub(crate) fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    -floor_div(-a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::Scanner;
    use cme_ir::{AccessKind, LoopNest, NestBuilder};

    fn nest3() -> LoopNest {
        let mut b = NestBuilder::new();
        b.ct_loop("i", 1, 6).ct_loop("k", 1, 5).ct_loop("j", 1, 7);
        let z = b.array("Z", &[8, 8], 0);
        let x = b.array("X", &[8, 8], 64);
        b.reference(z, AccessKind::Read, &[("j", 0), ("i", 0)]);
        b.reference(x, AccessKind::Read, &[("k", 0), ("j", 0)]);
        b.reference(z, AccessKind::Write, &[("j", 0), ("i", 0)]);
        b.build().unwrap()
    }

    /// Reference window census: per-point evaluation of every access
    /// strictly between `p` and `i`.
    fn naive_counts(
        nest: &LoopNest,
        cache: &CacheConfig,
        addrs: &[Affine],
        p: &[i64],
        i: &[i64],
    ) -> HashMap<i64, u64> {
        let mut counts = HashMap::new();
        nest.space().for_each_between(p, i, |q| {
            for af in addrs {
                *counts.entry(cache.memory_line(af.eval(q))).or_insert(0) += 1;
            }
            true
        });
        counts
    }

    fn addrs_of(nest: &LoopNest) -> Vec<Affine> {
        nest.references()
            .iter()
            .map(|r| nest.address_affine(r.id()))
            .collect()
    }

    fn assert_window_matches(
        w: &SlidingWindow<'_>,
        nest: &LoopNest,
        cache: &CacheConfig,
        addrs: &[Affine],
        p: &[i64],
        i: &[i64],
    ) {
        let naive = naive_counts(nest, cache, addrs, p, i);
        let mut per_set = vec![0u32; cache.num_sets() as usize];
        for &line in naive.keys() {
            per_set[modulo(line, cache.num_sets()) as usize] += 1;
        }
        for (&line, &n) in &naive {
            assert_eq!(w.counts.count_of(line), n, "line {line} at i={i:?}");
        }
        assert_eq!(
            w.counts.distinct_len(),
            naive.len(),
            "extra lines at i={i:?}"
        );
        assert_eq!(w.distinct_per_set, per_set, "per-set tallies at i={i:?}");
    }

    #[test]
    fn rebuild_matches_naive_census() {
        let nest = nest3();
        let cache = CacheConfig::new(256, 1, 16, 4).unwrap();
        let addrs = addrs_of(&nest);
        let space = nest.space();
        // Both multiset backings: `new` stays sparse, `new_for_space`
        // picks the dense array for this nest's small line span.
        for mut w in [
            SlidingWindow::new(&cache, &addrs, 3),
            SlidingWindow::new_for_space(&cache, &addrs, &space),
        ] {
            for (p, i) in [
                ([1, 1, 2], [1, 1, 3]), // empty window
                ([1, 1, 1], [1, 1, 7]), // same row
                ([1, 1, 4], [1, 3, 2]), // row boundary
                ([1, 4, 6], [3, 2, 2]), // prefix boundary
            ] {
                w.rebuild(&space, &p, &i);
                assert_window_matches(&w, &nest, &cache, &addrs, &p, &i);
            }
        }
    }

    #[test]
    fn stepping_tracks_full_rebuild_along_a_vector() {
        let nest = nest3();
        let cache = CacheConfig::new(256, 1, 16, 4).unwrap();
        let addrs = addrs_of(&nest);
        let space = nest.space();
        for r in [[0i64, 0, 1], [0, 1, 0], [0, 1, -3], [1, 0, 0]] {
            let mut w = SlidingWindow::new(&cache, &addrs, 3);
            let mut sp = nest.space();
            while let Some(i) = sp.next_point() {
                let p: Vec<i64> = i.iter().zip(&r).map(|(a, b)| a - b).collect();
                if !space.contains(&p) {
                    continue;
                }
                if !w.advance_to(&space, &i, &r) {
                    w.rebuild(&space, &p, &i);
                }
                assert_window_matches(&w, &nest, &cache, &addrs, &p, &i);
            }
            assert!(w.stats.steps > 0, "vector {r:?} never stepped");
        }
    }

    #[test]
    fn dense_tier_saturates_into_spill_and_drains_back() {
        let nest = nest3();
        let cache = CacheConfig::new(256, 1, 16, 4).unwrap();
        let addrs = addrs_of(&nest);
        let space = nest.space();
        let mut w = SlidingWindow::new_for_space(&cache, &addrs, &space);
        assert!(matches!(w.counts, LineMultiset::Dense { .. }));
        let line = 1;
        // Climb across the u8 tier boundary in pieces: below, exactly at,
        // and far beyond saturation.
        w.add_line(line, 254);
        assert_eq!(w.counts.count_of(line), 254);
        w.add_line(line, 1); // lands exactly on SAT: no spill entry yet
        assert_eq!(w.counts.count_of(line), 255);
        w.add_line(line, 1000); // overflow spills
        assert_eq!(w.counts.count_of(line), 1255);
        assert_eq!(w.counts.distinct_len(), 1);
        // Drain in chunks that stay in the spill, then cross back into
        // the fast tier, then empty the line.
        w.remove_line(line, 500);
        assert_eq!(w.counts.count_of(line), 755);
        w.remove_line(line, 600);
        assert_eq!(w.counts.count_of(line), 155);
        assert!(w.contains_line(line));
        w.remove_line(line, 155);
        assert_eq!(w.counts.count_of(line), 0);
        assert!(!w.contains_line(line));
        assert_eq!(w.counts.distinct_len(), 0);
        assert_eq!(w.distinct_per_set[w.geom.set_of_line(line) as usize], 0);
        // A cleared window must forget the spilled tier too.
        w.add_line(line, 5000);
        assert_eq!(w.counts.count_of(line), 5000);
        w.clear_counts();
        assert_eq!(w.counts.count_of(line), 0);
        assert_eq!(w.counts.distinct_len(), 0);
        assert!(!w.contains_line(line));
    }

    #[test]
    fn query_agrees_with_scanner_distinct_count() {
        let nest = nest3();
        let cache = CacheConfig::new(128, 2, 16, 4).unwrap();
        let addrs = addrs_of(&nest);
        let space = nest.space();
        let dest_addr = addrs[2].clone();
        let r = [0i64, 1, 0];
        let mut w = SlidingWindow::new(&cache, &addrs, 3);
        let mut sp = nest.space();
        let mut checked = 0u64;
        while let Some(i) = sp.next_point() {
            let p: Vec<i64> = i.iter().zip(&r).map(|(a, b)| a - b).collect();
            if !space.contains(&p) {
                continue;
            }
            if !w.advance_to(&space, &i, &r) {
                w.rebuild(&space, &p, &i);
            }
            let a_dest = dest_addr.eval(&i);
            let (dset, dline) = (cache.cache_set(a_dest), cache.memory_line(a_dest));
            // Exact-mode Scanner over the same interior (no side accesses).
            let mut scanner = Scanner::new(&cache, &addrs, cache.assoc() as usize, true);
            scanner.reset(dset, dline);
            crate::solve::scan_interior(&mut scanner, &space, &p, &i);
            assert_eq!(
                w.distinct_excluding(dset, dline),
                scanner.distinct.len() as u64,
                "at i={i:?}"
            );
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn geom_fast_paths_engage_exactly_for_powers_of_two() {
        for (ls, ns) in [(1, 1), (4, 8), (16, 256)] {
            let g = Geom::from_parts(ls, ns);
            assert!(g.line_shift.is_some(), "Ls={ls} should use the shift");
            assert!(g.set_mask.is_some(), "Ns={ns} should use the mask");
        }
        for (ls, ns) in [(3, 5), (6, 12), (7, 96), (12, 3)] {
            let g = Geom::from_parts(ls, ns);
            assert!(g.line_shift.is_none(), "Ls={ls} must take the generic path");
            assert!(g.set_mask.is_none(), "Ns={ns} must take the generic path");
        }
        // Mixed geometry: each mapping picks its fast path independently.
        let g = Geom::from_parts(8, 6);
        assert!(g.line_shift.is_some() && g.set_mask.is_none());
    }

    #[test]
    fn geom_mappings_agree_with_reference_for_all_signs() {
        // floor_div/modulo are the definition (`CacheConfig::memory_line`
        // uses them directly); the shift/mask fast paths must agree on
        // every address, negatives included.
        for (ls, ns) in [(1, 1), (2, 16), (4, 8), (8, 1), (3, 5), (6, 12), (16, 7)] {
            let g = Geom::from_parts(ls, ns);
            for addr in -3 * ls * ns..=3 * ls * ns {
                let line = g.line(addr);
                assert_eq!(line, floor_div(addr, ls), "line of {addr} at Ls={ls}");
                assert_eq!(
                    g.set_of_line(line),
                    modulo(line, ns),
                    "set of line {line} at Ns={ns}"
                );
            }
        }
    }

    /// High-associativity window coverage: k=8 (4 sets) and fully
    /// associative (1 set) geometries, stepping along reuse vectors with
    /// the census and the exact-mode [`Scanner`] as oracles.
    #[test]
    fn window_tracks_rebuild_at_k8_and_full_associativity() {
        let nest = nest3();
        let addrs = addrs_of(&nest);
        let space = nest.space();
        for cache in [
            CacheConfig::new(512, 8, 16, 4).unwrap(),
            CacheConfig::fully_associative(256, 16, 4).unwrap(),
        ] {
            let k = cache.assoc() as usize;
            let dest_addr = addrs[2].clone();
            for r in [[0i64, 0, 1], [0, 1, 0], [1, 0, 0]] {
                let mut w = SlidingWindow::new_for_space(&cache, &addrs, &space);
                let mut sp = nest.space();
                let mut stepped = false;
                while let Some(i) = sp.next_point() {
                    let p: Vec<i64> = i.iter().zip(&r).map(|(a, b)| a - b).collect();
                    if !space.contains(&p) {
                        continue;
                    }
                    let before = w.stats.steps;
                    if !w.advance_to(&space, &i, &r) {
                        w.rebuild(&space, &p, &i);
                    }
                    stepped |= w.stats.steps > before;
                    assert_window_matches(&w, &nest, &cache, &addrs, &p, &i);
                    let a_dest = dest_addr.eval(&i);
                    let (dset, dline) = (cache.cache_set(a_dest), cache.memory_line(a_dest));
                    let mut scanner = Scanner::new(&cache, &addrs, k, true);
                    scanner.reset(dset, dline);
                    crate::solve::scan_interior(&mut scanner, &space, &p, &i);
                    assert_eq!(
                        w.distinct_excluding(dset, dline),
                        scanner.distinct.len() as u64,
                        "k={k} at i={i:?}"
                    );
                }
                assert!(stepped, "k={k} vector {r:?} never stepped");
            }
        }
    }

    mod props {
        use super::*;
        use cme_testgen::{arb_cache, arb_nest, NestDistribution};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Random geometry parts, power-of-two or not: the mappings
            /// must agree with the floored-division / Euclidean-modulo
            /// reference on every address. Power-of-two parts take the
            /// shift/mask fast path, so this property is exactly the
            /// fast-vs-generic agreement the cascade relies on.
            #[test]
            fn geom_agrees_with_generic_reference(
                ls in 1i64..=96,
                ns in 1i64..=512,
                addr in -1_000_000i64..=1_000_000,
            ) {
                let g = Geom::from_parts(ls, ns);
                let line = g.line(addr);
                prop_assert_eq!(line, floor_div(addr, ls));
                prop_assert_eq!(g.set_of_line(line), modulo(line, ns));
                prop_assert_eq!(g.line_shift.is_some(), ls.count_ones() == 1);
                prop_assert_eq!(g.set_mask.is_some(), ns.count_ones() == 1);
            }

            /// On random nests, caches, and reuse vectors, the delta
            /// scanner's distinct count agrees with both interior scans
            /// (row-aggregated and pointwise) at every surviving
            /// destination, across step and rebuild transitions.
            #[test]
            fn delta_scan_matches_interior_scans(
                nest in arb_nest(NestDistribution::default()),
                cache in arb_cache(),
                a in 0usize..4096,
                b in 0usize..4096,
            ) {
                let addrs = addrs_of(&nest);
                let space = nest.space();
                let mut pts: Vec<Vec<i64>> = Vec::new();
                let mut sp = nest.space();
                while let Some(q) = sp.next_point() {
                    pts.push(q.to_vec());
                    if pts.len() >= 600 {
                        break;
                    }
                }
                let (a, b) = (a % pts.len(), b % pts.len());
                prop_assume!(a != b);
                // A lex-positive vector joining two random space points.
                let (src, dst) = (&pts[a.min(b)], &pts[a.max(b)]);
                let r: Vec<i64> = dst.iter().zip(src).map(|(x, y)| x - y).collect();
                let dest_addr = addrs[addrs.len() - 1].clone();
                let k = cache.assoc() as usize;
                // `new_for_space` picks the dense multiset whenever the
                // nest's line span allows — the same choice the engine
                // makes — so this property covers both backings.
                let mut w = SlidingWindow::new_for_space(&cache, &addrs, &space);
                for i in &pts {
                    let p: Vec<i64> = i.iter().zip(&r).map(|(x, y)| x - y).collect();
                    if !space.contains(&p) {
                        continue;
                    }
                    if !w.advance_to(&space, i, &r) {
                        w.rebuild(&space, &p, i);
                    }
                    let a_dest = dest_addr.eval(i);
                    let (dset, dline) =
                        (cache.cache_set(a_dest), cache.memory_line(a_dest));
                    let mut rowwise = Scanner::new(&cache, &addrs, k, true);
                    rowwise.reset(dset, dline);
                    crate::solve::scan_interior(&mut rowwise, &space, &p, i);
                    let mut pointwise = Scanner::new(&cache, &addrs, k, true);
                    pointwise.reset(dset, dline);
                    crate::solve::scan_interior_pointwise(&mut pointwise, &space, &p, i);
                    prop_assert_eq!(rowwise.distinct.len(), pointwise.distinct.len());
                    prop_assert_eq!(
                        w.distinct_excluding(dset, dline),
                        rowwise.distinct.len() as u64
                    );
                }
            }
        }
    }
}
