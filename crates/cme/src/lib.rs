//! # Cache Miss Equations
//!
//! A complete, from-scratch Rust implementation of
//! *Precise Miss Analysis for Program Transformations with Caches of
//! Arbitrary Associativity* (Ghosh, Martonosi, Malik — ASPLOS 1998).
//!
//! Cache Miss Equations (CMEs) represent the cache misses of an affine loop
//! nest as systems of linear Diophantine equations. Counting their solutions
//! counts misses *exactly*; reasoning about their solvability (GCD
//! conditions, parametric counts) drives provably conflict-free program
//! transformations — array padding, tile-size selection, loop fusion —
//! without ever enumerating a cache simulation.
//!
//! This crate is a facade re-exporting the whole stack:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`math`] | `cme-math` | GCDs, Diophantine equations, affine algebra |
//! | [`ir`] | `cme-ir` | affine loop-nest program model |
//! | [`cache`] | `cme-cache` | cache geometry + LRU simulator (ground truth) |
//! | [`reuse`] | `cme-reuse` | reuse-vector analysis |
//! | [`core`] | `cme-core` | CME generation + miss-finding (the paper's core) |
//! | [`opt`] | `cme-opt` | padding, tiling, fusion, parametric optimization |
//! | [`kernels`] | `cme-kernels` | the paper's benchmark loop nests |
//! | [`api`] | `cme-core` | unified request/response contract (all frontends) |
//!
//! # Quickstart
//!
//! ```
//! use cme::cache::CacheConfig;
//! use cme::core::Analyzer;
//! use cme::kernels::mmult;
//!
//! // Analyze 32x32 matmul on an 8KB direct-mapped cache with 32B lines.
//! let nest = mmult(32);
//! let cfg = CacheConfig::new(8192, 1, 32, 4)?;
//! let mut analyzer = Analyzer::new(cfg);
//! let analysis = analyzer.analyze(&nest);
//! println!("{analysis}");
//! assert!(analysis.total_misses() > 0);
//! # Ok::<(), cme::cache::CacheConfigError>(())
//! ```
//!
//! The [`core::Analyzer`] session is reusable: re-analyzing transformed
//! variants of the same nest (moved bases, padded columns) re-solves
//! incrementally from memoized equation work — the engine behind the
//! `cme::opt` searches. Nests can be interned once into the session's
//! [`core::ProgramDb`] and analyzed by [`core::NestId`] handle, singly or
//! in one batched call ([`core::Analyzer::analyze_batch`]) that shares the
//! memo tables and worker pool across the whole batch.
//! `analyzer.stats()` reports what was reused, stage by stage; the
//! invalidation keys are derived in `docs/ENGINE.md`. There is no separate
//! monolithic entry point: `.caching(false)` turns a session into the
//! uncached reference path.
//!
//! Sessions can also be **governed**: install a [`core::Budget`]
//! (wall-clock deadline, solve cap, point ceiling) and/or a
//! [`core::CancelToken`] on the builder and query through
//! [`core::Analyzer::try_analyze`]. An interrupted query degrades to a
//! *sound overcount* — truncated points are counted as misses, the
//! paper's `ε > 0` semantics — tagged with [`core::Outcome::Exhausted`];
//! worker panics and adversarial-extent overflow surface as typed
//! [`core::AnalysisError`]s that poison only that query, never the
//! session. See the budget section of `docs/ENGINE.md`.
//!
//! Finished analyses can outlive the process: attach a persistent
//! [`ArtifactStore`] ([`core::Analyzer::store`]) and repeated queries —
//! same structure, layout, geometry, and options, across sessions and
//! processes — are answered from disk before any pipeline stage runs.
//! The [`api`] module is the serializable contract over all of this:
//! [`api::AnalyzeRequest`] / [`api::AnalyzeResponse`] with stable
//! [`api::ErrorCode`]s, spoken by `cmetool`, the `cme-serve` line
//! protocol (`docs/SERVE.md`), and in-process callers
//! ([`core::Analyzer::serve`]).
//!
//! The types a frontend needs are re-exported at the root, so `use
//! cme::{Analyzer, Budget, ArtifactStore}` works without spelling the
//! layer.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use cme_cache as cache;
pub use cme_core as core;
pub use cme_ir as ir;
pub use cme_kernels as kernels;
pub use cme_math as math;
pub use cme_opt as opt;
pub use cme_reuse as reuse;

pub use cme_core::api;

pub use cme_cache::{CacheConfig, CacheConfigError};
pub use cme_core::{
    AnalysisError, AnalysisOptions, Analyzer, ArtifactKey, ArtifactStore, Budget, CancelToken,
    Engine, EngineStats, FaultPlan, GovernedAnalysis, NestAnalysis, NestId, Outcome, ProgramDb,
    RefAnalysis, StoreError, StoreStats, SweepMetric, SweepParameter, SweepRecord, SweepRequest,
    SweepResult,
};
pub use cme_ir::{LoopNest, NestBuilder};
