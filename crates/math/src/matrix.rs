//! Exact integer matrices and nullspace (kernel) lattice bases.
//!
//! Wolf–Lam reuse analysis, which the CME framework builds on (Section 2.4),
//! derives **self-temporal reuse vectors** as the integer kernel of a
//! reference's access matrix, and **self-spatial reuse vectors** as the
//! kernel of the access matrix with its fastest-varying row dropped. This
//! module computes integer kernel bases exactly using fraction-free Gaussian
//! elimination followed by normalization to primitive integer vectors.

use std::fmt;

/// A dense `rows × cols` matrix of `i64` entries.
///
/// # Examples
///
/// ```
/// use cme_math::IntMatrix;
/// // Access matrix of Z(j, i) in the (i, k, j) matmul nest:
/// //   row 0 (first subscript, j):  (0, 0, 1)
/// //   row 1 (second subscript, i): (1, 0, 0)
/// let a = IntMatrix::from_rows(&[vec![0, 0, 1], vec![1, 0, 0]]);
/// let kernel = a.kernel_basis();
/// // The kernel is spanned by (0, 1, 0): reuse across the k loop.
/// assert_eq!(kernel, vec![vec![0, 1, 0]]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IntMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<i64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(Vec::len).unwrap_or(0);
        let mut m = IntMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows in IntMatrix::from_rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = IntMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[i64] {
        assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[i64]) -> Vec<i64> {
        assert_eq!(x.len(), self.cols, "vector dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Returns the matrix without row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn without_row(&self, i: usize) -> IntMatrix {
        assert!(i < self.rows, "row {i} out of bounds");
        let rows: Vec<Vec<i64>> = (0..self.rows)
            .filter(|&r| r != i)
            .map(|r| self.row(r).to_vec())
            .collect();
        if rows.is_empty() {
            IntMatrix::zeros(0, self.cols)
        } else {
            IntMatrix::from_rows(&rows)
        }
    }

    /// The rank of the matrix over the rationals.
    ///
    /// On internal overflow (entries past `i128` during fraction-free
    /// elimination — unreachable for the bounded access matrices the engine
    /// admits), the full rank `min(rows, cols)` is reported: downstream this
    /// claims an empty kernel, i.e. fewer reuse vectors, which can only
    /// over-count misses.
    pub fn rank(&self) -> usize {
        match self.echelon_wide() {
            Some((r, _, _)) => r,
            None => self.rows.min(self.cols),
        }
    }

    /// Fraction-free Gaussian elimination with checked `i128` arithmetic.
    ///
    /// Returns `(rank, row-echelon form, pivot column per pivot row)`, or
    /// `None` if any intermediate product leaves the `i128` range.
    fn echelon_wide(&self) -> Option<(usize, Vec<Vec<i128>>, Vec<usize>)> {
        let mut m: Vec<Vec<i128>> = (0..self.rows)
            .map(|r| self.row(r).iter().map(|&v| i128::from(v)).collect())
            .collect();
        let mut pivots = Vec::new();
        let mut pivot_row = 0usize;
        for col in 0..self.cols {
            // Find a nonzero pivot at or below pivot_row.
            let Some(sel) = (pivot_row..self.rows).find(|&r| m[r][col] != 0) else {
                continue;
            };
            m.swap(pivot_row, sel);
            let p = m[pivot_row][col];
            let prow = m[pivot_row].clone();
            for (r, row) in m.iter_mut().enumerate() {
                if r == pivot_row || row[col] == 0 {
                    continue;
                }
                // Fraction-free: row_r := p*row_r − m[r,col]*row_pivot.
                let f = row[col];
                for (vr, &vp) in row.iter_mut().zip(&prow) {
                    *vr = p.checked_mul(*vr)?.checked_sub(f.checked_mul(vp)?)?;
                }
                normalize_row_wide(row);
            }
            normalize_row_wide(&mut m[pivot_row]);
            pivots.push(col);
            pivot_row += 1;
            if pivot_row == self.rows {
                break;
            }
        }
        Some((pivot_row, m, pivots))
    }

    /// Finds one integer solution of `A·x = d`, if this solver can produce
    /// one, using Gaussian elimination with all free variables set to zero.
    ///
    /// Returns `None` when the system is rationally inconsistent **or** when
    /// the free-variables-zero particular solution is not integral **or**
    /// when the (checked, `i128`-widened) elimination overflows (all
    /// conservative answers: group-reuse analysis simply generates fewer
    /// reuse vectors, which can only over-count misses, never under-count).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != rows`.
    pub fn solve(&self, d: &[i64]) -> Option<Vec<i64>> {
        assert_eq!(d.len(), self.rows, "rhs dimension mismatch");
        // Augmented fraction-free elimination in checked i128.
        let mut aug: Vec<Vec<i128>> = (0..self.rows)
            .map(|r| {
                let mut row: Vec<i128> = self.row(r).iter().map(|&v| i128::from(v)).collect();
                row.push(i128::from(d[r]));
                row
            })
            .collect();
        let mut pivots: Vec<(usize, usize)> = Vec::new();
        let mut pivot_row = 0usize;
        for col in 0..self.cols {
            let Some(sel) = (pivot_row..self.rows).find(|&r| aug[r][col] != 0) else {
                continue;
            };
            aug.swap(pivot_row, sel);
            let p = aug[pivot_row][col];
            let prow = aug[pivot_row].clone();
            for (r, row) in aug.iter_mut().enumerate() {
                if r == pivot_row || row[col] == 0 {
                    continue;
                }
                let f = row[col];
                for (vr, &vp) in row.iter_mut().zip(&prow) {
                    *vr = p.checked_mul(*vr)?.checked_sub(f.checked_mul(vp)?)?;
                }
                normalize_row_wide(row);
            }
            pivots.push((pivot_row, col));
            pivot_row += 1;
            if pivot_row == self.rows {
                break;
            }
        }
        // Inconsistency: a zero row with nonzero rhs.
        for row in aug.iter().skip(pivot_row) {
            if row[..self.cols].iter().all(|&v| v == 0) && row[self.cols] != 0 {
                return None;
            }
        }
        let mut x = vec![0i128; self.cols];
        for &(pr, pc) in pivots.iter().rev() {
            let p = aug[pr][pc];
            let mut rhs = aug[pr][self.cols];
            for c in 0..self.cols {
                if c != pc {
                    rhs = rhs.checked_sub(aug[pr][c].checked_mul(x[c])?)?;
                }
            }
            if rhs % p != 0 {
                return None;
            }
            x[pc] = rhs / p;
        }
        let x: Vec<i64> = x
            .into_iter()
            .map(i64::try_from)
            .collect::<Result<_, _>>()
            .ok()?;
        debug_assert!(
            (0..self.rows).all(|r| {
                self.row(r)
                    .iter()
                    .zip(&x)
                    .map(|(&a, &b)| i128::from(a) * i128::from(b))
                    .sum::<i128>()
                    == i128::from(d[r])
            }),
            "solver produced a non-solution"
        );
        Some(x)
    }

    /// A basis of the integer kernel `{ x : A·x = 0 }`, one primitive vector
    /// per free column, each with its leading nonzero entry positive.
    ///
    /// The number of basis vectors is `cols − rank`. The basis spans the
    /// rational kernel; each vector is integral and primitive (GCD of
    /// entries is 1), which is exactly the form reuse vectors take.
    ///
    /// Back-substitution runs in checked `i128`; a vector whose entries
    /// cannot be represented is dropped rather than aborting (fewer reuse
    /// vectors = sound over-count), and elimination overflow yields an
    /// empty basis — consistent with [`IntMatrix::rank`]'s full-rank
    /// fallback.
    pub fn kernel_basis(&self) -> Vec<Vec<i64>> {
        if self.cols == 0 {
            return Vec::new();
        }
        if self.rows == 0 {
            // Whole space: standard basis.
            return (0..self.cols)
                .map(|j| {
                    let mut v = vec![0; self.cols];
                    v[j] = 1;
                    v
                })
                .collect();
        }
        let Some((rank, ech, pivots)) = self.echelon_wide() else {
            return Vec::new();
        };
        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        let free_cols: Vec<usize> = (0..self.cols).filter(|c| !pivot_set.contains(c)).collect();
        let mut basis = Vec::with_capacity(free_cols.len());
        'free: for &fc in &free_cols {
            // Solve A·x = 0 with x[fc] = t, other free vars 0 using the
            // echelon rows bottom-up with rational back-substitution scaled
            // to integers.
            // Each pivot row gives: p*x[pivot] + sum_{c>pivot} e[c]*x[c] = 0.
            // Work with rationals via an LCM-scaled representation.
            let mut num = vec![0i128; self.cols];
            num[fc] = 1;
            for pr in (0..rank).rev() {
                let pc = pivots[pr];
                let p = ech[pr][pc];
                // x[pc] = -(sum_{c != pc} e[c]*x[c]) / p
                let mut s_num = 0i128;
                for c in 0..self.cols {
                    if c == pc {
                        continue;
                    }
                    let Some(term) = ech[pr][c].checked_mul(num[c]) else {
                        continue 'free;
                    };
                    let Some(sum) = s_num.checked_add(term) else {
                        continue 'free;
                    };
                    s_num = sum;
                }
                // x[pc] = -s_num / p in units of the current scale; rescale
                // everything by p when that quotient is not integral.
                if s_num % p != 0 {
                    for v in num.iter_mut() {
                        let Some(scaled) = v.checked_mul(p) else {
                            continue 'free;
                        };
                        *v = scaled;
                    }
                    let Some(scaled) = s_num.checked_mul(p) else {
                        continue 'free;
                    };
                    s_num = scaled;
                }
                num[pc] = -s_num / p;
            }
            // Normalize to a primitive vector with positive leading entry.
            normalize_row_wide(&mut num);
            if let Some(&first) = num.iter().find(|&&v| v != 0) {
                if first < 0 {
                    for v in num.iter_mut() {
                        *v = -*v;
                    }
                }
            }
            let Ok(vec) = num
                .into_iter()
                .map(i64::try_from)
                .collect::<Result<Vec<i64>, _>>()
            else {
                continue 'free;
            };
            basis.push(vec);
        }
        basis
    }
}

/// Divides a row by the (positive) GCD of its entries, in place.
fn normalize_row_wide(row: &mut [i128]) {
    let mut g: u128 = 0;
    for &v in row.iter() {
        let mut b = v.unsigned_abs();
        let mut a = g;
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        g = a;
    }
    if g > 1 {
        let g = g as i128; // g ≤ max |entry| ≤ i128::MAX, so this is exact.
        for v in row.iter_mut() {
            *v /= g;
        }
    }
}

/// Computes an **integer lattice basis** of the kernel of a single linear
/// form `{ x : Σ coeffs[l]·x_l = 0 }`, in column-echelon order, together
/// with each basis vector's pivot component.
///
/// Unlike [`IntMatrix::kernel_basis`] (a basis of the *rational* kernel),
/// the returned vectors generate **every** integer solution: the form is
/// folded to `(g, 0, …, 0)` by unimodular column operations, so the
/// non-pivot columns of the transform span the full kernel lattice. The
/// basis is then column-echelonized so that basis vector `i`'s pivot
/// component is zero in all later basis vectors — the property bounded
/// lattice enumeration needs to compute exact per-vector shift ranges.
///
/// Returns `(basis, pivots)` with `pivots[i]` the echelon pivot component
/// of `basis[i]`.
///
/// # Examples
///
/// ```
/// use cme_math::matrix::kernel_lattice_of_form;
/// let (basis, pivots) = kernel_lattice_of_form(&[32, 2, 0, 8, 1]);
/// assert_eq!(basis.len(), 4);
/// assert_eq!(pivots.len(), 4);
/// for b in &basis {
///     let dot: i64 = [32, 2, 0, 8, 1].iter().zip(b).map(|(c, v)| c * v).sum();
///     assert_eq!(dot, 0);
/// }
/// ```
pub fn kernel_lattice_of_form(coeffs: &[i64]) -> (Vec<Vec<i64>>, Vec<usize>) {
    let n = coeffs.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    // U starts as the identity; fold the form into position 0 with
    // unimodular column ops (stored column-major: cols[j][r]).
    let mut cols: Vec<Vec<i64>> = (0..n)
        .map(|j| {
            let mut v = vec![0i64; n];
            v[j] = 1;
            v
        })
        .collect();
    let mut c: Vec<i64> = coeffs.to_vec();
    for i in 1..n {
        if c[i] == 0 {
            continue;
        }
        if c[0] == 0 {
            cols.swap(0, i);
            c.swap(0, i);
            continue;
        }
        let (g, s, t) = crate::gcd::extended_gcd(c[0], c[i]);
        let (p, q) = (c[0] / g, c[i] / g);
        let (head, tail) = cols.split_at_mut(i);
        for (e0, ei) in head[0].iter_mut().zip(tail[0].iter_mut()) {
            let (a0, ai) = (*e0, *ei);
            *e0 = s * a0 + t * ai;
            *ei = -q * a0 + p * ai;
        }
        c[0] = g;
        c[i] = 0;
    }
    // Kernel columns: those whose folded form value is zero.
    let mut kernel: Vec<Vec<i64>> = (0..n)
        .filter(|&j| c[j] == 0)
        .map(|j| cols[j].clone())
        .collect();
    // Column-echelonize the kernel basis over the integers (unimodular ops
    // only, so the lattice is preserved).
    let mut pivots = Vec::with_capacity(kernel.len());
    let mut next = 0usize;
    for row in 0..n {
        // Fold all columns `>= next` with a nonzero entry at `row` into one.
        let Some(first) = (next..kernel.len()).find(|&j| kernel[j][row] != 0) else {
            continue;
        };
        kernel.swap(next, first);
        for j in (next + 1)..kernel.len() {
            while kernel[j][row] != 0 {
                // Euclidean step between columns `next` and `j` at `row`.
                let (a, b) = (kernel[next][row], kernel[j][row]);
                if a.abs() > b.abs() {
                    kernel.swap(next, j);
                    continue;
                }
                let q = b / a;
                let (head, tail) = kernel.split_at_mut(j);
                for (kn, kj) in head[next].iter().zip(tail[0].iter_mut()) {
                    *kj -= q * *kn;
                }
            }
        }
        // Normalize the pivot sign so the leading entry is positive.
        if kernel[next][row] < 0 {
            for e in kernel[next].iter_mut() {
                *e = -*e;
            }
        }
        pivots.push(row);
        next += 1;
        if next == kernel.len() {
            break;
        }
    }
    (kernel, pivots)
}

impl std::ops::Index<(usize, usize)> for IntMatrix {
    type Output = i64;
    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IntMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for IntMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_indexing() {
        let m = IntMatrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        assert_eq!(m[(0, 1)], 2);
        assert_eq!(m.row(1), &[3, 4]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(IntMatrix::identity(3).rank(), 3);
    }

    #[test]
    fn mul_vec_works() {
        let m = IntMatrix::from_rows(&[vec![1, 2, 3], vec![0, 1, 0]]);
        assert_eq!(m.mul_vec(&[1, 1, 1]), vec![6, 1]);
    }

    #[test]
    fn kernel_of_matmul_access_matrices() {
        // Nest order (i, k, j). Z(j, i): rows (j), (i).
        let z = IntMatrix::from_rows(&[vec![0, 0, 1], vec![1, 0, 0]]);
        assert_eq!(z.kernel_basis(), vec![vec![0, 1, 0]]);
        // X(k, i): rows (k), (i) -> kernel (0, 0, 1).
        let x = IntMatrix::from_rows(&[vec![0, 1, 0], vec![1, 0, 0]]);
        assert_eq!(x.kernel_basis(), vec![vec![0, 0, 1]]);
        // Y(j, k): kernel (1, 0, 0).
        let y = IntMatrix::from_rows(&[vec![0, 0, 1], vec![0, 1, 0]]);
        assert_eq!(y.kernel_basis(), vec![vec![1, 0, 0]]);
    }

    #[test]
    fn kernel_with_dependent_subscripts() {
        // A(i+j, i+j): rank 1, kernel dimension 1 over (i, j).
        let m = IntMatrix::from_rows(&[vec![1, 1], vec![1, 1]]);
        let k = m.kernel_basis();
        assert_eq!(k.len(), 1);
        assert_eq!(m.mul_vec(&k[0]), vec![0, 0]);
        assert_eq!(k[0], vec![1, -1]);
    }

    #[test]
    fn kernel_of_zero_and_empty() {
        let m = IntMatrix::zeros(2, 3);
        let k = m.kernel_basis();
        assert_eq!(k.len(), 3);
        let e = IntMatrix::zeros(0, 2);
        assert_eq!(e.kernel_basis().len(), 2);
        let no_cols = IntMatrix::zeros(2, 0);
        assert!(no_cols.kernel_basis().is_empty());
    }

    #[test]
    fn kernel_of_full_rank_is_empty() {
        assert!(IntMatrix::identity(4).kernel_basis().is_empty());
    }

    #[test]
    fn kernel_vectors_are_primitive_with_positive_lead() {
        let m = IntMatrix::from_rows(&[vec![2, 4, 6]]);
        for v in m.kernel_basis() {
            assert_eq!(m.mul_vec(&v), vec![0]);
            assert_eq!(crate::gcd::gcd_all(&v), 1);
            assert!(*v.iter().find(|&&x| x != 0).unwrap() > 0);
        }
    }

    #[test]
    fn without_row_shrinks() {
        let m = IntMatrix::from_rows(&[vec![1, 0], vec![0, 1], vec![1, 1]]);
        let n = m.without_row(1);
        assert_eq!(n.rows(), 2);
        assert_eq!(n.row(1), &[1, 1]);
    }

    #[test]
    fn solve_simple_systems() {
        // A(i-1, k): L over (i, k) is identity; L·r = (1, 0).
        let l = IntMatrix::identity(2);
        assert_eq!(l.solve(&[1, 0]), Some(vec![1, 0]));
        // Underdetermined: x + y = 3 — free var zero gives (3, 0).
        let m = IntMatrix::from_rows(&[vec![1, 1]]);
        assert_eq!(m.solve(&[3]), Some(vec![3, 0]));
        // Inconsistent.
        let m = IntMatrix::from_rows(&[vec![1, 1], vec![1, 1]]);
        assert_eq!(m.solve(&[1, 2]), None);
        // Non-integral particular solution: 2x = 3.
        let m = IntMatrix::from_rows(&[vec![2]]);
        assert_eq!(m.solve(&[3]), None);
        assert_eq!(m.solve(&[4]), Some(vec![2]));
    }

    #[test]
    fn solve_verifies_with_mul_vec() {
        let m = IntMatrix::from_rows(&[vec![1, 2, 0], vec![0, 1, -1]]);
        let x = m.solve(&[5, 2]).unwrap();
        assert_eq!(m.mul_vec(&x), vec![5, 2]);
    }

    /// Membership in the lattice spanned by an echelon basis: peel pivots.
    fn lattice_contains(basis: &[Vec<i64>], pivots: &[usize], v: &[i64]) -> bool {
        let mut v = v.to_vec();
        for (b, &p) in basis.iter().zip(pivots) {
            if v[p] % b[p] != 0 {
                return false;
            }
            let t = v[p] / b[p];
            for (x, y) in v.iter_mut().zip(b) {
                *x -= t * y;
            }
        }
        v.iter().all(|&x| x == 0)
    }

    #[test]
    fn form_kernel_lattice_is_complete() {
        // The rational-kernel basis of (32,2,0,8,1) does NOT generate
        // (0,1,0,0,-2); the lattice basis must.
        let coeffs = [32i64, 2, 0, 8, 1];
        let (basis, pivots) = kernel_lattice_of_form(&coeffs);
        assert_eq!(basis.len(), 4);
        for b in &basis {
            let dot: i64 = coeffs.iter().zip(b).map(|(c, v)| c * v).sum();
            assert_eq!(dot, 0);
        }
        assert!(lattice_contains(&basis, &pivots, &[0, 1, 0, 0, -2]));
        assert!(lattice_contains(&basis, &pivots, &[1, -16, 0, 0, 0]));
        assert!(lattice_contains(&basis, &pivots, &[0, 0, 1, 0, 0]));
        assert!(lattice_contains(&basis, &pivots, &[1, 0, 0, -4, 0]));
        assert!(!lattice_contains(&basis, &pivots, &[1, 0, 0, 0, 0]));
    }

    #[test]
    fn form_kernel_lattice_edge_cases() {
        let (basis, pivots) = kernel_lattice_of_form(&[]);
        assert!(basis.is_empty() && pivots.is_empty());
        // All-zero form: the whole space.
        let (basis, pivots) = kernel_lattice_of_form(&[0, 0]);
        assert_eq!(basis.len(), 2);
        assert!(lattice_contains(&basis, &pivots, &[5, -3]));
        // Nonzero 1-D form: trivial kernel.
        let (basis, _) = kernel_lattice_of_form(&[3]);
        assert!(basis.is_empty());
    }

    proptest! {
        #[test]
        fn prop_form_kernel_lattice_generates_all_small_solutions(
            coeffs in proptest::collection::vec(-9i64..=9, 2..5),
        ) {
            let (basis, pivots) = kernel_lattice_of_form(&coeffs);
            // Every basis vector annihilates the form...
            for b in &basis {
                let dot: i64 = coeffs.iter().zip(b).map(|(c, v)| c * v).sum();
                prop_assert_eq!(dot, 0);
            }
            // ...and every small solution is in the lattice.
            let n = coeffs.len();
            let mut idx = vec![-3i64; n];
            'sweep: loop {
                let dot: i64 = coeffs.iter().zip(&idx).map(|(c, v)| c * v).sum();
                if dot == 0 {
                    prop_assert!(
                        lattice_contains(&basis, &pivots, &idx),
                        "missing kernel point {:?} for form {:?}",
                        idx,
                        coeffs
                    );
                }
                // Advance the odometer.
                let mut l = 0;
                loop {
                    if l == n {
                        break 'sweep;
                    }
                    idx[l] += 1;
                    if idx[l] <= 3 {
                        break;
                    }
                    idx[l] = -3;
                    l += 1;
                }
            }
        }

        #[test]
        fn prop_solve_returns_true_solutions(
            entries in proptest::collection::vec(-3i64..=3, 6),
            x0 in -4i64..=4, x1 in -4i64..=4, x2 in -4i64..=4,
        ) {
            let rows: Vec<Vec<i64>> = entries.chunks(3).map(|c| c.to_vec()).collect();
            let m = IntMatrix::from_rows(&rows);
            // Build a solvable rhs from a known solution; solver must find
            // SOME solution (not necessarily the same one).
            let d = m.mul_vec(&[x0, x1, x2]);
            if let Some(x) = m.solve(&d) {
                prop_assert_eq!(m.mul_vec(&x), d);
            }
        }

        #[test]
        fn prop_kernel_vectors_annihilate(
            entries in proptest::collection::vec(-4i64..=4, 12)
        ) {
            let rows: Vec<Vec<i64>> = entries.chunks(4).map(|c| c.to_vec()).collect();
            let m = IntMatrix::from_rows(&rows);
            let basis = m.kernel_basis();
            prop_assert_eq!(basis.len(), m.cols() - m.rank());
            for v in basis {
                prop_assert!(v.iter().any(|&x| x != 0), "zero kernel vector");
                prop_assert_eq!(m.mul_vec(&v), vec![0; m.rows()]);
            }
        }
    }
}
