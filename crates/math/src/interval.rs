//! Closed integer intervals `[lo, hi]` with exact arithmetic.
//!
//! Interval arithmetic is how the CME optimizers bound quantities like
//! `max |b − (δf₀ + c′ − d′)|` (the right-hand-side range of the padding
//! conditions) without enumerating iteration points: every `δf` term is an
//! affine function evaluated over a box, whose exact range is an interval.

use std::fmt;

/// A closed integer interval `[lo, hi]`.
///
/// An interval with `lo > hi` is *empty*; [`Interval::EMPTY`] is the
/// canonical empty interval.
///
/// # Examples
///
/// ```
/// use cme_math::Interval;
/// let a = Interval::new(-2, 3);
/// let b = Interval::new(1, 4);
/// assert_eq!(a + b, Interval::new(-1, 7));
/// assert_eq!((a * 2), Interval::new(-4, 6));
/// assert_eq!(a.max_abs(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The canonical empty interval (`lo = 1 > hi = 0`).
    pub const EMPTY: Interval = Interval { lo: 1, hi: 0 };

    /// Creates the interval `[lo, hi]`.
    ///
    /// A reversed pair (`lo > hi`) yields an empty interval; use
    /// [`Interval::is_empty`] to check.
    pub fn new(lo: i64, hi: i64) -> Self {
        Interval { lo, hi }
    }

    /// The single-point interval `[v, v]`.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Returns `true` when the interval contains no integers.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Number of integers in the interval (0 when empty).
    pub fn len(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.hi - self.lo) as u64 + 1
        }
    }

    /// Returns `true` iff `v` lies inside the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Largest absolute value attained over the interval.
    ///
    /// # Panics
    ///
    /// Panics when the interval is empty.
    pub fn max_abs(&self) -> i64 {
        assert!(!self.is_empty(), "max_abs of empty interval");
        self.lo.abs().max(self.hi.abs())
    }

    /// Smallest absolute value attained over the interval.
    ///
    /// # Panics
    ///
    /// Panics when the interval is empty.
    pub fn min_abs(&self) -> i64 {
        assert!(!self.is_empty(), "min_abs of empty interval");
        if self.contains(0) {
            0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    /// Intersection of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Smallest interval containing both operands (convex hull).
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::point(0)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[]")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo + rhs.lo, self.hi + rhs.hi)
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo - rhs.hi, self.hi - rhs.lo)
    }
}

impl std::ops::Mul<i64> for Interval {
    type Output = Interval;
    fn mul(self, k: i64) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if k >= 0 {
            Interval::new(self.lo * k, self.hi * k)
        } else {
            Interval::new(self.hi * k, self.lo * k)
        }
    }
}

impl std::ops::Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        self * -1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_emptiness() {
        assert!(Interval::EMPTY.is_empty());
        assert!(!Interval::point(5).is_empty());
        assert_eq!(Interval::new(2, 5).len(), 4);
        assert_eq!(Interval::EMPTY.len(), 0);
    }

    #[test]
    fn abs_bounds() {
        assert_eq!(Interval::new(-5, 3).max_abs(), 5);
        assert_eq!(Interval::new(-5, 3).min_abs(), 0);
        assert_eq!(Interval::new(2, 9).min_abs(), 2);
        assert_eq!(Interval::new(-9, -2).min_abs(), 2);
    }

    #[test]
    fn set_ops() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.intersect(&b), Interval::new(5, 10));
        assert_eq!(a.hull(&b), Interval::new(0, 20));
        assert!(a.intersect(&Interval::new(11, 12)).is_empty());
        assert_eq!(Interval::EMPTY.hull(&a), a);
    }

    #[test]
    fn display() {
        assert_eq!(Interval::new(-1, 2).to_string(), "[-1, 2]");
        assert_eq!(Interval::EMPTY.to_string(), "[]");
    }

    proptest! {
        #[test]
        fn prop_arith_sound(
            alo in -100i64..100, alen in 0i64..50,
            blo in -100i64..100, blen in 0i64..50,
            x in 0i64..50, y in 0i64..50, k in -7i64..7,
        ) {
            let a = Interval::new(alo, alo + alen);
            let b = Interval::new(blo, blo + blen);
            // Pick concrete members.
            let va = alo + x % (alen + 1);
            let vb = blo + y % (blen + 1);
            prop_assert!((a + b).contains(va + vb));
            prop_assert!((a - b).contains(va - vb));
            prop_assert!((a * k).contains(va * k));
            prop_assert!((-a).contains(-va));
        }
    }
}
