//! Number-theoretic and integer-linear-algebra substrate for the Cache Miss
//! Equation (CME) framework.
//!
//! The CME paper (Ghosh, Martonosi, Malik — ASPLOS 1998) reduces cache-miss
//! analysis to questions about **linear Diophantine equations** in bounded
//! (polyhedral) solution spaces. This crate provides exactly the mathematics
//! the paper leans on:
//!
//! - [`gcd`]: greatest common divisors, extended Euclid, and multi-operand
//!   GCDs — the engine behind the padding conditions of Section 5.1.1.
//! - [`diophantine`]: solvability and general solutions of `a·x = c` systems
//!   and two-variable `ax + by = c` equations, plus exact solution counting
//!   over bounded boxes (the paper's "solution counting engine" stand-in for
//!   Omega/Ehrhart tooling, Section 5.1.2).
//! - [`affine`]: affine expressions over named variables with exact interval
//!   range analysis over boxes — used to bound `max |δf + c − d|` terms.
//! - [`matrix`]: `i64` matrices with exact integer kernel (nullspace lattice
//!   basis) computation — the substrate for Wolf–Lam reuse-vector analysis.
//! - [`lexi`]: lexicographic comparison/successor utilities over integer
//!   boxes — the iteration-space order `≻` of Section 2.4.
//! - [`interval`]: closed integer intervals with saturating arithmetic.
//! - [`memo`]: thread-safe memoization of bounded solve results keyed by
//!   `(coefficients, bounds)`, with hit/miss counters — the substrate of the
//!   incremental analysis engine's candidate re-solving.
//! - [`quasipoly`]: 1-parameter quasi-polynomial (Ehrhart-style) fitting for
//!   the parametric optimization style of Section 5.1.3.
//!
//! # Example
//!
//! ```
//! use cme_math::diophantine::count_two_var_solutions;
//!
//! // How many (x, y) with 0 <= x, y <= 7 satisfy 3x - y = 1?
//! let n = count_two_var_solutions(3, -1, 1, (0, 7), (0, 7));
//! assert_eq!(n, 2); // (1, 2) and (2, 5)
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod affine;
pub mod diophantine;
pub mod gcd;
pub mod interval;
pub mod lexi;
pub mod matrix;
pub mod memo;
pub mod polytope;
pub mod quasipoly;

pub use affine::Affine;
pub use interval::Interval;
pub use matrix::IntMatrix;
pub use memo::SolveMemo;
pub use polytope::Polytope;
