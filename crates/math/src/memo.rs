//! Memoization of Diophantine / lattice-point solve results.
//!
//! The optimizers of the CME framework (padding, tiling, fusion) score many
//! candidate layouts, and candidates that differ only in array base
//! addresses produce equation systems whose *solve inputs* — constraint
//! coefficients and bound boxes — largely coincide. [`SolveMemo`] caches
//! exact counts keyed by the full `(coefficients, rhs, bounds)` tuple, with
//! hit/miss counters so callers can report memo effectiveness.
//!
//! The memo is safe to share across threads (a work-stealing analysis pool
//! consults it concurrently): lookups and inserts go through an internal
//! mutex, and the counters are atomic.

use crate::diophantine::BoundedDiophantine;
use crate::interval::Interval;
use crate::polytope::Polytope;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, tolerating poisoning: the memo stores plain `u64` counts
/// that are written atomically under the lock, so a panic elsewhere cannot
/// leave a half-updated entry behind. This keeps a session usable after a
/// worker panic is caught at the analysis pool boundary.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Exact key of one bounded solve: flattened constraint rows plus the
/// bounding box. Two solves with equal keys have equal counts by
/// construction (no hashing collisions are tolerated — the key stores the
/// full input).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SolveKey {
    /// Number of variables.
    nvars: usize,
    /// Constraint rows: each `coeffs · x <= rhs`, flattened as
    /// `coeffs ++ [rhs]`.
    rows: Vec<i64>,
    /// Inclusive `(lo, hi)` per variable.
    bounds: Vec<(i64, i64)>,
}

/// A memo table for exact Diophantine / lattice-point counts, with hit and
/// miss counters.
///
/// ```
/// use cme_math::{memo::SolveMemo, Interval, Polytope};
///
/// let memo = SolveMemo::new();
/// let mut p = Polytope::new(2);
/// p.le(vec![1, 1], 4);
/// let bounds = [Interval::new(0, 10), Interval::new(0, 10)];
/// let first = memo.count_points(&p, &bounds);
/// let second = memo.count_points(&p, &bounds);
/// assert_eq!(first, second);
/// assert_eq!(memo.hits(), 1);
/// assert_eq!(memo.misses(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SolveMemo {
    table: Mutex<HashMap<SolveKey, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveMemo {
    /// An empty memo.
    pub fn new() -> Self {
        SolveMemo::default()
    }

    /// Memoized [`Polytope::count_points`]: keyed by the polytope's full
    /// constraint list and the bound box.
    pub fn count_points(&self, p: &Polytope, bounds: &[Interval]) -> u64 {
        let mut rows = Vec::with_capacity(p.len() * (p.nvars() + 1));
        for (coeffs, rhs) in p.rows() {
            rows.extend_from_slice(coeffs);
            rows.push(rhs);
        }
        let key = SolveKey {
            nvars: p.nvars(),
            rows,
            bounds: bounds.iter().map(|b| (b.lo, b.hi)).collect(),
        };
        self.lookup(key, || p.count_points(bounds))
    }

    /// Memoized [`BoundedDiophantine::count_solutions`].
    pub fn count_diophantine(&self, d: &BoundedDiophantine) -> u64 {
        let mut rows = Vec::with_capacity(d.coeffs().len() + 1);
        rows.extend_from_slice(d.coeffs());
        rows.push(d.rhs());
        let key = SolveKey {
            nvars: d.coeffs().len(),
            rows,
            bounds: d.bounds().iter().map(|b| (b.lo, b.hi)).collect(),
        };
        self.lookup(key, || d.count_solutions())
    }

    fn lookup(&self, key: SolveKey, compute: impl FnOnce() -> u64) -> u64 {
        if let Some(&cached) = relock(&self.table).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        // Compute outside the lock: counting can be expensive, and other
        // threads should keep hitting the table meanwhile.
        let value = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        relock(&self.table).insert(key, value);
        value
    }

    /// Number of lookups answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when never consulted.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of distinct solves stored.
    pub fn len(&self) -> usize {
        relock(&self.table).len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all stored results (counters are kept).
    pub fn clear(&self) {
        relock(&self.table).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polytope_counts_are_cached_and_exact() {
        let memo = SolveMemo::new();
        let mut p = Polytope::new(2);
        p.le(vec![1, 1], 4);
        p.eq_to(vec![1, -1], 1);
        let bounds = [Interval::new(0, 10), Interval::new(0, 10)];
        let direct = p.count_points(&bounds);
        assert_eq!(memo.count_points(&p, &bounds), direct);
        assert_eq!(memo.count_points(&p, &bounds), direct);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        assert!((memo.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_inputs_do_not_collide() {
        let memo = SolveMemo::new();
        let mut p1 = Polytope::new(1);
        p1.le(vec![1], 3); // x <= 3
        let mut p2 = Polytope::new(1);
        p2.le(vec![1], 5); // x <= 5
        let bounds = [Interval::new(0, 10)];
        assert_eq!(memo.count_points(&p1, &bounds), 4);
        assert_eq!(memo.count_points(&p2, &bounds), 6);
        // Same polytope, different box.
        assert_eq!(memo.count_points(&p2, &[Interval::new(0, 4)]), 5);
        assert_eq!(memo.hits(), 0);
        assert_eq!(memo.len(), 3);
    }

    #[test]
    fn diophantine_counts_are_cached() {
        let memo = SolveMemo::new();
        let d = BoundedDiophantine::new(
            vec![3, -1],
            1,
            vec![Interval::new(0, 7), Interval::new(0, 7)],
        );
        let direct = d.count_solutions();
        assert_eq!(memo.count_diophantine(&d), direct);
        assert_eq!(memo.count_diophantine(&d), direct);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
    }

    #[test]
    fn clear_keeps_counters() {
        let memo = SolveMemo::new();
        let p = Polytope::new(1);
        let bounds = [Interval::new(0, 2)];
        memo.count_points(&p, &bounds);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.misses(), 1);
    }
}
