//! Greatest common divisors and the extended Euclidean algorithm.
//!
//! The padding algorithm of the CME paper (Section 5.1.1, Figure 10) rests
//! entirely on classical facts about linear Diophantine equations:
//! `ax + by = c` has integer solutions iff `gcd(a, b) | c`. All four
//! "no-solution" conditions used to derive conflict-free paddings are GCD
//! comparisons, so these primitives are the analytical core of `cme-opt`.

/// Returns the non-negative greatest common divisor of `a` and `b`.
///
/// `gcd(0, 0)` is defined as `0`.
///
/// # Examples
///
/// ```
/// use cme_math::gcd::gcd;
/// assert_eq!(gcd(12, 18), 6);
/// assert_eq!(gcd(-12, 18), 6);
/// assert_eq!(gcd(0, 5), 5);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Returns the least common multiple of `a` and `b` (non-negative).
///
/// Returns `0` when either argument is `0`.
///
/// # Panics
///
/// Panics on overflow in debug builds (the quantities used by the CME
/// framework are element-unit addresses that comfortably fit `i64`).
///
/// # Examples
///
/// ```
/// use cme_math::gcd::lcm;
/// assert_eq!(lcm(4, 6), 12);
/// assert_eq!(lcm(0, 3), 0);
/// ```
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).abs() * b.abs()
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` with `g = gcd(a, b) >= 0` and `a*x + b*y = g`.
///
/// # Examples
///
/// ```
/// use cme_math::gcd::extended_gcd;
/// let (g, x, y) = extended_gcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    let (mut old_r, mut r) = (a, b);
    let (mut old_s, mut s) = (1i64, 0i64);
    let (mut old_t, mut t) = (0i64, 1i64);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        (-old_r, -old_s, -old_t)
    } else {
        (old_r, old_s, old_t)
    }
}

/// GCD of an arbitrary collection of integers (non-negative result).
///
/// Returns `0` for an empty slice.
///
/// # Examples
///
/// ```
/// use cme_math::gcd::gcd_all;
/// assert_eq!(gcd_all(&[12, 18, 30]), 6);
/// assert_eq!(gcd_all(&[]), 0);
/// ```
pub fn gcd_all(values: &[i64]) -> i64 {
    values.iter().fold(0, |g, &v| gcd(g, v))
}

/// Returns the largest power of two dividing `v`, as its exponent.
///
/// This is the `lg(gcd(C, Cs))` quantity manipulated by the padding
/// algorithm: since the cache size is a power of two, `gcd(C, Cs)` is the
/// power of two `2^min(x, lg Cs)` where `C = 2^x · t` with `t` odd.
///
/// # Panics
///
/// Panics if `v == 0` (zero is divisible by every power of two).
///
/// # Examples
///
/// ```
/// use cme_math::gcd::two_adic_valuation;
/// assert_eq!(two_adic_valuation(24), 3);
/// assert_eq!(two_adic_valuation(7), 0);
/// ```
pub fn two_adic_valuation(v: i64) -> u32 {
    assert!(v != 0, "two_adic_valuation(0) is undefined");
    v.unsigned_abs().trailing_zeros()
}

/// Decomposes `v != 0` as `(x, t)` with `v.abs() = 2^x * t` and `t` odd.
///
/// # Panics
///
/// Panics if `v == 0`.
///
/// # Examples
///
/// ```
/// use cme_math::gcd::odd_decomposition;
/// assert_eq!(odd_decomposition(96), (5, 3));
/// ```
pub fn odd_decomposition(v: i64) -> (u32, i64) {
    let x = two_adic_valuation(v);
    (x, (v.unsigned_abs() >> x) as i64)
}

/// Floor of the base-2 logarithm of `v >= 1`.
///
/// # Panics
///
/// Panics if `v < 1`.
///
/// # Examples
///
/// ```
/// use cme_math::gcd::floor_log2;
/// assert_eq!(floor_log2(1), 0);
/// assert_eq!(floor_log2(9), 3);
/// ```
pub fn floor_log2(v: i64) -> u32 {
    assert!(v >= 1, "floor_log2 requires v >= 1, got {v}");
    63 - (v as u64).leading_zeros()
}

/// Ceiling of the base-2 logarithm of `v >= 1`.
///
/// # Panics
///
/// Panics if `v < 1`.
///
/// # Examples
///
/// ```
/// use cme_math::gcd::ceil_log2;
/// assert_eq!(ceil_log2(8), 3);
/// assert_eq!(ceil_log2(9), 4);
/// ```
pub fn ceil_log2(v: i64) -> u32 {
    let f = floor_log2(v);
    if v.count_ones() == 1 {
        f
    } else {
        f + 1
    }
}

/// Euclidean (always non-negative) remainder of `a mod m` for `m > 0`.
///
/// # Panics
///
/// Panics if `m <= 0`.
///
/// # Examples
///
/// ```
/// use cme_math::gcd::modulo;
/// assert_eq!(modulo(-7, 4), 1);
/// assert_eq!(modulo(7, 4), 3);
/// ```
pub fn modulo(a: i64, m: i64) -> i64 {
    assert!(m > 0, "modulo requires a positive modulus, got {m}");
    a.rem_euclid(m)
}

/// Floor division `a / b` for `b != 0` (rounds toward negative infinity).
///
/// This is the `⌊Mem/Ls⌋` operator of Equation 1 in the paper, which must
/// behave correctly for the negative relative addresses that appear when
/// base addresses are kept symbolic.
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// use cme_math::gcd::floor_div;
/// assert_eq!(floor_div(7, 2), 3);
/// assert_eq!(floor_div(-7, 2), -4);
/// ```
pub fn floor_div(a: i64, b: i64) -> i64 {
    assert!(b != 0, "floor_div by zero");
    // div_euclid rounds so the remainder is non-negative, which equals
    // floor only for positive divisors; normalize the sign first.
    let (a, b) = if b < 0 { (-a, -b) } else { (a, b) };
    a.div_euclid(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(270, 192), 6);
        assert_eq!(gcd(-270, -192), 6);
        assert_eq!(gcd(i64::MIN + 1, 1), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(6, 4), 12);
        assert_eq!(lcm(-6, 4), 12);
        assert_eq!(lcm(7, 0), 0);
    }

    #[test]
    fn extended_gcd_identity() {
        for (a, b) in [(240, 46), (-240, 46), (240, -46), (0, 5), (5, 0), (0, 0)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
            assert_eq!(a * x + b * y, g, "Bezout identity failed for ({a},{b})");
        }
    }

    #[test]
    fn gcd_all_matches_pairwise() {
        assert_eq!(gcd_all(&[8, 12, 20]), 4);
        assert_eq!(gcd_all(&[7]), 7);
        assert_eq!(gcd_all(&[0, 0, 9]), 9);
    }

    #[test]
    fn two_adic() {
        assert_eq!(two_adic_valuation(1), 0);
        assert_eq!(two_adic_valuation(-8), 3);
        assert_eq!(odd_decomposition(-12), (2, 3));
    }

    #[test]
    #[should_panic]
    fn two_adic_zero_panics() {
        two_adic_valuation(0);
    }

    #[test]
    fn logs() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(1024), 10);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn modulo_and_floor_div_agree() {
        for a in -20..20 {
            for m in 1..8 {
                assert_eq!(floor_div(a, m) * m + modulo(a, m), a);
                assert!((0..m).contains(&modulo(a, m)));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_gcd_divides(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let g = gcd(a, b);
            if g != 0 {
                prop_assert_eq!(a % g, 0);
                prop_assert_eq!(b % g, 0);
            } else {
                prop_assert_eq!(a, 0);
                prop_assert_eq!(b, 0);
            }
        }

        #[test]
        fn prop_bezout(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let (g, x, y) = extended_gcd(a, b);
            prop_assert_eq!(a * x + b * y, g);
            prop_assert_eq!(g, gcd(a, b));
        }

        #[test]
        fn prop_odd_decomposition_roundtrip(v in 1i64..1_000_000) {
            let (x, t) = odd_decomposition(v);
            prop_assert_eq!((1i64 << x) * t, v);
            prop_assert_eq!(t % 2, 1);
        }
    }
}
