//! One-parameter quasi-polynomials (Ehrhart-style periodic counts).
//!
//! Section 5.1.3 of the paper derives the number of CME solutions as a
//! function of an optimization parameter (for example the inter-variable
//! spacing `|B_X − B_Y|`) using Ehrhart pseudo-polynomials, then minimizes
//! that function instead of enumerating every candidate value.
//!
//! For cache analysis the counting function of a single layout parameter is
//! *eventually periodic-polynomial*: after an onset threshold (boundary
//! effects of the first few candidate values), the cache mapping is periodic
//! with a period dividing the cache size, and the count restricted to each
//! residue class modulo the period is a polynomial of degree ≤ 2.
//! [`QuasiPolynomial`] represents exactly that — an explicit head of values
//! before the onset plus per-residue quadratics after it — and
//! [`fit_eventually_periodic`] recovers one from sampled counts together
//! with a [`FitCertificate`] recording the sample window and verification
//! margin. [`fit_periodic`] / [`fit_quasi_linear`] remain as the simpler
//! onset-free fitters.

use crate::gcd::{floor_div, lcm};
use std::fmt;

/// Evaluates the per-residue polynomial `a + b·p + c·p²` at `p`, widened
/// to `i128` so coefficient magnitudes near `i64::MAX` cannot wrap.
fn poly_eval((a, b, c): (i64, i64, i64), p: i64) -> i128 {
    let p = p as i128;
    a as i128 + b as i128 * p + c as i128 * p * p
}

/// How [`QuasiPolynomial::argmin_with`] breaks ties between parameters
/// achieving the same minimum value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Prefer the smallest parameter (the default of
    /// [`QuasiPolynomial::argmin`], and the least intrusive layout edit).
    SmallestParameter,
    /// Prefer the largest parameter (e.g. the most padded layout).
    LargestParameter,
}

/// An eventually periodic quasi-polynomial:
///
/// ```text
/// f(p) = head[p]                              for 0 <= p < onset
/// f(p) = a_r + b_r·p + c_r·p²,  r = p mod m   for p >= onset
/// ```
///
/// with per-residue polynomials of degree ≤ 2. `onset = 0` (no head) and
/// all `c_r = 0` recovers the per-residue linear form the paper
/// manipulates directly.
///
/// # Examples
///
/// ```
/// use cme_math::quasipoly::QuasiPolynomial;
/// // f(p) = 3 when p is even, 5 when p is odd.
/// let q = QuasiPolynomial::from_constants(vec![3, 5]);
/// assert_eq!(q.eval(4), 3);
/// assert_eq!(q.eval(7), 5);
/// assert_eq!(q.argmin(0..=9), (0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuasiPolynomial {
    /// Parameter value at which periodicity starts (`head.len() as i64`).
    onset: i64,
    /// Explicit values for `p < onset`.
    head: Vec<i64>,
    /// Per-residue `(a, b, c)` triples representing `a + b·p + c·p²`.
    coeffs: Vec<(i64, i64, i64)>,
}

impl QuasiPolynomial {
    /// Builds a quasi-polynomial with the given per-residue linear
    /// coefficients `(a, b)` meaning `a + b·p` for `p ≡ residue`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<(i64, i64)>) -> Self {
        QuasiPolynomial::quadratic(coeffs.into_iter().map(|(a, b)| (a, b, 0)).collect())
    }

    /// Builds a quasi-polynomial with per-residue quadratic coefficients
    /// `(a, b, c)` meaning `a + b·p + c·p²` for `p ≡ residue`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    pub fn quadratic(coeffs: Vec<(i64, i64, i64)>) -> Self {
        assert!(!coeffs.is_empty(), "quasi-polynomial needs period >= 1");
        QuasiPolynomial {
            onset: 0,
            head: Vec::new(),
            coeffs,
        }
    }

    /// Builds a purely periodic (degree-0) quasi-polynomial from per-residue
    /// constants.
    ///
    /// # Panics
    ///
    /// Panics if `constants` is empty.
    pub fn from_constants(constants: Vec<i64>) -> Self {
        QuasiPolynomial::quadratic(constants.into_iter().map(|c| (c, 0, 0)).collect())
    }

    /// Builds an eventually periodic quasi-polynomial: `head` holds the
    /// explicit values for `p < head.len()` (the onset threshold), after
    /// which the per-residue quadratics take over.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    pub fn with_head(head: Vec<i64>, coeffs: Vec<(i64, i64, i64)>) -> Self {
        assert!(!coeffs.is_empty(), "quasi-polynomial needs period >= 1");
        QuasiPolynomial {
            onset: head.len() as i64,
            head,
            coeffs,
        }
    }

    /// The period of the quasi-polynomial.
    pub fn period(&self) -> usize {
        self.coeffs.len()
    }

    /// The onset threshold: periodicity holds for `p >= onset()`.
    pub fn onset(&self) -> i64 {
        self.onset
    }

    /// The explicit pre-onset values (`f(0..onset)`).
    pub fn head(&self) -> &[i64] {
        &self.head
    }

    /// The per-residue `(a, b, c)` coefficient triples.
    pub fn coefficients(&self) -> &[(i64, i64, i64)] {
        &self.coeffs
    }

    /// The largest per-residue polynomial degree (0, 1, or 2).
    pub fn degree(&self) -> u8 {
        self.coeffs
            .iter()
            .map(|&(_, b, c)| if c != 0 { 2 } else { u8::from(b != 0) })
            .max()
            .unwrap_or(0)
    }

    fn eval_i128(&self, p: i64) -> i128 {
        assert!(p >= 0, "quasi-polynomial parameter must be non-negative");
        if p < self.onset {
            return self.head[p as usize] as i128;
        }
        poly_eval(self.coeffs[(p as usize) % self.coeffs.len()], p)
    }

    /// Evaluates the quasi-polynomial at `p >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `p < 0` or the value overflows `i64`.
    // Infallible for every function fitted from i64 samples within its
    // sampled window; out-of-range extrapolation overflowing i64 is a
    // caller error worth a loud panic, not a wrapped count.
    #[allow(clippy::expect_used)]
    pub fn eval(&self, p: i64) -> i64 {
        i64::try_from(self.eval_i128(p)).expect("quasi-polynomial value overflows i64")
    }

    /// Pointwise sum: `(self.add(o)).eval(p) == self.eval(p) + o.eval(p)`
    /// for every `p >= 0`. The period is the lcm of the operands' periods
    /// and the onset the larger of the two.
    ///
    /// # Panics
    ///
    /// Panics if a combined coefficient or head value overflows `i64`.
    #[allow(clippy::expect_used)]
    pub fn add(&self, other: &QuasiPolynomial) -> QuasiPolynomial {
        let m = lcm(self.period() as i64, other.period() as i64) as usize;
        let onset = self.onset.max(other.onset);
        let over = "quasi-polynomial sum overflows i64";
        let head: Vec<i64> = (0..onset)
            .map(|p| i64::try_from(self.eval_i128(p) + other.eval_i128(p)).expect(over))
            .collect();
        let coeffs: Vec<(i64, i64, i64)> = (0..m)
            .map(|r| {
                let (a1, b1, c1) = self.coeffs[r % self.period()];
                let (a2, b2, c2) = other.coeffs[r % other.period()];
                (
                    a1.checked_add(a2).expect(over),
                    b1.checked_add(b2).expect(over),
                    c1.checked_add(c2).expect(over),
                )
            })
            .collect();
        QuasiPolynomial {
            onset,
            head,
            coeffs,
        }
    }

    /// Pointwise scaling: `(self.scale(k)).eval(p) == k * self.eval(p)`.
    ///
    /// # Panics
    ///
    /// Panics if a scaled coefficient or head value overflows `i64`.
    #[allow(clippy::expect_used)]
    pub fn scale(&self, k: i64) -> QuasiPolynomial {
        let over = "quasi-polynomial scale overflows i64";
        QuasiPolynomial {
            onset: self.onset,
            head: self
                .head
                .iter()
                .map(|&v| v.checked_mul(k).expect(over))
                .collect(),
            coeffs: self
                .coeffs
                .iter()
                .map(|&(a, b, c)| {
                    (
                        a.checked_mul(k).expect(over),
                        b.checked_mul(k).expect(over),
                        c.checked_mul(k).expect(over),
                    )
                })
                .collect(),
        }
    }

    /// Candidate parameters where the residue-`r` polynomial can attain an
    /// extremum over the class lattice `{p ≡ r (mod m)} ∩ [lo, hi]`: the
    /// class endpoints, plus the lattice points bracketing the vertex when
    /// the parabola opens toward the requested extremum.
    fn class_extremum_candidates(&self, r: i64, lo: i64, hi: i64, want_min: bool) -> Vec<i64> {
        let m = self.coeffs.len() as i64;
        let first = lo + (r - lo).rem_euclid(m);
        if first > hi {
            return Vec::new();
        }
        let last = hi - (hi - r).rem_euclid(m);
        let mut cands = vec![first, last];
        let (_, b, c) = self.coeffs[r.rem_euclid(m) as usize];
        // Interior extremum only when the parabola opens the right way.
        if c != 0 && ((c > 0) == want_min) {
            // Vertex at -b / (2c); bracket it with the two nearest class
            // lattice points first + k·m (exact integer floor division).
            let (mut num, mut den) = (-b, 2 * c);
            if den < 0 {
                num = -num;
                den = -den;
            }
            let k = floor_div(num - first * den, m * den);
            for cand in [first + k * m, first + (k + 1) * m] {
                if cand >= first && cand <= last {
                    cands.push(cand);
                }
            }
        }
        cands
    }

    /// Finds the parameter in `range` that minimizes the quasi-polynomial,
    /// returning `(argmin, min)`. Ties break toward the smaller parameter
    /// ([`TieBreak::SmallestParameter`]; see
    /// [`QuasiPolynomial::argmin_with`] for the explicit policy).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or contains negative values.
    pub fn argmin(&self, range: std::ops::RangeInclusive<i64>) -> (i64, i64) {
        self.argmin_with(range, TieBreak::SmallestParameter)
    }

    /// [`QuasiPolynomial::argmin`] with an explicit tie-breaking policy.
    ///
    /// Only the pre-onset head values inside the range, each residue
    /// class's endpoints, and (for upward parabolas) the lattice points
    /// around each vertex need inspecting — the "function optimization"
    /// step of Section 5.1.3 done exactly, degree ≤ 2 included.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or contains negative values.
    // Infallible: `lo <= hi` is asserted, so either the head or the
    // residue class of the first periodic point contributes a candidate.
    #[allow(clippy::expect_used)]
    pub fn argmin_with(&self, range: std::ops::RangeInclusive<i64>, ties: TieBreak) -> (i64, i64) {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty parameter range");
        assert!(lo >= 0, "parameters must be non-negative");
        let mut best: Option<(i64, i128)> = None;
        let mut consider = |p: i64, v: i128| {
            let better = match best {
                None => true,
                Some((bp, bv)) => {
                    v < bv
                        || (v == bv
                            && match ties {
                                TieBreak::SmallestParameter => p < bp,
                                TieBreak::LargestParameter => p > bp,
                            })
                }
            };
            if better {
                best = Some((p, v));
            }
        };
        // Head values inside the range, verbatim.
        for p in lo..=hi.min(self.onset - 1) {
            consider(p, self.eval_i128(p));
        }
        // Periodic part: per-residue extremum candidates.
        let plo = lo.max(self.onset);
        if plo <= hi {
            for r in 0..self.coeffs.len() as i64 {
                for p in self.class_extremum_candidates(r, plo, hi, true) {
                    consider(p, self.eval_i128(p));
                }
            }
        }
        let (p, v) = best.expect("non-empty range always yields a candidate");
        (
            p,
            i64::try_from(v).expect("quasi-polynomial value overflows i64"),
        )
    }

    /// Exact pointwise minimum of two quasi-polynomials over `range`,
    /// when the minimum is itself representable as one eventually
    /// periodic quasi-polynomial (period = lcm of the operands').
    ///
    /// Per residue class the difference is a quadratic; if it changes
    /// sign on the class lattice inside the range (the branches cross),
    /// no single per-residue polynomial equals the minimum and `None` is
    /// returned — callers fall back to evaluating both functions. When
    /// `Some(q)` is returned, `q.eval(p) == min(self.eval(p),
    /// other.eval(p))` for every `p` in `range` (and every `p` below the
    /// combined onset).
    pub fn pointwise_min(
        &self,
        other: &QuasiPolynomial,
        range: std::ops::RangeInclusive<i64>,
    ) -> Option<QuasiPolynomial> {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty parameter range");
        assert!(lo >= 0, "parameters must be non-negative");
        let m = lcm(self.period() as i64, other.period() as i64) as usize;
        let onset = self.onset.max(other.onset);
        let head: Vec<i64> = (0..onset)
            .map(|p| i64::try_from(self.eval_i128(p).min(other.eval_i128(p))).ok())
            .collect::<Option<_>>()?;
        let plo = lo.max(onset);
        let mut coeffs = Vec::with_capacity(m);
        for r in 0..m as i64 {
            let pa = self.coeffs[(r as usize) % self.period()];
            let pb = other.coeffs[(r as usize) % other.period()];
            // Difference self − other on this residue class, in i128 via
            // the shared evaluator (coefficient subtraction could wrap).
            let diff = |p: i64| poly_eval(pa, p) - poly_eval(pb, p);
            // Sign analysis over the class lattice ∩ [plo, hi]: extremum
            // candidates of the difference quadratic.
            let dc = pa.2.checked_sub(pb.2)?;
            let db = pa.1.checked_sub(pb.1)?;
            let da = pa.0.checked_sub(pb.0)?;
            let d = QuasiPolynomial {
                onset: 0,
                head: Vec::new(),
                coeffs: {
                    let mut v = vec![(0, 0, 0); m];
                    v[r as usize] = (da, db, dc);
                    v
                },
            };
            let (dmin, dmax) = if plo > hi {
                (0, 0) // class has no point in range: keep either branch
            } else {
                let mins = d.class_extremum_candidates(r, plo, hi, true);
                let maxs = d.class_extremum_candidates(r, plo, hi, false);
                if mins.is_empty() {
                    (0, 0)
                } else {
                    (
                        mins.iter().map(|&p| diff(p)).min().unwrap_or(0),
                        maxs.iter().map(|&p| diff(p)).max().unwrap_or(0),
                    )
                }
            };
            if dmin >= 0 {
                coeffs.push(pb); // other <= self on the whole class
            } else if dmax <= 0 {
                coeffs.push(pa); // self <= other on the whole class
            } else {
                return None; // branches cross: not representable
            }
        }
        Some(QuasiPolynomial {
            onset,
            head,
            coeffs,
        })
    }
}

impl fmt::Display for QuasiPolynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.onset > 0 {
            write!(f, "head{:?} then ", self.head)?;
        }
        write!(f, "[p mod {}] -> ", self.coeffs.len())?;
        let shown = self.coeffs.len().min(16);
        for (i, (a, b, c)) in self.coeffs.iter().take(shown).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            if *b != 0 {
                write!(f, "+{b}p")?;
            }
            if *c != 0 {
                write!(f, "+{c}p²")?;
            }
        }
        if self.coeffs.len() > shown {
            // Infallible: this branch requires `coeffs.len() > shown >= 0`,
            // so the iterator is non-empty.
            #[allow(clippy::unwrap_used)]
            let lo = self.coeffs.iter().map(|(a, _, _)| a).min().unwrap();
            #[allow(clippy::unwrap_used)]
            let hi = self.coeffs.iter().map(|(a, _, _)| a).max().unwrap();
            write!(
                f,
                ", … ({} more residues; constants range {lo}..={hi})",
                self.coeffs.len() - shown
            )?;
        }
        Ok(())
    }
}

/// Exact-fit certificate of [`fit_eventually_periodic`]: the window the
/// function was fitted and verified over, and by what margin.
///
/// The certificate's guarantee: every sample in the window `0..samples`
/// reproduces exactly, every residue class kept at least
/// `verification_margin` samples *beyond* the points consumed by
/// interpolation (so the fit is never a bare interpolation), and the head
/// below `onset` is stored verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitCertificate {
    /// The fitted period.
    pub period: usize,
    /// The onset threshold before which values are stored verbatim.
    pub onset: i64,
    /// Largest per-residue polynomial degree used (0, 1, or 2).
    pub degree: u8,
    /// Number of samples in the fitted window (`f(0..samples)`).
    pub samples: usize,
    /// Minimum, over residue classes, of samples verified beyond the
    /// interpolation points — always ≥ 1.
    pub verification_margin: usize,
}

impl fmt::Display for FitCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "period {} onset {} degree {} over {} samples (margin {})",
            self.period, self.onset, self.degree, self.samples, self.verification_margin
        )
    }
}

/// Error returned by the fitters when no quasi-polynomial of any
/// admissible period explains the samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitPeriodicError {
    tried: Vec<usize>,
}

impl fmt::Display for FitPeriodicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no periodic-constant model fits the samples (periods tried: {:?})",
            self.tried
        )
    }
}

impl std::error::Error for FitPeriodicError {}

/// Fits a purely periodic quasi-polynomial to `samples[p] = f(p)` for
/// `p = 0..samples.len()`, trying each candidate period in `periods` in
/// order and returning the first that reproduces every sample.
///
/// Candidate periods for cache problems are the powers of two up to the
/// cache size, since the set-mapping function has that periodicity.
///
/// # Errors
///
/// Returns [`FitPeriodicError`] when no candidate period fits; callers fall
/// back to direct counting (Section 5.1.2 style) in that case.
///
/// # Examples
///
/// ```
/// use cme_math::quasipoly::fit_periodic;
/// let samples = [4, 9, 4, 9, 4, 9, 4, 9];
/// let q = fit_periodic(&samples, &[1, 2, 4]).unwrap();
/// assert_eq!(q.period(), 2);
/// assert_eq!(q.eval(100), 4);
/// ```
pub fn fit_periodic(
    samples: &[i64],
    periods: &[usize],
) -> Result<QuasiPolynomial, FitPeriodicError> {
    for &m in periods {
        if m == 0 || m > samples.len() {
            continue;
        }
        let ok = samples
            .iter()
            .enumerate()
            .all(|(p, &v)| v == samples[p % m]);
        if ok {
            return Ok(QuasiPolynomial::from_constants(samples[..m].to_vec()));
        }
    }
    Err(FitPeriodicError {
        tried: periods.to_vec(),
    })
}

/// Fits a degree-≤1 quasi-polynomial to `samples[p] = f(p)`: per residue
/// class modulo a candidate period, a line `a + b·p` is derived from the
/// first two samples of the class and verified against the rest.
///
/// This is the shape of a genuine 1-parameter Ehrhart quasi-polynomial of
/// a 1-D parametric polytope (count grows linearly with the parameter,
/// with cache-periodic corrections).
///
/// # Errors
///
/// Returns [`FitPeriodicError`] when no candidate period admits a
/// consistent linear model (e.g. the counting function is quadratic).
///
/// # Examples
///
/// ```
/// use cme_math::quasipoly::fit_quasi_linear;
/// // f(p) = 2p + (0 if p even else 5).
/// let samples: Vec<i64> = (0..24).map(|p| 2 * p + if p % 2 == 0 { 0 } else { 5 }).collect();
/// let q = fit_quasi_linear(&samples, &[1, 2, 4]).unwrap();
/// assert_eq!(q.period(), 2);
/// assert_eq!(q.eval(100), 200);
/// assert_eq!(q.eval(101), 207);
/// ```
pub fn fit_quasi_linear(
    samples: &[i64],
    periods: &[usize],
) -> Result<QuasiPolynomial, FitPeriodicError> {
    'periods: for &m in periods {
        if m == 0 || samples.len() < 2 * m {
            continue;
        }
        let mut coeffs = Vec::with_capacity(m);
        for r in 0..m {
            let p0 = r as i64;
            let (f0, f1) = (samples[r], samples[r + m]);
            if (f1 - f0) % (m as i64) != 0 {
                continue 'periods;
            }
            let b = (f1 - f0) / m as i64;
            let a = f0 - b * p0;
            coeffs.push((a, b));
        }
        let q = QuasiPolynomial::new(coeffs);
        if samples
            .iter()
            .enumerate()
            .all(|(p, &v)| q.eval(p as i64) == v)
        {
            return Ok(q);
        }
    }
    Err(FitPeriodicError {
        tried: periods.to_vec(),
    })
}

/// Fits the minimal-degree polynomial (≤ 2) through one residue class's
/// samples `(pts[i], vals[i])` with spacing `m` between points, verifying
/// every remaining sample. Returns `(a, b, c, degree, margin)` — `margin`
/// counts the samples beyond the interpolation points — or `None` when no
/// exact integer polynomial of degree ≤ 2 reproduces the class.
fn fit_class(pts: &[i64], vals: &[i64], m: i64) -> Option<(i64, i64, i64, u8, usize)> {
    let verify = |a: i64, b: i64, c: i64| {
        pts.iter()
            .zip(vals)
            .all(|(&p, &v)| poly_eval((a, b, c), p) == v as i128)
    };
    // Degree 0: all values equal.
    if vals.iter().all(|&v| v == vals[0]) {
        return Some((vals[0], 0, 0, 0, vals.len() - 1));
    }
    // Degree 1 from the first two points: b·m = f1 − f0.
    if vals.len() >= 3 {
        let d1 = vals[1] as i128 - vals[0] as i128;
        if d1 % m as i128 == 0 {
            let b = i64::try_from(d1 / m as i128).ok()?;
            let a = i64::try_from(vals[0] as i128 - b as i128 * pts[0] as i128).ok()?;
            if verify(a, b, 0) {
                return Some((a, b, 0, 1, vals.len() - 2));
            }
        }
    }
    // Degree 2 from the first three points: 2c·m² = f2 − 2f1 + f0.
    if vals.len() >= 4 {
        let p0 = pts[0] as i128;
        let mm = m as i128;
        let second = vals[2] as i128 - 2 * vals[1] as i128 + vals[0] as i128;
        if second % (2 * mm * mm) == 0 {
            let c = second / (2 * mm * mm);
            let d1 = vals[1] as i128 - vals[0] as i128;
            let bnum = d1 - c * mm * (2 * p0 + mm);
            if bnum % mm == 0 {
                let b = bnum / mm;
                let a = vals[0] as i128 - b * p0 - c * p0 * p0;
                let (a, b, c) = (
                    i64::try_from(a).ok()?,
                    i64::try_from(b).ok()?,
                    i64::try_from(c).ok()?,
                );
                if verify(a, b, c) {
                    return Some((a, b, c, 2, vals.len() - 3));
                }
            }
        }
    }
    None
}

/// Fits an eventually periodic quasi-polynomial (degree ≤ 2 per residue
/// class, onset threshold ≤ `max_onset`) to `samples[p] = f(p)`, returning
/// the function together with its exact-fit [`FitCertificate`].
///
/// Candidate onsets are tried smallest-first and, per onset, candidate
/// periods in the order given. A fit is accepted only when every sample at
/// or beyond the onset reproduces exactly **and** every residue class
/// keeps at least one sample beyond its interpolation points (certificate
/// margin ≥ 1): a degree-0 class needs 2 samples, degree-1 needs 3,
/// degree-2 needs 4. Values below the onset are stored verbatim as the
/// head.
///
/// # Errors
///
/// Returns [`FitPeriodicError`] when no `(onset, period)` pair admits a
/// certified fit; callers fall back to exhaustive evaluation.
///
/// # Examples
///
/// ```
/// use cme_math::quasipoly::fit_eventually_periodic;
/// // Two irregular warm-up values, then period 3.
/// let mut samples = vec![100, 90];
/// samples.extend((2..26).map(|p| [7, 3, 9][p % 3]));
/// let (q, cert) = fit_eventually_periodic(&samples, &[1, 3], 4).unwrap();
/// assert_eq!(cert.period, 3);
/// assert_eq!(cert.onset, 2);
/// assert_eq!(q.eval(0), 100);
/// assert_eq!(q.eval(300), 7);
/// ```
pub fn fit_eventually_periodic(
    samples: &[i64],
    periods: &[usize],
    max_onset: usize,
) -> Result<(QuasiPolynomial, FitCertificate), FitPeriodicError> {
    let n = samples.len();
    for onset in 0..=max_onset.min(n.saturating_sub(2)) {
        'periods: for &m in periods {
            if m == 0 || n - onset < 2 * m {
                continue;
            }
            let mut coeffs = Vec::with_capacity(m);
            let mut degree = 0u8;
            let mut margin = usize::MAX;
            for r in 0..m as i64 {
                let o = onset as i64;
                let first = o + (r - o).rem_euclid(m as i64);
                let pts: Vec<i64> = (first..n as i64).step_by(m).collect();
                let vals: Vec<i64> = pts.iter().map(|&p| samples[p as usize]).collect();
                match fit_class(&pts, &vals, m as i64) {
                    Some((a, b, c, d, mg)) if mg >= 1 => {
                        coeffs.push((a, b, c));
                        degree = degree.max(d);
                        margin = margin.min(mg);
                    }
                    _ => continue 'periods,
                }
            }
            return Ok((
                QuasiPolynomial::with_head(samples[..onset].to_vec(), coeffs),
                FitCertificate {
                    period: m,
                    onset: onset as i64,
                    degree,
                    samples: n,
                    verification_margin: margin,
                },
            ));
        }
    }
    Err(FitPeriodicError {
        tried: periods.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_periodic_linear() {
        // Even p: 1 + p, odd p: 10.
        let q = QuasiPolynomial::new(vec![(1, 1), (10, 0)]);
        assert_eq!(q.eval(0), 1);
        assert_eq!(q.eval(2), 3);
        assert_eq!(q.eval(3), 10);
    }

    #[test]
    fn argmin_prefers_smallest_parameter_on_ties() {
        let q = QuasiPolynomial::from_constants(vec![5, 5, 5, 5]);
        assert_eq!(q.argmin(2..=9), (2, 5));
        assert_eq!(q.argmin_with(2..=9, TieBreak::LargestParameter), (9, 5));
    }

    #[test]
    fn argmin_scans_residue_endpoints() {
        // f(p) = 100 - p for p ≡ 0 (mod 2); 1000 otherwise: min at largest even p.
        let q = QuasiPolynomial::new(vec![(100, -1), (1000, 0)]);
        assert_eq!(q.argmin(0..=10), (10, 90));
        assert_eq!(q.argmin(0..=9), (8, 92));
    }

    #[test]
    fn argmin_finds_interior_quadratic_vertex() {
        // f(p) = (p - 7)² + 2 on every residue: vertex at p = 7.
        let q = QuasiPolynomial::quadratic(vec![(51, -14, 1)]);
        assert_eq!(q.argmin(0..=100), (7, 2));
        // Vertex at 7.5 between lattice points: both neighbors tie at 2;
        // smallest-parameter policy picks 7.
        let q = QuasiPolynomial::quadratic(vec![(2 * 56 + 1, -2 * 15, 2)]);
        assert_eq!(q.argmin(0..=100).1, q.eval(7).min(q.eval(8)));
    }

    #[test]
    fn argmin_respects_head_values() {
        let q = QuasiPolynomial::with_head(vec![0, 99], vec![(50, 0, 0)]);
        assert_eq!(q.argmin(0..=10), (0, 0));
        assert_eq!(q.argmin(1..=10), (2, 50));
    }

    #[test]
    fn add_and_scale_are_pointwise() {
        let f = QuasiPolynomial::with_head(vec![3], vec![(1, 2, 0), (5, 0, 1)]);
        let g = QuasiPolynomial::new(vec![(10, -1), (0, 3), (7, 0)]);
        let sum = f.add(&g);
        let scaled = f.scale(-3);
        assert_eq!(sum.period(), 6);
        for p in 0..60 {
            assert_eq!(sum.eval(p), f.eval(p) + g.eval(p), "add at p={p}");
            assert_eq!(scaled.eval(p), -3 * f.eval(p), "scale at p={p}");
        }
    }

    #[test]
    fn pointwise_min_selects_dominating_branches() {
        // f = 10 (even), 1 (odd); g = 4 everywhere: min = 4 (even), 1 (odd).
        let f = QuasiPolynomial::from_constants(vec![10, 1]);
        let g = QuasiPolynomial::from_constants(vec![4]);
        let m = f.pointwise_min(&g, 0..=100).unwrap();
        for p in 0..=100 {
            assert_eq!(m.eval(p), f.eval(p).min(g.eval(p)));
        }
    }

    #[test]
    fn pointwise_min_rejects_crossing_branches() {
        // f = p, g = 50: they cross at p = 50 inside the range.
        let f = QuasiPolynomial::new(vec![(0, 1)]);
        let g = QuasiPolynomial::from_constants(vec![50]);
        assert!(f.pointwise_min(&g, 0..=100).is_none());
        // Outside the crossing the min is representable again.
        let m = f.pointwise_min(&g, 0..=40).unwrap();
        for p in 0..=40 {
            assert_eq!(m.eval(p), f.eval(p).min(g.eval(p)));
        }
    }

    #[test]
    fn fit_recovers_true_period() {
        let samples: Vec<i64> = (0..32).map(|p| [7, 3, 9, 3][p % 4]).collect();
        let q = fit_periodic(&samples, &[1, 2, 4, 8]).unwrap();
        assert_eq!(q.period(), 4);
        for (p, &s) in samples.iter().enumerate() {
            assert_eq!(q.eval(p as i64), s);
        }
    }

    #[test]
    fn fit_fails_cleanly() {
        let samples: Vec<i64> = (0..16).map(|p| p as i64 * p as i64).collect();
        let err = fit_periodic(&samples, &[1, 2, 4]).unwrap_err();
        assert!(err.to_string().contains("no periodic-constant model"));
    }

    #[test]
    fn quasi_linear_recovers_slope_and_period() {
        let f = |p: i64| 3 * p + [1, 7, 4][(p % 3) as usize];
        let samples: Vec<i64> = (0..30).map(f).collect();
        let q = fit_quasi_linear(&samples, &[1, 2, 3, 6]).unwrap();
        assert_eq!(q.period(), 3);
        for p in 0..200 {
            assert_eq!(q.eval(p), f(p));
        }
    }

    #[test]
    fn quasi_linear_rejects_quadratics() {
        let samples: Vec<i64> = (0..20).map(|p| p * p).collect();
        assert!(fit_quasi_linear(&samples, &[1, 2, 4]).is_err());
    }

    #[test]
    fn quasi_linear_subsumes_constant_fits() {
        let samples = vec![5i64; 16];
        let q = fit_quasi_linear(&samples, &[1, 2]).unwrap();
        assert_eq!(q.period(), 1);
        assert_eq!(q.eval(1000), 5);
    }

    #[test]
    fn fit_constant_is_period_one() {
        let q = fit_periodic(&[6, 6, 6, 6], &[1, 2]).unwrap();
        assert_eq!(q.period(), 1);
        assert_eq!(q.eval(12345), 6);
    }

    #[test]
    fn eventually_periodic_fit_recovers_onset_and_quadratics() {
        // f(p) = 1000 for p < 3, then per-residue mod 2: p² + 1 (even),
        // 5p (odd).
        let f = |p: i64| {
            if p < 3 {
                1000
            } else if p % 2 == 0 {
                p * p + 1
            } else {
                5 * p
            }
        };
        let samples: Vec<i64> = (0..16).map(f).collect();
        let (q, cert) = fit_eventually_periodic(&samples, &[1, 2], 4).unwrap();
        assert_eq!(cert.period, 2);
        assert_eq!(cert.onset, 3);
        assert_eq!(cert.degree, 2);
        assert!(cert.verification_margin >= 1);
        for p in 0..40 {
            assert_eq!(q.eval(p), f(p), "p={p}");
        }
        assert!(cert.to_string().contains("period 2"));
    }

    #[test]
    fn eventually_periodic_fit_requires_a_verification_margin() {
        // Exactly 2 samples of a degree-1 class: interpolation alone must
        // not count as a fit.
        let samples = [0i64, 1];
        assert!(fit_eventually_periodic(&samples, &[1], 0).is_err());
        // With a third sample verifying the line, the fit is certified.
        let samples = [0i64, 1, 2];
        let (q, cert) = fit_eventually_periodic(&samples, &[1], 0).unwrap();
        assert_eq!(cert.degree, 1);
        assert_eq!(cert.verification_margin, 1);
        assert_eq!(q.eval(100), 100);
    }

    #[test]
    fn eventually_periodic_prefers_smallest_onset_and_listed_period_order() {
        let samples: Vec<i64> = (0..24).map(|p| [4, 4, 9, 9][p % 4]).collect();
        let (q, cert) = fit_eventually_periodic(&samples, &[1, 2, 4, 8], 6).unwrap();
        assert_eq!(cert.onset, 0);
        assert_eq!(cert.period, 4);
        assert_eq!(q.period(), 4);
    }

    #[test]
    fn display_shows_head_and_quadratic_terms() {
        let q = QuasiPolynomial::with_head(vec![9], vec![(1, 2, 3)]);
        let s = q.to_string();
        assert!(s.contains("head[9]"), "{s}");
        assert!(s.contains("1+2p+3p²"), "{s}");
    }
}
