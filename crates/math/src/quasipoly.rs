//! One-parameter quasi-polynomials (Ehrhart-style periodic counts).
//!
//! Section 5.1.3 of the paper derives the number of CME solutions as a
//! function of an optimization parameter (for example the inter-variable
//! spacing `|B_X − B_Y|`) using Ehrhart pseudo-polynomials, then minimizes
//! that function instead of enumerating every candidate value.
//!
//! For cache analysis the counting function of a single layout parameter is
//! *eventually periodic-polynomial*: the cache mapping is periodic with a
//! period dividing the cache size, so the count restricted to each residue
//! class modulo the period is a polynomial (degree 0 or 1 in the cases the
//! paper manipulates). [`QuasiPolynomial`] represents exactly that, and
//! [`fit_periodic`] recovers one from sampled counts.

use std::fmt;

/// A quasi-polynomial `f(p) = poly_{p mod period}(p)` with per-residue
/// linear polynomials `a + b·p`.
///
/// # Examples
///
/// ```
/// use cme_math::quasipoly::QuasiPolynomial;
/// // f(p) = 3 when p is even, 5 when p is odd.
/// let q = QuasiPolynomial::from_constants(vec![3, 5]);
/// assert_eq!(q.eval(4), 3);
/// assert_eq!(q.eval(7), 5);
/// assert_eq!(q.argmin(0..=9), (0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuasiPolynomial {
    /// Per-residue `(a, b)` pairs representing `a + b·p`.
    coeffs: Vec<(i64, i64)>,
}

impl QuasiPolynomial {
    /// Builds a quasi-polynomial with the given per-residue linear
    /// coefficients `(a, b)` meaning `a + b·p` for `p ≡ residue`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<(i64, i64)>) -> Self {
        assert!(!coeffs.is_empty(), "quasi-polynomial needs period >= 1");
        QuasiPolynomial { coeffs }
    }

    /// Builds a purely periodic (degree-0) quasi-polynomial from per-residue
    /// constants.
    ///
    /// # Panics
    ///
    /// Panics if `constants` is empty.
    pub fn from_constants(constants: Vec<i64>) -> Self {
        QuasiPolynomial::new(constants.into_iter().map(|c| (c, 0)).collect())
    }

    /// The period of the quasi-polynomial.
    pub fn period(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the quasi-polynomial at `p >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `p < 0`.
    pub fn eval(&self, p: i64) -> i64 {
        assert!(p >= 0, "quasi-polynomial parameter must be non-negative");
        let (a, b) = self.coeffs[(p as usize) % self.coeffs.len()];
        a + b * p
    }

    /// Finds the parameter in `range` that minimizes the quasi-polynomial,
    /// returning `(argmin, min)`. Ties break toward the smaller parameter.
    ///
    /// Because each residue class is linear, only the endpoints of each
    /// class within the range need to be inspected — this is the "function
    /// optimization" step of Section 5.1.3 done exactly.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or contains negative values.
    // Infallible: `lo <= hi` is asserted, so the residue class of `lo`
    // always contributes at least one candidate.
    #[allow(clippy::expect_used)]
    pub fn argmin(&self, range: std::ops::RangeInclusive<i64>) -> (i64, i64) {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty parameter range");
        assert!(lo >= 0, "parameters must be non-negative");
        let m = self.coeffs.len() as i64;
        let mut best: Option<(i64, i64)> = None;
        for res in 0..m {
            // Smallest and largest p in [lo, hi] with p ≡ res (mod m).
            let first = lo + (res - lo).rem_euclid(m);
            if first > hi {
                continue;
            }
            let last = hi - (hi - res).rem_euclid(m);
            for p in [first, last] {
                let v = self.eval(p);
                match best {
                    Some((bp, bv)) if (bv, bp) <= (v, p) => {}
                    _ => best = Some((p, v)),
                }
            }
        }
        best.expect("non-empty range always yields a candidate")
    }
}

impl fmt::Display for QuasiPolynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[p mod {}] -> ", self.coeffs.len())?;
        let shown = self.coeffs.len().min(16);
        for (i, (a, b)) in self.coeffs.iter().take(shown).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if *b == 0 {
                write!(f, "{a}")?;
            } else {
                write!(f, "{a}+{b}p")?;
            }
        }
        if self.coeffs.len() > shown {
            // Infallible: this branch requires `coeffs.len() > shown >= 0`,
            // so the iterator is non-empty.
            #[allow(clippy::unwrap_used)]
            let lo = self.coeffs.iter().map(|(a, _)| a).min().unwrap();
            #[allow(clippy::unwrap_used)]
            let hi = self.coeffs.iter().map(|(a, _)| a).max().unwrap();
            write!(
                f,
                ", … ({} more residues; constants range {lo}..={hi})",
                self.coeffs.len() - shown
            )?;
        }
        Ok(())
    }
}

/// Error returned by [`fit_periodic`] when no quasi-polynomial of any
/// admissible period explains the samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitPeriodicError {
    tried: Vec<usize>,
}

impl fmt::Display for FitPeriodicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no periodic-constant model fits the samples (periods tried: {:?})",
            self.tried
        )
    }
}

impl std::error::Error for FitPeriodicError {}

/// Fits a purely periodic quasi-polynomial to `samples[p] = f(p)` for
/// `p = 0..samples.len()`, trying each candidate period in `periods` in
/// order and returning the first that reproduces every sample.
///
/// Candidate periods for cache problems are the powers of two up to the
/// cache size, since the set-mapping function has that periodicity.
///
/// # Errors
///
/// Returns [`FitPeriodicError`] when no candidate period fits; callers fall
/// back to direct counting (Section 5.1.2 style) in that case.
///
/// # Examples
///
/// ```
/// use cme_math::quasipoly::fit_periodic;
/// let samples = [4, 9, 4, 9, 4, 9, 4, 9];
/// let q = fit_periodic(&samples, &[1, 2, 4]).unwrap();
/// assert_eq!(q.period(), 2);
/// assert_eq!(q.eval(100), 4);
/// ```
pub fn fit_periodic(
    samples: &[i64],
    periods: &[usize],
) -> Result<QuasiPolynomial, FitPeriodicError> {
    for &m in periods {
        if m == 0 || m > samples.len() {
            continue;
        }
        let ok = samples
            .iter()
            .enumerate()
            .all(|(p, &v)| v == samples[p % m]);
        if ok {
            return Ok(QuasiPolynomial::from_constants(samples[..m].to_vec()));
        }
    }
    Err(FitPeriodicError {
        tried: periods.to_vec(),
    })
}

/// Fits a degree-≤1 quasi-polynomial to `samples[p] = f(p)`: per residue
/// class modulo a candidate period, a line `a + b·p` is derived from the
/// first two samples of the class and verified against the rest.
///
/// This is the shape of a genuine 1-parameter Ehrhart quasi-polynomial of
/// a 1-D parametric polytope (count grows linearly with the parameter,
/// with cache-periodic corrections).
///
/// # Errors
///
/// Returns [`FitPeriodicError`] when no candidate period admits a
/// consistent linear model (e.g. the counting function is quadratic).
///
/// # Examples
///
/// ```
/// use cme_math::quasipoly::fit_quasi_linear;
/// // f(p) = 2p + (0 if p even else 5).
/// let samples: Vec<i64> = (0..24).map(|p| 2 * p + if p % 2 == 0 { 0 } else { 5 }).collect();
/// let q = fit_quasi_linear(&samples, &[1, 2, 4]).unwrap();
/// assert_eq!(q.period(), 2);
/// assert_eq!(q.eval(100), 200);
/// assert_eq!(q.eval(101), 207);
/// ```
pub fn fit_quasi_linear(
    samples: &[i64],
    periods: &[usize],
) -> Result<QuasiPolynomial, FitPeriodicError> {
    'periods: for &m in periods {
        if m == 0 || samples.len() < 2 * m {
            continue;
        }
        let mut coeffs = Vec::with_capacity(m);
        for r in 0..m {
            let p0 = r as i64;
            let p1 = (r + m) as i64;
            let (f0, f1) = (samples[r], samples[r + m]);
            if (f1 - f0) % (m as i64) != 0 {
                continue 'periods;
            }
            let b = (f1 - f0) / m as i64;
            let a = f0 - b * p0;
            let _ = p1;
            coeffs.push((a, b));
        }
        let q = QuasiPolynomial::new(coeffs);
        if samples
            .iter()
            .enumerate()
            .all(|(p, &v)| q.eval(p as i64) == v)
        {
            return Ok(q);
        }
    }
    Err(FitPeriodicError {
        tried: periods.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_periodic_linear() {
        // Even p: 1 + p, odd p: 10.
        let q = QuasiPolynomial::new(vec![(1, 1), (10, 0)]);
        assert_eq!(q.eval(0), 1);
        assert_eq!(q.eval(2), 3);
        assert_eq!(q.eval(3), 10);
    }

    #[test]
    fn argmin_prefers_smallest_parameter_on_ties() {
        let q = QuasiPolynomial::from_constants(vec![5, 5, 5, 5]);
        assert_eq!(q.argmin(2..=9), (2, 5));
    }

    #[test]
    fn argmin_scans_residue_endpoints() {
        // f(p) = 100 - p for p ≡ 0 (mod 2); 1000 otherwise: min at largest even p.
        let q = QuasiPolynomial::new(vec![(100, -1), (1000, 0)]);
        assert_eq!(q.argmin(0..=10), (10, 90));
        assert_eq!(q.argmin(0..=9), (8, 92));
    }

    #[test]
    fn fit_recovers_true_period() {
        let samples: Vec<i64> = (0..32).map(|p| [7, 3, 9, 3][p % 4]).collect();
        let q = fit_periodic(&samples, &[1, 2, 4, 8]).unwrap();
        assert_eq!(q.period(), 4);
        for (p, &s) in samples.iter().enumerate() {
            assert_eq!(q.eval(p as i64), s);
        }
    }

    #[test]
    fn fit_fails_cleanly() {
        let samples: Vec<i64> = (0..16).map(|p| p as i64 * p as i64).collect();
        let err = fit_periodic(&samples, &[1, 2, 4]).unwrap_err();
        assert!(err.to_string().contains("no periodic-constant model"));
    }

    #[test]
    fn quasi_linear_recovers_slope_and_period() {
        let f = |p: i64| 3 * p + [1, 7, 4][(p % 3) as usize];
        let samples: Vec<i64> = (0..30).map(f).collect();
        let q = fit_quasi_linear(&samples, &[1, 2, 3, 6]).unwrap();
        assert_eq!(q.period(), 3);
        for p in 0..200 {
            assert_eq!(q.eval(p), f(p));
        }
    }

    #[test]
    fn quasi_linear_rejects_quadratics() {
        let samples: Vec<i64> = (0..20).map(|p| p * p).collect();
        assert!(fit_quasi_linear(&samples, &[1, 2, 4]).is_err());
    }

    #[test]
    fn quasi_linear_subsumes_constant_fits() {
        let samples = vec![5i64; 16];
        let q = fit_quasi_linear(&samples, &[1, 2]).unwrap();
        assert_eq!(q.period(), 1);
        assert_eq!(q.eval(1000), 5);
    }

    #[test]
    fn fit_constant_is_period_one() {
        let q = fit_periodic(&[6, 6, 6, 6], &[1, 2]).unwrap();
        assert_eq!(q.period(), 1);
        assert_eq!(q.eval(12345), 6);
    }
}
