//! Affine expressions `c₀ + Σ cᵢ·xᵢ` over a fixed variable space.
//!
//! Everything the CME framework touches is affine: array subscripts, memory
//! addresses (Equation 1 of the paper), loop bounds, and the `Mem_RA(i⃗)`
//! terms in the replacement equation (Equation 4). An [`Affine`] is a dense
//! coefficient vector plus constant, indexed by variable position — in the
//! loop-nest setting, variable `l` is the `l`-th loop index from the
//! outermost loop.

use crate::interval::Interval;
use std::fmt;

/// An affine expression `constant + Σ coeffs[l] · x_l`.
///
/// # Examples
///
/// ```
/// use cme_math::Affine;
/// // 4192 + 32*i + 1*j over (i, k, j):
/// let addr = Affine::new(vec![32, 0, 1], 4192);
/// assert_eq!(addr.eval(&[1, 9, 2]), 4192 + 32 + 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Affine {
    coeffs: Vec<i64>,
    constant: i64,
}

impl Affine {
    /// Creates an affine expression from per-variable coefficients and a
    /// constant term.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        Affine { coeffs, constant }
    }

    /// The constant expression `c` over `nvars` variables.
    pub fn constant(nvars: usize, c: i64) -> Self {
        Affine {
            coeffs: vec![0; nvars],
            constant: c,
        }
    }

    /// The single-variable expression `x_index` over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `index >= nvars`.
    pub fn var(nvars: usize, index: usize) -> Self {
        assert!(index < nvars, "variable {index} out of range 0..{nvars}");
        let mut coeffs = vec![0; nvars];
        coeffs[index] = 1;
        Affine {
            coeffs,
            constant: 0,
        }
    }

    /// Number of variables in the expression's space.
    pub fn nvars(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficient vector (one entry per variable).
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// The coefficient of variable `index` (0 when out of range).
    pub fn coeff(&self, index: usize) -> i64 {
        self.coeffs.get(index).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Returns `true` when every coefficient is zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Evaluates the expression at a concrete point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.nvars()`.
    pub fn eval(&self, point: &[i64]) -> i64 {
        assert_eq!(
            point.len(),
            self.coeffs.len(),
            "evaluation point has wrong dimension"
        );
        let mut acc = self.constant;
        for (c, x) in self.coeffs.iter().zip(point) {
            acc += c * x;
        }
        acc
    }

    /// Adds two expressions over the same variable space.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, other: &Affine) -> Affine {
        assert_eq!(self.nvars(), other.nvars(), "dimension mismatch in add");
        Affine {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: self.constant + other.constant,
        }
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// Multiplies the expression by a scalar.
    pub fn scale(&self, k: i64) -> Affine {
        Affine {
            coeffs: self.coeffs.iter().map(|c| c * k).collect(),
            constant: self.constant * k,
        }
    }

    /// Adds a constant to the expression.
    pub fn offset(&self, k: i64) -> Affine {
        Affine {
            coeffs: self.coeffs.clone(),
            constant: self.constant + k,
        }
    }

    /// Exact range of the expression over the box `Π [bounds[l].lo, bounds[l].hi]`.
    ///
    /// Because the expression is affine and the domain is a box, the minimum
    /// and maximum are attained at per-variable endpoints chosen by
    /// coefficient sign, so the computed interval is *exact*, not merely an
    /// over-approximation.
    ///
    /// Returns [`Interval::EMPTY`] when any bound is empty.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len() != self.nvars()`.
    pub fn range(&self, bounds: &[Interval]) -> Interval {
        assert_eq!(bounds.len(), self.nvars(), "bounds have wrong dimension");
        let mut lo = self.constant;
        let mut hi = self.constant;
        for (c, b) in self.coeffs.iter().zip(bounds) {
            if b.is_empty() {
                return Interval::EMPTY;
            }
            if *c >= 0 {
                lo += c * b.lo;
                hi += c * b.hi;
            } else {
                lo += c * b.hi;
                hi += c * b.lo;
            }
        }
        Interval::new(lo, hi)
    }

    /// The value difference `self(i⃗) − self(i⃗ − r⃗)` as a constant, which
    /// for an affine expression is `Σ coeffs[l]·r[l]` independent of `i⃗`.
    ///
    /// This is the "address stride along a reuse vector" used when forming
    /// cold-miss equations.
    ///
    /// # Panics
    ///
    /// Panics if `r.len() != self.nvars()`.
    pub fn delta_along(&self, r: &[i64]) -> i64 {
        assert_eq!(r.len(), self.nvars(), "reuse vector has wrong dimension");
        self.coeffs.iter().zip(r).map(|(c, x)| c * x).sum()
    }

    /// Substitutes each variable `x_l` by the affine expression `subs[l]`
    /// (over a possibly different variable space), composing affine maps.
    ///
    /// # Panics
    ///
    /// Panics if `subs.len() != self.nvars()` or the substitute expressions
    /// disagree on dimension.
    pub fn substitute(&self, subs: &[Affine]) -> Affine {
        assert_eq!(subs.len(), self.nvars(), "substitution has wrong arity");
        let target_nvars = subs.first().map(|s| s.nvars()).unwrap_or(0);
        let mut out = Affine::constant(target_nvars, self.constant);
        for (c, s) in self.coeffs.iter().zip(subs) {
            assert_eq!(s.nvars(), target_nvars, "mixed substitute dimensions");
            out = out.add(&s.scale(*c));
        }
        out
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (l, c) in self.coeffs.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if wrote {
                write!(f, " {} ", if *c < 0 { "-" } else { "+" })?;
            } else if *c < 0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            if a == 1 {
                write!(f, "x{l}")?;
            } else {
                write!(f, "{a}*x{l}")?;
            }
            wrote = true;
        }
        if self.constant != 0 || !wrote {
            if wrote {
                write!(
                    f,
                    " {} {}",
                    if self.constant < 0 { "-" } else { "+" },
                    self.constant.abs()
                )?;
            } else {
                write!(f, "{}", self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_and_arith() {
        let a = Affine::new(vec![2, -1], 5);
        let b = Affine::new(vec![1, 1], -3);
        assert_eq!(a.eval(&[3, 4]), 7);
        assert_eq!(a.add(&b).eval(&[3, 4]), 7 + 4);
        assert_eq!(a.sub(&b).eval(&[3, 4]), 7 - 4);
        assert_eq!(a.scale(3).eval(&[3, 4]), 21);
        assert_eq!(a.offset(-5).eval(&[3, 4]), 2);
    }

    #[test]
    fn constructors() {
        assert!(Affine::constant(3, 7).is_constant());
        assert_eq!(Affine::var(3, 1).eval(&[9, 4, 2]), 4);
        assert_eq!(Affine::var(2, 0).coeff(0), 1);
        assert_eq!(Affine::var(2, 0).coeff(5), 0);
    }

    #[test]
    fn range_is_exact_on_small_box() {
        let e = Affine::new(vec![3, -2], 1);
        let bounds = [Interval::new(0, 4), Interval::new(-1, 2)];
        let r = e.range(&bounds);
        let mut actual = Interval::EMPTY;
        for x in 0..=4 {
            for y in -1..=2 {
                actual = actual.hull(&Interval::point(e.eval(&[x, y])));
            }
        }
        assert_eq!(r, actual);
    }

    #[test]
    fn range_empty_box() {
        let e = Affine::new(vec![1], 0);
        assert!(e.range(&[Interval::EMPTY]).is_empty());
    }

    #[test]
    fn delta_along_reuse_vector() {
        // addr = 32 i + j: along r = (0, 1, -7) over (i,k,j) with addr
        // coefficients (32, 0, 1) the delta is -7 + 0 + 0 ... use coherent dims.
        let addr = Affine::new(vec![32, 0, 1], 4192);
        assert_eq!(addr.delta_along(&[0, 1, 0]), 0);
        assert_eq!(addr.delta_along(&[0, 0, 1]), 1);
        assert_eq!(addr.delta_along(&[0, 1, -7]), -7);
    }

    #[test]
    fn substitution_composes() {
        // e(x0, x1) = 2 x0 + 3 x1 + 1; x0 := y0 + 1, x1 := 2 y1
        let e = Affine::new(vec![2, 3], 1);
        let subs = [Affine::new(vec![1, 0], 1), Affine::new(vec![0, 2], 0)];
        let g = e.substitute(&subs);
        for y0 in -3..3 {
            for y1 in -3..3 {
                assert_eq!(g.eval(&[y0, y1]), e.eval(&[y0 + 1, 2 * y1]));
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Affine::new(vec![1, -2], 0).to_string(), "x0 - 2*x1");
        assert_eq!(Affine::new(vec![0, 0], -4).to_string(), "-4");
        assert_eq!(Affine::new(vec![-1, 0], 3).to_string(), "-x0 + 3");
        assert_eq!(Affine::constant(0, 0).to_string(), "0");
    }

    proptest! {
        #[test]
        fn prop_range_contains_samples(
            c0 in -5i64..5, c1 in -5i64..5, k in -20i64..20,
            lo0 in -10i64..10, w0 in 0i64..6,
            lo1 in -10i64..10, w1 in 0i64..6,
            s0 in 0i64..6, s1 in 0i64..6,
        ) {
            let e = Affine::new(vec![c0, c1], k);
            let b = [Interval::new(lo0, lo0 + w0), Interval::new(lo1, lo1 + w1)];
            let x = lo0 + s0 % (w0 + 1);
            let y = lo1 + s1 % (w1 + 1);
            prop_assert!(e.range(&b).contains(e.eval(&[x, y])));
        }
    }
}
