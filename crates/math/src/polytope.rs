//! Exact lattice-point counting for systems of linear constraints — the
//! role played by the Omega test and Ehrhart-polynomial engines [6, 18, 19]
//! in the paper's Section 5.1.2 ("Using Solution Counting Engines").
//!
//! A [`Polytope`] is a conjunction of integer linear inequalities
//! `Σ c·x ≤ b` (equalities are stored as inequality pairs) over a fixed
//! variable space. Counting proceeds by depth-first assignment with
//! **interval-propagated bound tightening**: at each level, every
//! constraint involving the current variable yields a bound once the
//! already-fixed prefix is substituted and the still-free suffix is
//! relaxed to its interval hull. For the equation-dominated systems CMEs
//! produce, this prunes the search to the solutions themselves — the DFS
//! touches no more nodes than solutions-times-depth plus the dead branches
//! cut at the first infeasible level.

use crate::interval::Interval;
use std::fmt;

/// A conjunction of linear constraints over `n` integer variables, counted
/// inside an enclosing box (the loop bounds, in CME use).
///
/// # Examples
///
/// ```
/// use cme_math::polytope::Polytope;
/// use cme_math::Interval;
///
/// // x + y <= 4,  x - y == 1,  0 <= x,y <= 10.
/// let mut p = Polytope::new(2);
/// p.le(vec![1, 1], 4);
/// p.eq_to(vec![1, -1], 1);
/// let bounds = [Interval::new(0, 10), Interval::new(0, 10)];
/// // Solutions: (1,0), (2,1) — (3,2) violates x+y<=4... check: 3+2=5>4. So 2.
/// assert_eq!(p.count_points(&bounds), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polytope {
    n: usize,
    /// Constraints `coeffs · x <= rhs`.
    cons: Vec<(Vec<i64>, i64)>,
}

impl Polytope {
    /// An unconstrained polytope over `n` variables.
    pub fn new(n: usize) -> Self {
        Polytope {
            n,
            cons: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.n
    }

    /// Number of stored inequalities.
    pub fn len(&self) -> usize {
        self.cons.len()
    }

    /// `true` when no constraints have been added.
    pub fn is_empty(&self) -> bool {
        self.cons.is_empty()
    }

    /// The stored constraints, each `(coeffs, rhs)` meaning
    /// `coeffs · x <= rhs`, in insertion order — the exact solve input, used
    /// by [`crate::memo::SolveMemo`] as a cache key.
    pub fn rows(&self) -> impl Iterator<Item = (&[i64], i64)> {
        self.cons.iter().map(|(c, b)| (c.as_slice(), *b))
    }

    /// Adds `coeffs · x <= rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != nvars`.
    pub fn le(&mut self, coeffs: Vec<i64>, rhs: i64) -> &mut Self {
        assert_eq!(coeffs.len(), self.n, "constraint arity mismatch");
        self.cons.push((coeffs, rhs));
        self
    }

    /// Adds `coeffs · x >= rhs`.
    pub fn ge(&mut self, coeffs: Vec<i64>, rhs: i64) -> &mut Self {
        let neg: Vec<i64> = coeffs.iter().map(|c| -c).collect();
        self.le(neg, -rhs)
    }

    /// Adds `coeffs · x == rhs` (as an inequality pair).
    pub fn eq_to(&mut self, coeffs: Vec<i64>, rhs: i64) -> &mut Self {
        self.le(coeffs.clone(), rhs);
        self.ge(coeffs, rhs)
    }

    /// Tests a concrete point against all constraints.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != nvars`.
    pub fn contains(&self, point: &[i64]) -> bool {
        assert_eq!(point.len(), self.n, "point arity mismatch");
        self.cons
            .iter()
            .all(|(c, b)| c.iter().zip(point).map(|(a, x)| a * x).sum::<i64>() <= *b)
    }

    /// Exact number of integer points satisfying every constraint inside
    /// the box.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len() != nvars`.
    pub fn count_points(&self, bounds: &[Interval]) -> u64 {
        let mut count = 0u64;
        self.walk(bounds, &mut |_| {
            count += 1;
            true
        });
        count
    }

    /// Whether at least one integer point exists inside the box.
    pub fn is_feasible(&self, bounds: &[Interval]) -> bool {
        let mut found = false;
        self.walk(bounds, &mut |_| {
            found = true;
            false
        });
        found
    }

    /// Visits every solution in lexicographic order; `visit` returns
    /// `false` to stop early.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len() != nvars`.
    pub fn for_each_point(&self, bounds: &[Interval], mut visit: impl FnMut(&[i64]) -> bool) {
        self.walk(bounds, &mut visit);
    }

    fn walk(&self, bounds: &[Interval], visit: &mut dyn FnMut(&[i64]) -> bool) {
        assert_eq!(bounds.len(), self.n, "bounds arity mismatch");
        if bounds.iter().any(Interval::is_empty) {
            return;
        }
        if self.n == 0 {
            if self.cons.iter().all(|(_, b)| *b >= 0) {
                visit(&[]);
            }
            return;
        }
        let mut point = vec![0i64; self.n];
        self.dfs(0, bounds, &mut point, visit);
    }

    /// Returns `false` when the visitor asked to stop.
    fn dfs(
        &self,
        level: usize,
        bounds: &[Interval],
        point: &mut Vec<i64>,
        visit: &mut dyn FnMut(&[i64]) -> bool,
    ) -> bool {
        // Tighten the current variable's range with every constraint.
        let mut lo = bounds[level].lo;
        let mut hi = bounds[level].hi;
        for (coeffs, rhs) in &self.cons {
            let c = coeffs[level];
            // Fixed prefix contribution.
            let fixed: i64 = coeffs[..level]
                .iter()
                .zip(&point[..level])
                .map(|(a, x)| a * x)
                .sum();
            // Interval hull of the free suffix (variables after `level`).
            let mut suffix = Interval::point(0);
            for (l, &a) in coeffs.iter().enumerate().skip(level + 1) {
                if a != 0 {
                    suffix = suffix + bounds[l] * a;
                }
            }
            // fixed + c·x + suffix <= rhs must be satisfiable:
            // c·x <= rhs - fixed - suffix.lo.
            let slack = rhs - fixed - suffix.lo;
            if c == 0 {
                if slack < 0 {
                    return true; // infeasible branch, keep searching siblings
                }
            } else if c > 0 {
                hi = hi.min(crate::gcd::floor_div(slack, c));
            } else {
                lo = lo.max(-crate::gcd::floor_div(slack, -c));
            }
        }
        if lo > hi {
            return true;
        }
        if level + 1 == self.n {
            for x in lo..=hi {
                point[level] = x;
                // Final exact check (suffix relaxation is exact here, but a
                // zero-coefficient constraint may still bind).
                if self.contains(point) && !visit(point) {
                    return false;
                }
            }
            return true;
        }
        for x in lo..=hi {
            point[level] = x;
            if !self.dfs(level + 1, bounds, point, visit) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Polytope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (c, b)) in self.cons.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            let mut wrote = false;
            for (l, &a) in c.iter().enumerate() {
                if a == 0 {
                    continue;
                }
                if wrote {
                    write!(f, " {} ", if a < 0 { "-" } else { "+" })?;
                } else if a < 0 {
                    write!(f, "-")?;
                }
                if a.abs() == 1 {
                    write!(f, "x{l}")?;
                } else {
                    write!(f, "{}*x{l}", a.abs())?;
                }
                wrote = true;
            }
            if !wrote {
                write!(f, "0")?;
            }
            write!(f, " <= {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_count(p: &Polytope, bounds: &[Interval]) -> u64 {
        fn rec(p: &Polytope, bounds: &[Interval], point: &mut Vec<i64>, level: usize) -> u64 {
            if level == bounds.len() {
                return u64::from(p.contains(point));
            }
            let mut n = 0;
            for x in bounds[level].lo..=bounds[level].hi {
                point[level] = x;
                n += rec(p, bounds, point, level + 1);
            }
            n
        }
        let mut point = vec![0i64; bounds.len()];
        rec(p, bounds, &mut point, 0)
    }

    #[test]
    fn doc_example() {
        let mut p = Polytope::new(2);
        p.le(vec![1, 1], 4);
        p.eq_to(vec![1, -1], 1);
        let bounds = [Interval::new(0, 10), Interval::new(0, 10)];
        assert_eq!(p.count_points(&bounds), 2);
        assert!(p.is_feasible(&bounds));
        assert!(p.contains(&[1, 0]));
        assert!(!p.contains(&[3, 3]));
    }

    #[test]
    fn unconstrained_counts_the_box() {
        let p = Polytope::new(3);
        let b = [
            Interval::new(0, 2),
            Interval::new(-1, 1),
            Interval::new(5, 5),
        ];
        assert_eq!(p.count_points(&b), 9);
    }

    #[test]
    fn empty_box_and_infeasible_systems() {
        let mut p = Polytope::new(1);
        p.le(vec![1], -1).ge(vec![1], 1);
        assert_eq!(p.count_points(&[Interval::new(-10, 10)]), 0);
        assert!(!p.is_feasible(&[Interval::new(-10, 10)]));
        let q = Polytope::new(1);
        assert_eq!(q.count_points(&[Interval::EMPTY]), 0);
    }

    #[test]
    fn zero_vars() {
        let p = Polytope::new(0);
        assert_eq!(p.count_points(&[]), 1);
    }

    #[test]
    fn for_each_visits_in_lex_order_and_stops() {
        let mut p = Polytope::new(2);
        p.le(vec![1, 1], 2);
        let b = [Interval::new(0, 2), Interval::new(0, 2)];
        let mut pts = Vec::new();
        p.for_each_point(&b, |q| {
            pts.push(q.to_vec());
            true
        });
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![2, 0]
            ]
        );
        let mut seen = 0;
        p.for_each_point(&b, |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn diophantine_style_equation() {
        // The Eq. 4 shape: a - b - 512 n == delta with a, b in ranges,
        // n != 0 handled as two disjoint polytopes.
        let count_with = |n_sign: i64| -> u64 {
            let mut p = Polytope::new(3); // (a, b, n)
            p.eq_to(vec![1, -1, -512], 0);
            if n_sign > 0 {
                p.ge(vec![0, 0, 1], 1);
            } else {
                p.le(vec![0, 0, 1], -1);
            }
            p.count_points(&[
                Interval::new(4192, 4192 + 1023),
                Interval::new(2136, 2136 + 1023),
                Interval::new(-8, 8),
            ])
        };
        let total = count_with(1) + count_with(-1);
        // Brute-force cross-check.
        let mut brute = 0u64;
        for a in 4192..4192 + 1024 {
            for n in -8i64..=8 {
                if n == 0 {
                    continue;
                }
                let b = a - 512 * n;
                if (2136..2136 + 1024).contains(&b) {
                    brute += 1;
                }
            }
        }
        assert_eq!(total, brute);
        assert!(total > 0);
    }

    proptest! {
        #[test]
        fn prop_count_matches_brute_force(
            n_cons in 0usize..4,
            coeffs in proptest::collection::vec(-3i64..=3, 12),
            rhs in proptest::collection::vec(-6i64..=6, 4),
            eq_mask in 0u8..16,
        ) {
            let mut p = Polytope::new(3);
            for k in 0..n_cons {
                let c = coeffs[k * 3..k * 3 + 3].to_vec();
                if eq_mask & (1 << k) != 0 {
                    p.eq_to(c, rhs[k]);
                } else {
                    p.le(c, rhs[k]);
                }
            }
            let bounds = [
                Interval::new(-3, 3),
                Interval::new(0, 4),
                Interval::new(-2, 2),
            ];
            prop_assert_eq!(p.count_points(&bounds), brute_count(&p, &bounds));
            prop_assert_eq!(p.is_feasible(&bounds), brute_count(&p, &bounds) > 0);
        }
    }
}
