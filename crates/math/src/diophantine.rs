//! Linear Diophantine equations: solvability, general solutions, counting.
//!
//! Cache Miss Equations *are* linear Diophantine equations in constrained
//! solution spaces (Section 2.2 of the paper). The paper deliberately avoids
//! *solving* them, instead using:
//!
//! 1. **Solvability tests** — `ax + by = c` has a solution iff
//!    `gcd(a, b) | c`; the padding conditions 1–4 are built from this.
//! 2. **Solution counting** over bounded boxes — the "solution counting
//!    engine" role played by Omega/Ehrhart tools in the paper [6, 19].
//!
//! This module provides both, exactly, for the bounded spaces that arise
//! from loop nests.

use crate::gcd::{extended_gcd, gcd, gcd_all};
use crate::interval::Interval;

/// A single linear Diophantine equation `Σ coeffs[l]·x_l = rhs` with the
/// solution constrained to the box `Π bounds[l]`.
///
/// # Examples
///
/// ```
/// use cme_math::diophantine::BoundedDiophantine;
/// use cme_math::Interval;
///
/// // x - 2y = 1 with x,y in [0,5]: solutions (1,0),(3,1),(5,2).
/// let eq = BoundedDiophantine::new(
///     vec![1, -2],
///     1,
///     vec![Interval::new(0, 5), Interval::new(0, 5)],
/// );
/// assert_eq!(eq.count_solutions(), 3);
/// assert!(eq.is_solvable_unbounded());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedDiophantine {
    coeffs: Vec<i64>,
    rhs: i64,
    bounds: Vec<Interval>,
}

impl BoundedDiophantine {
    /// Creates a bounded equation `Σ coeffs[l]·x_l = rhs`, `x_l ∈ bounds[l]`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != bounds.len()`.
    pub fn new(coeffs: Vec<i64>, rhs: i64, bounds: Vec<Interval>) -> Self {
        assert_eq!(coeffs.len(), bounds.len(), "coeff/bound arity mismatch");
        BoundedDiophantine {
            coeffs,
            rhs,
            bounds,
        }
    }

    /// The coefficient vector.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// The right-hand side.
    pub fn rhs(&self) -> i64 {
        self.rhs
    }

    /// The per-variable bounds.
    pub fn bounds(&self) -> &[Interval] {
        &self.bounds
    }

    /// Ignoring the bounds, does the equation have *any* integer solution?
    ///
    /// True iff `gcd(coeffs) | rhs` (with the convention that the empty/all
    /// zero gcd `0` divides only `0`).
    pub fn is_solvable_unbounded(&self) -> bool {
        let g = gcd_all(&self.coeffs);
        if g == 0 {
            self.rhs == 0
        } else {
            self.rhs % g == 0
        }
    }

    /// Exact number of solutions inside the box.
    ///
    /// Complexity: product of the bound widths of all variables except the
    /// last (which is solved for directly), so order variables with the
    /// largest range last when constructing performance-sensitive queries.
    pub fn count_solutions(&self) -> u64 {
        if self.bounds.iter().any(Interval::is_empty) {
            return 0;
        }
        if !self.is_solvable_unbounded() {
            return 0;
        }
        match self.coeffs.len() {
            0 => u64::from(self.rhs == 0),
            _ => self.count_rec(0, i128::from(self.rhs)),
        }
    }

    // `remaining` is tracked in i128: the running value `rhs − Σ c·x` over
    // adversarial coefficients/bounds can exceed i64 even when every
    // individual solution fits, and a debug-build overflow abort here would
    // defeat the engine's panic-free guarantee.
    fn count_rec(&self, var: usize, remaining: i128) -> u64 {
        let b = self.bounds[var];
        let c = i128::from(self.coeffs[var]);
        if var + 1 == self.coeffs.len() {
            // Solve c * x = remaining within b.
            if c == 0 {
                return if remaining == 0 { b.len() } else { 0 };
            }
            if remaining % c != 0 {
                return 0;
            }
            let x = remaining / c;
            return u64::from(i64::try_from(x).is_ok_and(|x| b.contains(x)));
        }
        // Prune: can the suffix plus this variable reach `remaining` at all?
        let mut total = 0;
        for x in b.lo..=b.hi {
            total += self.count_rec(var + 1, remaining - c * i128::from(x));
        }
        total
    }

    /// Enumerates all solutions inside the box (for tests/small spaces).
    pub fn solutions(&self) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        if self.bounds.iter().any(Interval::is_empty) {
            return out;
        }
        let mut point = Vec::with_capacity(self.coeffs.len());
        self.enumerate_rec(0, i128::from(self.rhs), &mut point, &mut out);
        out
    }

    fn enumerate_rec(
        &self,
        var: usize,
        remaining: i128,
        point: &mut Vec<i64>,
        out: &mut Vec<Vec<i64>>,
    ) {
        if var == self.coeffs.len() {
            if remaining == 0 {
                out.push(point.clone());
            }
            return;
        }
        let b = self.bounds[var];
        let c = i128::from(self.coeffs[var]);
        if var + 1 == self.coeffs.len() && c != 0 {
            if remaining % c == 0 {
                if let Ok(x) = i64::try_from(remaining / c) {
                    if b.contains(x) {
                        point.push(x);
                        out.push(point.clone());
                        point.pop();
                    }
                }
            }
            return;
        }
        for x in b.lo..=b.hi {
            point.push(x);
            self.enumerate_rec(var + 1, remaining - c * i128::from(x), point, out);
            point.pop();
        }
    }
}

/// Solves `a·x + b·y = c` over unrestricted integers.
///
/// Returns `None` when there is no solution (`gcd(a,b) ∤ c`), otherwise one
/// particular solution `(x₀, y₀)`; the general solution is
/// `(x₀ + t·b/g, y₀ − t·a/g)` for all integers `t`, `g = gcd(a, b)`.
///
/// # Examples
///
/// ```
/// use cme_math::diophantine::solve_two_var;
/// let (x, y) = solve_two_var(6, 10, 8).unwrap();
/// assert_eq!(6 * x + 10 * y, 8);
/// assert!(solve_two_var(6, 10, 7).is_none());
/// ```
pub fn solve_two_var(a: i64, b: i64, c: i64) -> Option<(i64, i64)> {
    if a == 0 && b == 0 {
        return if c == 0 { Some((0, 0)) } else { None };
    }
    let (g, x, y) = extended_gcd(a, b);
    if c % g != 0 {
        return None;
    }
    // Scale the Bezout certificate in i128 — `x * (c / g)` can overflow
    // i64 even when a small solution exists — then canonically reduce
    // `x₀` into `[0, |b/g|)` along the solution lattice so the returned
    // pair is the minimal-x solution and always representable.
    let k = i128::from(c / g);
    let mut x0 = i128::from(x) * k;
    let mut y0 = i128::from(y) * k;
    if b != 0 {
        let dx = i128::from(b / g); // general solution: (x0 + t·dx, y0 − t·dy⁻)
        let da = i128::from(a / g);
        let r = x0.rem_euclid(dx.abs());
        let t = (r - x0) / dx;
        x0 = r;
        y0 -= t * da;
    }
    // |x₀| < |b/g| and |y₀| = |(c − a·x₀)/b| ≤ max(|a|, |c|), so both fit.
    Some((i64::try_from(x0).ok()?, i64::try_from(y0).ok()?))
}

/// Counts solutions of `a·x + b·y = c` with `x ∈ [xb.0, xb.1]`,
/// `y ∈ [yb.0, yb.1]`, in closed form (no enumeration).
///
/// # Examples
///
/// ```
/// use cme_math::diophantine::count_two_var_solutions;
/// // 2x + 3y = 12, x in [0,6], y in [0,4]: (0,4),(3,2),(6,0).
/// assert_eq!(count_two_var_solutions(2, 3, 12, (0, 6), (0, 4)), 3);
/// ```
pub fn count_two_var_solutions(a: i64, b: i64, c: i64, xb: (i64, i64), yb: (i64, i64)) -> u64 {
    let (xlo, xhi) = xb;
    let (ylo, yhi) = yb;
    if xlo > xhi || ylo > yhi {
        return 0;
    }
    // Interval widths are computed in i128: `xhi − xlo + 1` overflows i64
    // on full-range bounds, and a saturated count is still sound.
    let width = |lo: i64, hi: i64| -> u64 {
        u64::try_from(i128::from(hi) - i128::from(lo) + 1).unwrap_or(u64::MAX)
    };
    if a == 0 && b == 0 {
        return if c == 0 {
            width(xlo, xhi).saturating_mul(width(ylo, yhi))
        } else {
            0
        };
    }
    if a == 0 {
        if c % b != 0 {
            return 0;
        }
        let y = c / b;
        return if (ylo..=yhi).contains(&y) {
            width(xlo, xhi)
        } else {
            0
        };
    }
    if b == 0 {
        if c % a != 0 {
            return 0;
        }
        let x = c / a;
        return if (xlo..=xhi).contains(&x) {
            width(ylo, yhi)
        } else {
            0
        };
    }
    let Some((x0, y0)) = solve_two_var(a, b, c) else {
        return 0;
    };
    let g = gcd(a, b);
    let (dx, dy) = (i128::from(b / g), i128::from(-(a / g)));
    // Solutions: (x0 + t*dx, y0 + t*dy). Count integer t in both windows,
    // in i128 — `lo − v0` spans up to twice the i64 range.
    let t_range_for = |v0: i64, dv: i128, lo: i64, hi: i64| -> Option<(i128, i128)> {
        if dv == 0 {
            return if (lo..=hi).contains(&v0) {
                Some((i128::MIN / 4, i128::MAX / 4))
            } else {
                None
            };
        }
        // lo <= v0 + t*dv <= hi
        let a1 = i128::from(lo) - i128::from(v0);
        let a2 = i128::from(hi) - i128::from(v0);
        if dv > 0 {
            Some((ceil_div_i128(a1, dv), floor_div_i128(a2, dv)))
        } else {
            Some((ceil_div_i128(a2, dv), floor_div_i128(a1, dv)))
        }
    };
    let Some((t1lo, t1hi)) = t_range_for(x0, dx, xlo, xhi) else {
        return 0;
    };
    let Some((t2lo, t2hi)) = t_range_for(y0, dy, ylo, yhi) else {
        return 0;
    };
    let lo = t1lo.max(t2lo);
    let hi = t1hi.min(t2hi);
    if lo > hi {
        0
    } else {
        u64::try_from(hi - lo + 1).unwrap_or(u64::MAX)
    }
}

fn floor_div_i128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn ceil_div_i128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Finds one integer solution of the single linear form
/// `Σ coeffs[l]·x_l = rhs`, or `None` iff `gcd(coeffs) ∤ rhs`.
///
/// Unlike [`crate::IntMatrix::solve`]'s free-variables-zero heuristic, this
/// always succeeds when a solution exists (classical iterated extended
/// GCD), and it prefers putting weight on coefficients of magnitude 1 so
/// solutions stay small for typical address forms. The one exception:
/// when the certificate arithmetic would overflow `i64`/`i128` on
/// adversarial coefficients, `None` is returned rather than aborting —
/// callers already treat `None` conservatively (a dropped reuse vector is
/// a sound overcount).
///
/// # Examples
///
/// ```
/// use cme_math::diophantine::solve_linear_form;
/// let x = solve_linear_form(&[256, 0, 1], 7).unwrap();
/// assert_eq!(256 * x[0] + x[2], 7);
/// assert!(solve_linear_form(&[4, 6], 3).is_none());
/// ```
pub fn solve_linear_form(coeffs: &[i64], rhs: i64) -> Option<Vec<i64>> {
    let g = gcd_all(coeffs);
    if g == 0 {
        return if rhs == 0 {
            Some(vec![0; coeffs.len()])
        } else {
            None
        };
    }
    if rhs % g != 0 {
        return None;
    }
    // Fast path: a ±1 coefficient absorbs everything.
    if let Some(l) = coeffs.iter().position(|&c| c == 1 || c == -1) {
        let mut x = vec![0i64; coeffs.len()];
        x[l] = rhs * coeffs[l].signum();
        return Some(x);
    }
    // General: fold coefficients with extended GCD, then back-propagate.
    // Maintain running g_i = gcd(coeffs[..=i]) with certificate vectors.
    // Certificates are built with checked i128 arithmetic: their entries are
    // products of Bezout coefficients and can grow multiplicatively, and an
    // unrepresentable certificate must surface as `None`, not an abort.
    let mut cert: Vec<Vec<i128>> = Vec::with_capacity(coeffs.len()); // cert[i]: coeffs·cert[i] = g_i
    let mut g_run = 0i64;
    for (i, &c) in coeffs.iter().enumerate() {
        let (g_new, a, b) = extended_gcd(g_run, c);
        // g_new = a·g_run + b·c.
        let mut v = vec![0i128; coeffs.len()];
        if let Some(prev) = cert.last() {
            for (vl, pl) in v.iter_mut().zip(prev) {
                *vl = i128::from(a).checked_mul(*pl)?;
            }
        }
        v[i] = v[i].checked_add(i128::from(b))?;
        cert.push(v);
        g_run = g_new;
    }
    let scale = i128::from(rhs / g_run);
    let mut x = vec![0i64; coeffs.len()];
    if let Some(last) = cert.last() {
        for (xl, cl) in x.iter_mut().zip(last) {
            *xl = i64::try_from(cl.checked_mul(scale)?).ok()?;
        }
    }
    debug_assert_eq!(
        coeffs
            .iter()
            .zip(&x)
            .map(|(&c, &v)| i128::from(c) * i128::from(v))
            .sum::<i128>(),
        i128::from(rhs),
        "linear-form solver produced a non-solution"
    );
    Some(x)
}

/// Ceiling division `a / b` for `b != 0` (rounds toward positive infinity).
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn ceil_div(a: i64, b: i64) -> i64 {
    assert!(b != 0, "ceil_div by zero");
    // Compute in i128: the sign-normalizing negations overflow on
    // `i64::MIN`, and `i64::MIN / -1` is unrepresentable (saturated).
    let q = ceil_div_i128(i128::from(a), i128::from(b));
    i64::try_from(q).unwrap_or(i64::MAX)
}

/// Padding-style unsolvability test for
/// `A·u − n·W = v`, `n ≠ 0`, `u ∈ u_range`, `v ∈ v_range` (Equation 6 form:
/// `C(δf + c − d) − n·Cs = b − (δf₀ + c′ − d′)`).
///
/// Returns `true` when the equation **provably has no solution** under the
/// paper's two sufficient conditions:
///
/// 1. `gcd(A, W) > max |v|` — every achievable left side is a multiple of
///    the gcd, which is larger in magnitude than any achievable right side,
///    so only `0 = 0` could match; and
/// 2. when the right side can be zero, `A·u ≡ 0 (mod gcd)` with
///    `gcd(A, W) < W / max|u|` forces `n = 0`, which is excluded.
///
/// `w` must be positive (it is `Cs` or `Cs/k`).
///
/// # Panics
///
/// Panics if `w <= 0`.
pub fn type1_has_no_solution(a: i64, w: i64, u_range: Interval, v_range: Interval) -> bool {
    assert!(w > 0, "cache-size term must be positive");
    if u_range.is_empty() || v_range.is_empty() {
        return true;
    }
    let g = gcd(a, w);
    let max_v = v_range.max_abs();
    // Condition 1: gcd(A, W) > max |v|  =>  lhs multiple-of-g can only equal
    // rhs when both are 0.
    if g <= max_v {
        return false;
    }
    if v_range.contains(0) {
        // Condition 2: exclude A·u = n·W with n ≠ 0. Dividing by
        // g = gcd(A, W) gives (A/g)·u = n·(W/g) with the cofactors coprime,
        // so (W/g) | u; then |u| <= max|u| < W/g forces u = 0 and n = 0.
        // `g · max|u| < W` is exactly the paper's `gcd(C, Cs) < Cs/max|δf|`.
        let max_u = if a == 0 { 0 } else { u_range.max_abs() };
        if max_u == 0 {
            return true; // lhs is -n·W with |n| >= 1, so |lhs| >= W > 0 = rhs.
        }
        return i128::from(g) * i128::from(max_u) < i128::from(w);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_count(a: i64, b: i64, c: i64, xb: (i64, i64), yb: (i64, i64)) -> u64 {
        let mut n = 0;
        for x in xb.0..=xb.1 {
            for y in yb.0..=yb.1 {
                if a * x + b * y == c {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn solve_two_var_basics() {
        assert_eq!(solve_two_var(0, 0, 0), Some((0, 0)));
        assert_eq!(solve_two_var(0, 0, 3), None);
        let (x, y) = solve_two_var(4, 6, 10).unwrap();
        assert_eq!(4 * x + 6 * y, 10);
        assert!(solve_two_var(4, 6, 9).is_none());
    }

    #[test]
    fn count_matches_brute_force_examples() {
        assert_eq!(
            count_two_var_solutions(2, 3, 12, (0, 6), (0, 4)),
            brute_count(2, 3, 12, (0, 6), (0, 4))
        );
        assert_eq!(
            count_two_var_solutions(1, -2, 1, (0, 5), (0, 5)),
            brute_count(1, -2, 1, (0, 5), (0, 5))
        );
        assert_eq!(count_two_var_solutions(0, 0, 0, (0, 2), (0, 3)), 12);
        assert_eq!(count_two_var_solutions(0, 0, 1, (0, 2), (0, 3)), 0);
        assert_eq!(count_two_var_solutions(0, 5, 10, (1, 3), (0, 9)), 3);
        assert_eq!(count_two_var_solutions(5, 0, 10, (0, 9), (1, 3)), 3);
    }

    #[test]
    fn bounded_equation_counting() {
        let eq = BoundedDiophantine::new(
            vec![1, -2],
            1,
            vec![Interval::new(0, 5), Interval::new(0, 5)],
        );
        assert_eq!(eq.count_solutions(), 3);
        assert_eq!(eq.solutions(), vec![vec![1, 0], vec![3, 1], vec![5, 2]]);
    }

    #[test]
    fn bounded_equation_three_vars() {
        // x + y + z = 3 in [0,3]^3: C(3+2,2) = 10 solutions.
        let eq = BoundedDiophantine::new(vec![1, 1, 1], 3, vec![Interval::new(0, 3); 3]);
        assert_eq!(eq.count_solutions(), 10);
        assert_eq!(eq.solutions().len(), 10);
    }

    #[test]
    fn bounded_unsolvable_by_gcd() {
        let eq = BoundedDiophantine::new(vec![2, 4], 5, vec![Interval::new(-100, 100); 2]);
        assert!(!eq.is_solvable_unbounded());
        assert_eq!(eq.count_solutions(), 0);
    }

    #[test]
    fn bounded_empty_domain() {
        let eq = BoundedDiophantine::new(vec![1], 0, vec![Interval::EMPTY]);
        assert_eq!(eq.count_solutions(), 0);
        assert!(eq.solutions().is_empty());
    }

    #[test]
    fn bounded_zero_vars() {
        assert_eq!(
            BoundedDiophantine::new(vec![], 0, vec![]).count_solutions(),
            1
        );
        assert_eq!(
            BoundedDiophantine::new(vec![], 2, vec![]).count_solutions(),
            0
        );
    }

    #[test]
    fn ceil_div_cases() {
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(7, -2), -3);
        assert_eq!(ceil_div(8, 2), 4);
    }

    #[test]
    fn type1_no_solution_examples() {
        // C(δf) − n·Cs = v with gcd(C, Cs) = 512 > max|v| = 7 and the
        // zero-rhs case guarded: C = 512, Cs = 2048, |δf| <= 3 => |C·δf| <= 1536 < 2048.
        assert!(type1_has_no_solution(
            512,
            2048,
            Interval::new(-3, 3),
            Interval::new(-7, 7)
        ));
        // gcd too small: C = 96 (gcd with 2048 is 32) vs max|v| = 33.
        assert!(!type1_has_no_solution(
            96,
            2048,
            Interval::new(-3, 3),
            Interval::new(-33, 33)
        ));
    }

    #[test]
    fn type1_agrees_with_enumeration() {
        // Exhaustively verify: whenever the test says "no solution", brute
        // force over a generous window finds none.
        for a in [16i64, 24, 32, 40, 64] {
            for w in [64i64, 128] {
                for umax in 0..4i64 {
                    for vmax in 0..9i64 {
                        let u = Interval::new(-umax, umax);
                        let v = Interval::new(-vmax, vmax);
                        if type1_has_no_solution(a, w, u, v) {
                            for uu in u.lo..=u.hi {
                                for n in -8i64..=8 {
                                    if n == 0 {
                                        continue;
                                    }
                                    let lhs = a * uu - n * w;
                                    assert!(
                                        !v.contains(lhs),
                                        "false no-solution claim: a={a} w={w} u={uu} n={n} lhs={lhs} v={v}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn linear_form_basics() {
        assert_eq!(solve_linear_form(&[], 0), Some(vec![]));
        assert_eq!(solve_linear_form(&[], 1), None);
        assert_eq!(solve_linear_form(&[0, 0], 0), Some(vec![0, 0]));
        assert_eq!(solve_linear_form(&[0, 0], 2), None);
        let x = solve_linear_form(&[6, 10, 15], 1).unwrap();
        assert_eq!(6 * x[0] + 10 * x[1] + 15 * x[2], 1);
        assert_eq!(solve_linear_form(&[6, 10], 1), None);
        // Unit-coefficient fast path keeps everything else zero.
        assert_eq!(solve_linear_form(&[256, 1, 0], -7), Some(vec![0, -7, 0]));
        assert_eq!(solve_linear_form(&[256, -1, 0], 7), Some(vec![0, -7, 0]));
    }

    /// Explicit replay of the counterexample recorded in
    /// `proptest-regressions/diophantine.txt` (the vendored offline
    /// proptest stub does not auto-load regression files). The shrunken
    /// case is `3x + y = -3` over the single point `(0, -1)`: no
    /// solution, which an early counting fast path got wrong.
    #[test]
    fn regression_count_two_var_on_degenerate_boxes() {
        let (a, b, c) = (3, 1, -3);
        let (xb, yb) = ((0, 0), (-1, -1));
        assert_eq!(count_two_var_solutions(a, b, c, xb, yb), 0);
        assert_eq!(
            count_two_var_solutions(a, b, c, xb, yb),
            brute_count(a, b, c, xb, yb)
        );
    }

    /// Adversarial magnitudes that used to abort debug builds: every path
    /// must return a (sound) answer, never overflow-panic.
    #[test]
    fn widened_arithmetic_survives_extreme_magnitudes() {
        let big = i64::MAX / 2;
        // Particular solutions whose Bezout scaling overflows i64.
        let b_coef = big + (big & 1) + 2; // even, ~2^62
        let (x, y) = solve_two_var(2, b_coef, b_coef).unwrap();
        assert_eq!(
            i128::from(x) * 2 + i128::from(y) * i128::from(b_coef),
            i128::from(b_coef)
        );
        // Full-range degenerate boxes in the closed-form counter.
        assert_eq!(
            count_two_var_solutions(0, 0, 0, (i64::MIN, i64::MAX), (0, 0)),
            u64::MAX // saturated width, sound overcount
        );
        assert_eq!(
            count_two_var_solutions(1, 1, big, (i64::MIN, i64::MAX), (0, 0)),
            1
        );
        // Counting with an i64-overflowing running remainder.
        let eq = BoundedDiophantine::new(
            vec![big, big, 1],
            0,
            vec![
                Interval::new(-2, 2),
                Interval::new(-2, 2),
                Interval::new(-1, 1),
            ],
        );
        assert_eq!(eq.count_solutions(), eq.solutions().len() as u64);
        // ceil_div at the i64 boundary.
        assert_eq!(ceil_div(i64::MIN, 2), i64::MIN / 2);
        assert_eq!(ceil_div(i64::MIN, -1), i64::MAX); // saturated
                                                      // type1 test with a gcd·max|u| product past i64.
        let _ = type1_has_no_solution(big, big, Interval::new(-big, big), Interval::new(-1, 1));
    }

    proptest! {
        #[test]
        fn prop_linear_form_solutions_verify(
            coeffs in proptest::collection::vec(-20i64..=20, 1..5),
            rhs in -100i64..=100,
        ) {
            match solve_linear_form(&coeffs, rhs) {
                Some(x) => {
                    let dot: i64 = coeffs.iter().zip(&x).map(|(c, v)| c * v).sum();
                    prop_assert_eq!(dot, rhs);
                }
                None => {
                    let g = crate::gcd::gcd_all(&coeffs);
                    prop_assert!(g == 0 || rhs % g != 0);
                }
            }
        }

        #[test]
        fn prop_count_two_var_matches_brute(
            a in -6i64..6, b in -6i64..6, c in -12i64..12,
            xlo in -6i64..3, xw in 0i64..8,
            ylo in -6i64..3, yw in 0i64..8,
        ) {
            let xb = (xlo, xlo + xw);
            let yb = (ylo, ylo + yw);
            prop_assert_eq!(
                count_two_var_solutions(a, b, c, xb, yb),
                brute_count(a, b, c, xb, yb)
            );
        }

        #[test]
        fn prop_bounded_count_matches_enumeration(
            c0 in -4i64..4, c1 in -4i64..4, c2 in -4i64..4, rhs in -8i64..8,
            w0 in 0i64..5, w1 in 0i64..5, w2 in 0i64..5,
        ) {
            let eq = BoundedDiophantine::new(
                vec![c0, c1, c2],
                rhs,
                vec![Interval::new(0, w0), Interval::new(-w1, w1), Interval::new(1, 1 + w2)],
            );
            prop_assert_eq!(eq.count_solutions(), eq.solutions().len() as u64);
        }
    }
}
